//! Query cost of the epoch-combined self-join after a long adaptive run.
//!
//! A monitoring loop queries `self_join()` after every batch. Without
//! compaction the epoch list grows with every rate change and the naive
//! query pays O(E²) sketch dot products; with same-p compaction plus the
//! cross-term cache a per-batch query pays O(G) dot products for G
//! distinct grid rates. The three lines measure one (feed batch + query)
//! round against the same churn workload ([`epoch_churn`]):
//!
//! * `cached` — compacted epochs, incremental cross-term cache (the
//!   production path),
//! * `uncached` — compacted epochs, full O(G²) recomputation,
//! * `reference` — uncompacted epochs (one per rate change), O(E²).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::experiments::epoch_churn;
use sss_core::sketch::JoinSchema;
use std::hint::black_box;

const CHANGES: usize = 200;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let schema = JoinSchema::fagms(1, 512, &mut rng);
    let (mut compact, mut reference, _) = epoch_churn(&schema, CHANGES, 1_000, 8);
    let batch: Vec<u64> = (0..1_000u64).map(|j| (j * 13) % 1_000).collect();
    let mut group = c.benchmark_group("epoch_query");
    group.bench_function(format!("cached/{CHANGES}changes"), |b| {
        b.iter(|| {
            compact.feed_batch(black_box(&batch));
            black_box(compact.self_join().expect("query"))
        })
    });
    group.bench_function(format!("uncached/{CHANGES}changes"), |b| {
        b.iter(|| {
            compact.feed_batch(black_box(&batch));
            black_box(compact.self_join_uncached().expect("query"))
        })
    });
    group.bench_function(format!("reference/{CHANGES}changes"), |b| {
        b.iter(|| {
            reference.feed_batch(black_box(&batch));
            black_box(reference.self_join().expect("query"))
        })
    });
    group.finish();
}

criterion_group!(epoch_query, benches);
criterion_main!(epoch_query);
