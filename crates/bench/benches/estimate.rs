//! Estimation (query-time) cost: how expensive is turning counters into an
//! answer, as the sketch grows. Relevant for online aggregation, where the
//! running estimate is recomputed at every checkpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_sketch::{AgmsSchema, FagmsSchema, Sketch};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("estimate");

    for n in [256usize, 4096] {
        let schema: AgmsSchema = AgmsSchema::new(n, &mut rng);
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        for key in 0..10_000u64 {
            s.update(key, 1);
            t.update(key % 100, 1);
        }
        group.bench_function(BenchmarkId::new("agms_self_join_mean", n), |b| {
            b.iter(|| black_box(s.self_join()))
        });
        group.bench_function(BenchmarkId::new("agms_self_join_mom8", n), |b| {
            b.iter(|| black_box(s.self_join_median_of_means(8)))
        });
        group.bench_function(BenchmarkId::new("agms_join", n), |b| {
            b.iter(|| black_box(s.size_of_join(&t).expect("shared schema")))
        });
        // The typed query: same point estimate plus lane variance and
        // interval state — measures the error-bar overhead.
        group.bench_function(BenchmarkId::new("agms_self_join_estimate", n), |b| {
            b.iter(|| black_box(s.self_join_estimate()))
        });
        group.bench_function(BenchmarkId::new("agms_join_estimate", n), |b| {
            b.iter(|| black_box(s.size_of_join_estimate(&t).expect("shared schema")))
        });
    }
    for width in [5000usize, 10_000] {
        let schema: FagmsSchema = FagmsSchema::new(3, width, &mut rng);
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        for key in 0..10_000u64 {
            s.update(key, 1);
            t.update(key % 100, 1);
        }
        group.bench_function(BenchmarkId::new("fagms_self_join", width), |b| {
            b.iter(|| black_box(s.self_join()))
        });
        group.bench_function(BenchmarkId::new("fagms_join", width), |b| {
            b.iter(|| black_box(s.size_of_join(&t).expect("shared schema")))
        });
        group.bench_function(BenchmarkId::new("fagms_self_join_estimate", width), |b| {
            b.iter(|| black_box(s.self_join_estimate()))
        });
        group.bench_function(BenchmarkId::new("fagms_join_estimate", width), |b| {
            b.iter(|| black_box(s.size_of_join_estimate(&t).expect("shared schema")))
        });
    }
    group.finish();
}

criterion_group!(estimate, benches);
criterion_main!(estimate);
