//! Update and query cost of the heavy-hitters summaries.
//!
//! Three ingest paths over the same skewed stream:
//!
//! * `offer/misra_gries` — deterministic counters, branchy min-eviction;
//! * `offer/count_sketch` — sketch row updates + candidate re-scoring;
//! * `sampled/p0.1` — the `Sampled` front end at a 10% Bernoulli
//!   rate, where geometric skips turn most tuples into a counter bump.
//!
//! Plus the query side: `top_k/50` re-scores every candidate against the
//! sketch and sorts — the O(capacity · depth) cost a caller pays per
//! snapshot, not per tuple.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::Sampled;
use sss_datagen::ZipfGenerator;
use sss_sketch::{CountSketchTopK, FagmsSchema, HeavyHitters, MisraGries};
use std::hint::black_box;

const TUPLES: usize = 100_000;
const K: usize = 50;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(33);
    let stream = ZipfGenerator::new(100_000, 1.2).relation(TUPLES, &mut rng);
    let schema: FagmsSchema = FagmsSchema::new(5, 2048, &mut rng);

    let mut group = c.benchmark_group("heavy_hitters");
    group.throughput(Throughput::Elements(TUPLES as u64));
    group.bench_function(BenchmarkId::new("offer", "misra_gries"), |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(4 * K).unwrap();
            mg.offer_batch(&stream);
            black_box(mg.items_offered())
        })
    });
    group.bench_function(BenchmarkId::new("offer", "count_sketch"), |b| {
        b.iter(|| {
            let mut cs = CountSketchTopK::new(&schema, 4 * K).unwrap();
            cs.offer_batch(&stream);
            black_box(cs.items_offered())
        })
    });
    group.bench_function(BenchmarkId::new("sampled", "p0.1"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut tracker = Sampled::count_sketch(&schema, 4 * K, 0.1, &mut rng).unwrap();
            tracker.feed_batch(&stream);
            black_box(tracker.kept())
        })
    });
    group.finish();

    // Query side in its own group: per-snapshot cost, not per-tuple.
    let mut full = CountSketchTopK::new(&schema, 4 * K).unwrap();
    full.offer_batch(&stream);
    let mut query = c.benchmark_group("heavy_hitters_query");
    query.bench_function(BenchmarkId::new("top_k", K), |b| {
        b.iter(|| black_box(full.raw_top_k(K)))
    });
    query.finish();
}

criterion_group!(heavy_hitters, benches);
criterion_main!(heavy_hitters);
