//! Ingestion cost of the composite `MultiSummary` vs feeding its four
//! constituents separately — the microbench behind the `multi_summary`
//! acceptance bin.
//!
//! At `p = 1` the composite and the four separate summaries do identical
//! sketch work, so `one_pass/full` vs `four_passes/full` isolates the
//! fan-out overhead (expected: none — the same batch kernels run either
//! way). At `p = 0.1` the composite skip-samples the batch once where
//! four separate `Sampled` lenses scan it four times, which is the
//! mechanism the 2× acceptance gate rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::sketch::JoinSchema;
use sss_core::{MultiSpec, Sampled, Summary};
use sss_datagen::ZipfGenerator;
use sss_sketch::{CountSketchTopK, FagmsSchema, HyperLogLog, KllSketch};
use std::hint::black_box;

const TUPLES: usize = 16_384;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let keys = ZipfGenerator::new(100_000, 1.2).relation(TUPLES, &mut rng);
    let mut group = c.benchmark_group("multi_summary");
    group.throughput(Throughput::Elements(TUPLES as u64));

    let join_schema = JoinSchema::fagms(3, 4096, &mut rng);
    let topk_schema: FagmsSchema = FagmsSchema::new(3, 4096, &mut rng);
    let spec = MultiSpec::new(join_schema.clone(), &mut rng).top_k(topk_schema.clone(), 256);

    // Full-rate ingestion: composite fan-out vs four separate summaries.
    group.bench_function(BenchmarkId::new("one_pass/full", 1.0), |b| {
        let mut multi = spec.summary().expect("spec");
        b.iter(|| multi.update_batch(black_box(&keys)))
    });
    group.bench_function(BenchmarkId::new("four_passes/full", 1.0), |b| {
        let mut join = join_schema.sketch();
        let mut topk = CountSketchTopK::new(&topk_schema, 256).expect("topk");
        let mut hll = HyperLogLog::with_seed(12, 1).expect("hll");
        let mut kll = KllSketch::with_seed(200, 2).expect("kll");
        b.iter(|| {
            Summary::update_batch(&mut join, black_box(&keys));
            Summary::update_batch(&mut topk, black_box(&keys));
            Summary::update_batch(&mut hll, black_box(&keys));
            Summary::update_batch(&mut kll, black_box(&keys));
        })
    });

    // Sampled ingestion: one skip-scan of the batch vs four.
    for p in [0.1, 0.05] {
        group.bench_function(BenchmarkId::new("one_pass/sampled", p), |b| {
            let mut multi = spec.sampled(p, &mut rng).expect("spec");
            b.iter(|| multi.feed_batch(black_box(&keys)))
        });
        group.bench_function(BenchmarkId::new("four_passes/sampled", p), |b| {
            let mut join = Sampled::new(join_schema.sketch(), p, &mut rng).expect("join");
            let mut topk = Sampled::count_sketch(&topk_schema, 256, p, &mut rng).expect("topk");
            let mut hll = Sampled::hyperloglog(12, p, &mut rng).expect("hll");
            let mut kll = Sampled::kll(200, p, &mut rng).expect("kll");
            b.iter(|| {
                join.feed_batch(black_box(&keys));
                topk.feed_batch(black_box(&keys));
                hll.feed_batch(black_box(&keys));
                kll.feed_batch(black_box(&keys));
            })
        });
    }
    group.finish();
}

criterion_group!(multi_summary, benches);
criterion_main!(multi_summary);
