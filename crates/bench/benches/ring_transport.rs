//! Microbenchmarks of the SPSC ring transport underneath the sharded
//! runtime.
//!
//! Three cases isolate the layers the runtime composes:
//!
//! * `spsc_uncontended` — one thread pushes and pops `u64`s through a
//!   [`ring`](sss_stream::ring::ring): the raw slot protocol (two atomic
//!   cursor updates per element, no parking).
//! * `spsc_cross_thread` — a producer thread streams batches of keys to
//!   a consumer thread through the ring while a recycle ring returns
//!   buffers, the exact buffer circulation of the runtime's ingest lane:
//!   steady state allocates nothing.
//! * `control_queue` — out-of-band [`ControlQueue`] sends against an
//!   idle parked worker, the path a snapshot request takes: the cost is
//!   one mutex push plus one wake.
//!
//! [`ControlQueue`]: sss_stream::ring::ControlQueue

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sss_stream::ring::{ring, ControlQueue};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

const DEPTH: usize = 8;
const BATCH: usize = 4_096;
const BATCHES: usize = 64;

fn spsc_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_transport");
    group.throughput(Throughput::Elements((DEPTH * 64) as u64));
    group.bench_function("spsc_uncontended", |b| {
        let (mut tx, mut rx) = ring::<u64>(DEPTH);
        b.iter(|| {
            for round in 0..64u64 {
                for i in 0..DEPTH as u64 {
                    tx.try_push(round * DEPTH as u64 + i).expect("has room");
                }
                for _ in 0..DEPTH {
                    black_box(rx.try_pop().expect("has elements"));
                }
            }
        })
    });
    group.finish();
}

fn spsc_cross_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_transport");
    group.throughput(Throughput::Elements((BATCHES * BATCH) as u64));
    group.bench_function("spsc_cross_thread", |b| {
        b.iter(|| {
            let (mut data_tx, mut data_rx) = ring::<Vec<u64>>(DEPTH);
            let (mut recycle_tx, mut recycle_rx) = ring::<Vec<u64>>(DEPTH + 2);
            let consumer = thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(mut buf) = data_rx.pop() {
                    sum += buf.iter().sum::<u64>();
                    buf.clear();
                    let _ = recycle_tx.try_push(buf);
                }
                sum
            });
            let mut spare: Vec<Vec<u64>> = Vec::new();
            for round in 0..BATCHES as u64 {
                let mut buf = spare
                    .pop()
                    .or_else(|| recycle_rx.try_pop())
                    .unwrap_or_else(|| Vec::with_capacity(BATCH));
                buf.extend((0..BATCH as u64).map(|i| round + i));
                data_tx.push(buf).expect("consumer alive");
                if let Some(returned) = recycle_rx.try_pop() {
                    spare.push(returned);
                }
            }
            drop(data_tx);
            black_box(consumer.join().expect("consumer exits cleanly"))
        })
    });
    group.finish();
}

fn control_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_transport");
    group.throughput(Throughput::Elements(256));
    group.bench_function("control_queue", |b| {
        b.iter(|| {
            let (tx, mut rx) = ring::<u64>(DEPTH);
            let ctrl = Arc::new(ControlQueue::<u64>::new(rx.parker()));
            let worker_ctrl = Arc::clone(&ctrl);
            let worker = thread::spawn(move || {
                let mut seen = 0u64;
                loop {
                    while let Some(msg) = worker_ctrl.try_recv() {
                        seen += msg;
                    }
                    match rx.try_pop() {
                        Some(_) => {}
                        None if rx.is_closed() => break,
                        None => thread::yield_now(),
                    }
                }
                while let Some(msg) = worker_ctrl.try_recv() {
                    seen += msg;
                }
                seen
            });
            for i in 0..256u64 {
                ctrl.send(i);
            }
            drop(tx);
            black_box(worker.join().expect("worker exits cleanly"))
        })
    });
    group.finish();
}

criterion_group!(
    ring_transport,
    spsc_uncontended,
    spsc_cross_thread,
    control_queue
);
criterion_main!(ring_transport);
