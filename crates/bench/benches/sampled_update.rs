//! The speed-up mechanism itself: processing a stream through a full
//! sketch vs through a Bernoulli shedder at various p. The per-*stream-
//! tuple* cost of the shedded pipeline must fall roughly as p falls, which
//! is exactly the paper's claimed speed-up. The `shed_batched` lines run
//! the same sampler through `feed_batch`, which jumps the geometric gaps
//! instead of branching per tuple.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::sketch::JoinSchema;
use sss_core::LoadSheddingSketcher;
use std::hint::black_box;

const TUPLES: u64 = 16_384;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let keys: Vec<u64> = (0..TUPLES).collect();
    let mut group = c.benchmark_group("sampled_update");
    group.throughput(Throughput::Elements(TUPLES));

    // The expensive-update backend, where shedding pays off most.
    let agms = JoinSchema::agms(64, &mut rng);
    // The cheap-update backend of the paper's experiments.
    let fagms = JoinSchema::fagms(1, 5000, &mut rng);

    for (name, schema) in [("agms64", &agms), ("fagms5000", &fagms)] {
        group.bench_function(BenchmarkId::new(format!("{name}/full"), 1.0), |b| {
            let mut s = schema.sketch();
            b.iter(|| {
                for &key in &keys {
                    s.update(black_box(key), 1);
                }
            })
        });
        group.bench_function(BenchmarkId::new(format!("{name}/full_batched"), 1.0), |b| {
            let mut s = schema.sketch();
            b.iter(|| s.update_batch(black_box(&keys)))
        });
        for p in [0.1, 0.01] {
            group.bench_function(BenchmarkId::new(format!("{name}/shed"), p), |b| {
                let mut shed =
                    LoadSheddingSketcher::new(schema, p, &mut rng).expect("valid probability");
                b.iter(|| {
                    for &key in &keys {
                        shed.observe(black_box(key));
                    }
                })
            });
            group.bench_function(BenchmarkId::new(format!("{name}/shed_batched"), p), |b| {
                let mut shed =
                    LoadSheddingSketcher::new(schema, p, &mut rng).expect("valid probability");
                b.iter(|| shed.feed_batch(black_box(&keys)))
            });
        }
    }
    group.finish();
}

criterion_group!(sampled, benches);
criterion_main!(sampled);
