//! Ingest throughput of the persistent sharded runtime vs shard count.
//!
//! Each iteration spawns a fresh [`ShardedRuntime`], pushes a fixed
//! stream through it in batches, and merges on shutdown — the full
//! lifecycle a short-lived ingest task pays. Two sinks:
//!
//! * `cpu/N` — plain F-AGMS `JoinSketch` shards: bounded by the host's
//!   cores (on a single-core runner the lines collapse);
//! * `paced/N` — [`PacedSketch`] shards paying a fixed per-batch latency:
//!   worker sleeps overlap, so throughput scales with N even on one core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::experiments::PacedSketch;
use sss_core::sketch::JoinSchema;
use sss_core::{JoinQuery, Summary};
use sss_stream::{Partition, RuntimeConfig, ShardedRuntime};
use std::hint::black_box;
use std::time::Duration;

const TUPLES: usize = 200_000;
const BATCH: usize = 4_096;
const PAUSE_US: u64 = 50;

fn ingest<E: Summary + JoinQuery>(prototype: &E, shards: usize, stream: &[u64]) -> E {
    let config = RuntimeConfig {
        shards,
        queue_depth: 8,
        partition: Partition::RoundRobin,
    };
    let mut rt = ShardedRuntime::new(config, prototype).expect("valid config");
    for chunk in stream.chunks(BATCH) {
        rt.push(chunk).expect("no shard died");
    }
    rt.into_merged().expect("merge after shutdown")
}

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let schema = JoinSchema::fagms(1, 1_024, &mut rng);
    let stream: Vec<u64> = (0..TUPLES as u64)
        .map(|i| (i.wrapping_mul(2654435761)) % 10_000)
        .collect();
    let mut group = c.benchmark_group("sharded_runtime");
    group.throughput(Throughput::Elements(TUPLES as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("cpu", shards), |b| {
            b.iter(|| black_box(ingest(&schema.sketch(), shards, &stream)))
        });
        group.bench_function(BenchmarkId::new("paced", shards), |b| {
            let proto = PacedSketch::new(&schema, Duration::from_micros(PAUSE_US));
            b.iter(|| black_box(ingest(&proto, shards, &stream)))
        });
    }
    group.finish();
}

criterion_group!(sharded_runtime, benches);
criterion_main!(sharded_runtime);
