//! Per-tuple update cost of the sketch structures: the quantity load
//! shedding divides by `1/p`. AGMS grows linearly with its counter count;
//! F-AGMS and Count-Min stay O(depth) regardless of width.
//!
//! Every configuration is measured twice — the per-tuple `update` loop
//! (`…/scalar`) and the row-major `update_batch` kernel (`…/batched`) —
//! so the amortized-ξ speed-up is read directly off adjacent lines.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_sketch::{AgmsSchema, CountMinSchema, FagmsSchema, Sketch};
use std::hint::black_box;

const TUPLES: u64 = 4096;

fn stream_keys() -> Vec<u64> {
    (0..TUPLES)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

/// Benchmark one sketch configuration both ways: `name/scalar` runs the
/// per-tuple update loop, `name/batched` the batched kernel. A fresh sketch
/// is set up (untimed) for every timing iteration so counter state never
/// accumulates across samples.
fn bench_scalar_vs_batched<S, M>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    param: impl std::fmt::Display,
    make: M,
    keys: &[u64],
) where
    S: Sketch,
    M: Fn() -> S + Copy,
{
    group.bench_function(BenchmarkId::new(format!("{name}/scalar"), &param), |b| {
        b.iter_batched_ref(
            make,
            |s| {
                for &key in keys {
                    s.update(black_box(key), 1);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::new(format!("{name}/batched"), &param), |b| {
        b.iter_batched_ref(
            make,
            |s| s.update_batch(black_box(keys)),
            BatchSize::SmallInput,
        )
    });
}

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let keys = stream_keys();
    let mut group = c.benchmark_group("sketch_update");
    group.throughput(Throughput::Elements(TUPLES));

    for n in [16usize, 64, 256] {
        let schema: AgmsSchema = AgmsSchema::new(n, &mut rng);
        bench_scalar_vs_batched(&mut group, "agms", n, || schema.sketch(), &keys);
    }
    for width in [512usize, 5000, 10_000] {
        let schema: FagmsSchema = FagmsSchema::new(1, width, &mut rng);
        bench_scalar_vs_batched(&mut group, "fagms_d1", width, || schema.sketch(), &keys);
    }
    {
        let schema: FagmsSchema = FagmsSchema::new(5, 1000, &mut rng);
        bench_scalar_vs_batched(&mut group, "fagms_d5", 1000, || schema.sketch(), &keys);
    }
    {
        let schema: CountMinSchema = CountMinSchema::new(5, 1000, &mut rng);
        bench_scalar_vs_batched(&mut group, "countmin_d5", 1000, || schema.sketch(), &keys);
    }
    group.finish();
}

criterion_group!(sketch, benches);
criterion_main!(sketch);
