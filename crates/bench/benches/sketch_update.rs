//! Per-tuple update cost of the sketch structures: the quantity load
//! shedding divides by `1/p`. AGMS grows linearly with its counter count;
//! F-AGMS and Count-Min stay O(depth) regardless of width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_sketch::{AgmsSchema, CountMinSchema, FagmsSchema, Sketch};
use std::hint::black_box;

const TUPLES: u64 = 4096;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("sketch_update");
    group.throughput(Throughput::Elements(TUPLES));

    for n in [16usize, 64, 256] {
        let schema: AgmsSchema = AgmsSchema::new(n, &mut rng);
        group.bench_function(BenchmarkId::new("agms", n), |b| {
            let mut s = schema.sketch();
            b.iter(|| {
                for key in 0..TUPLES {
                    s.update(black_box(key), 1);
                }
            })
        });
    }
    for width in [512usize, 5000, 10_000] {
        let schema: FagmsSchema = FagmsSchema::new(1, width, &mut rng);
        group.bench_function(BenchmarkId::new("fagms_d1", width), |b| {
            let mut s = schema.sketch();
            b.iter(|| {
                for key in 0..TUPLES {
                    s.update(black_box(key), 1);
                }
            })
        });
    }
    {
        let schema: FagmsSchema = FagmsSchema::new(5, 1000, &mut rng);
        group.bench_function(BenchmarkId::new("fagms_d5", 1000), |b| {
            let mut s = schema.sketch();
            b.iter(|| {
                for key in 0..TUPLES {
                    s.update(black_box(key), 1);
                }
            })
        });
    }
    {
        let schema: CountMinSchema = CountMinSchema::new(5, 1000, &mut rng);
        group.bench_function(BenchmarkId::new("countmin_d5", 1000), |b| {
            let mut s = schema.sketch();
            b.iter(|| {
                for key in 0..TUPLES {
                    s.update(black_box(key), 1);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(sketch, benches);
criterion_main!(sketch);
