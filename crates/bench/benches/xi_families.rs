//! Throughput of the ±1 generator families — the per-tuple cost floor of
//! every sketch update. Reproduces the generator comparison that motivated
//! the paper's testbed choices (Rusu & Dobra, TODS 2007).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_xi::{Bch3, Bch5, Cw2, Cw4, Eh3, SignFamily, Tabulation};
use std::hint::black_box;

const KEYS: u64 = 4096;

fn bench_family<F: SignFamily>(c: &mut Criterion, name: &str) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = F::random(&mut rng);
    let mut group = c.benchmark_group("xi_sign");
    group.throughput(Throughput::Elements(KEYS));
    group.bench_function(BenchmarkId::from_parameter(name), |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for key in 0..KEYS {
                acc += f.sign(black_box(key));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_family::<Cw2>(c, "cw2");
    bench_family::<Cw4>(c, "cw4");
    bench_family::<Eh3>(c, "eh3");
    bench_family::<Bch3>(c, "bch3");
    bench_family::<Bch5>(c, "bch5");
    bench_family::<Tabulation>(c, "tabulation");
}

criterion_group!(xi, benches);
criterion_main!(xi);
