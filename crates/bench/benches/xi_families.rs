//! Throughput of the ±1 generator families — the per-tuple cost floor of
//! every sketch update. Reproduces the generator comparison that motivated
//! the paper's testbed choices (Rusu & Dobra, TODS 2007).
//!
//! Two groups:
//!
//! * `xi_sign` — the scalar per-key `sign()` loop, the historical baseline;
//! * `xi_sign_sum` — the batched `sign_sum` entry point at batch sizes
//!   64 / 1k / 64k, which routes through the chunked (and, with
//!   `--features simd` on an AVX2 host, vectorized) kernels in
//!   `sss_xi::kernels`. Comparing the two groups shows the kernel win;
//!   comparing batch sizes shows where the fixed dispatch cost amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_xi::{Bch3, Bch5, Cw2, Cw4, Eh3, SignFamily, Tabulation};
use std::hint::black_box;

const KEYS: u64 = 4096;

/// Batch sizes for the `sign_sum` group: below one chunk, a queue-friendly
/// batch, and a cache-straining batch.
const BATCHES: [usize; 3] = [64, 1024, 65536];

fn bench_family<F: SignFamily>(c: &mut Criterion, name: &str) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = F::random(&mut rng);
    let mut group = c.benchmark_group("xi_sign");
    group.throughput(Throughput::Elements(KEYS));
    group.bench_function(BenchmarkId::from_parameter(name), |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for key in 0..KEYS {
                acc += f.sign(black_box(key));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_family_sign_sum<F: SignFamily>(c: &mut Criterion, name: &str) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = F::random(&mut rng);
    let keys: Vec<u64> = (0..BATCHES[BATCHES.len() - 1] as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut group = c.benchmark_group("xi_sign_sum");
    for &batch in &BATCHES {
        group.throughput(Throughput::Elements(batch as u64));
        let keys = &keys[..batch];
        group.bench_function(BenchmarkId::new(name, batch), |b| {
            b.iter(|| black_box(f.sign_sum(black_box(keys))))
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_family::<Cw2>(c, "cw2");
    bench_family::<Cw4>(c, "cw4");
    bench_family::<Eh3>(c, "eh3");
    bench_family::<Bch3>(c, "bch3");
    bench_family::<Bch5>(c, "bch5");
    bench_family::<Tabulation>(c, "tabulation");
    bench_family_sign_sum::<Cw2>(c, "cw2");
    bench_family_sign_sum::<Cw4>(c, "cw4");
    bench_family_sign_sum::<Eh3>(c, "eh3");
    bench_family_sign_sum::<Bch3>(c, "bch3");
    bench_family_sign_sum::<Bch5>(c, "bch5");
    bench_family_sign_sum::<Tabulation>(c, "tabulation");
}

criterion_group!(xi, benches);
criterion_main!(xi);
