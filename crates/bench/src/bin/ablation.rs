//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **ξ family** — accuracy of the F-AGMS self-join estimate per sign
//!    family (CW2 is deliberately included to show what losing 4-wise
//!    independence costs; CW4 is the workspace default).
//! 2. **Shedding mechanism** — per-tuple coin vs geometric skip, wall
//!    clock at equal p.
//! 3. **Sketch structure** — AGMS vs F-AGMS at equal counter memory:
//!    accuracy and update throughput.
//!
//! ```text
//! cargo run --release -p sss-bench --bin ablation \
//!     [--tuples=1000000] [--domain=100000] [--reps=15] [--seed=21]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::{arg, banner};
use sss_datagen::ZipfGenerator;
use sss_moments::FrequencyVector;
use sss_sampling::{BernoulliSampler, GeometricSkip};
use sss_sketch::{AgmsSchema, FagmsSchema, Sketch};
use sss_stream::Throughput;
use sss_xi::{Bch3, Bch5, Cw2, Cw2Bucket, Cw4, Eh3, SignFamily, Tabulation};

fn xi_family_accuracy<S>(name: &str, stream: &[u64], truth: f64, reps: usize, seed: u64)
where
    S: SignFamily,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut err = 0.0;
    for _ in 0..reps {
        let schema = FagmsSchema::<S, Cw2Bucket>::new(1, 5000, &mut rng);
        let mut sk = schema.sketch();
        for &k in stream {
            sk.update(k, 1);
        }
        err += ((sk.self_join() - truth) / truth).abs();
    }
    println!("xi_family,{name},{:.6}", err / reps as f64);
}

fn main() {
    let tuples: usize = arg("tuples", 1_000_000);
    let domain: usize = arg("domain", 100_000);
    let reps: usize = arg("reps", 15);
    let seed: u64 = arg("seed", 21);
    banner(
        "ablation",
        "design-choice ablations (ξ family, shedding mechanism, sketch structure)",
        &[
            ("tuples", tuples.to_string()),
            ("domain", domain.to_string()),
            ("reps", reps.to_string()),
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let stream = ZipfGenerator::new(domain, 1.0).relation(tuples, &mut rng);
    let truth = FrequencyVector::from_keys(stream.iter().copied(), domain).self_join();

    // 1. ξ family accuracy (F-AGMS 1×5000 self-join, mean relative error).
    println!("section,variant,value");
    xi_family_accuracy::<Cw2>("cw2_pairwise_only", &stream, truth, reps, seed + 1);
    xi_family_accuracy::<Cw4>("cw4", &stream, truth, reps, seed + 2);
    xi_family_accuracy::<Eh3>("eh3", &stream, truth, reps, seed + 3);
    xi_family_accuracy::<Bch3>("bch3", &stream, truth, reps, seed + 6);
    xi_family_accuracy::<Bch5>("bch5", &stream, truth, reps, seed + 4);
    xi_family_accuracy::<Tabulation>("tabulation", &stream, truth, reps, seed + 5);

    // 2. Coin vs geometric skip: pure sampling cost (no sketch), p sweep.
    for p in [0.1, 0.01, 0.001] {
        let mut coin: BernoulliSampler = BernoulliSampler::new(p, &mut rng).expect("valid p");
        let mut kept = 0u64;
        let coin_t = Throughput::measure(stream.len() as u64, || {
            for _ in &stream {
                kept += coin.keep() as u64;
            }
        });
        let mut skip: GeometricSkip = GeometricSkip::new(p, &mut rng).expect("valid p");
        let mut kept_skip = 0u64;
        let skip_t = Throughput::measure(stream.len() as u64, || {
            let mut gap = skip.next_gap();
            for _ in &stream {
                if gap == 0 {
                    kept_skip += 1;
                    gap = skip.next_gap();
                } else {
                    gap -= 1;
                }
            }
        });
        println!("shed_coin_mtps,p={p},{:.2}", coin_t.tuples_per_sec() / 1e6);
        println!("shed_skip_mtps,p={p},{:.2}", skip_t.tuples_per_sec() / 1e6);
        std::hint::black_box((kept, kept_skip));
    }

    // 3. AGMS vs F-AGMS at equal memory (5000 counters): accuracy + speed.
    {
        let mut err_agms = 0.0;
        let mut err_fagms = 0.0;
        let acc_reps = reps.min(5); // AGMS-5000 is slow; few reps suffice
        let sub = &stream[..stream.len().min(100_000)];
        let sub_truth = FrequencyVector::from_keys(sub.iter().copied(), domain).self_join();
        for _ in 0..acc_reps {
            let agms = AgmsSchema::<Cw4>::new(5000, &mut rng);
            let mut s = agms.sketch();
            let agms_t = Throughput::measure(sub.len() as u64, || {
                for &k in sub {
                    s.update(k, 1);
                }
            });
            err_agms += ((s.self_join() - sub_truth) / sub_truth).abs();

            let fagms = FagmsSchema::<Cw4, Cw2Bucket>::new(1, 5000, &mut rng);
            let mut f = fagms.sketch();
            let fagms_t = Throughput::measure(sub.len() as u64, || {
                for &k in sub {
                    f.update(k, 1);
                }
            });
            err_fagms += ((f.self_join() - sub_truth) / sub_truth).abs();
            println!(
                "structure_agms5000_mtps,,{:.3}",
                agms_t.tuples_per_sec() / 1e6
            );
            println!(
                "structure_fagms5000_mtps,,{:.3}",
                fagms_t.tuples_per_sec() / 1e6
            );
        }
        println!("structure_agms5000_err,,{:.6}", err_agms / acc_reps as f64);
        println!(
            "structure_fagms5000_err,,{:.6}",
            err_fagms / acc_reps as f64
        );
    }
}
