//! Acceptance measurement for bounded-memory epoch shedding: epoch counts
//! and per-batch query cost after `--changes` adaptive rate changes.
//!
//! Drives the shared [`epoch_churn`] workload (a thrashing two-band load
//! through the quantized `RateController`), then times a monitoring loop —
//! one `feed_batch` plus one `self_join()` per iteration — for three query
//! paths: the compacted shedder's cached query (production), the compacted
//! shedder's cache-free O(G²) recomputation, and the uncompacted reference
//! (one epoch per rate change, O(E²)).
//!
//! ```text
//! cargo run --release -p sss-bench --bin epoch_monitor \
//!     [--changes=1000] [--batch=1000] [--buckets=512] [--queries=200] [--seed=8]
//! ```
//!
//! Prints CSV (`path,epochs,queries,ns_per_query`) plus summary lines; the
//! recorded numbers live in BENCH_epoch_query.json.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::experiments::epoch_churn;
use sss_bench::{arg, banner};
use sss_core::sketch::JoinSchema;
use std::hint::black_box;
use std::time::Instant;

fn time_ns_per_iter<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let changes: usize = arg("changes", 1_000);
    let batch_len: usize = arg("batch", 1_000);
    let buckets: usize = arg("buckets", 512);
    let queries: usize = arg("queries", 200);
    let seed: u64 = arg("seed", 8);
    banner(
        "epoch_monitor",
        "per-batch self-join query cost after adaptive rate churn",
        &[
            ("changes", changes.to_string()),
            ("batch", batch_len.to_string()),
            ("buckets", buckets.to_string()),
            ("queries", queries.to_string()),
            ("seed", seed.to_string()),
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = JoinSchema::fagms(1, buckets, &mut rng);
    let (mut compact, mut reference, bound) = epoch_churn(&schema, changes, batch_len, seed);
    eprintln!(
        "# epochs: compacted = {} (grid bound {bound}), reference = {}",
        compact.epoch_count(),
        reference.epoch_count()
    );
    // Same seed, same sample: the two bookkeepings must answer alike
    // (compare *before* the timed loops feed them different extra batches).
    let a = compact.self_join().expect("query");
    let b = reference.self_join().expect("query");
    eprintln!(
        "# estimates after churn: compacted = {a:.6e}, reference = {b:.6e} (rel diff {:.2e})",
        ((a - b) / b).abs()
    );
    let batch: Vec<u64> = (0..batch_len as u64).map(|j| (j * 13) % 1_000).collect();
    // The reference query is O(E²); keep its iteration count proportionate.
    let ref_queries = queries.clamp(1, 20);

    println!("path,epochs,queries,ns_per_query");
    let cached = time_ns_per_iter(queries, || {
        compact.feed_batch(black_box(&batch));
        black_box(compact.self_join().expect("query"));
    });
    println!("cached,{},{queries},{cached:.1}", compact.epoch_count());
    let uncached = time_ns_per_iter(queries, || {
        compact.feed_batch(black_box(&batch));
        black_box(compact.self_join_uncached().expect("query"));
    });
    println!("uncached,{},{queries},{uncached:.1}", compact.epoch_count());
    let naive = time_ns_per_iter(ref_queries, || {
        reference.feed_batch(black_box(&batch));
        black_box(reference.self_join().expect("query"));
    });
    println!(
        "reference,{},{ref_queries},{naive:.1}",
        reference.epoch_count()
    );
    println!(
        "# speedup: cached vs reference = {:.1}x, cached vs uncached = {:.1}x",
        naive / cached,
        uncached / cached
    );
}
