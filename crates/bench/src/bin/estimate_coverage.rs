//! Acceptance measurement for the typed `Estimate` query path: empirical
//! interval **coverage** and relative interval **width** as the sketch
//! grows, for both backends and the Bernoulli shedder.
//!
//! For each configuration the estimator is rebuilt `runs` times with
//! fresh seeds over a fixed skewed stream; a nominal 95% CLT and
//! Chebyshev interval is asked of every run and checked against the
//! exact answer. The process exits nonzero if any CLT coverage falls
//! below `level − 3σ` (σ the binomial noise of `runs` indicator draws)
//! or any Chebyshev coverage falls below its CLT counterpart — making
//! the binary a CI acceptance gate, not just a report.
//!
//! ```text
//! cargo run --release -p sss-bench --bin estimate_coverage \
//!     [--runs=200] [--level=0.95] [--seed=5]
//! ```
//!
//! Prints CSV (`backend,size,clt_coverage,chebyshev_coverage,rel_width`);
//! `rel_width` is the mean CLT half-width divided by the true value —
//! watch it shrink as the sketch widens while coverage stays nominal.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::{arg, banner};
use sss_core::sketch::JoinSchema;
use sss_core::LoadSheddingSketcher;
use sss_sketch::{AgmsSchema, Estimate, FagmsSchema, Sketch};

/// Mildly Zipfian frequencies shared by every configuration.
fn frequencies() -> Vec<u32> {
    (0..200u32).map(|k| 1 + 200 / (k + 1)).collect()
}

struct Row {
    backend: &'static str,
    size: usize,
    clt: f64,
    chebyshev: f64,
    rel_width: f64,
}

fn summarize(
    backend: &'static str,
    size: usize,
    estimates: &[Estimate],
    truth: f64,
    level: f64,
) -> Row {
    let runs = estimates.len() as f64;
    let clt = estimates
        .iter()
        .filter(|e| e.clt(level).unwrap().contains(truth))
        .count() as f64
        / runs;
    let chebyshev = estimates
        .iter()
        .filter(|e| e.chebyshev(level).unwrap().contains(truth))
        .count() as f64
        / runs;
    let rel_width = estimates
        .iter()
        .map(|e| e.clt(level).unwrap().half_width())
        .sum::<f64>()
        / runs
        / truth;
    Row {
        backend,
        size,
        clt,
        chebyshev,
        rel_width,
    }
}

fn main() {
    let runs: usize = arg("runs", 200);
    let level: f64 = arg("level", 0.95);
    let seed: u64 = arg("seed", 5);
    banner(
        "estimate_coverage",
        "typed-estimate interval coverage and width vs sketch size (acceptance gate)",
        &[
            ("runs", runs.to_string()),
            ("level", level.to_string()),
            ("seed", seed.to_string()),
        ],
    );
    let counts = frequencies();
    let truth: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    let stream: Vec<u64> = counts
        .iter()
        .enumerate()
        .flat_map(|(k, &c)| std::iter::repeat(k as u64).take(c as usize))
        .collect();
    let floor = level - 3.0 * (level * (1.0 - level) / runs as f64).sqrt();

    let mut rows = Vec::new();
    for n in [64usize, 256, 1024] {
        let estimates: Vec<Estimate> = (0..runs)
            .map(|run| {
                let mut rng = StdRng::seed_from_u64(seed ^ (1000 + run as u64));
                let schema: AgmsSchema = AgmsSchema::new(n, &mut rng);
                let mut sk = schema.sketch();
                for (k, &c) in counts.iter().enumerate() {
                    sk.update(k as u64, c as i64);
                }
                sk.self_join_estimate()
            })
            .collect();
        rows.push(summarize("agms", n, &estimates, truth, level));
    }
    for width in [128usize, 512, 2048] {
        let estimates: Vec<Estimate> = (0..runs)
            .map(|run| {
                let mut rng = StdRng::seed_from_u64(seed ^ (2000 + run as u64));
                let schema: FagmsSchema = FagmsSchema::new(11, width, &mut rng);
                let mut sk = schema.sketch();
                for (k, &c) in counts.iter().enumerate() {
                    sk.update(k as u64, c as i64);
                }
                sk.self_join_estimate()
            })
            .collect();
        rows.push(summarize("fagms", width, &estimates, truth, level));
    }
    for n in [128usize, 512] {
        let estimates: Vec<Estimate> = (0..runs)
            .map(|run| {
                let mut rng = StdRng::seed_from_u64(seed ^ (3000 + run as u64));
                let schema = JoinSchema::agms(n, &mut rng);
                let mut shed = LoadSheddingSketcher::new(&schema, 0.3, &mut rng).unwrap();
                shed.feed_batch(&stream);
                shed.self_join_estimate()
            })
            .collect();
        rows.push(summarize("shedder_p0.3", n, &estimates, truth, level));
    }

    println!("backend,size,clt_coverage,chebyshev_coverage,rel_width");
    let mut failed = false;
    for r in &rows {
        println!(
            "{},{},{:.3},{:.3},{:.4}",
            r.backend, r.size, r.clt, r.chebyshev, r.rel_width
        );
        if r.clt < floor {
            eprintln!(
                "FAIL {} size {}: CLT coverage {:.3} < floor {floor:.3}",
                r.backend, r.size, r.clt
            );
            failed = true;
        }
        if r.chebyshev < r.clt {
            eprintln!(
                "FAIL {} size {}: Chebyshev coverage {:.3} < CLT {:.3}",
                r.backend, r.size, r.chebyshev, r.clt
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("# all configurations at or above the {floor:.3} coverage floor");
}
