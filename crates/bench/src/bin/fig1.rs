//! Figure 1: relative contribution of the sampling / sketch / interaction
//! variance terms for the **size-of-join** estimator over Bernoulli
//! samples, as a function of Zipf skew, for several sampling probabilities.
//!
//! Analytic — evaluates Eq. 25 term by term on expected Zipf frequency
//! vectors; no simulation.
//!
//! ```text
//! cargo run --release -p sss-bench --bin fig1 [--domain=10000] [--tuples=1000000] [--buckets=5000]
//! ```

use sss_bench::{arg, banner, skew_grid};
use sss_datagen::ZipfGenerator;
use sss_moments::decompose;
use sss_moments::scheme::Bernoulli;
use sss_moments::FrequencyVector;

fn main() {
    let domain: usize = arg("domain", 10_000);
    let tuples: u64 = arg("tuples", 1_000_000);
    let buckets: usize = arg("buckets", 5_000);
    banner(
        "fig1",
        "size-of-join variance decomposition (Bernoulli)",
        &[
            ("domain", domain.to_string()),
            ("tuples", tuples.to_string()),
            ("buckets", buckets.to_string()),
        ],
    );
    println!("skew,p,sampling,sketch,interaction");
    for skew in skew_grid(0.25) {
        let freqs = FrequencyVector::from_counts(
            ZipfGenerator::new(domain, skew).expected_frequencies(tuples),
        );
        for p in [0.001, 0.01, 0.1, 0.5] {
            let scheme = Bernoulli::new(p).expect("valid probability");
            let d = decompose::bernoulli_sj(&freqs, &freqs, &scheme, &scheme, buckets)
                .expect("shared domain");
            let [s, k, i] = d.relative();
            println!("{skew},{p},{s:.6},{k:.6},{i:.6}");
        }
    }
}
