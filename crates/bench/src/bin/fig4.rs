//! Figure 4: empirical relative error of the **self-join size** sketch
//! over Bernoulli samples, as a function of Zipf skew, for several
//! sampling probabilities (p = 1.0 is sketching the full stream).
//!
//! ```text
//! cargo run --release -p sss-bench --bin fig4 \
//!     [--tuples=1000000] [--domain=100000] [--buckets=5000] [--reps=25] [--seed=10]
//! ```

use sss_bench::experiments::{bernoulli_sjs_sweep, BernoulliSweep};
use sss_bench::{arg, banner, skew_grid};

fn main() {
    let cfg = BernoulliSweep {
        tuples: arg("tuples", 1_000_000),
        domain: arg("domain", 100_000),
        buckets: arg("buckets", 5_000),
        reps: arg("reps", 25),
        probabilities: vec![0.001, 0.01, 0.1, 1.0],
        skews: skew_grid(0.5),
        seed: arg("seed", 10),
    };
    banner(
        "fig4",
        "self-join size error vs skew (sketch over Bernoulli samples, F-AGMS)",
        &[
            ("tuples", cfg.tuples.to_string()),
            ("domain", cfg.domain.to_string()),
            ("buckets", cfg.buckets.to_string()),
            ("reps", cfg.reps.to_string()),
        ],
    );
    println!("skew,p,relative_error");
    for pt in bernoulli_sjs_sweep(&cfg) {
        println!("{},{},{:.6}", pt.skew, pt.p, pt.error);
    }
}
