//! Figure 5: empirical relative error of the **size-of-join** sketch over
//! samples drawn **with replacement**, as a function of the sample size
//! (fraction of the population size).
//!
//! The generative-model setting of §VI-B: two fixed Zipf populations drawn
//! from the same law ("the tuples in the two relations are generated
//! completely independent") emit i.i.d. streams; the streams are sketched
//! and the population join size estimated.
//!
//! ```text
//! cargo run --release -p sss-bench --bin fig5 \
//!     [--population=1000000] [--domain=100000] [--buckets=5000] [--reps=25] \
//!     [--skew=1.0] [--seed=11]
//! ```

use sss_bench::experiments::{wr_sj_sweep, WrSweep};
use sss_bench::{arg, banner};

fn main() {
    let cfg = WrSweep {
        population: arg("population", 1_000_000),
        domain: arg("domain", 100_000),
        buckets: arg("buckets", 5_000),
        reps: arg("reps", 25),
        skew: arg("skew", 1.0),
        fractions: vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0],
        seed: arg("seed", 11),
    };
    banner(
        "fig5",
        "size-of-join error vs WR sample fraction (F-AGMS over i.i.d. streams)",
        &[
            ("population", cfg.population.to_string()),
            ("domain", cfg.domain.to_string()),
            ("buckets", cfg.buckets.to_string()),
            ("reps", cfg.reps.to_string()),
            ("skew", cfg.skew.to_string()),
        ],
    );
    println!("fraction,relative_error");
    for (frac, err) in wr_sj_sweep(&cfg) {
        println!("{frac},{err:.6}");
    }
}
