//! Figure 7: empirical relative error of the **size-of-join**
//! `lineitem ⋈ orders` (mini TPC-H) as a function of the **without-
//! replacement sampling rate** — the online-aggregation scan experiment.
//!
//! The paper observes a non-monotone curve here: the error is *smallest*
//! around a 10% scan and grows again as more data is sketched, an artifact
//! of F-AGMS bucket contention (§VII-D). Whether the effect reproduces
//! depends on the bucket-to-data ratio; run with `--buckets` and `--scale`
//! to explore (see EXPERIMENTS.md for a probe).
//!
//! ```text
//! cargo run --release -p sss-bench --bin fig7 \
//!     [--scale=0.05] [--buckets=5000] [--reps=25] [--seed=13]
//! ```

use sss_bench::experiments::{wor_join_sweep, WorSweep};
use sss_bench::{arg, banner};

fn main() {
    let cfg = WorSweep {
        scale: arg("scale", 0.05),
        buckets: arg("buckets", 5_000),
        reps: arg("reps", 25),
        rates: vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
        seed: arg("seed", 13),
    };
    banner(
        "fig7",
        "lineitem ⋈ orders error vs WOR sampling rate (mini TPC-H)",
        &[
            ("scale", cfg.scale.to_string()),
            ("buckets", cfg.buckets.to_string()),
            ("reps", cfg.reps.to_string()),
        ],
    );
    println!("rate,relative_error");
    for (rate, err) in wor_join_sweep(&cfg) {
        println!("{rate},{err:.6}");
    }
}
