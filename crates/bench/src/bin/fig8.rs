//! Figure 8: empirical relative error of the **second frequency moment of
//! `lineitem.l_orderkey`** (mini TPC-H) as a function of the without-
//! replacement sampling rate — the self-join side of the online-aggregation
//! experiment.
//!
//! ```text
//! cargo run --release -p sss-bench --bin fig8 \
//!     [--scale=0.05] [--buckets=5000] [--reps=25] [--seed=14]
//! ```

use sss_bench::experiments::{wor_sjs_sweep, WorSweep};
use sss_bench::{arg, banner};

fn main() {
    let cfg = WorSweep {
        scale: arg("scale", 0.05),
        buckets: arg("buckets", 5_000),
        reps: arg("reps", 25),
        rates: vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
        seed: arg("seed", 14),
    };
    banner(
        "fig8",
        "F₂(lineitem.l_orderkey) error vs WOR sampling rate (mini TPC-H)",
        &[
            ("scale", cfg.scale.to_string()),
            ("buckets", cfg.buckets.to_string()),
            ("reps", cfg.reps.to_string()),
        ],
    );
    println!("rate,relative_error");
    for (rate, err) in wor_sjs_sweep(&cfg) {
        println!("{rate},{err:.6}");
    }
}
