//! Acceptance measurement for the heavy-hitters layer: top-k precision
//! and recall from a Bernoulli-sampled Zipf stream, for both summary
//! backends, across sampling rates — plus the memory the summary held.
//!
//! The issue's gate: on Zipf(1.2) over a 100k-key domain, the sampled
//! Count-Sketch tracker at `p = 0.1` must recover at least 90% of the
//! exact top-50 while holding O(k + sketch) counters. The process exits
//! nonzero if that row misses the floor, making the binary a CI
//! acceptance gate, not just a report.
//!
//! ```text
//! cargo run --release -p sss-bench --bin heavy_hitters \
//!     [--tuples=2000000] [--domain=100000] [--skew=1.2] [--k=50] [--seed=9]
//! ```
//!
//! Prints CSV (`backend,p,k,recall,precision,mean_rel_err,counters`);
//! precision and recall coincide when both sets have exactly `k` members,
//! but are reported separately because `MisraGries` can return fewer than
//! `k` candidates at harsh sampling rates.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::{arg, banner};
use sss_core::{Estimate, Sampled};
use sss_datagen::ZipfGenerator;
use sss_sketch::{FagmsSchema, HeavyHitters};

/// The sketch geometry every Count-Sketch row uses: 5 rows (median) of
/// 4096 buckets, the same shape as the library example.
const DEPTH: usize = 5;
const WIDTH: usize = 4096;

struct Row {
    backend: &'static str,
    p: f64,
    recall: f64,
    precision: f64,
    mean_rel_err: f64,
    counters: usize,
}

fn score(
    backend: &'static str,
    p: f64,
    top: &[(u64, Estimate)],
    exact: &[(u64, i64)],
    counters: usize,
) -> Row {
    let true_top: HashSet<u64> = exact.iter().map(|&(key, _)| key).collect();
    let truth: std::collections::HashMap<u64, i64> = exact.iter().copied().collect();
    let hits = top.iter().filter(|(key, _)| true_top.contains(key)).count();
    let errs: Vec<f64> = top
        .iter()
        .filter_map(|(key, est)| {
            truth
                .get(key)
                .map(|&t| ((est.value - t as f64) / t as f64).abs())
        })
        .collect();
    Row {
        backend,
        p,
        recall: hits as f64 / true_top.len().max(1) as f64,
        precision: hits as f64 / top.len().max(1) as f64,
        mean_rel_err: errs.iter().sum::<f64>() / errs.len().max(1) as f64,
        counters,
    }
}

fn main() {
    let tuples: usize = arg("tuples", 2_000_000);
    let domain: usize = arg("domain", 100_000);
    let skew: f64 = arg("skew", 1.2);
    let k: usize = arg("k", 50);
    let seed: u64 = arg("seed", 9);
    banner(
        "heavy_hitters",
        "sampled top-k precision/recall vs sampling rate (acceptance: count_sketch p=0.1 recall >= 0.9)",
        &[
            ("tuples", tuples.to_string()),
            ("domain", domain.to_string()),
            ("skew", skew.to_string()),
            ("k", k.to_string()),
            ("sketch", format!("{DEPTH}x{WIDTH}")),
            ("capacity", (4 * k).to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let stream = ZipfGenerator::new(domain, skew).relation(tuples, &mut rng);
    let exact = sss_exact_top(&stream, k);

    println!("backend,p,k,recall,precision,mean_rel_err,counters");
    let mut rows = Vec::new();
    for p in [1.0, 0.5, 0.1, 0.01] {
        let schema: FagmsSchema = FagmsSchema::new(DEPTH, WIDTH, &mut rng);
        let mut cs = Sampled::count_sketch(&schema, 4 * k, p, &mut rng).unwrap();
        cs.feed_batch(&stream);
        rows.push(score(
            "count_sketch",
            p,
            &cs.top_k(k),
            &exact,
            cs.summary().counters(),
        ));

        let mut mg = Sampled::misra_gries(4 * k, p, &mut rng).unwrap();
        mg.feed_batch(&stream);
        rows.push(score(
            "misra_gries",
            p,
            &mg.top_k(k),
            &exact,
            mg.summary().counters(),
        ));
    }

    let mut failed = false;
    for r in &rows {
        println!(
            "{},{},{k},{:.4},{:.4},{:.4},{}",
            r.backend, r.p, r.recall, r.precision, r.mean_rel_err, r.counters
        );
        if r.backend == "count_sketch" && (r.p - 0.1).abs() < 1e-9 && r.recall < 0.9 {
            eprintln!(
                "FAIL count_sketch p=0.1: top-{k} recall {:.4} < 0.9",
                r.recall
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("# count_sketch p=0.1 recall at or above the 0.9 acceptance floor");
}

/// Exact top-`k` (count-descending, key-ascending ties) via one hash pass.
fn sss_exact_top(stream: &[u64], k: usize) -> Vec<(u64, i64)> {
    let mut counts = std::collections::HashMap::new();
    for &key in stream {
        *counts.entry(key).or_insert(0i64) += 1;
    }
    let mut all: Vec<(u64, i64)> = counts.into_iter().collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}
