//! Acceptance measurement for the one-pass multi-summary engine: one
//! `Sampled<MultiSummary>` pass through the sharded runtime vs four
//! separate single-summary passes (join / top-k / distinct / quantiles),
//! on a Bernoulli-sampled Zipf stream.
//!
//! The issue's gate: at the sampled rates (`p = 0.05`, `p = 0.1`) the
//! one-pass engine must ingest at **at least 2×** the effective
//! tuples/sec of running the four passes back to back — the whole point
//! of the composite is that the stream is consumed (and skip-sampled)
//! once instead of four times. At `p = 1` every tuple pays full sketch
//! work in both arrangements, so the ratio is reported but not gated.
//! The process exits nonzero if a gated row misses the floor.
//!
//! **Each pass consumes the stream from its source.** A data stream
//! cannot be rewound — that is the premise of the whole paper — so the
//! four-pass alternative must re-acquire every tuple from the source,
//! paying the source's per-tuple cost again. Here the source is the Zipf
//! generator itself, re-seeded identically per pass (every pass sees the
//! exact same tuple sequence); materializing the 2M-tuple stream into a
//! buffer first would smuggle in exactly the unbounded-memory assumption
//! streams forbid. The exact ground truth is computed from one buffered
//! replay outside the timed region.
//!
//! Accuracy is reported for *both* arrangements at every rate so the
//! speed-up is visibly not bought with estimation quality: F₂ and F₀
//! relative error, exact-top-k recall, and the absolute rank deviation of
//! the reported median and p99.
//!
//! ```text
//! cargo run --release -p sss-bench --bin multi_summary \
//!     [--tuples=2000000] [--domain=100000] [--skew=1.2] [--k=50] \
//!     [--shards=2] [--seed=11] [--reps=6]
//! ```
//!
//! Prints CSV
//! (`mode,p,tuples_per_sec,f2_rel_err,f0_rel_err,topk_recall,median_rank_err,p99_rank_err`).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::{arg, banner};
use sss_core::sketch::JoinSchema;
use sss_core::{MultiSpec, Sampled, Summary};
use sss_datagen::ZipfGenerator;
use sss_sketch::FagmsSchema;
use sss_stream::{RuntimeConfig, ShardedRuntime};

/// Batch size for runtime ingestion — the "~512-tuple batches" of the
/// acceptance criterion.
const BATCH: usize = 512;

/// Join sketch geometry (depth 3, the library/CLI default — enough rows
/// for a robust median; power-of-two width keeps the bucket dispatch on
/// the magic-number path).
const DEPTH: usize = 3;
const WIDTH: usize = 4096;

/// Count-Sketch top-k geometry. Depth 3 like the join sketch; the wider
/// rows (vs the heavy_hitters bin's 5×2048) buy back the admission
/// accuracy a shallower median costs, at no per-tuple price — update
/// cost scales with depth, width only with memory.
const TOPK_DEPTH: usize = 3;
const TOPK_WIDTH: usize = 4096;

/// Exact stream statistics the estimates are scored against.
struct Exact {
    f2: f64,
    f0: f64,
    top: HashSet<u64>,
    sorted: Vec<u64>,
}

impl Exact {
    fn compute(stream: &[u64], k: usize) -> Self {
        let mut counts: HashMap<u64, i64> = HashMap::new();
        for &key in stream {
            *counts.entry(key).or_insert(0) += 1;
        }
        let f2 = counts.values().map(|&c| (c as f64) * (c as f64)).sum();
        let f0 = counts.len() as f64;
        let mut all: Vec<(u64, i64)> = counts.into_iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        let mut sorted = stream.to_vec();
        sorted.sort_unstable();
        Self {
            f2,
            f0,
            top: all.into_iter().map(|(key, _)| key).collect(),
            sorted,
        }
    }

    /// Normalized exact rank of `value` (fraction of tuples strictly
    /// below it).
    fn rank(&self, value: f64) -> f64 {
        let below = self.sorted.partition_point(|&x| (x as f64) < value);
        below as f64 / self.sorted.len() as f64
    }
}

/// Per-shard prototypes with decorrelated skip RNGs — cloning one
/// prototype across shards would replay identical skip sequences and
/// bias the cross-shard estimates.
fn protos<S: Summary>(proto: &Sampled<S>, shards: usize, rng: &mut StdRng) -> Vec<Sampled<S>> {
    (0..shards)
        .map(|_| {
            let mut p = proto.clone();
            p.reseed(rng).expect("reseed");
            p
        })
        .collect()
}

/// One full pass: stream `tuples` Zipf samples from a freshly re-seeded
/// source (same `stream_seed` ⇒ same tuple sequence every pass) through a
/// sharded runtime in `BATCH`-sized chunks; returns the merged summary
/// plus wall-clock seconds (source through final merge).
///
/// Callers repeat whole *protocols* (the one-pass run, or the four passes
/// back to back) and keep each protocol's minimum wall time — the standard
/// noise filter for sub-second timings (scheduler interference only ever
/// adds time), applied symmetrically to both arrangements.
fn run_pass<E: Summary>(
    prototypes: &[E],
    gen: &ZipfGenerator,
    stream_seed: u64,
    tuples: usize,
    shards: usize,
) -> (E, f64) {
    let config = RuntimeConfig {
        shards,
        ..Default::default()
    };
    let mut rt = ShardedRuntime::new_per_shard(config, prototypes.to_vec()).expect("runtime");
    let mut source = StdRng::seed_from_u64(stream_seed);
    let mut buf = Vec::with_capacity(BATCH);
    let start = Instant::now();
    let mut remaining = tuples;
    while remaining > 0 {
        let n = remaining.min(BATCH);
        buf.clear();
        buf.extend((0..n).map(|_| gen.sample(&mut source)));
        rt.push(&buf).expect("push");
        remaining -= n;
    }
    let merged = rt.into_merged().expect("merge");
    (merged, start.elapsed().as_secs_f64())
}

struct Row {
    mode: &'static str,
    p: f64,
    tuples_per_sec: f64,
    f2_rel_err: f64,
    f0_rel_err: f64,
    topk_recall: f64,
    median_rank_err: f64,
    p99_rank_err: f64,
}

#[allow(clippy::too_many_arguments)]
fn score(
    mode: &'static str,
    p: f64,
    secs: f64,
    tuples: usize,
    exact: &Exact,
    f2: f64,
    f0: f64,
    top: &[(u64, sss_core::Estimate)],
    median: f64,
    p99: f64,
) -> Row {
    let hits = top
        .iter()
        .filter(|(key, _)| exact.top.contains(key))
        .count();
    Row {
        mode,
        p,
        tuples_per_sec: tuples as f64 / secs,
        f2_rel_err: (f2 - exact.f2).abs() / exact.f2,
        f0_rel_err: (f0 - exact.f0).abs() / exact.f0,
        topk_recall: hits as f64 / exact.top.len().max(1) as f64,
        median_rank_err: (exact.rank(median) - 0.5).abs(),
        p99_rank_err: (exact.rank(p99) - 0.99).abs(),
    }
}

fn main() {
    let tuples: usize = arg("tuples", 2_000_000);
    let domain: usize = arg("domain", 100_000);
    let skew: f64 = arg("skew", 1.2);
    let k: usize = arg("k", 50);
    // Two shards by default: the per-shard summary working set (join rows
    // + top-k sketch + candidates) is a few hundred KB, and on small hosts
    // more shards just thrash whatever cache level they share. Both
    // arrangements use the same count, so the comparison is unaffected.
    let shards: usize = arg("shards", 2);
    let seed: u64 = arg("seed", 11);
    let reps: usize = arg("reps", 6);
    banner(
        "multi_summary",
        "one-pass Sampled<MultiSummary> vs four single-summary passes (acceptance: >= 2x tuples/s at p < 1)",
        &[
            ("tuples", tuples.to_string()),
            ("domain", domain.to_string()),
            ("skew", skew.to_string()),
            ("k", k.to_string()),
            ("shards", shards.to_string()),
            ("batch", BATCH.to_string()),
            ("join", format!("fagms {DEPTH}x{WIDTH}")),
            ("topk", format!("fagms {TOPK_DEPTH}x{TOPK_WIDTH}, {} candidates", 4 * k)),
            ("reps", reps.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let gen = ZipfGenerator::new(domain, skew);
    // The passes stream from `stream_seed`; ground truth replays it into
    // a buffer once, outside any timed region.
    let stream_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let stream = gen.relation(tuples, &mut StdRng::seed_from_u64(stream_seed));
    let exact = Exact::compute(&stream, k);
    drop(stream);

    println!(
        "mode,p,tuples_per_sec,f2_rel_err,f0_rel_err,topk_recall,median_rank_err,p99_rank_err"
    );
    let mut failed = false;
    for p in [0.05, 0.1, 1.0] {
        let join_schema = JoinSchema::fagms(DEPTH, WIDTH, &mut rng);
        let topk_schema: FagmsSchema = FagmsSchema::new(TOPK_DEPTH, TOPK_WIDTH, &mut rng);
        let spec = MultiSpec::new(join_schema.clone(), &mut rng).top_k(topk_schema.clone(), 4 * k);

        let one_proto = spec.sampled(p, &mut rng).expect("spec");
        let one_protos = protos(&one_proto, shards, &mut rng);
        // Four passes: each query family consumes the (re-seeded, hence
        // identical) stream separately, with the *same* geometries — only
        // the number of source consumptions differs.
        let join_proto = Sampled::new(join_schema.sketch(), p, &mut rng).expect("join");
        let join_protos = protos(&join_proto, shards, &mut rng);
        let topk_proto = Sampled::count_sketch(&topk_schema, 4 * k, p, &mut rng).expect("topk");
        let topk_protos = protos(&topk_proto, shards, &mut rng);
        let hll_proto = Sampled::hyperloglog(12, p, &mut rng).expect("hll");
        let hll_protos = protos(&hll_proto, shards, &mut rng);
        let kll_proto = Sampled::kll(200, p, &mut rng).expect("kll");
        let kll_protos = protos(&kll_proto, shards, &mut rng);

        // A rep runs BOTH protocols back to back — the one-pass composite
        // run, then the whole four-pass sequence — and each protocol's
        // fastest rep counts. Interleaving pairs the measurements in time:
        // sustained background load (a single-core host shares the CPU
        // with everything) degrades the two arrangements in the same reps
        // instead of landing entirely on whichever block ran during the
        // disturbance, so the *ratio* is far more stable than with
        // block-at-a-time timing. The minimum is the standard noise filter
        // for sub-second timings (interference only ever adds time),
        // applied symmetrically to both protocols.
        let mut one_secs = f64::INFINITY;
        let mut four_secs = f64::INFINITY;
        let mut one = None;
        let mut four = None;
        for _ in 0..reps {
            let (merged, secs) = run_pass(&one_protos, &gen, stream_seed, tuples, shards);
            one_secs = one_secs.min(secs);
            // Identical seeds per rep ⇒ identical merged summaries.
            one = Some(merged);

            let (join, t_join) = run_pass(&join_protos, &gen, stream_seed, tuples, shards);
            let (topk, t_topk) = run_pass(&topk_protos, &gen, stream_seed, tuples, shards);
            let (hll, t_hll) = run_pass(&hll_protos, &gen, stream_seed, tuples, shards);
            let (kll, t_kll) = run_pass(&kll_protos, &gen, stream_seed, tuples, shards);
            four_secs = four_secs.min(t_join + t_topk + t_hll + t_kll);
            four = Some((join, topk, hll, kll));
        }
        let one = one.expect("at least one rep");
        let (join, topk, hll, kll) = four.expect("at least one rep");

        let rows = [
            score(
                "one_pass",
                p,
                one_secs,
                tuples,
                &exact,
                one.self_join(),
                one.distinct(),
                &one.top_k(k),
                one.quantile(0.5).expect("median"),
                one.quantile(0.99).expect("p99"),
            ),
            score(
                "four_passes",
                p,
                four_secs,
                tuples,
                &exact,
                join.self_join(),
                hll.distinct(),
                &topk.top_k(k),
                kll.quantile(0.5).expect("median"),
                kll.quantile(0.99).expect("p99"),
            ),
        ];
        for r in &rows {
            println!(
                "{},{},{:.0},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.mode,
                r.p,
                r.tuples_per_sec,
                r.f2_rel_err,
                r.f0_rel_err,
                r.topk_recall,
                r.median_rank_err,
                r.p99_rank_err
            );
        }

        let speedup = four_secs / one_secs;
        if p < 1.0 && speedup < 2.0 {
            eprintln!("FAIL p={p}: one-pass speedup {speedup:.2}x < 2x over four passes");
            failed = true;
        } else {
            eprintln!("# p={p}: one-pass {speedup:.2}x the four-pass throughput");
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("# one-pass at or above the 2x acceptance floor at every sampled rate");
}
