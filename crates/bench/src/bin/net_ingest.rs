//! Acceptance measurement for the network ingest service: wire ingest
//! throughput vs connection count, with query latency under ingest.
//!
//! Two replica modes are measured (the `mode` CSV column):
//!
//! * `at_all_times` — `max_pending = 0`: every query quiesces the shard
//!   rings before answering, so each under-ingest query pays the full
//!   snapshot barrier. Maximum freshness, worst-case latency.
//! * `budget` — `max_pending = --budget` accepted batches: queries are
//!   served from the cached slim frame (with honestly widened error
//!   bars) until the staleness budget is exceeded, so under-ingest
//!   latency stays within a small factor of the idle baseline.
//!
//! For each (mode, connection count) point a **fresh server** is
//! started on ephemeral loopback ports and driven with the same fixed
//! total workload, split evenly across connections, twice:
//!
//! 1. a warm-up wave that populates the shard recycle rings (and pins
//!    down the pool's steady-state allocation count), then
//! 2. a measured wave, during which a query thread hammers the query
//!    plane with `self_join` requests to sample the
//!    queries-under-ingest latency distribution.
//!
//! After the measured wave the **zero-allocation invariant** is
//! asserted: in `at_all_times` mode the pool's allocation count must
//! not have moved at all between the waves; in `budget` mode (where no
//! query barrier periodically drains the rings, so the instantaneous
//! buffer demand wanders) growth must stay under the pool's in-flight
//! capacity `shards × (queue_depth + 4)` — either way, allocations are
//! bounded by the pool geometry, never by the number of wire batches.
//! A post-ingest query burst then gives the no-ingest latency baseline,
//! and the server's merged result is checked against the exact
//! self-join of the (deterministic) generated streams.
//!
//! ```text
//! cargo run --release -p sss-bench --bin net_ingest \
//!     [--total-tuples=2000000] [--batch=512] [--domain=10000] \
//!     [--shards=2] [--queue=64] [--seed=7] [--budget=64]
//! ```
//!
//! Prints CSV (`mode,connections,tuples_per_sec,min_conn_tps,
//! max_conn_tps,pool_allocations,pool_alloc_growth,pool_reuses,
//! q_ingest_p50_us,q_ingest_p99_us,q_idle_p50_us,q_idle_p99_us,
//! queries_under_ingest`). The recorded numbers live in
//! BENCH_net_ingest.json.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::{arg, banner};
use sss_core::sketch::JoinSchema;
use sss_core::{JoinQuery, MultiSpec};
use sss_net::{self as net, QueryClient, RunningServer, ServerConfig};
use sss_stream::runtime::RuntimeConfig;
use sss_stream::Partition;

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct Point {
    mode: &'static str,
    connections: usize,
    tuples_per_sec: f64,
    min_conn_tps: f64,
    max_conn_tps: f64,
    pool_allocations: u64,
    pool_alloc_growth: u64,
    pool_reuses: u64,
    q_ingest_p50_us: f64,
    q_ingest_p99_us: f64,
    q_idle_p50_us: f64,
    q_idle_p99_us: f64,
    queries_under_ingest: usize,
}

struct PointConfig {
    mode: &'static str,
    max_pending: u64,
    connections: usize,
    total_tuples: u64,
    batch: usize,
    domain: u64,
    shards: usize,
    queue_depth: usize,
    seed: u64,
    idle_queries: usize,
}

fn measure(cfg: &PointConfig) -> Point {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let spec = MultiSpec::new(JoinSchema::fagms(3, 5000, &mut rng), &mut rng);
    let srv = RunningServer::start(
        ServerConfig {
            runtime: RuntimeConfig {
                shards: cfg.shards,
                queue_depth: cfg.queue_depth,
                partition: Partition::RoundRobin,
            },
            max_pending: cfg.max_pending,
            ..ServerConfig::default()
        },
        &spec,
    )
    .expect("server starts");

    let load = net::LoadConfig {
        connections: cfg.connections,
        tuples_per_connection: cfg.total_tuples / cfg.connections as u64,
        batch: cfg.batch,
        domain: cfg.domain,
        seed: cfg.seed,
    };

    // Warm-up wave: fill the recycle rings to steady state. Every
    // buffer the wire path should ever need is allocated here.
    net::run_load(srv.ingest_addr(), &load).expect("warm-up wave");
    let allocations_after_warmup = srv.stats().pool_stats().allocations;

    // Measured wave, with a query thread sampling latency under ingest
    // on its own replica connection.
    let stop = Arc::new(AtomicBool::new(false));
    let query_addr = srv.query_addr();
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Vec<f64> {
            let mut client = QueryClient::connect(query_addr).expect("query connect");
            let mut lat = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let t = Instant::now();
                client
                    .request("{\"cmd\":\"self_join\"}")
                    .expect("query under ingest");
                lat.push(t.elapsed().as_secs_f64() * 1e6);
            }
            lat
        })
    };
    let report = net::run_load(srv.ingest_addr(), &load).expect("measured wave");
    stop.store(true, Ordering::Relaxed);
    let mut under_ingest = sampler.join().expect("sampler thread");

    // The allocation invariant: the measured wave's buffer demand is
    // bounded by the pool geometry, never by the number of batches.
    let pool = srv.stats().pool_stats();
    let growth = pool.allocations - allocations_after_warmup;
    let capacity_bound = (cfg.shards * (cfg.queue_depth + 4)) as u64;
    assert!(
        growth <= capacity_bound,
        "pool grew by {growth} buffers over a {}-batch wave (capacity bound {capacity_bound})",
        cfg.total_tuples / cfg.batch as u64
    );
    if cfg.max_pending == 0 {
        assert_eq!(
            growth, 0,
            "at-all-times mode must not allocate batch buffers past warm-up \
             ({} connections: {} allocations after warm-up, {} after measured wave)",
            cfg.connections, allocations_after_warmup, pool.allocations
        );
    }

    // No-ingest baseline on the same (now idle) server.
    let mut client = QueryClient::connect(query_addr).expect("query connect");
    let mut idle = Vec::new();
    for _ in 0..cfg.idle_queries {
        let t = Instant::now();
        client
            .request("{\"cmd\":\"self_join\"}")
            .expect("idle query");
        idle.push(t.elapsed().as_secs_f64() * 1e6);
    }

    // Correctness gate: the merged result covers the exact self-join of
    // the generated streams (both waves sent the same keys, hence the
    // count of 2 per occurrence).
    let mut exact = sss_exact::ExactAggregator::new();
    for conn in 0..cfg.connections as u64 {
        for index in 0..load.tuples_per_connection {
            exact.update(net::synth_key(cfg.seed, conn, index, cfg.domain), 2);
        }
    }
    let truth = exact.self_join();
    let merged = srv.shutdown_and_wait().expect("shutdown");
    let est = merged.self_join_estimate();
    let half_width = est.chebyshev(0.99).expect("valid level").half_width();
    assert!(
        (est.value - truth).abs() <= half_width,
        "merged estimate {} ± {half_width} excludes exact {truth}",
        est.value
    );

    under_ingest.sort_by(f64::total_cmp);
    idle.sort_by(f64::total_cmp);
    let min_conn_tps = report
        .per_connection_tps
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max_conn_tps = report
        .per_connection_tps
        .iter()
        .copied()
        .fold(0.0, f64::max);
    Point {
        mode: cfg.mode,
        connections: cfg.connections,
        tuples_per_sec: report.tuples_per_sec,
        min_conn_tps,
        max_conn_tps,
        pool_allocations: pool.allocations,
        pool_alloc_growth: growth,
        pool_reuses: pool.reuses,
        q_ingest_p50_us: percentile_us(&under_ingest, 0.50),
        q_ingest_p99_us: percentile_us(&under_ingest, 0.99),
        q_idle_p50_us: percentile_us(&idle, 0.50),
        q_idle_p99_us: percentile_us(&idle, 0.99),
        queries_under_ingest: under_ingest.len(),
    }
}

fn main() {
    let total_tuples: u64 = arg("total-tuples", 2_000_000);
    let batch: usize = arg("batch", 512);
    let domain: u64 = arg("domain", 10_000);
    let shards: usize = arg("shards", 2);
    let queue_depth: usize = arg("queue", 64);
    let seed: u64 = arg("seed", 7);
    // Default staleness budget: one full wave of batches, i.e. "serve
    // from the slim frame for the whole burst" — the configuration the
    // query-latency acceptance criterion is stated for.
    let budget: u64 = arg("budget", total_tuples / batch as u64);
    let idle_queries: usize = arg("idle-queries", 200);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "net_ingest",
        "wire ingest throughput vs connection count (pool allocation bound asserted)",
        &[
            ("total-tuples", total_tuples.to_string()),
            ("batch", batch.to_string()),
            ("domain", domain.to_string()),
            ("shards", shards.to_string()),
            ("queue", queue_depth.to_string()),
            ("seed", seed.to_string()),
            ("budget", budget.to_string()),
            ("host_parallelism", parallelism.to_string()),
        ],
    );

    let mut points = Vec::new();
    for (mode, max_pending) in [("at_all_times", 0), ("budget", budget)] {
        for connections in [1usize, 2, 4, 8, 16] {
            points.push(measure(&PointConfig {
                mode,
                max_pending,
                connections,
                total_tuples,
                batch,
                domain,
                shards,
                queue_depth,
                seed,
                idle_queries,
            }));
        }
    }

    println!(
        "mode,connections,tuples_per_sec,min_conn_tps,max_conn_tps,pool_allocations,\
         pool_alloc_growth,pool_reuses,q_ingest_p50_us,q_ingest_p99_us,q_idle_p50_us,\
         q_idle_p99_us,queries_under_ingest"
    );
    for pt in &points {
        println!(
            "{},{},{:.0},{:.0},{:.0},{},{},{},{:.1},{:.1},{:.1},{:.1},{}",
            pt.mode,
            pt.connections,
            pt.tuples_per_sec,
            pt.min_conn_tps,
            pt.max_conn_tps,
            pt.pool_allocations,
            pt.pool_alloc_growth,
            pt.pool_reuses,
            pt.q_ingest_p50_us,
            pt.q_ingest_p99_us,
            pt.q_idle_p50_us,
            pt.q_idle_p99_us,
            pt.queries_under_ingest
        );
    }
    for mode in ["at_all_times", "budget"] {
        let series: Vec<&Point> = points.iter().filter(|pt| pt.mode == mode).collect();
        let best = series
            .iter()
            .max_by(|a, b| a.tuples_per_sec.total_cmp(&b.tuples_per_sec))
            .expect("series is non-empty");
        let worst_ratio = series
            .iter()
            .map(|pt| pt.q_ingest_p99_us / pt.q_idle_p99_us.max(1e-9))
            .fold(0.0f64, f64::max);
        eprintln!(
            "# {mode}: best {:.2}Mtps at {} connections ({:.2}x vs 1 connection); \
             worst under-ingest/idle p99 ratio {worst_ratio:.1}x",
            best.tuples_per_sec / 1e6,
            best.connections,
            best.tuples_per_sec / series[0].tuples_per_sec
        );
    }
}
