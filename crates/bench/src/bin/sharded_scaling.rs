//! Acceptance measurement for the sharded streaming runtime: ingest
//! throughput at 1/2/4/8 shards.
//!
//! Drives the shared [`sharded_scaling`] procedure: the same stream is
//! pushed through a [`sss_stream::ShardedRuntime`] at each shard count,
//! once with a plain F-AGMS sink (`cpu_bound`) and once with a
//! [`PacedSketch`](sss_bench::experiments::PacedSketch) sink paying a
//! fixed per-batch latency (`latency_bound`). Every merged result is
//! asserted bit-identical to the sequential sketch before a number is
//! printed. CPU-bound scaling is capped by the host's cores;
//! latency-bound scaling is not (worker sleeps overlap), so the second
//! series shows the runtime's scaling even on a one-core host.
//!
//! ```text
//! cargo run --release -p sss-bench --bin sharded_scaling \
//!     [--tuples=2000000] [--batch=4096] [--queue=8] [--buckets=1024] \
//!     [--pause-us=150] [--seed=12]
//! ```
//!
//! Prints CSV (`workload,shards,tuples_per_sec,speedup,
//! gauge_tuples_per_sec,queue_high_water`): the end-to-end measurement,
//! the runtime's own merged ingest gauge
//! ([`sss_stream::ShardedRuntime::tuples_per_sec`]), and the queue
//! high-water mark. A second `queries_under_ingest` series then compares
//! repeated at-all-times `merged()` bursts against the pre-cache full
//! snapshot barrier (every answer asserted bit-identical to the
//! sequential prefix). The recorded numbers live in
//! BENCH_sharded_runtime.json.

use sss_bench::experiments::{
    queries_under_ingest, sharded_scaling, QueriesUnderIngestConfig, ShardedScalingConfig,
};
use sss_bench::{arg, banner};

fn main() {
    let tuples: usize = arg("tuples", 2_000_000);
    let batch: usize = arg("batch", 4_096);
    let queue_depth: usize = arg("queue", 8);
    let buckets: usize = arg("buckets", 1_024);
    let pause_us: u64 = arg("pause-us", 150);
    let seed: u64 = arg("seed", 12);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(
        "sharded_scaling",
        "sharded-runtime ingest throughput vs shard count (merged result bit-identical)",
        &[
            ("tuples", tuples.to_string()),
            ("batch", batch.to_string()),
            ("queue", queue_depth.to_string()),
            ("buckets", buckets.to_string()),
            ("pause-us", pause_us.to_string()),
            ("seed", seed.to_string()),
            ("host_parallelism", parallelism.to_string()),
        ],
    );
    let cfg = ShardedScalingConfig {
        tuples,
        domain: 10_000,
        buckets,
        batch,
        queue_depth,
        shard_counts: vec![1, 2, 4, 8],
        pause_us,
        seed,
    };
    let points = sharded_scaling(&cfg);
    println!("workload,shards,tuples_per_sec,speedup,gauge_tuples_per_sec,queue_high_water");
    for pt in &points {
        println!(
            "{},{},{:.0},{:.3},{:.0},{}",
            pt.workload,
            pt.shards,
            pt.tuples_per_sec,
            pt.speedup,
            pt.gauge_tuples_per_sec,
            pt.queue_high_water
        );
    }
    for workload in ["cpu_bound", "latency_bound"] {
        let best = points
            .iter()
            .filter(|pt| pt.workload == workload)
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("series is non-empty");
        eprintln!(
            "# {workload}: best {:.2}x at {} shards",
            best.speedup, best.shards
        );
    }

    let checkpoints: usize = arg("checkpoints", 16);
    let queries_per_burst: usize = arg("queries-per-burst", 32);
    let qcfg = QueriesUnderIngestConfig {
        tuples,
        domain: 10_000,
        buckets,
        batch,
        queue_depth,
        shards: 8,
        checkpoints,
        queries_per_burst,
        seed,
    };
    let qpoints = queries_under_ingest(&qcfg);
    println!();
    println!(
        "mode,queries,first_query_us,repeat_query_us,mean_query_us,total_query_secs,\
         ingest_tuples_per_sec,cache_hits,shards_refreshed"
    );
    for pt in &qpoints {
        println!(
            "{},{},{:.2},{:.2},{:.2},{:.4},{:.0},{},{}",
            pt.mode,
            pt.queries,
            pt.first_query_us,
            pt.repeat_query_us,
            pt.mean_query_us,
            pt.total_query_secs,
            pt.ingest_tuples_per_sec,
            pt.cache_hits,
            pt.shards_refreshed
        );
    }
    let cached = &qpoints[0];
    let barrier = &qpoints[1];
    eprintln!(
        "# queries_under_ingest: repeated merged() {:.1}x cheaper cached than full-barrier \
         ({:.2}us vs {:.2}us); first query of a burst pays the backlog quiesce in both modes \
         ({:.0}us vs {:.0}us)",
        barrier.repeat_query_us / cached.repeat_query_us,
        cached.repeat_query_us,
        barrier.repeat_query_us,
        cached.first_query_us,
        barrier.first_query_us
    );
}
