//! Acceptance measurement for the vectorized sign/bucket kernels: scalar
//! per-key loops vs the width-8 chunked kernels vs (when the build and the
//! host allow it) the runtime-dispatched AVX2 path, per ξ family.
//!
//! Three paths per family:
//!
//! * `scalar` — the per-key `sign()` / `bucket()` trait loop, the
//!   pre-kernel baseline;
//! * `chunked` — the fixed-width-8 array kernels
//!   (`sss_xi::kernels::*_chunked`, `Dispatch::chunked()`), which LLVM
//!   autovectorizes;
//! * `avx2` — the `std::arch` path behind `--features simd`, measured only
//!   when [`Dispatch::get()`] actually selected it (i.e. the binary was
//!   built with the feature **and** the host reports AVX2); on any other
//!   host the row is simply absent, never wrong.
//!
//! All three paths are bit-identical by construction (proptest-enforced in
//! `tests/kernel_identity.rs`); this binary measures only throughput.
//!
//! ```text
//! cargo run --release -p sss-bench --features simd --bin simd_kernels \
//!     [--batch=65536] [--reps=30] [--seed=1]
//! ```
//!
//! Prints CSV (`family,path,batch,ns_per_elem,melems_per_sec,
//! speedup_vs_scalar`); the recorded numbers live in
//! BENCH_simd_kernels.json. The acceptance bar — chunked ≥ 1.3× scalar
//! for the `cw4` sign sum at batch 64k — is checked on stderr.

use sss_bench::{arg, banner};
use sss_xi::kernels::{self, Dispatch};
use sss_xi::{BucketFamily, Cw2, Cw2Bucket, Cw4, Eh3, SignFamily, Tabulation};
use std::hint::black_box;
use std::time::Instant;

/// One measured row of the comparison.
struct Row {
    family: &'static str,
    path: &'static str,
    ns_per_elem: f64,
}

/// Best-of-`reps` nanoseconds per element for a closure that consumes the
/// whole batch once per call. The inner repeat count keeps each timed
/// region well above timer resolution; best-of cuts scheduler noise.
fn measure<F: FnMut() -> i64>(batch: usize, reps: usize, mut f: F) -> f64 {
    for _ in 0..3 {
        black_box(f());
    }
    let iters = (2_000_000 / batch).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let mut acc = 0i64;
        for _ in 0..iters {
            acc = acc.wrapping_add(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(acc);
        best = best.min(elapsed * 1e9 / (iters * batch) as f64);
    }
    best
}

fn main() {
    let batch: usize = arg("batch", 65_536);
    let reps: usize = arg("reps", 30);
    let seed: u64 = arg("seed", 1);
    let width: usize = arg("width", 1_024);
    let d = Dispatch::get();
    banner(
        "simd_kernels",
        "scalar vs chunked vs runtime-dispatched kernel throughput per xi family",
        &[
            ("batch", batch.to_string()),
            ("reps", reps.to_string()),
            ("seed", seed.to_string()),
            ("width", width.to_string()),
            ("dispatch", d.label().to_string()),
            ("accelerated", d.is_accelerated().to_string()),
        ],
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let keys: Vec<u64> = (0..batch as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut rows: Vec<Row> = Vec::new();

    // --- sign families ---------------------------------------------------
    let cw2 = Cw2::random(&mut rng);
    let cw4 = Cw4::random(&mut rng);
    let eh3 = <Eh3 as SignFamily>::random(&mut rng);
    // Tabulation implements both family traits; qualify the constructor.
    let tab = <Tabulation as SignFamily>::random(&mut rng);

    for (family, f) in [("cw2", &cw2 as &dyn PolyScalar), ("cw4", &cw4)] {
        let coeffs = f.coeffs();
        rows.push(Row {
            family,
            path: "scalar",
            ns_per_elem: measure(batch, reps, || {
                let mut acc = 0i64;
                for &k in black_box(&keys) {
                    acc += f.sign_scalar(k);
                }
                acc
            }),
        });
        rows.push(Row {
            family,
            path: "chunked",
            ns_per_elem: measure(batch, reps, || {
                kernels::sign_sum_chunked(black_box(coeffs), black_box(&keys))
            }),
        });
        if d.is_accelerated() {
            rows.push(Row {
                family,
                path: d.label(),
                ns_per_elem: measure(batch, reps, || {
                    kernels::sign_sum(d, black_box(coeffs), black_box(&keys))
                }),
            });
        }
    }

    let (s0, s) = eh3.seeds();
    rows.push(Row {
        family: "eh3",
        path: "scalar",
        ns_per_elem: measure(batch, reps, || {
            let mut acc = 0i64;
            for &k in black_box(&keys) {
                acc += eh3.sign(k);
            }
            acc
        }),
    });
    rows.push(Row {
        family: "eh3",
        path: "chunked",
        ns_per_elem: measure(batch, reps, || {
            kernels::eh3_sign_sum_chunked(black_box(s0), black_box(s), black_box(&keys))
        }),
    });
    if d.is_accelerated() {
        rows.push(Row {
            family: "eh3",
            path: d.label(),
            ns_per_elem: measure(batch, reps, || {
                kernels::eh3_sign_sum(d, black_box(s0), black_box(s), black_box(&keys))
            }),
        });
    }

    rows.push(Row {
        family: "tabulation",
        path: "scalar",
        ns_per_elem: measure(batch, reps, || {
            let mut acc = 0i64;
            for &k in black_box(&keys) {
                acc += tab.sign(k);
            }
            acc
        }),
    });
    // Tabulation has no SIMD arm (the 2 KiB tables live in L1 and beat a
    // gather); the table-major chunked kernel is its only fast path.
    rows.push(Row {
        family: "tabulation",
        path: "chunked",
        ns_per_elem: measure(batch, reps, || {
            kernels::tab_sign_sum(black_box(tab.tables()), black_box(&keys))
        }),
    });

    // --- bucket families -------------------------------------------------
    let cwb = <Cw2Bucket as BucketFamily>::random(&mut rng);
    let cwb_coeffs = cwb.poly_coeffs().expect("CW bucket family is polynomial");
    let mut out = vec![0usize; batch];
    rows.push(Row {
        family: "cw2_bucket",
        path: "scalar",
        ns_per_elem: measure(batch, reps, || {
            let mut acc = 0usize;
            for &k in black_box(&keys) {
                acc ^= cwb.bucket(k, width);
            }
            acc as i64
        }),
    });
    rows.push(Row {
        family: "cw2_bucket",
        path: "chunked",
        ns_per_elem: measure(batch, reps, || {
            kernels::bucket_batch(
                Dispatch::chunked(),
                black_box(cwb_coeffs),
                width,
                black_box(&keys),
                &mut out,
            );
            out[0] as i64
        }),
    });
    if d.is_accelerated() {
        rows.push(Row {
            family: "cw2_bucket",
            path: d.label(),
            ns_per_elem: measure(batch, reps, || {
                kernels::bucket_batch(d, black_box(cwb_coeffs), width, black_box(&keys), &mut out);
                out[0] as i64
            }),
        });
    }
    rows.push(Row {
        family: "tab_bucket",
        path: "scalar",
        ns_per_elem: measure(batch, reps, || {
            let mut acc = 0usize;
            for &k in black_box(&keys) {
                acc ^= BucketFamily::bucket(&tab, k, width);
            }
            acc as i64
        }),
    });
    rows.push(Row {
        family: "tab_bucket",
        path: "chunked",
        ns_per_elem: measure(batch, reps, || {
            kernels::tab_bucket_batch(black_box(tab.tables()), width, black_box(&keys), &mut out);
            out[0] as i64
        }),
    });

    // --- report ----------------------------------------------------------
    println!("family,path,batch,ns_per_elem,melems_per_sec,speedup_vs_scalar");
    let scalar_ns = |family: &str| {
        rows.iter()
            .find(|r| r.family == family && r.path == "scalar")
            .expect("every family has a scalar row")
            .ns_per_elem
    };
    for r in &rows {
        println!(
            "{},{},{},{:.3},{:.1},{:.2}",
            r.family,
            r.path,
            batch,
            r.ns_per_elem,
            1e3 / r.ns_per_elem,
            scalar_ns(r.family) / r.ns_per_elem
        );
    }
    let cw4_speedup = scalar_ns("cw4")
        / rows
            .iter()
            .find(|r| r.family == "cw4" && r.path == "chunked")
            .expect("cw4 chunked row")
            .ns_per_elem;
    eprintln!(
        "# acceptance: cw4 chunked sign_sum speedup {:.2}x (bar: 1.30x) -> {}",
        cw4_speedup,
        if cw4_speedup >= 1.3 { "PASS" } else { "FAIL" }
    );
}

/// Object-safe view of the polynomial sign families so the CW2/CW4 loops
/// above share code: the scalar per-key sign plus the coefficient slice.
trait PolyScalar {
    fn sign_scalar(&self, key: u64) -> i64;
    fn coeffs(&self) -> &[u64];
}

impl PolyScalar for Cw2 {
    fn sign_scalar(&self, key: u64) -> i64 {
        self.sign(key)
    }
    fn coeffs(&self) -> &[u64] {
        self.poly_coeffs().expect("CW2 is polynomial")
    }
}

impl PolyScalar for Cw4 {
    fn sign_scalar(&self, key: u64) -> i64 {
        self.sign(key)
    }
    fn coeffs(&self) -> &[u64] {
        self.poly_coeffs().expect("CW4 is polynomial")
    }
}
