//! Acceptance measurement for the two-stage slim-query read path:
//! repeated `self_join_estimate()` under sustained ingest, slim read
//! replicas versus the fat snapshot-clone baseline.
//!
//! Three series, recorded in BENCH_slim_replica.json:
//!
//! * **queries_under_ingest** — an ingest thread pushes batches through a
//!   [`sss_stream::ShardedRuntime`] non-stop while N query threads hammer
//!   `self_join_estimate()`. The *fat* baseline answers through
//!   `QueryHandle::merged()` (per-query dirty-shard clone + merge, the
//!   pre-replica path); the *slim* series answers from
//!   [`sss_stream::ReadReplica`]s with a staleness budget, where at most
//!   one reader per version pays the fat merge + slim projection and
//!   everyone else decodes the shared frame bytes.
//! * **bytes_per_replica** — `encode()`d size of the fat sketch versus
//!   its slim projection at several sketch geometries.
//! * **accuracy_monte_carlo** — independently seeded sketches of the
//!   same stream: the slim projection's answer is asserted bit-identical
//!   to the fat sketch's at projection time, and both are scored against
//!   the exact self-join, so "equal measured accuracy" is a checked
//!   property, not an assumption.
//!
//! ```text
//! cargo run --release -p sss-bench --bin slim_replica \
//!     [--tuples=2000000] [--batch=4096] [--shards=4] [--threads=4] \
//!     [--depth=3] [--width=1024] [--domain=10000] [--duration-ms=2000] \
//!     [--max-pending=64] [--mc-runs=20] [--seed=12]
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_bench::{arg, banner};
use sss_core::sketch::{JoinSchema, JoinSketch};
use sss_core::{JoinQuery, Portable, SlimQuery};
use sss_stream::{Partition, QueryHandle, RuntimeConfig, ShardedRuntime};

fn stream(tuples: usize, domain: u64) -> Vec<u64> {
    (0..tuples as u64)
        .map(|i| (i * 2654435761) % domain)
        .collect()
}

fn exact_self_join(keys: &[u64]) -> f64 {
    let mut freq: HashMap<u64, u64> = HashMap::new();
    for &k in keys {
        *freq.entry(k).or_insert(0) += 1;
    }
    freq.values().map(|&f| (f as f64) * (f as f64)).sum()
}

enum ReadPath {
    /// Per-query fat snapshot: `merged()` clone + merge of dirty shards.
    Fat,
    /// Slim replica with the given accepted-batch staleness budget.
    Slim { max_pending: u64 },
}

/// One query thread's loop: answer as many `self_join_estimate()`s as
/// possible until the deadline, return the count.
fn query_loop(handle: QueryHandle<JoinSketch>, path: &ReadPath, deadline: Instant) -> u64 {
    let mut queries = 0u64;
    match path {
        ReadPath::Fat => {
            while Instant::now() < deadline {
                let est = handle.self_join_estimate().expect("fat query");
                std::hint::black_box(est.value);
                queries += 1;
            }
        }
        ReadPath::Slim { max_pending } => {
            let mut replica = handle.read_replica(*max_pending).expect("open replica");
            while Instant::now() < deadline {
                let est = replica.self_join_estimate().expect("slim query");
                std::hint::black_box(est.value);
                queries += 1;
            }
        }
    }
    queries
}

/// Run one read path for `duration` under sustained ingest; returns
/// (total queries, queries/s, ingest tuples/s sustained meanwhile).
fn queries_under_ingest(
    path: &ReadPath,
    shards: usize,
    threads: usize,
    keys: &[u64],
    batch: usize,
    duration: Duration,
    seed: u64,
) -> (u64, f64, f64) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let schema = JoinSchema::fagms(arg("depth", 3), arg("width", 1_024), &mut rng);
    let config = RuntimeConfig {
        shards,
        queue_depth: 8,
        partition: Partition::RoundRobin,
    };
    let mut rt = ShardedRuntime::new(config, &schema.sketch()).expect("valid config");
    // Warm start: one full pass so queries measure steady state, not an
    // empty sketch.
    for chunk in keys.chunks(batch) {
        rt.push(chunk).expect("no shard died");
    }
    let handle = rt.query_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let ingest = {
        let stop = Arc::clone(&stop);
        let keys = keys.to_vec();
        std::thread::spawn(move || {
            let started = Instant::now();
            let mut pushed = 0u64;
            'outer: loop {
                for chunk in keys.chunks(batch) {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    rt.push(chunk).expect("no shard died");
                    pushed += chunk.len() as u64;
                }
            }
            let tps = pushed as f64 / started.elapsed().as_secs_f64();
            drop(rt);
            tps
        })
    };
    let deadline = Instant::now() + duration;
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let h = handle.clone();
            let p = match path {
                ReadPath::Fat => ReadPath::Fat,
                ReadPath::Slim { max_pending } => ReadPath::Slim {
                    max_pending: *max_pending,
                },
            };
            std::thread::spawn(move || query_loop(h, &p, deadline))
        })
        .collect();
    let total: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("query thread"))
        .sum();
    stop.store(true, Ordering::Relaxed);
    let ingest_tps = ingest.join().expect("ingest thread");
    (total, total as f64 / duration.as_secs_f64(), ingest_tps)
}

fn main() {
    let tuples: usize = arg("tuples", 2_000_000);
    let batch: usize = arg("batch", 4_096);
    let shards: usize = arg("shards", 4);
    let threads: usize = arg("threads", 4);
    let depth: usize = arg("depth", 3);
    let width: usize = arg("width", 1_024);
    let domain: u64 = arg("domain", 10_000);
    let duration_ms: u64 = arg("duration-ms", 2_000);
    let max_pending: u64 = arg("max-pending", 64);
    let mc_runs: u64 = arg("mc-runs", 20);
    let seed: u64 = arg("seed", 12);
    banner(
        "slim_replica",
        "slim read replicas vs fat snapshot clones under sustained ingest",
        &[
            ("tuples", tuples.to_string()),
            ("batch", batch.to_string()),
            ("shards", shards.to_string()),
            ("threads", threads.to_string()),
            ("depth", depth.to_string()),
            ("width", width.to_string()),
            ("domain", domain.to_string()),
            ("duration-ms", duration_ms.to_string()),
            ("max-pending", max_pending.to_string()),
            ("mc-runs", mc_runs.to_string()),
            ("seed", seed.to_string()),
            (
                "host_parallelism",
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .to_string(),
            ),
        ],
    );
    let keys = stream(tuples, domain);
    let duration = Duration::from_millis(duration_ms);

    // --- queries/s under ingest ---
    println!("read_path,queries,queries_per_sec,ingest_tuples_per_sec");
    let (fat_q, fat_qps, fat_tps) = queries_under_ingest(
        &ReadPath::Fat,
        shards,
        threads,
        &keys,
        batch,
        duration,
        seed,
    );
    println!("fat,{fat_q},{fat_qps:.0},{fat_tps:.0}");
    let (slim_q, slim_qps, slim_tps) = queries_under_ingest(
        &ReadPath::Slim { max_pending },
        shards,
        threads,
        &keys,
        batch,
        duration,
        seed,
    );
    println!("slim,{slim_q},{slim_qps:.0},{slim_tps:.0}");
    println!("slim_vs_fat_queries_speedup,{:.2}", slim_qps / fat_qps);

    // --- bytes per replica ---
    println!("geometry,fat_bytes,slim_bytes,slim_fraction");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    for (d, w) in [(3usize, 1_024usize), (5, 2_048), (7, 4_096)] {
        let schema = JoinSchema::fagms(d, w, &mut rng);
        let mut fat = schema.sketch();
        fat.update_batch(&keys[..keys.len().min(200_000)]);
        let fat_bytes = fat.encode().expect("encode fat").len();
        let slim_bytes = fat.slim().encode().expect("encode slim").len();
        println!(
            "fagms_{d}x{w},{fat_bytes},{slim_bytes},{:.4}",
            slim_bytes as f64 / fat_bytes as f64
        );
    }

    // --- Monte-Carlo accuracy: slim == fat at projection time, both
    //     scored against the exact answer ---
    let mc_keys = &keys[..keys.len().min(200_000)];
    let truth = exact_self_join(mc_keys);
    let mut fat_errs = Vec::new();
    for r in 0..mc_runs {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1_000 + r);
        let schema = JoinSchema::fagms(depth, width, &mut rng);
        let mut fat = schema.sketch();
        fat.update_batch(mc_keys);
        let fat_est = fat.self_join_estimate();
        let slim_est = fat.slim().self_join_estimate();
        assert_eq!(
            slim_est.value.to_bits(),
            fat_est.value.to_bits(),
            "slim projection must be bit-identical at projection time"
        );
        assert_eq!(slim_est.variance.to_bits(), fat_est.variance.to_bits());
        fat_errs.push((fat_est.value - truth).abs() / truth);
    }
    let mean = fat_errs.iter().sum::<f64>() / fat_errs.len() as f64;
    let max = fat_errs.iter().cloned().fold(0.0f64, f64::max);
    println!("accuracy_mc,runs={mc_runs},slim_bit_identical_to_fat=true");
    println!("accuracy_mc,mean_rel_error={mean:.5},max_rel_error={max:.5}");
}
