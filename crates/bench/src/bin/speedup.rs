//! The §I / §VII-E speed-up table: wall-clock cost of sketching a
//! Bernoulli p-sample vs the full stream, for both sketch backends.
//!
//! "The sketching of streams can thus be sped-up by a factor of 10" (at
//! p = 0.1) "and a factor of up to 1000 in some cases" (p = 0.001).
//!
//! ```text
//! cargo run --release -p sss-bench --bin speedup \
//!     [--tuples=10000000] [--domain=1000000] [--skew=1.0] [--seed=15]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_bench::{arg, banner};
use sss_core::sketch::JoinSchema;
use sss_datagen::ZipfGenerator;
use sss_moments::FrequencyVector;
use sss_stream::ShedderComparison;

fn main() {
    let tuples: usize = arg("tuples", 10_000_000);
    let domain: usize = arg("domain", 1_000_000);
    let skew: f64 = arg("skew", 1.0);
    let seed: u64 = arg("seed", 15);
    banner(
        "speedup",
        "sketch-update speed-up vs shedding probability",
        &[
            ("tuples", tuples.to_string()),
            ("domain", domain.to_string()),
            ("skew", skew.to_string()),
        ],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    eprintln!("# generating {tuples} Zipf({skew}) tuples…");
    let stream = ZipfGenerator::new(domain, skew).relation(tuples, &mut rng);
    let truth = FrequencyVector::from_keys(stream.iter().copied(), domain).self_join();

    println!("backend,p,kept,full_mtps,shed_mtps,speedup,rel_error");
    let backends: Vec<(&str, JoinSchema)> = vec![
        ("fagms-1x5000", JoinSchema::fagms(1, 5000, &mut rng)),
        ("agms-64", JoinSchema::agms(64, &mut rng)),
    ];
    for (name, schema) in backends {
        let cmp = ShedderComparison::new(schema);
        // Warm-up pass so the first measured row doesn't pay the cold
        // cache/page-fault cost of the first touch of the stream.
        let _ = cmp.run(&stream[..stream.len().min(1_000_000)], 1.0, &mut rng);
        for p in [1.0, 0.1, 0.01, 0.001] {
            let r = cmp.run(&stream, p, &mut rng).expect("valid probability");
            println!(
                "{name},{p},{},{:.2},{:.2},{:.1},{:.6}",
                r.kept,
                r.full.tuples_per_sec() / 1e6,
                r.shedded.tuples_per_sec() / 1e6,
                r.speedup(),
                ((r.shedded_estimate - truth) / truth).abs()
            );
        }
    }
}
