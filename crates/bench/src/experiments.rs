//! The experiment sweeps behind the figure binaries, as testable library
//! functions.
//!
//! Each function reproduces one experimental *procedure* of the paper's
//! Section VII; the `fig*` binaries only parse flags and print CSV. Keeping
//! the logic here means the smoke tests in this module — not the binaries —
//! are what pin the procedures.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::sketch::{JoinSchema, JoinSketch};
use sss_core::{
    EpochShedder, IidStreamSketcher, JoinQuery, LoadSheddingSketcher, RateGrid,
    ReferenceEpochShedder, ScanSketcher, Summary,
};
use sss_datagen::{DiscreteAlias, TpchGenerator, ZipfGenerator};
use sss_moments::FrequencyVector;
use sss_sampling::without_replacement::PrefixScan;
use sss_stream::Throughput;
use sss_stream::{ControllerConfig, Partition, RateController, RuntimeConfig, ShardedRuntime};
use std::time::{Duration, Instant};

/// Common workload parameters of the Bernoulli (Figures 3–4) sweeps.
#[derive(Debug, Clone)]
pub struct BernoulliSweep {
    /// Tuples per relation.
    pub tuples: usize,
    /// Key domain size.
    pub domain: usize,
    /// F-AGMS buckets.
    pub buckets: usize,
    /// Repetitions per cell.
    pub reps: usize,
    /// Sampling probabilities to test (1.0 = full stream).
    pub probabilities: Vec<f64>,
    /// Zipf skews to sweep.
    pub skews: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// One cell of a skew × probability error grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Zipf skew of the workload.
    pub skew: f64,
    /// Sampling probability.
    pub p: f64,
    /// Mean absolute relative error over the repetitions.
    pub error: f64,
}

/// Figure 3 procedure: size-of-join error between two independently drawn
/// Zipf relations, sketched over Bernoulli samples.
pub fn bernoulli_sj_sweep(cfg: &BernoulliSweep) -> Vec<SweepPoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    for &skew in &cfg.skews {
        let gen = ZipfGenerator::new(cfg.domain, skew);
        let mut errors = vec![0.0; cfg.probabilities.len()];
        for _ in 0..cfg.reps {
            let f_stream = gen.relation(cfg.tuples, &mut rng);
            let g_stream = gen.relation(cfg.tuples, &mut rng);
            let truth = FrequencyVector::from_keys(f_stream.iter().copied(), cfg.domain).dot(
                &FrequencyVector::from_keys(g_stream.iter().copied(), cfg.domain),
            );
            let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
            for (pi, &p) in cfg.probabilities.iter().enumerate() {
                let mut fs =
                    LoadSheddingSketcher::new(&schema, p, &mut rng).expect("valid probability");
                let mut gs =
                    LoadSheddingSketcher::new(&schema, p, &mut rng).expect("valid probability");
                for &k in &f_stream {
                    fs.observe(k);
                }
                for &k in &g_stream {
                    gs.observe(k);
                }
                let est = fs.size_of_join(&gs).expect("shared schema");
                errors[pi] += ((est - truth) / truth).abs();
            }
        }
        for (pi, &p) in cfg.probabilities.iter().enumerate() {
            out.push(SweepPoint {
                skew,
                p,
                error: errors[pi] / cfg.reps as f64,
            });
        }
    }
    out
}

/// Figure 4 procedure: self-join size error of one Zipf relation, sketched
/// over Bernoulli samples.
pub fn bernoulli_sjs_sweep(cfg: &BernoulliSweep) -> Vec<SweepPoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    for &skew in &cfg.skews {
        let gen = ZipfGenerator::new(cfg.domain, skew);
        let mut errors = vec![0.0; cfg.probabilities.len()];
        for _ in 0..cfg.reps {
            let stream = gen.relation(cfg.tuples, &mut rng);
            let truth = FrequencyVector::from_keys(stream.iter().copied(), cfg.domain).self_join();
            let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
            for (pi, &p) in cfg.probabilities.iter().enumerate() {
                let mut s =
                    LoadSheddingSketcher::new(&schema, p, &mut rng).expect("valid probability");
                for &k in &stream {
                    s.observe(k);
                }
                errors[pi] += ((s.self_join() - truth) / truth).abs();
            }
        }
        for (pi, &p) in cfg.probabilities.iter().enumerate() {
            out.push(SweepPoint {
                skew,
                p,
                error: errors[pi] / cfg.reps as f64,
            });
        }
    }
    out
}

/// Parameters of the with-replacement (Figures 5–6) sweeps.
#[derive(Debug, Clone)]
pub struct WrSweep {
    /// Population size each generative model represents.
    pub population: u64,
    /// Key domain size.
    pub domain: usize,
    /// F-AGMS buckets.
    pub buckets: usize,
    /// Repetitions per fraction.
    pub reps: usize,
    /// Zipf skew of the populations.
    pub skew: f64,
    /// Sample-size fractions of the population to test.
    pub fractions: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// Figure 5 procedure: size-of-join error vs WR sample fraction, two
/// i.i.d. streams from the same Zipf law.
pub fn wr_sj_sweep(cfg: &WrSweep) -> Vec<(f64, f64)> {
    let weights = ZipfGenerator::new(cfg.domain, cfg.skew).expected_frequencies(cfg.population);
    let freqs = FrequencyVector::from_counts(weights.clone());
    let truth = freqs.dot(&freqs);
    let model = DiscreteAlias::new(&weights);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    cfg.fractions
        .iter()
        .map(|&frac| {
            let m = ((frac * cfg.population as f64) as u64).max(2);
            let mut err = 0.0;
            for _ in 0..cfg.reps {
                let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
                let mut fs =
                    IidStreamSketcher::new(&schema, cfg.population).expect("population > 0");
                let mut gs =
                    IidStreamSketcher::new(&schema, cfg.population).expect("population > 0");
                for _ in 0..m {
                    fs.observe(model.sample(&mut rng));
                    gs.observe(model.sample(&mut rng));
                }
                let est = fs.size_of_join(&gs).expect("non-empty samples");
                err += ((est - truth) / truth).abs();
            }
            (frac, err / cfg.reps as f64)
        })
        .collect()
}

/// Figure 6 procedure: self-join error vs WR sample fraction.
pub fn wr_sjs_sweep(cfg: &WrSweep) -> Vec<(f64, f64)> {
    let weights = ZipfGenerator::new(cfg.domain, cfg.skew).expected_frequencies(cfg.population);
    let truth = FrequencyVector::from_counts(weights.clone()).self_join();
    let model = DiscreteAlias::new(&weights);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    cfg.fractions
        .iter()
        .map(|&frac| {
            let m = ((frac * cfg.population as f64) as u64).max(2);
            let mut err = 0.0;
            for _ in 0..cfg.reps {
                let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
                let mut s =
                    IidStreamSketcher::new(&schema, cfg.population).expect("population > 0");
                for _ in 0..m {
                    s.observe(model.sample(&mut rng));
                }
                err += ((s.self_join().expect("m >= 2") - truth) / truth).abs();
            }
            (frac, err / cfg.reps as f64)
        })
        .collect()
}

/// Parameters of the without-replacement / TPC-H (Figures 7–8) sweeps.
#[derive(Debug, Clone)]
pub struct WorSweep {
    /// Mini-dbgen scale factor.
    pub scale: f64,
    /// F-AGMS buckets.
    pub buckets: usize,
    /// Repetitions (fresh scan order + schema each).
    pub reps: usize,
    /// Scan rates to snapshot at (ascending, each in (0, 1]).
    pub rates: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// Figure 7 procedure: `lineitem ⋈ orders` error vs WOR scan rate.
pub fn wor_join_sweep(cfg: &WorSweep) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tables = TpchGenerator::new(cfg.scale).generate(&mut rng);
    let truth = tables.join_size();
    let mut sums = vec![0.0; cfg.rates.len()];
    for _ in 0..cfg.reps {
        let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
        let l_scan = PrefixScan::new(tables.lineitem.clone(), &mut rng);
        let o_scan = PrefixScan::new(tables.orders.clone(), &mut rng);
        let mut l = ScanSketcher::new(&schema, l_scan.len() as u64).expect("non-empty");
        let mut o = ScanSketcher::new(&schema, o_scan.len() as u64).expect("non-empty");
        let mut li = 0usize;
        let mut oi = 0usize;
        for (ri, &rate) in cfg.rates.iter().enumerate() {
            let lt = ((rate * l_scan.len() as f64) as usize).min(l_scan.len());
            let ot = ((rate * o_scan.len() as f64) as usize).min(o_scan.len());
            while li < lt {
                l.observe(l_scan.tuples()[li]).expect("within population");
                li += 1;
            }
            while oi < ot {
                o.observe(o_scan.tuples()[oi]).expect("within population");
                oi += 1;
            }
            let est = l.size_of_join(&o).expect("non-empty scans");
            sums[ri] += ((est - truth) / truth).abs();
        }
    }
    cfg.rates
        .iter()
        .zip(sums)
        .map(|(&r, s)| (r, s / cfg.reps as f64))
        .collect()
}

/// Figure 8 procedure: `F₂(lineitem.l_orderkey)` error vs WOR scan rate.
pub fn wor_sjs_sweep(cfg: &WorSweep) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tables = TpchGenerator::new(cfg.scale).generate(&mut rng);
    let truth = tables.lineitem_self_join();
    let mut sums = vec![0.0; cfg.rates.len()];
    for _ in 0..cfg.reps {
        let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
        let scan = PrefixScan::new(tables.lineitem.clone(), &mut rng);
        let mut s = ScanSketcher::new(&schema, scan.len() as u64).expect("non-empty");
        let mut idx = 0usize;
        for (ri, &rate) in cfg.rates.iter().enumerate() {
            let target = ((rate * scan.len() as f64) as usize).min(scan.len());
            while idx < target {
                s.observe(scan.tuples()[idx]).expect("within population");
                idx += 1;
            }
            sums[ri] += ((s.self_join().expect("enough tuples") - truth) / truth).abs();
        }
    }
    cfg.rates
        .iter()
        .zip(sums)
        .map(|(&r, s)| (r, s / cfg.reps as f64))
        .collect()
}

/// Drive a quantized [`RateController`] with a thrashing two-band load for
/// `changes` batches, applying each emitted rate to both the compacted
/// [`EpochShedder`] and the uncompacted [`ReferenceEpochShedder`] (one
/// epoch per change) and feeding `batch_len` tuples per change. The two
/// shedders are identically seeded, so they hold the same sample — only
/// their epoch bookkeeping differs. Returns the shedders plus the
/// controller's `distinct_rate_bound()`.
///
/// Shared by the `epoch_query` Criterion bench and the `epoch_monitor`
/// acceptance binary so both measure the same workload.
pub fn epoch_churn(
    schema: &JoinSchema,
    changes: usize,
    batch_len: usize,
    seed: u64,
) -> (EpochShedder, ReferenceEpochShedder, usize) {
    let mut controller = RateController::new(ControllerConfig {
        capacity_tps: 1e4,
        smoothing: 0.5,
        hysteresis: 0.1,
        min_p: 1e-3,
        grid: RateGrid::default(),
    });
    let bound = controller.distinct_rate_bound();
    let mut seed_a = StdRng::seed_from_u64(seed);
    let mut seed_b = StdRng::seed_from_u64(seed);
    let mut compact = EpochShedder::new(schema, 1.0, &mut seed_a).expect("valid p");
    let mut reference = ReferenceEpochShedder::new(schema, 1.0, &mut seed_b).expect("valid p");
    for i in 0..changes {
        // Two drifting bands 100× apart: the smoothed rate swings past the
        // hysteresis dead-band on every batch, so p changes each time.
        let rate = if i % 2 == 0 {
            10_000 * (1 + (i % 13) as u64)
        } else {
            1_000_000 * (1 + (i % 7) as u64)
        };
        let p = controller.observe_batch(rate, 1.0);
        compact.set_probability(p, &mut seed_a).expect("valid p");
        reference.set_probability(p, &mut seed_b).expect("valid p");
        let batch: Vec<u64> = (0..batch_len as u64)
            .map(|j| (j * 13 + i as u64) % 1000)
            .collect();
        compact.feed_batch(&batch);
        reference.feed_batch(&batch);
    }
    (compact, reference, bound)
}

/// A [`JoinQuery`] that models a *latency-bound* sink: every batch
/// pays a fixed pause (a downstream commit, a synchronous write, a remote
/// round-trip) before the in-memory sketch update.
///
/// The sharded-runtime speedup story has two regimes. When the sink is
/// CPU-bound, shards only help with as many cores as the host exposes.
/// When the sink is latency-bound, the pauses of different shard workers
/// overlap in wall-clock time — `thread::sleep` yields the core — so the
/// runtime scales with the shard count even on a single core. This
/// wrapper makes the second regime measurable with a controlled,
/// reproducible latency.
#[derive(Debug, Clone)]
pub struct PacedSketch {
    inner: JoinSketch,
    pause: Duration,
}

impl PacedSketch {
    /// A paced sketch over `schema` paying `pause` per batch.
    pub fn new(schema: &JoinSchema, pause: Duration) -> Self {
        Self {
            inner: schema.sketch(),
            pause,
        }
    }

    /// The wrapped sketch (e.g. to compare against a sequential run).
    pub fn into_inner(self) -> JoinSketch {
        self.inner
    }
}

impl Summary for PacedSketch {
    fn update(&mut self, key: u64, count: i64) {
        self.inner.update(key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        // The simulated commit latency — paid per batch, like a real
        // downstream acknowledgement would be.
        std::thread::sleep(self.pause);
        self.inner.update_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> sss_core::Result<()> {
        self.inner.merge(&other.inner)
    }
}

impl JoinQuery for PacedSketch {
    fn self_join(&self) -> f64 {
        self.inner.raw_self_join()
    }

    fn size_of_join(&self, other: &Self) -> sss_core::Result<f64> {
        self.inner.raw_size_of_join(&other.inner)
    }
}

/// Parameters of the sharded-runtime scaling experiment.
#[derive(Debug, Clone)]
pub struct ShardedScalingConfig {
    /// Total tuples pushed through the runtime per measurement.
    pub tuples: usize,
    /// Key domain size.
    pub domain: usize,
    /// F-AGMS buckets of the shard sketches.
    pub buckets: usize,
    /// Tuples per pushed batch.
    pub batch: usize,
    /// Bounded per-shard queue depth, in batches.
    pub queue_depth: usize,
    /// Shard counts to measure (the first is the speedup baseline).
    pub shard_counts: Vec<usize>,
    /// Simulated per-batch sink latency of the `latency_bound` series, µs.
    pub pause_us: u64,
    /// RNG seed.
    pub seed: u64,
}

/// One measured cell of the scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// `"cpu_bound"` (plain sketch sink) or `"latency_bound"`
    /// ([`PacedSketch`] sink).
    pub workload: &'static str,
    /// Shard workers used.
    pub shards: usize,
    /// End-to-end ingest rate (push + final merge).
    pub tuples_per_sec: f64,
    /// Speedup over the series' first shard count.
    pub speedup: f64,
    /// The runtime's own merged throughput gauge
    /// ([`ShardedRuntime::tuples_per_sec`]), read after the last push.
    /// Unlike `tuples_per_sec` it excludes the final merge but includes
    /// pool spawn, and counts only tuples the workers had *applied* at the
    /// moment of reading (the last queue's worth may still be draining).
    pub gauge_tuples_per_sec: f64,
    /// Highest enqueued-or-in-flight count on any shard
    /// ([`ShardedRuntime::queue_high_water`]) — the memory bound actually
    /// touched during the run.
    pub queue_high_water: usize,
}

/// Instantaneous runtime-gauge readings taken right before the final
/// merge (see [`ScalingPoint::gauge_tuples_per_sec`] for the semantics).
struct RuntimeGauges {
    tuples_per_sec: f64,
    queue_high_water: usize,
}

/// Push `stream` through a fresh sharded runtime and merge at the end,
/// returning the merged estimator, the wall-clock measurement, and the
/// runtime's own gauges as of just before the merge.
fn sharded_run<E: Summary + JoinQuery>(
    prototype: &E,
    config: RuntimeConfig,
    stream: &[u64],
    batch: usize,
) -> (E, Throughput, RuntimeGauges) {
    let mut rt = ShardedRuntime::new(config, prototype).expect("valid runtime config");
    let handle = rt.query_handle();
    let mut merged = None;
    let mut gauges = None;
    let t = Throughput::measure(stream.len() as u64, || {
        for chunk in stream.chunks(batch) {
            rt.push(chunk).expect("no shard died");
        }
        merged = Some(rt.into_merged().expect("merge after shutdown"));
        // Read the gauges through the handle *after* the merge: the
        // snapshot floor quiesces every shard, so `tuples_ingested`
        // covers the whole stream. Reading before the merge raced the
        // workers — coalesced applies can still be in flight when the
        // producer finishes pushing.
        gauges = Some(RuntimeGauges {
            tuples_per_sec: handle.tuples_per_sec(),
            queue_high_water: handle.queue_high_water(),
        });
    });
    (
        merged.expect("measured closure ran"),
        t,
        gauges.expect("measured closure ran"),
    )
}

/// The sharded-runtime scaling experiment behind `BENCH_sharded_runtime`:
/// ingest the same stream at each shard count, for a CPU-bound sink and a
/// latency-bound ([`PacedSketch`]) sink, verifying along the way that
/// every merged result is **bit-identical** to the sequential sketch.
///
/// CPU-bound scaling is capped by the host's cores; latency-bound scaling
/// is not (sleeps overlap), which is what a sink with downstream I/O
/// latency looks like. Both series are reported so the numbers stay
/// honest on any host.
pub fn sharded_scaling(cfg: &ShardedScalingConfig) -> Vec<ScalingPoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
    let stream: Vec<u64> = (0..cfg.tuples as u64)
        .map(|i| (i.wrapping_mul(2654435761)) % cfg.domain as u64)
        .collect();
    let mut sequential = schema.sketch();
    sequential.update_batch(&stream);
    let expect = sequential.raw_self_join().to_bits();
    let pause = Duration::from_micros(cfg.pause_us);
    let mut out = Vec::new();
    for workload in ["cpu_bound", "latency_bound"] {
        let mut baseline: Option<f64> = None;
        for &shards in &cfg.shard_counts {
            let config = RuntimeConfig {
                shards,
                queue_depth: cfg.queue_depth,
                partition: Partition::RoundRobin,
            };
            let (estimate_bits, t, gauges) = if workload == "cpu_bound" {
                let (merged, t, g) = sharded_run(&schema.sketch(), config, &stream, cfg.batch);
                (merged.raw_self_join().to_bits(), t, g)
            } else {
                let proto = PacedSketch::new(&schema, pause);
                let (merged, t, g) = sharded_run(&proto, config, &stream, cfg.batch);
                (merged.into_inner().raw_self_join().to_bits(), t, g)
            };
            assert_eq!(
                estimate_bits, expect,
                "{workload}/{shards} shards must reproduce the sequential sketch bit for bit"
            );
            let tps = t.tuples_per_sec();
            let base = *baseline.get_or_insert(tps);
            out.push(ScalingPoint {
                workload,
                shards,
                tuples_per_sec: tps,
                speedup: tps / base,
                gauge_tuples_per_sec: gauges.tuples_per_sec,
                queue_high_water: gauges.queue_high_water,
            });
        }
    }
    out
}

/// Parameters of the queries-under-ingest experiment: at-all-times
/// `merged()` polling interleaved with a full-rate ingest.
#[derive(Debug, Clone)]
pub struct QueriesUnderIngestConfig {
    /// Total tuples pushed through the runtime per mode.
    pub tuples: usize,
    /// Key domain size.
    pub domain: usize,
    /// F-AGMS buckets of the shard sketches.
    pub buckets: usize,
    /// Tuples per pushed batch.
    pub batch: usize,
    /// Bounded per-shard queue depth, in batches.
    pub queue_depth: usize,
    /// Shard workers.
    pub shards: usize,
    /// Ingest pause points at which query bursts run.
    pub checkpoints: usize,
    /// `merged()` calls per burst — the at-all-times poller asking faster
    /// than data arrives, so all but the first call in a burst repeat an
    /// unchanged state.
    pub queries_per_burst: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One measured mode of the queries-under-ingest experiment.
///
/// First and repeated queries are reported separately because they
/// measure different things: the *first* query of a burst must quiesce
/// the ingest backlog (every queued batch is applied before the snapshot
/// floor is reached — a cost both modes pay identically, set by the ring
/// depth and the sketch, not the query path), while *repeated* queries
/// measure the query mechanism itself — the cached mode serves them from
/// the snapshot cache without touching a worker, the full barrier
/// re-clones every shard through a parked-worker round trip each time.
#[derive(Debug, Clone, PartialEq)]
pub struct QueriesPoint {
    /// `"cached"` ([`ShardedRuntime::merged`], incremental snapshot
    /// cache) or `"full_barrier"`
    /// ([`ShardedRuntime::merged_uncached`], the pre-cache behaviour:
    /// every shard cloned per query).
    pub mode: &'static str,
    /// Total queries issued across all bursts.
    pub queries: u64,
    /// Mean cost of the first query of each burst, µs (dominated by the
    /// backlog quiesce; mode-independent).
    pub first_query_us: f64,
    /// Mean cost of the repeated queries of each burst, µs — the
    /// steady-state cost of asking again when little or nothing changed.
    pub repeat_query_us: f64,
    /// Mean over all queries, µs.
    pub mean_query_us: f64,
    /// Wall-clock spent inside queries, seconds.
    pub total_query_secs: f64,
    /// End-to-end ingest rate with the query load riding along.
    pub ingest_tuples_per_sec: f64,
    /// Cache hits (zero-dirty queries) — 0 for the full-barrier mode.
    pub cache_hits: u64,
    /// Shard clones actually paid, against `queries × shards` for the
    /// full barrier.
    pub shards_refreshed: u64,
}

/// The queries-under-ingest experiment behind the
/// `queries_under_ingest` series of `BENCH_sharded_runtime.json`:
/// interleave bursts of at-all-times `merged()` queries with a full-rate
/// ingest, once through the incremental snapshot cache and once through
/// the pre-cache full barrier, asserting every answer bit-identical to
/// the sequential sketch of the prefix pushed so far.
///
/// Within a burst the stream does not advance, so the cached mode pays
/// one dirty-shard delta and then pure cache hits, while the full
/// barrier re-clones every shard on every call — the continuous-tracking
/// workload (Huang–Tai–Yi) where per-query recomputation loses.
pub fn queries_under_ingest(cfg: &QueriesUnderIngestConfig) -> Vec<QueriesPoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = JoinSchema::fagms(1, cfg.buckets, &mut rng);
    let stream: Vec<u64> = (0..cfg.tuples as u64)
        .map(|i| (i.wrapping_mul(2654435761)) % cfg.domain as u64)
        .collect();
    let config = RuntimeConfig {
        shards: cfg.shards,
        queue_depth: cfg.queue_depth,
        partition: Partition::RoundRobin,
    };
    let batches = stream.len().div_ceil(cfg.batch);
    let burst_every = (batches / cfg.checkpoints.max(1)).max(1);
    let mut out = Vec::new();
    for mode in ["cached", "full_barrier"] {
        let mut rt = ShardedRuntime::new(config, &schema.sketch()).expect("valid runtime config");
        // The running sequential sketch each burst is checked against.
        let mut sequential = schema.sketch();
        let mut first_time = Duration::ZERO;
        let mut repeat_time = Duration::ZERO;
        let mut firsts = 0u64;
        let mut repeats = 0u64;
        let t = Throughput::measure(stream.len() as u64, || {
            for (i, chunk) in stream.chunks(cfg.batch).enumerate() {
                rt.push(chunk).expect("no shard died");
                sequential.update_batch(chunk);
                if (i + 1) % burst_every != 0 {
                    continue;
                }
                let expect = sequential.raw_self_join().to_bits();
                for q in 0..cfg.queries_per_burst {
                    let start = Instant::now();
                    let merged = if mode == "cached" {
                        rt.merged()
                    } else {
                        rt.merged_uncached()
                    }
                    .expect("query answered");
                    let elapsed = start.elapsed();
                    if q == 0 {
                        first_time += elapsed;
                        firsts += 1;
                    } else {
                        repeat_time += elapsed;
                        repeats += 1;
                    }
                    assert_eq!(
                        merged.raw_self_join().to_bits(),
                        expect,
                        "{mode}: at-all-times answer must equal the pushed prefix"
                    );
                }
            }
        });
        let stats = rt.cache_stats();
        drop(rt);
        let queries = firsts + repeats;
        let total = first_time + repeat_time;
        out.push(QueriesPoint {
            mode,
            queries,
            first_query_us: first_time.as_secs_f64() * 1e6 / firsts.max(1) as f64,
            repeat_query_us: repeat_time.as_secs_f64() * 1e6 / repeats.max(1) as f64,
            mean_query_us: total.as_secs_f64() * 1e6 / queries.max(1) as f64,
            total_query_secs: total.as_secs_f64(),
            ingest_tuples_per_sec: t.tuples_per_sec(),
            cache_hits: stats.hits,
            shards_refreshed: stats.shards_refreshed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_sweeps_have_the_papers_shape() {
        let cfg = BernoulliSweep {
            tuples: 60_000,
            domain: 5_000,
            buckets: 2_000,
            reps: 4,
            probabilities: vec![0.01, 0.1, 1.0],
            skews: vec![0.0, 1.0],
            seed: 1,
        };
        for points in [bernoulli_sj_sweep(&cfg), bernoulli_sjs_sweep(&cfg)] {
            assert_eq!(points.len(), 6);
            assert!(points
                .iter()
                .all(|pt| pt.error.is_finite() && pt.error >= 0.0));
            // At skew 0, a 10% sample is close to the full stream while a
            // 1% sample is clearly worse.
            let get = |skew: f64, p: f64| {
                points
                    .iter()
                    .find(|pt| pt.skew == skew && pt.p == p)
                    .expect("cell exists")
                    .error
            };
            assert!(
                get(0.0, 0.01) > get(0.0, 1.0),
                "1% should trail the full stream"
            );
            assert!(
                get(0.0, 0.1) < 3.0 * get(0.0, 1.0) + 0.05,
                "10% should be near the full stream"
            );
        }
    }

    #[test]
    fn wr_sweeps_stabilize_with_fraction() {
        let cfg = WrSweep {
            population: 50_000,
            domain: 4_000,
            buckets: 2_000,
            reps: 4,
            skew: 1.0,
            fractions: vec![0.002, 0.1, 0.5],
            seed: 2,
        };
        for series in [wr_sj_sweep(&cfg), wr_sjs_sweep(&cfg)] {
            assert_eq!(series.len(), 3);
            let (tiny, big) = (series[0].1, series[2].1);
            assert!(tiny > big, "error must shrink with the sample: {series:?}");
        }
    }

    #[test]
    fn epoch_churn_thrashes_the_reference_but_not_the_compacted() {
        let mut rng = StdRng::seed_from_u64(9);
        let schema = JoinSchema::agms(4, &mut rng);
        let (compact, reference, bound) = epoch_churn(&schema, 120, 50, 10);
        assert!(
            reference.epoch_count() > 100,
            "the workload must change rates nearly every batch, got {}",
            reference.epoch_count()
        );
        assert!(compact.epoch_count() <= bound);
        assert_eq!(compact.kept(), reference.kept(), "identical samples");
        assert_eq!(
            compact.self_join().expect("query"),
            compact.self_join_uncached().expect("query"),
        );
    }

    /// The scaling procedure itself asserts bit-identity at every cell;
    /// here we additionally pin the output shape and that the
    /// latency-bound series actually benefits from shards even when the
    /// host has a single core (sleep overlap, not parallel compute).
    #[test]
    fn sharded_scaling_is_exact_and_latency_series_scales() {
        let cfg = ShardedScalingConfig {
            tuples: 60_000,
            domain: 2_000,
            buckets: 512,
            batch: 2_000,
            queue_depth: 4,
            shard_counts: vec![1, 4],
            pause_us: 2_000,
            seed: 11,
        };
        let points = sharded_scaling(&cfg);
        assert_eq!(points.len(), 4);
        for pt in &points {
            assert!(pt.tuples_per_sec > 0.0 && pt.speedup > 0.0, "{pt:?}");
            assert!(pt.gauge_tuples_per_sec > 0.0, "{pt:?}");
            assert!(
                pt.queue_high_water >= 1 && pt.queue_high_water <= cfg.queue_depth + 1,
                "{pt:?}"
            );
        }
        let latency_4 = points
            .iter()
            .find(|pt| pt.workload == "latency_bound" && pt.shards == 4)
            .expect("cell exists");
        assert!(
            latency_4.speedup > 1.5,
            "4-shard latency-bound speedup only {:.2}x",
            latency_4.speedup
        );
    }

    /// The queries-under-ingest procedure asserts bit-identity of every
    /// burst answer internally; here we pin the accounting: the cached
    /// mode turns the repeated calls of each burst into cache hits and
    /// refreshes far fewer shard clones than the full barrier pays.
    #[test]
    fn queries_under_ingest_cached_mode_mostly_hits() {
        let cfg = QueriesUnderIngestConfig {
            tuples: 40_000,
            domain: 2_000,
            buckets: 256,
            batch: 1_000,
            queue_depth: 4,
            shards: 4,
            checkpoints: 5,
            queries_per_burst: 8,
            seed: 17,
        };
        let points = queries_under_ingest(&cfg);
        assert_eq!(points.len(), 2);
        let cached = &points[0];
        let barrier = &points[1];
        assert_eq!(cached.mode, "cached");
        assert_eq!(barrier.mode, "full_barrier");
        assert_eq!(cached.queries, barrier.queries);
        assert!(cached.queries >= 40);
        // Each burst pays at most one dirty refresh; the remaining
        // queries_per_burst - 1 calls repeat an unchanged state.
        assert!(
            cached.cache_hits >= cached.queries - cached.queries / cfg.queries_per_burst as u64 - 1,
            "{cached:?}"
        );
        assert_eq!(barrier.cache_hits, 0, "{barrier:?}");
        assert!(
            cached.shards_refreshed < cached.queries,
            "cached mode must clone fewer shards than it has queries: {cached:?}"
        );
        assert!(cached.mean_query_us > 0.0 && barrier.mean_query_us > 0.0);
        // The mechanism under test: repeated queries served from cache
        // never touch a worker, while the barrier round-trips all of
        // them. (The exact ratio is the recorded benchmark; here we only
        // pin the direction so the smoke test stays robust on any host.)
        assert!(
            cached.repeat_query_us < barrier.repeat_query_us,
            "cached repeats {:.2}us vs barrier {:.2}us",
            cached.repeat_query_us,
            barrier.repeat_query_us
        );
    }

    #[test]
    fn wor_sweeps_converge_along_the_scan() {
        let cfg = WorSweep {
            scale: 0.002,
            buckets: 2_000,
            reps: 4,
            rates: vec![0.02, 0.5, 1.0],
            seed: 3,
        };
        for series in [wor_join_sweep(&cfg), wor_sjs_sweep(&cfg)] {
            assert_eq!(series.len(), 3);
            assert!(
                series[0].1 > series[2].1,
                "early-scan error must exceed full-scan error: {series:?}"
            );
        }
    }
}
