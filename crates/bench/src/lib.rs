//! # sss-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (Section VII), plus the
//! speed-up table behind the §I / §VII-E headline claim:
//!
//! | Binary | Paper exhibit | What it prints |
//! |---|---|---|
//! | `fig1` | Figure 1 | size-of-join variance decomposition vs skew (analytic) |
//! | `fig2` | Figure 2 | self-join variance decomposition vs skew (analytic) |
//! | `fig3` | Figure 3 | size-of-join relative error vs skew, Bernoulli p sweep |
//! | `fig4` | Figure 4 | self-join relative error vs skew, Bernoulli p sweep |
//! | `fig5` | Figure 5 | size-of-join error vs WR sample fraction |
//! | `fig6` | Figure 6 | self-join error vs WR sample fraction |
//! | `fig7` | Figure 7 | size-of-join error vs WOR scan rate (mini TPC-H) |
//! | `fig8` | Figure 8 | self-join error vs WOR scan rate (mini TPC-H) |
//! | `speedup` | §VII-E table | sketch-update speed-up vs shedding probability |
//!
//! Every binary prints a CSV series (header first) so results can be
//! plotted directly, and accepts `--key=value` overrides for the workload
//! parameters (see each binary's `--help`). Defaults are scaled for a
//! laptop run; EXPERIMENTS.md records both the defaults used and the
//! paper-scale settings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use std::fmt::Display;

/// Parse `--name=value` from the process arguments, falling back to
/// `default`. Prints and exits on `--help`.
pub fn arg<T: std::str::FromStr + Display + Copy>(name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    for a in std::env::args() {
        if let Some(v) = a.strip_prefix(&prefix) {
            match v.parse() {
                Ok(parsed) => return parsed,
                Err(_) => {
                    eprintln!("invalid value for --{name}: {v} (using default {default})");
                    return default;
                }
            }
        }
    }
    default
}

/// Print a standard experiment banner (goes to stderr so stdout stays a
/// clean CSV).
pub fn banner(figure: &str, description: &str, params: &[(&str, String)]) {
    eprintln!("# {figure}: {description}");
    for (k, v) in params {
        eprintln!("#   {k} = {v}");
    }
}

/// Mean of the absolute relative errors of `estimates` against `truth`.
pub fn mean_relative_error(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() || truth == 0.0 {
        return f64::NAN;
    }
    estimates
        .iter()
        .map(|e| ((e - truth) / truth).abs())
        .sum::<f64>()
        / estimates.len() as f64
}

/// The skew grid used by the synthetic experiments (paper: 0 to 5).
pub fn skew_grid(step: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut z = 0.0f64;
    while z <= 5.0 + 1e-9 {
        v.push((z * 100.0).round() / 100.0);
        z += step;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_relative_error_basics() {
        assert!((mean_relative_error(&[110.0, 90.0], 100.0) - 0.1).abs() < 1e-12);
        assert!(mean_relative_error(&[], 100.0).is_nan());
        assert!(mean_relative_error(&[1.0], 0.0).is_nan());
    }

    #[test]
    fn skew_grid_covers_zero_to_five() {
        let g = skew_grid(0.5);
        assert_eq!(g.first(), Some(&0.0));
        assert_eq!(g.last(), Some(&5.0));
        assert_eq!(g.len(), 11);
    }

    #[test]
    fn arg_returns_default_when_absent() {
        assert_eq!(arg("definitely-not-passed", 42u64), 42);
        assert_eq!(arg("also-not-passed", 0.5f64), 0.5);
    }
}
