//! Error analysis for the drivers: exact moments and confidence intervals.
//!
//! When the true frequency vectors are known (experiments, calibration
//! runs, workload planning), these helpers map a driver configuration onto
//! the `sss-moments` engine and return the exact mean/variance of its
//! estimates — including the paper's headline use case: deciding **how
//! aggressive load shedding can be** before the estimate degrades
//! ("the formulas resulting from such an analysis could be used to
//! determine how aggressive the load shedding can be without a significant
//! loss in the accuracy").
//!
//! These are the *exact* counterparts to the empirical error bars of the
//! typed query path: when the frequencies are **not** known, the
//! `*_estimate()` methods (e.g.
//! [`crate::JoinQuery::self_join_estimate`]) return an
//! [`crate::Estimate`] whose variance is measured from the estimator's own
//! independent lanes plus a conservative sampling plug-in — see
//! `docs/THEORY.md` §"Empirical error bars".

use crate::error::Result;
use crate::sketch::JoinSchema;
use sss_moments::bounds::{self, ConfidenceInterval};
use sss_moments::engine::{self, Moments};
use sss_moments::freq::FrequencyVector;
use sss_moments::scheme::{Bernoulli, WithReplacement, WithoutReplacement};

/// Moments of [`crate::LoadSheddingSketcher::self_join`] on a stream with
/// true frequencies `f`, shedding probability `p`, over `schema`.
pub fn shedding_self_join(f: &FrequencyVector, p: f64, schema: &JoinSchema) -> Result<Moments> {
    let scheme = Bernoulli::new(p)?;
    Ok(engine::sketch_sample_sjs(
        &scheme,
        f,
        schema.averaging_factor(),
    )?)
}

/// Moments of [`crate::LoadSheddingSketcher::size_of_join`] for streams
/// with true frequencies `f`, `g` and shedding probabilities `p`, `q`.
pub fn shedding_size_of_join(
    f: &FrequencyVector,
    g: &FrequencyVector,
    p: f64,
    q: f64,
    schema: &JoinSchema,
) -> Result<Moments> {
    let sp = Bernoulli::new(p)?;
    let sq = Bernoulli::new(q)?;
    Ok(engine::sketch_sample_sj(
        &sp,
        f,
        &sq,
        g,
        schema.averaging_factor(),
    )?)
}

/// Moments of [`crate::IidStreamSketcher::self_join`] after observing `m`
/// tuples from a population with true frequencies `f`.
pub fn iid_self_join(f: &FrequencyVector, m: u64, schema: &JoinSchema) -> Result<Moments> {
    let scheme = WithReplacement::new(m, f.total() as u64)?;
    Ok(engine::sketch_sample_sjs(
        &scheme,
        f,
        schema.averaging_factor(),
    )?)
}

/// Moments of [`crate::IidStreamSketcher::size_of_join`] after observing
/// `m_f` and `m_g` tuples of the two streams.
pub fn iid_size_of_join(
    f: &FrequencyVector,
    g: &FrequencyVector,
    m_f: u64,
    m_g: u64,
    schema: &JoinSchema,
) -> Result<Moments> {
    let sf = WithReplacement::new(m_f, f.total() as u64)?;
    let sg = WithReplacement::new(m_g, g.total() as u64)?;
    Ok(engine::sketch_sample_sj(
        &sf,
        f,
        &sg,
        g,
        schema.averaging_factor(),
    )?)
}

/// Moments of [`crate::ScanSketcher::self_join`] after scanning `m` of the
/// relation's tuples.
pub fn scan_self_join(f: &FrequencyVector, m: u64, schema: &JoinSchema) -> Result<Moments> {
    let scheme = WithoutReplacement::new(m, f.total() as u64)?;
    Ok(engine::sketch_sample_sjs(
        &scheme,
        f,
        schema.averaging_factor(),
    )?)
}

/// Moments of [`crate::ScanSketcher::size_of_join`] after scanning `m_f`
/// and `m_g` tuples of the two relations.
pub fn scan_size_of_join(
    f: &FrequencyVector,
    g: &FrequencyVector,
    m_f: u64,
    m_g: u64,
    schema: &JoinSchema,
) -> Result<Moments> {
    let sf = WithoutReplacement::new(m_f, f.total() as u64)?;
    let sg = WithoutReplacement::new(m_g, g.total() as u64)?;
    Ok(engine::sketch_sample_sj(
        &sf,
        f,
        &sg,
        g,
        schema.averaging_factor(),
    )?)
}

/// The interval-construction method for [`confidence_interval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Distribution-independent (Chebyshev) — conservative.
    Chebyshev,
    /// CLT/normal — appropriate when many basics are averaged.
    Normal,
}

/// Build a confidence interval around `estimate` from exact `moments`.
pub fn confidence_interval(
    estimate: f64,
    moments: &Moments,
    confidence: f64,
    kind: BoundKind,
) -> ConfidenceInterval {
    match kind {
        BoundKind::Chebyshev => bounds::chebyshev(estimate, moments, confidence),
        BoundKind::Normal => bounds::normal(estimate, moments, confidence),
    }
}

/// The smallest Bernoulli probability (among the candidates tried) whose
/// combined-estimator standard error stays within `target_rel_error` of the
/// true self-join size — the paper's "how aggressive can the load shedding
/// be" planning question, answered analytically.
///
/// Scans `p` over a coarse log grid from 10⁻⁴ to 1. Returns `None` if even
/// `p = 1` misses the target (the sketch itself is too small).
pub fn max_shedding_rate(
    f: &FrequencyVector,
    schema: &JoinSchema,
    target_rel_error: f64,
) -> Option<f64> {
    let truth = f.self_join();
    let grid = [
        1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1.0,
    ];
    for &p in grid.iter() {
        if let Ok(m) = shedding_self_join(f, p, schema) {
            if m.relative_error(truth) <= target_rel_error {
                return Some(p);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> JoinSchema {
        let mut r = StdRng::seed_from_u64(11);
        JoinSchema::fagms(1, 512, &mut r)
    }

    fn workload() -> FrequencyVector {
        FrequencyVector::from_counts((1..=60u32).collect::<Vec<_>>())
    }

    #[test]
    fn all_driver_moments_are_unbiased() {
        let f = workload();
        let g = FrequencyVector::from_counts((1..=60u32).rev().collect::<Vec<_>>());
        let s = schema();
        let truth_sjs = f.self_join();
        let truth_sj = f.dot(&g);
        assert!((shedding_self_join(&f, 0.2, &s).unwrap().mean - truth_sjs).abs() < 1e-6);
        assert!(
            (shedding_size_of_join(&f, &g, 0.2, 0.7, &s).unwrap().mean - truth_sj).abs() < 1e-6
        );
        assert!((iid_self_join(&f, 100, &s).unwrap().mean - truth_sjs).abs() < 1e-6);
        assert!((iid_size_of_join(&f, &g, 100, 80, &s).unwrap().mean - truth_sj).abs() < 1e-6);
        assert!((scan_self_join(&f, 100, &s).unwrap().mean - truth_sjs).abs() < 1e-6);
        assert!((scan_size_of_join(&f, &g, 100, 80, &s).unwrap().mean - truth_sj).abs() < 1e-6);
    }

    #[test]
    fn variance_orderings_follow_the_theory() {
        let f = workload();
        let s = schema();
        // Lower shedding probability → higher variance.
        let v_01 = shedding_self_join(&f, 0.1, &s).unwrap().variance;
        let v_05 = shedding_self_join(&f, 0.5, &s).unwrap().variance;
        let v_10 = shedding_self_join(&f, 1.0, &s).unwrap().variance;
        assert!(v_01 > v_05 && v_05 > v_10);
        // Longer scan → lower variance; full scan = pure sketch.
        let n_pop = f.total() as u64;
        let v_scan_10 = scan_self_join(&f, n_pop / 10, &s).unwrap().variance;
        let v_scan_full = scan_self_join(&f, n_pop, &s).unwrap().variance;
        assert!(v_scan_10 > v_scan_full);
        // WOR beats WR at the same sample size (finite-population benefit).
        let v_wr = iid_self_join(&f, n_pop / 10, &s).unwrap().variance;
        assert!(v_wr > v_scan_10);
    }

    #[test]
    fn confidence_intervals_nest_by_confidence() {
        let m = Moments {
            mean: 1000.0,
            variance: 100.0,
        };
        let c90 = confidence_interval(1000.0, &m, 0.90, BoundKind::Normal);
        let c99 = confidence_interval(1000.0, &m, 0.99, BoundKind::Normal);
        assert!(c99.half_width() > c90.half_width());
        assert!(c99.contains(1000.0));
        let ch = confidence_interval(1000.0, &m, 0.90, BoundKind::Chebyshev);
        assert!(ch.half_width() > c90.half_width());
    }

    #[test]
    fn shedding_planner_finds_a_rate() {
        let f = FrequencyVector::from_counts(vec![100u32; 200]);
        let mut r = StdRng::seed_from_u64(12);
        let big = JoinSchema::fagms(1, 5000, &mut r);
        // A generous 10% target should be achievable with aggressive
        // shedding on this workload.
        let p = max_shedding_rate(&f, &big, 0.10).expect("a rate must exist");
        assert!(p < 1.0, "shedding should be possible, got p = {p}");
        // An impossible target (essentially zero error) yields None.
        assert_eq!(max_shedding_rate(&f, &big, 1e-9), None);
    }
}
