//! Bounded-memory support for epoch-based shedding: the rate-quantization
//! grid, the cross-term query cache, and the naive reference shedder.
//!
//! The three pieces turn [`crate::EpochShedder`] from an O(E)-memory,
//! O(E²)-query structure (E = number of rate changes) into one bounded by
//! the number of *distinct* sampling rates G:
//!
//! * **Same-`p` compaction** (implemented in `epochs.rs`, justified here):
//!   two epochs A and B with equal rate `p` merge *exactly*. By sketch
//!   linearity `(A+B)` self-join expands to `A² + B² + 2AB`, which is
//!   precisely the two Prop-14 diagonals plus the Prop-13 cross term at
//!   `p·p`; the kept-tuple corrections add because the kept counts add.
//!   So the shedder never needs more than one epoch per distinct `p`.
//! * **[`RateGrid`]**: the adaptive controller snaps its targets onto a
//!   small logarithmic grid (`steps_per_decade` points per decade between
//!   1 and `min_p`, with 1 and `min_p` always representable), so the
//!   number of distinct rates — and with compaction the number of epochs —
//!   is bounded by [`RateGrid::size`] regardless of stream length.
//! * **`QueryCache`** (crate-private): a monitoring loop calling
//!   `self_join()` per batch
//!   only dirties the *current* epoch between queries, so the cache
//!   recomputes one diagonal and one row of cross terms (O(G) sketch dot
//!   products) instead of the full O(G²) table.
//!
//! [`ReferenceEpochShedder`] is the original uncompacted implementation —
//! one epoch per rate change, full O(E²) query — retained verbatim as the
//! bit-identity and unbiasedness oracle for property tests and benchmarks.

use crate::epochs::{same_p, Epoch};
use crate::error::{Error, Result};
use crate::shedding::bernoulli_self_join;
use crate::sketch::JoinSchema;
use rand::rngs::StdRng;
use rand::Rng;
use sss_sampling::bernoulli::GeometricSkip;

/// A logarithmic grid of admissible sampling rates.
///
/// Grid point `k` is `10^(−k/steps_per_decade)`; `k = 0` is exactly `1.0`.
/// Snapping clamps to a caller-supplied floor `min_p` (returned verbatim,
/// so the floor itself is always representable). Snapping is idempotent:
/// a snapped value snaps to itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateGrid {
    steps_per_decade: u32,
}

impl Default for RateGrid {
    /// 40 steps per decade: adjacent rates differ by ≈ 5.9%, finer than
    /// any useful hysteresis band, yet only 81 points span `[0.01, 1]`.
    fn default() -> Self {
        Self {
            steps_per_decade: 40,
        }
    }
}

impl RateGrid {
    /// A grid with `steps_per_decade` points per factor-of-10 of `p`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidGrid`] if `steps_per_decade` is zero.
    pub fn new(steps_per_decade: u32) -> Result<Self> {
        if steps_per_decade == 0 {
            return Err(Error::InvalidGrid { steps_per_decade });
        }
        Ok(Self { steps_per_decade })
    }

    /// The grid resolution.
    pub fn steps_per_decade(&self) -> u32 {
        self.steps_per_decade
    }

    /// The grid step nearest to `p` (0 for `p ≥ 1`; grows as `p` falls).
    pub fn step_of(&self, p: f64) -> i64 {
        (-(p.log10()) * self.steps_per_decade as f64).round() as i64
    }

    /// The rate at grid step `step` (`step ≤ 0` yields exactly 1).
    pub fn value(&self, step: i64) -> f64 {
        if step <= 0 {
            1.0
        } else {
            10f64.powf(-(step as f64) / self.steps_per_decade as f64)
        }
    }

    /// Snap `p` to the nearest grid point within `[min_p, 1]`. Values at
    /// or below the floor return `min_p` itself, bit-exactly.
    pub fn snap(&self, p: f64, min_p: f64) -> f64 {
        debug_assert!(min_p > 0.0 && min_p <= 1.0, "min_p must be in (0, 1]");
        if p >= 1.0 {
            return 1.0;
        }
        if p <= min_p {
            return min_p;
        }
        self.value(self.step_of(p)).clamp(min_p, 1.0)
    }

    /// Upper bound on the number of distinct snapped rates in `[min_p, 1]`
    /// (grid points plus the `min_p` floor) — and therefore, with same-`p`
    /// compaction, on the number of epochs a shedder can ever hold.
    pub fn size(&self, min_p: f64) -> usize {
        debug_assert!(min_p > 0.0 && min_p <= 1.0, "min_p must be in (0, 1]");
        let k_max = (-(min_p.log10()) * self.steps_per_decade as f64).floor();
        k_max as usize + 2
    }
}

/// Cached pairwise terms of the epoch self-join decomposition.
///
/// `diag[i]` holds `raw_self_join` of epoch `i`'s sketch; `cross[i][j]`
/// (for `i < j`) holds the raw sketch dot product between epochs `i` and
/// `j`. Entries are recomputed only for epochs whose `version` moved since
/// the last query — between monitoring queries only the current epoch
/// mutates, so a steady-state query costs O(G) dot products, not O(G²).
#[derive(Debug, Default)]
pub(crate) struct QueryCache {
    versions: Vec<Option<u64>>,
    diag: Vec<f64>,
    cross: Vec<Vec<f64>>,
}

impl QueryCache {
    /// Bring the cache in line with `epochs`, recomputing the diagonal and
    /// cross row/column of every epoch whose version changed.
    pub(crate) fn sync(&mut self, epochs: &[Epoch]) -> Result<()> {
        let n = epochs.len();
        // The epoch list only grows, except that a never-filled trailing
        // epoch may be dropped again — truncation handles both directions.
        self.versions.truncate(n);
        self.diag.truncate(n);
        self.cross.truncate(n);
        while self.versions.len() < n {
            self.versions.push(None);
            self.diag.push(0.0);
            self.cross.push(Vec::new());
        }
        for row in &mut self.cross {
            row.resize(n, 0.0);
        }
        for i in 0..n {
            if self.versions[i] == Some(epochs[i].version) {
                continue;
            }
            self.diag[i] = epochs[i].sketch.raw_self_join();
            for (j, other) in epochs.iter().enumerate() {
                if j == i {
                    continue;
                }
                let v = epochs[i].sketch.raw_size_of_join(&other.sketch)?;
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                self.cross[a][b] = v;
            }
            self.versions[i] = Some(epochs[i].version);
        }
        Ok(())
    }

    /// Combine the cached terms exactly as the uncached loop does (same
    /// summation order, so the result is bit-identical to recomputing).
    pub(crate) fn combined_self_join(&self, epochs: &[Epoch]) -> f64 {
        let mut total = 0.0;
        for (i, e) in epochs.iter().enumerate() {
            total += bernoulli_self_join(self.diag[i], e.p, e.kept);
            for (j, e2) in epochs.iter().enumerate().skip(i + 1) {
                total += 2.0 * self.cross[i][j] / (e.p * e2.p);
            }
        }
        total
    }
}

/// The original, uncompacted epoch shedder: one epoch per rate change,
/// O(E) memory, O(E²) sketch dot products per `self_join` query.
///
/// Retained as the testing oracle: fed the same tuples with the same seed
/// RNG it makes bit-identical sampling decisions to [`crate::EpochShedder`]
/// (both draw a fresh geometric skip per effective rate change), so the
/// compacted estimates can be checked against this one exactly. Production
/// code should always use [`crate::EpochShedder`].
#[derive(Debug)]
pub struct ReferenceEpochShedder {
    schema: JoinSchema,
    epochs: Vec<Epoch>,
    skip: GeometricSkip<StdRng>,
    gap: u64,
}

impl ReferenceEpochShedder {
    /// Start a reference shedder with an initial sampling probability.
    pub fn new<R: Rng>(schema: &JoinSchema, p: f64, seed_rng: &mut R) -> Result<Self> {
        let mut skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        let gap = skip.next_gap();
        Ok(Self {
            schema: schema.clone(),
            epochs: vec![Epoch::new(p, schema)],
            skip,
            gap,
        })
    }

    /// Begin a new epoch at probability `p` (no-op if `p` equals the
    /// current epoch's rate). Empty current epochs are reused in place.
    pub fn set_probability<R: Rng>(&mut self, p: f64, seed_rng: &mut R) -> Result<()> {
        let current = self
            .epochs
            .last_mut()
            .expect("at least one epoch always exists");
        if same_p(current.p, p) {
            return Ok(());
        }
        self.skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        self.gap = self.skip.next_gap();
        if current.seen == 0 {
            current.p = p;
        } else {
            self.epochs.push(Epoch::new(p, &self.schema));
        }
        Ok(())
    }

    /// Offer the next stream tuple; returns whether it was sketched.
    #[inline]
    pub fn observe(&mut self, key: u64) -> bool {
        let epoch = self
            .epochs
            .last_mut()
            .expect("at least one epoch always exists");
        epoch.seen += 1;
        if self.gap > 0 {
            self.gap -= 1;
            return false;
        }
        epoch.sketch.update(key, 1);
        epoch.kept += 1;
        epoch.version += 1;
        self.gap = self.skip.next_gap();
        true
    }

    /// Offer a whole batch of tuples to the current epoch; returns how
    /// many were kept. Same skip-sampling algorithm as
    /// [`crate::EpochShedder::feed_batch`], so the two consume their RNGs
    /// identically.
    pub fn feed_batch(&mut self, keys: &[u64]) -> u64 {
        const CHUNK: usize = 256;
        let epoch = self
            .epochs
            .last_mut()
            .expect("at least one epoch always exists");
        let mut kept_keys = [0u64; CHUNK];
        let mut fill = 0usize;
        let mut kept_now = 0u64;
        let mut pos = 0u64;
        let n = keys.len() as u64;
        loop {
            let remaining = n - pos;
            if self.gap >= remaining {
                self.gap -= remaining;
                break;
            }
            pos += self.gap;
            kept_keys[fill] = keys[pos as usize];
            fill += 1;
            kept_now += 1;
            if fill == CHUNK {
                epoch.sketch.update_batch(&kept_keys);
                fill = 0;
            }
            self.gap = self.skip.next_gap();
            pos += 1;
        }
        if fill > 0 {
            epoch.sketch.update_batch(&kept_keys[..fill]);
        }
        epoch.seen += n;
        epoch.kept += kept_now;
        if kept_now > 0 {
            epoch.version += 1;
        }
        kept_now
    }

    /// The probability currently in force.
    pub fn probability(&self) -> f64 {
        self.epochs
            .last()
            .expect("at least one epoch always exists")
            .p
    }

    /// Number of epochs — one per effective rate change, unbounded.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Tuples offered across all epochs.
    pub fn seen(&self) -> u64 {
        self.epochs.iter().map(|e| e.seen).sum()
    }

    /// Tuples sketched across all epochs.
    pub fn kept(&self) -> u64 {
        self.epochs.iter().map(|e| e.kept).sum()
    }

    /// Unbiased self-join estimate: Proposition 14 within epochs,
    /// Proposition 13 across them, recomputed from scratch over all
    /// E(E−1)/2 epoch pairs.
    pub fn self_join(&self) -> Result<f64> {
        let mut total = 0.0;
        for (i, e) in self.epochs.iter().enumerate() {
            total += bernoulli_self_join(e.sketch.raw_self_join(), e.p, e.kept);
            for e2 in &self.epochs[i + 1..] {
                let cross = e.sketch.raw_size_of_join(&e2.sketch)?;
                total += 2.0 * cross / (e.p * e2.p);
            }
        }
        Ok(total)
    }

    /// Unbiased size-of-join estimate against another epoch-shedded
    /// stream (sharing the sketch schema).
    pub fn size_of_join(&self, other: &ReferenceEpochShedder) -> Result<f64> {
        let mut total = 0.0;
        for e in &self.epochs {
            for o in &other.epochs {
                let cross = e.sketch.raw_size_of_join(&o.sketch)?;
                total += cross / (e.p * o.p);
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_snaps_idempotently_and_keeps_endpoints() {
        let grid = RateGrid::default();
        assert_eq!(grid.snap(1.0, 1e-4), 1.0);
        assert_eq!(grid.snap(2.5, 1e-4), 1.0);
        assert_eq!(grid.snap(1e-9, 0.01), 0.01);
        assert_eq!(grid.snap(0.01, 0.01), 0.01);
        for &p in &[0.7, 0.31, 0.1, 0.033, 0.0011] {
            let snapped = grid.snap(p, 1e-4);
            assert_eq!(
                grid.snap(snapped, 1e-4),
                snapped,
                "snap must be idempotent at p = {p}"
            );
            // Within one half-step of the requested rate, geometrically.
            let half_step = 10f64.powf(0.5 / 40.0);
            assert!(snapped / p < half_step && p / snapped < half_step);
        }
    }

    #[test]
    fn grid_size_bounds_distinct_snaps() {
        let grid = RateGrid::new(40).unwrap();
        let min_p = 0.01;
        let mut seen = std::collections::BTreeSet::new();
        let mut p = 1.0f64;
        while p > min_p / 10.0 {
            seen.insert(grid.snap(p, min_p).to_bits());
            p *= 0.993;
        }
        assert!(
            seen.len() <= grid.size(min_p),
            "{} distinct snaps > bound {}",
            seen.len(),
            grid.size(min_p)
        );
        // Two decades at 40 steps each, plus both endpoints.
        assert_eq!(grid.size(min_p), 82);
    }

    #[test]
    fn zero_step_grid_is_rejected() {
        assert!(matches!(
            RateGrid::new(0),
            Err(Error::InvalidGrid {
                steps_per_decade: 0
            })
        ));
        assert!(RateGrid::new(1).is_ok());
    }
}
