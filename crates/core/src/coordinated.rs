//! Hash-coordinated load shedding: Bernoulli sampling that supports
//! **deletions** (turnstile streams).
//!
//! The coin-flip shedder of [`crate::LoadSheddingSketcher`] cannot process
//! a deletion: it has no way to know whether the matching insertion was
//! kept. Coordinated sampling replaces the coin with a hash of a stable
//! *tuple identity*: tuple `t` is kept iff `h(t) < p·2⁶⁴`. The decision is
//! a pure function of the tuple, so an insert and its later delete agree,
//! and the sketch stays an unbiased summary of a p-sample of the *net*
//! stream.
//!
//! Two caveats, both documented by tests:
//!
//! * Tuples sharing an identity share a fate. Identities should be unique
//!   per physical tuple (e.g. a row id); hashing the *join key* instead
//!   turns the scheme into key-level (distinct) sampling, which has a
//!   different — and for join estimation undesirable — analysis.
//! * The paper's Bernoulli analysis assumes tuple-level independence. A
//!   [`Tabulation`] hash (3-wise independent, Chernoff-concentrated) is
//!   used so the deviation from true independence is negligible for the
//!   second-moment analysis.

use crate::error::Result;
use crate::sketch::{JoinSchema, JoinSketch};
use rand::Rng;
use sss_xi::Tabulation;

/// Deletion-safe Bernoulli shedder; see the module docs.
#[derive(Debug, Clone)]
pub struct CoordinatedShedder {
    sketch: JoinSketch,
    hash: Tabulation,
    /// Keep iff `hash(id) < threshold`.
    threshold: u64,
    p: f64,
    seen: u64,
    kept_net: i64,
}

impl CoordinatedShedder {
    /// Create a shedder with inclusion probability `p ∈ (0, 1]`.
    pub fn new<R: Rng>(schema: &JoinSchema, p: f64, seed_rng: &mut R) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(sss_sampling::Error::InvalidProbability(p).into());
        }
        // threshold = p·2⁶⁴, saturating so p = 1 keeps everything.
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * 2f64.powi(64)) as u64
        };
        Ok(Self {
            sketch: schema.sketch(),
            hash: <Tabulation as sss_xi::SignFamily>::random(seed_rng),
            threshold,
            p,
            seen: 0,
            kept_net: 0,
        })
    }

    /// Whether a tuple with this identity belongs to the sample.
    #[inline]
    pub fn is_kept(&self, tuple_id: u64) -> bool {
        self.p >= 1.0 || self.hash.hash(tuple_id) < self.threshold
    }

    /// Offer a tuple event: `count = +1` for an insert, `−1` for a delete
    /// of the tuple with the same identity (and key). Returns whether the
    /// event reached the sketch.
    pub fn observe(&mut self, tuple_id: u64, key: u64, count: i64) -> bool {
        self.seen += 1;
        if !self.is_kept(tuple_id) {
            return false;
        }
        self.sketch.update(key, count);
        self.kept_net += count;
        true
    }

    /// The inclusion probability `p`.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Stream events offered so far (inserts + deletes).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Net kept tuples `|F′|` (inserts minus deletes that hit the sample).
    pub fn kept_net(&self) -> i64 {
        self.kept_net
    }

    /// The underlying sketch.
    pub fn sketch(&self) -> &JoinSketch {
        &self.sketch
    }

    /// Unbiased self-join size estimate of the net stream (Proposition 14
    /// scaling, with `Σf′ = kept_net`).
    pub fn self_join(&self) -> f64 {
        let p2 = self.p * self.p;
        self.sketch.raw_self_join() / p2 - (1.0 - self.p) / p2 * self.kept_net as f64
    }

    /// Unbiased size-of-join estimate against another coordinated shedder
    /// (sharing the sketch schema; the two hashes must be independent,
    /// which `new` guarantees when seeded separately).
    pub fn size_of_join(&self, other: &CoordinatedShedder) -> Result<f64> {
        let raw = self.sketch.raw_size_of_join(&other.sketch)?;
        Ok(raw / (self.p * other.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_probability() {
        let mut r = rng(0);
        let schema = JoinSchema::agms(4, &mut r);
        assert!(CoordinatedShedder::new(&schema, 0.0, &mut r).is_err());
        assert!(CoordinatedShedder::new(&schema, 1.1, &mut r).is_err());
    }

    /// The defining property: deleting exactly what was inserted leaves an
    /// empty sketch, at any p.
    #[test]
    fn deletions_cancel_exactly() {
        let mut r = rng(1);
        let schema = JoinSchema::fagms(2, 64, &mut r);
        let mut shed = CoordinatedShedder::new(&schema, 0.3, &mut r).unwrap();
        for id in 0..10_000u64 {
            shed.observe(id, id % 97, 1);
        }
        for id in 0..10_000u64 {
            shed.observe(id, id % 97, -1);
        }
        assert_eq!(shed.kept_net(), 0);
        assert_eq!(shed.sketch().raw_self_join(), 0.0);
        assert_eq!(shed.self_join(), 0.0);
    }

    /// Insert/delete decisions agree per identity even when interleaved.
    #[test]
    fn decisions_are_stable_per_identity() {
        let mut r = rng(2);
        let schema = JoinSchema::agms(4, &mut r);
        let mut shed = CoordinatedShedder::new(&schema, 0.5, &mut r).unwrap();
        for id in 0..1000u64 {
            let kept_in = shed.observe(id, 7, 1);
            let kept_out = shed.observe(id, 7, -1);
            assert_eq!(kept_in, kept_out, "id {id}");
        }
    }

    #[test]
    fn p_one_keeps_all_identities() {
        let mut r = rng(3);
        let schema = JoinSchema::agms(4, &mut r);
        let shed = CoordinatedShedder::new(&schema, 1.0, &mut r).unwrap();
        assert!((0..10_000u64).all(|id| shed.is_kept(id)));
    }

    #[test]
    fn kept_fraction_tracks_p() {
        let mut r = rng(4);
        let schema = JoinSchema::agms(4, &mut r);
        let shed = CoordinatedShedder::new(&schema, 0.1, &mut r).unwrap();
        let kept = (0..100_000u64).filter(|&id| shed.is_kept(id)).count() as f64;
        assert!(
            (kept / 100_000.0 - 0.1).abs() < 0.01,
            "kept fraction {kept}"
        );
    }

    /// Accuracy on a turnstile stream: insert 400k tuples, delete 100k of
    /// them, estimate the F₂ of the 300k survivors.
    #[test]
    fn estimates_the_net_stream() {
        let mut r = rng(5);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        let mut shed = CoordinatedShedder::new(&schema, 0.25, &mut r).unwrap();
        // 1000 keys; each key gets 400 inserts (ids encode key and copy).
        for key in 0..1000u64 {
            for copy in 0..400u64 {
                shed.observe(key * 1000 + copy, key, 1);
            }
        }
        // Delete the first 100 copies of every key.
        for key in 0..1000u64 {
            for copy in 0..100u64 {
                shed.observe(key * 1000 + copy, key, -1);
            }
        }
        let truth = 1000.0 * 300.0 * 300.0;
        let est = shed.self_join();
        assert!(
            (est - truth).abs() / truth < 0.15,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn join_between_coordinated_streams() {
        let mut r = rng(6);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        let mut f = CoordinatedShedder::new(&schema, 0.5, &mut r).unwrap();
        let mut g = CoordinatedShedder::new(&schema, 0.25, &mut r).unwrap();
        for key in 0..500u64 {
            for copy in 0..80u64 {
                f.observe(key * 100 + copy, key, 1);
            }
        }
        for key in 250..750u64 {
            for copy in 0..60u64 {
                g.observe(key * 100 + copy, key, 1);
            }
        }
        let truth = 250.0 * 80.0 * 60.0;
        let est = f.size_of_join(&g).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est = {est}, truth = {truth}"
        );
    }
}
