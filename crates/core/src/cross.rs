//! Cross-regime size-of-join: any sampled stream against any other.
//!
//! The generic analysis (Proposition 1/9) never required the two relations
//! to use the *same* sampling scheme — only that their samples be
//! independent and that each scheme scale its frequencies linearly
//! (`E[f′ᵢ] = rate·fᵢ`). So a Bernoulli-shedded live stream can be joined
//! against a without-replacement table scan, an i.i.d. model stream
//! against a shedded feed, and so on, with the scaling factor simply the
//! product of the two inverse rates:
//!
//! ```text
//! X = (1 / (rate_F · rate_G)) · S·T
//! ```
//!
//! This is the API for the realistic mixed deployments the paper's three
//! application sections describe separately: the DSMS ingests `F` under
//! load shedding while the online aggregation engine scans the stored
//! relation `G`.

use crate::error::{Error, Result};
use crate::sketch::JoinSketch;
use crate::{CoordinatedShedder, IidStreamSketcher, LoadSheddingSketcher, ScanSketcher};

/// A driver exposing its raw sketch and its effective sampling rate
/// (`E[f′ᵢ]/fᵢ`).
pub trait RatedSketch {
    /// The raw (unscaled) sketch of the sampled tuples.
    fn raw_sketch(&self) -> &JoinSketch;

    /// The linear frequency scaling of the sampling process — `p` for
    /// Bernoulli, `α = m/N` for the fixed-size schemes.
    fn rate(&self) -> f64;
}

impl RatedSketch for LoadSheddingSketcher {
    fn raw_sketch(&self) -> &JoinSketch {
        self.sketch()
    }
    fn rate(&self) -> f64 {
        self.probability()
    }
}

impl RatedSketch for CoordinatedShedder {
    fn raw_sketch(&self) -> &JoinSketch {
        self.sketch()
    }
    fn rate(&self) -> f64 {
        self.probability()
    }
}

impl RatedSketch for IidStreamSketcher {
    fn raw_sketch(&self) -> &JoinSketch {
        self.sketch()
    }
    fn rate(&self) -> f64 {
        self.alpha()
    }
}

impl RatedSketch for ScanSketcher {
    fn raw_sketch(&self) -> &JoinSketch {
        self.sketch()
    }
    fn rate(&self) -> f64 {
        self.progress()
    }
}

/// Unbiased size-of-join estimate between two sampled streams of possibly
/// different sampling regimes.
///
/// # Errors
///
/// [`Error::InsufficientSample`] when either side has rate 0 (nothing
/// observed yet); [`Error::Sketch`] on schema mismatch.
pub fn size_of_join<A: RatedSketch + ?Sized, B: RatedSketch + ?Sized>(a: &A, b: &B) -> Result<f64> {
    let (ra, rb) = (a.rate(), b.rate());
    if ra <= 0.0 || rb <= 0.0 {
        return Err(Error::InsufficientSample { got: 0, need: 1 });
    }
    let raw = a.raw_sketch().raw_size_of_join(b.raw_sketch())?;
    Ok(raw / (ra * rb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::JoinSchema;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sss_sampling::without_replacement::PrefixScan;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Bernoulli-shedded live stream joined against a WOR table scan: the
    /// flagship mixed deployment.
    #[test]
    fn shedded_stream_joins_scanned_table() {
        let mut r = rng(1);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        // Live stream F: keys 0..800 ×50, shedded at p = 0.2.
        let mut live = LoadSheddingSketcher::new(&schema, 0.2, &mut r).unwrap();
        for _ in 0..50 {
            for k in 0..800u64 {
                live.observe(k);
            }
        }
        // Stored table G: keys 400..1200 ×30, scanned 25% of the way.
        let table: Vec<u64> = (400..1200u64)
            .flat_map(|k| std::iter::repeat(k).take(30))
            .collect();
        let scan_order = PrefixScan::new(table.clone(), &mut r);
        let mut scan = ScanSketcher::new(&schema, table.len() as u64).unwrap();
        for &k in scan_order.prefix(table.len() / 4).unwrap() {
            scan.observe(k).unwrap();
        }
        let truth = 400.0 * 50.0 * 30.0; // overlap keys 400..800
        let est = size_of_join(&live, &scan).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est = {est}, truth = {truth}"
        );
    }

    /// All regime pairings produce estimates near truth on one dataset.
    #[test]
    fn every_pairing_is_consistent() {
        let mut r = rng(2);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        let keys: Vec<u64> = (0..500u64)
            .flat_map(|k| std::iter::repeat(k).take(40))
            .collect();
        let truth = 500.0 * 40.0 * 40.0;

        // Bernoulli at 0.5.
        let mut bern = LoadSheddingSketcher::new(&schema, 0.5, &mut r).unwrap();
        for &k in &keys {
            bern.observe(k);
        }
        // Coordinated at 0.4.
        let mut coord = CoordinatedShedder::new(&schema, 0.4, &mut r).unwrap();
        for (id, &k) in keys.iter().enumerate() {
            coord.observe(id as u64, k, 1);
        }
        // WR stream: 30% of the population size in i.i.d. draws.
        let mut iid = IidStreamSketcher::new(&schema, keys.len() as u64).unwrap();
        for _ in 0..keys.len() * 3 / 10 {
            iid.observe(keys[r.random_range(0..keys.len())]);
        }
        // WOR scan of 60%.
        let order = PrefixScan::new(keys.clone(), &mut r);
        let mut scan = ScanSketcher::new(&schema, keys.len() as u64).unwrap();
        for &k in order.prefix(keys.len() * 6 / 10).unwrap() {
            scan.observe(k).unwrap();
        }

        let pairs: Vec<(&str, f64)> = vec![
            ("bern×coord", size_of_join(&bern, &coord).unwrap()),
            ("bern×iid", size_of_join(&bern, &iid).unwrap()),
            ("bern×scan", size_of_join(&bern, &scan).unwrap()),
            ("coord×iid", size_of_join(&coord, &iid).unwrap()),
            ("coord×scan", size_of_join(&coord, &scan).unwrap()),
            ("iid×scan", size_of_join(&iid, &scan).unwrap()),
        ];
        for (name, est) in pairs {
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.3, "{name}: est {est} vs truth {truth} ({rel})");
        }
    }

    #[test]
    fn empty_sides_are_rejected() {
        let mut r = rng(3);
        let schema = JoinSchema::agms(4, &mut r);
        let bern = LoadSheddingSketcher::new(&schema, 0.5, &mut r).unwrap();
        let scan = ScanSketcher::new(&schema, 100).unwrap(); // nothing scanned
        assert!(matches!(
            size_of_join(&bern, &scan),
            Err(Error::InsufficientSample { .. })
        ));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut r = rng(4);
        let s1 = JoinSchema::agms(4, &mut r);
        let s2 = JoinSchema::agms(4, &mut r);
        let mut a = LoadSheddingSketcher::new(&s1, 1.0, &mut r).unwrap();
        let mut b = LoadSheddingSketcher::new(&s2, 1.0, &mut r).unwrap();
        a.observe(1);
        b.observe(1);
        assert!(size_of_join(&a, &b).is_err());
    }

    /// Monte-Carlo unbiasedness of the mixed Bernoulli × WOR estimator,
    /// also validating the mixed-scheme path of the analysis engine.
    #[test]
    fn mixed_regime_unbiasedness_matches_engine() {
        use sss_moments::engine;
        use sss_moments::scheme::{Bernoulli, WithoutReplacement};
        use sss_moments::FrequencyVector;

        let f = FrequencyVector::from_counts(vec![6u32, 3, 8, 1, 5, 2]);
        let g = FrequencyVector::from_counts(vec![2u32, 7, 1, 4, 3, 6]);
        let truth = f.dot(&g);
        let p = 0.4;
        let m_g = 12u64;
        let scheme_f = Bernoulli::new(p).unwrap();
        let scheme_g = WithoutReplacement::new(m_g, g.total() as u64).unwrap();
        let n_avg = 16;
        let theory = engine::sketch_sample_sj(&scheme_f, &f, &scheme_g, &g, n_avg).unwrap();
        assert!(
            (theory.mean - truth).abs() < 1e-9,
            "engine mixed-scheme mean"
        );

        // Simulate with real drivers.
        let g_tuples: Vec<u64> = (0..6u64)
            .flat_map(|k| std::iter::repeat(k).take(g.get(k as usize) as usize))
            .collect();
        let reps = 3000;
        let mut r = rng(5);
        let mut acc = 0.0;
        let mut acc_sq = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(n_avg, &mut r);
            let mut bern = LoadSheddingSketcher::new(&schema, p, &mut r).unwrap();
            for k in 0..6u64 {
                for _ in 0..f.get(k as usize) as u64 {
                    bern.observe(k);
                }
            }
            let order = PrefixScan::new(g_tuples.clone(), &mut r);
            let mut scan = ScanSketcher::new(&schema, g_tuples.len() as u64).unwrap();
            for &k in order.prefix(m_g as usize).unwrap() {
                scan.observe(k).unwrap();
            }
            let est = size_of_join(&bern, &scan).unwrap();
            acc += est;
            acc_sq += est * est;
        }
        let mean = acc / reps as f64;
        let var = acc_sq / reps as f64 - mean * mean;
        assert!(
            (mean - truth).abs() <= 6.0 * (theory.variance / reps as f64).sqrt(),
            "mixed mean {mean} vs truth {truth}"
        );
        assert!(
            (var - theory.variance).abs() <= 0.25 * theory.variance,
            "mixed var {var} vs engine {}",
            theory.variance
        );
    }
}
