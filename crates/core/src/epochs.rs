//! Epoch-based shedding: unbiased estimates under a **time-varying**
//! sampling rate, in bounded memory.
//!
//! An adaptive load shedder changes `p` as the arrival rate drifts, but
//! the paper's Proposition 14 scaling assumes one fixed `p`. The fix is to
//! segment the stream into *epochs* of constant `p` and keep one sketch
//! per epoch (same schema). Writing `fᵢ = Σ_e fᵢᵉ` for the per-epoch
//! frequencies, the self-join size splits over epoch pairs:
//!
//! ```text
//! F₂ = Σ_{e} Σᵢ (fᵢᵉ)²  +  Σ_{e ≠ e′} Σᵢ fᵢᵉ fᵢᵉ′
//! ```
//!
//! and each piece has an unbiased sketch-over-samples estimator from the
//! paper: the diagonal terms via Proposition 14 (self-join over a
//! Bernoulli sample at `p_e`, with its additive correction), the
//! off-diagonal terms via Proposition 13 (size of join between two
//! *independent* Bernoulli samples at `p_e`, `p_e′` — independence holds
//! because the epochs cover disjoint stream segments). Everything reuses
//! the single shared sketch schema, so the combination is exact linear
//! algebra over the same counters.
//!
//! Two additions keep long-running pipelines bounded (see
//! [`crate::compaction`] for the full argument):
//!
//! * **Same-`p` compaction.** When a rate recurs, the shedder resumes the
//!   epoch that already accumulated at that rate instead of opening a new
//!   one. This is exact: revisiting an epoch just adds more independently
//!   Bernoulli(`p`)-sampled tuples to the same sketch, and `(A+B)²` expands
//!   by linearity to the same diagonal + cross terms the separate epochs
//!   would contribute. Memory is therefore O(#distinct rates), not
//!   O(#rate changes) — with a quantized controller
//!   ([`crate::compaction::RateGrid`]), a hard constant.
//! * **Cross-term caching.** `self_join()` memoizes the pairwise sketch
//!   dot products and recomputes only the rows of epochs that changed
//!   since the last query, so a per-batch monitoring loop pays O(G) sketch
//!   dot products per query instead of O(G²).
//!
//! The same decomposition gives the size of join between two epoch-shedded
//! streams: `Σ_{e,e′} (1/(p_e q_e′))·S_e·T_e′` with no diagonal
//! correction, since the two relations' samples are always independent.
//!
//! The pre-compaction implementation survives as
//! [`crate::compaction::ReferenceEpochShedder`], the bit-identity oracle
//! for the property tests.

use crate::compaction::QueryCache;
use crate::error::{Error, Result};
use crate::portable::{TAG_AGMS, TAG_EPOCHS, TAG_FAGMS};
use crate::shedding::{bernoulli_self_join, skip_sample_batch};
use crate::sketch::{JoinSchema, JoinSketch};
use crate::slim::SlimJoin;
use crate::summary::Portable;
use crate::wire;
use rand::rngs::StdRng;
use rand::Rng;
use sss_sampling::bernoulli::GeometricSkip;
use sss_sketch::Estimate;
use std::cell::RefCell;

/// One constant-`p` stream segment (possibly several non-contiguous
/// segments after compaction — the union is still a Bernoulli(`p`) sample
/// of their combined tuples).
#[derive(Debug, Clone)]
pub(crate) struct Epoch {
    pub(crate) p: f64,
    pub(crate) sketch: JoinSketch,
    pub(crate) kept: u64,
    pub(crate) seen: u64,
    /// Bumped whenever the sketch content changes; lets the query cache
    /// skip epochs that are unchanged since the last query.
    pub(crate) version: u64,
}

impl Epoch {
    pub(crate) fn new(p: f64, schema: &JoinSchema) -> Self {
        Self {
            p,
            sketch: schema.sketch(),
            kept: 0,
            seen: 0,
            version: 0,
        }
    }
}

/// Whether two sampling rates are the same epoch rate (relative-epsilon
/// comparison, shared by the compacted and reference shedders).
#[inline]
pub(crate) fn same_p(a: f64, b: f64) -> bool {
    (a - b).abs() < f64::EPSILON * b.abs()
}

/// A load shedder whose sampling rate may change between epochs while the
/// overall estimate stays unbiased, holding at most one epoch per
/// distinct rate.
#[derive(Debug)]
pub struct EpochShedder {
    schema: JoinSchema,
    /// Invariant: every epoch except possibly the last has `seen > 0`,
    /// and no two epochs share a rate (compaction).
    epochs: Vec<Epoch>,
    /// Index of the epoch currently receiving tuples.
    current: usize,
    skip: GeometricSkip<StdRng>,
    gap: u64,
    cache: RefCell<QueryCache>,
}

impl EpochShedder {
    /// Start a shedder with an initial sampling probability.
    pub fn new<R: Rng>(schema: &JoinSchema, p: f64, seed_rng: &mut R) -> Result<Self> {
        let mut skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        let gap = skip.next_gap();
        Ok(Self {
            schema: schema.clone(),
            epochs: vec![Epoch::new(p, schema)],
            current: 0,
            skip,
            gap,
            cache: RefCell::new(QueryCache::default()),
        })
    }

    /// Switch to probability `p` (no-op if `p` equals the current rate).
    ///
    /// If an epoch already accumulated at `p`, it is resumed — the union
    /// of its segments is still one Bernoulli(`p`) sample, so the estimate
    /// stays exactly unbiased while the epoch count stays bounded by the
    /// number of distinct rates. Empty current epochs are reused in place
    /// (or dropped when the target rate already has an epoch).
    pub fn set_probability<R: Rng>(&mut self, p: f64, seed_rng: &mut R) -> Result<()> {
        if same_p(self.epochs[self.current].p, p) {
            return Ok(());
        }
        self.skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        self.gap = self.skip.next_gap();
        if let Some(existing) = self.epochs.iter().position(|e| same_p(e.p, p)) {
            if self.epochs[self.current].seen == 0 {
                // A just-created epoch that never saw traffic; it is always
                // the trailing entry, so dropping it cannot shift `existing`.
                debug_assert_eq!(self.current, self.epochs.len() - 1);
                self.epochs.pop();
            }
            self.current = existing;
        } else if self.epochs[self.current].seen == 0 {
            self.epochs[self.current].p = p;
        } else {
            self.epochs.push(Epoch::new(p, &self.schema));
            self.current = self.epochs.len() - 1;
        }
        Ok(())
    }

    /// Offer the next stream tuple; returns whether it was sketched.
    #[inline]
    pub fn observe(&mut self, key: u64) -> bool {
        let epoch = &mut self.epochs[self.current];
        epoch.seen += 1;
        if self.gap > 0 {
            self.gap -= 1;
            return false;
        }
        epoch.sketch.update(key, 1);
        epoch.kept += 1;
        epoch.version += 1;
        self.gap = self.skip.next_gap();
        true
    }

    /// Offer a whole batch of tuples to the current epoch; returns how many
    /// were kept.
    ///
    /// Bit-identical to calling [`EpochShedder::observe`] per key — same
    /// geometric-gap draw order, same sketch state via the batched update
    /// kernel — through the same skip-sampling kernel as
    /// [`crate::LoadSheddingSketcher::feed_batch`]
    /// (`crate::shedding::skip_sample_batch`). The whole batch lands in the
    /// epoch in force when the call starts; rate changes take effect
    /// between batches via [`EpochShedder::set_probability`].
    pub fn feed_batch(&mut self, keys: &[u64]) -> u64 {
        let epoch = &mut self.epochs[self.current];
        let kept_now = skip_sample_batch(&mut epoch.sketch, &mut self.skip, &mut self.gap, keys);
        epoch.seen += keys.len() as u64;
        epoch.kept += kept_now;
        if kept_now > 0 {
            epoch.version += 1;
        }
        kept_now
    }

    /// The probability currently in force.
    pub fn probability(&self) -> f64 {
        self.epochs[self.current].p
    }

    /// The smallest sampling rate any epoch ran at — the dominant
    /// contributor to the sampling noise of combined estimates, and the
    /// rate the conservative plug-in variances are evaluated at.
    pub fn min_probability(&self) -> f64 {
        self.epochs.iter().map(|e| e.p).fold(1.0, f64::min)
    }

    /// Number of live epochs — at most one per distinct rate ever used
    /// (bounded by the rate grid size when rates come from a quantized
    /// controller), *not* the number of rate changes.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Tuples offered across all epochs.
    pub fn seen(&self) -> u64 {
        self.epochs.iter().map(|e| e.seen).sum()
    }

    /// Tuples sketched across all epochs.
    pub fn kept(&self) -> u64 {
        self.epochs.iter().map(|e| e.kept).sum()
    }

    /// Unbiased self-join size estimate of the *entire* stream, combining
    /// Proposition 14 within epochs and Proposition 13 across them.
    ///
    /// Pairwise cross terms are served from a cache that only recomputes
    /// the rows of epochs modified since the previous query, so calling
    /// this per batch from a monitoring loop costs O(G) sketch dot
    /// products per call (G = number of distinct rates) instead of O(G²).
    /// The result is bit-identical to [`EpochShedder::self_join_uncached`].
    pub fn self_join(&self) -> Result<f64> {
        let mut cache = self.cache.borrow_mut();
        cache.sync(&self.epochs)?;
        Ok(cache.combined_self_join(&self.epochs))
    }

    /// The cache-free O(G²) self-join path: recomputes every diagonal and
    /// cross term from the sketches. Retained as the oracle the cached
    /// [`EpochShedder::self_join`] is tested (and benchmarked) against.
    pub fn self_join_uncached(&self) -> Result<f64> {
        let mut total = 0.0;
        for (i, e) in self.epochs.iter().enumerate() {
            total += bernoulli_self_join(e.sketch.raw_self_join(), e.p, e.kept);
            for e2 in &self.epochs[i + 1..] {
                let cross = e.sketch.raw_size_of_join(&e2.sketch)?;
                total += 2.0 * cross / (e.p * e2.p);
            }
        }
        Ok(total)
    }

    /// Unbiased size-of-join estimate against a plain sketch of a
    /// **disjoint** stream segment that was itself Bernoulli(`q`)-sampled
    /// (pass `q = 1` for a full-rate sketch), sharing the schema:
    ///
    /// ```text
    /// Σ_e (1/(p_e·q)) · Sₑ·T
    /// ```
    ///
    /// Every epoch's sample is independent of `other`'s sample (disjoint
    /// segments), so each term is a Proposition 13 estimator and the sum
    /// is unbiased for `Σᵢ fᵢ·gᵢ`. This is the cross term a concurrent
    /// engine needs when part of a stream flows full-rate into shard
    /// sketches while overflow is routed through an epoch shedder.
    ///
    /// # Errors
    ///
    /// Rejects `q ∉ (0, 1]` and schema mismatches.
    pub fn size_of_join_sketch(&self, other: &JoinSketch, q: f64) -> Result<f64> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(sss_sampling::Error::InvalidProbability(q).into());
        }
        let mut total = 0.0;
        for e in &self.epochs {
            total += e.sketch.raw_size_of_join(other)? / (e.p * q);
        }
        Ok(total)
    }

    /// Unbiased size-of-join estimate against another epoch-shedded stream
    /// (sharing the sketch schema).
    pub fn size_of_join(&self, other: &EpochShedder) -> Result<f64> {
        let mut total = 0.0;
        for e in &self.epochs {
            for o in &other.epochs {
                let cross = e.sketch.raw_size_of_join(&o.sketch)?;
                total += cross / (e.p * o.p);
            }
        }
        Ok(total)
    }

    /// The per-lane basic estimates of the combined self-join: for each
    /// independent sketch lane `k`, the Prop.-14-corrected diagonal of
    /// every epoch plus the `2/(p_e·p_e′)`-scaled pairwise cross terms —
    /// the same decomposition as [`EpochShedder::self_join_uncached`],
    /// restricted to lane `k`. Combining the lanes (mean or median by
    /// backend) recovers an estimate of the full-stream self-join; their
    /// spread measures the sketch noise of the combined estimator.
    ///
    /// O(G²·lanes) sketch work (G = epoch count, bounded by compaction).
    ///
    /// # Errors
    ///
    /// Propagates schema mismatches (impossible for internally built
    /// epochs).
    pub fn self_join_basics(&self) -> Result<Vec<f64>> {
        let mut lanes = vec![0.0; self.epochs[0].sketch.self_join_basics().len()];
        for (i, e) in self.epochs.iter().enumerate() {
            for (lane, d) in lanes.iter_mut().zip(e.sketch.self_join_basics()) {
                *lane += bernoulli_self_join(d, e.p, e.kept);
            }
            for e2 in &self.epochs[i + 1..] {
                let scale = 2.0 / (e.p * e2.p);
                let cross = e.sketch.size_of_join_basics(&e2.sketch)?;
                for (lane, c) in lanes.iter_mut().zip(cross) {
                    *lane += scale * c;
                }
            }
        }
        Ok(lanes)
    }

    /// The sampling-noise part of the combined self-join variance: the
    /// Bernoulli plug-in summed per epoch (epoch samples are independent),
    /// each evaluated at that epoch's rate, seen count, and corrected
    /// sketch estimate. Cross-epoch terms reuse the same samples as the
    /// diagonals, so their extra sampling covariance is not modeled — the
    /// per-epoch plug-ins (F₃ ≤ F₂^{3/2}, clamped) are conservative
    /// precisely to absorb that.
    pub fn sampling_variance(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| {
                let f2_hat = bernoulli_self_join(e.sketch.raw_self_join(), e.p, e.kept);
                sss_sampling::bernoulli_self_join_variance_plugin(e.p, e.seen, f2_hat)
            })
            .sum()
    }

    /// Typed combined self-join estimate: value bit-identical to
    /// [`EpochShedder::self_join`] (the cached path), lanes from
    /// [`EpochShedder::self_join_basics`], variance = backend-combined
    /// lane spread plus [`EpochShedder::sampling_variance`].
    ///
    /// # Errors
    ///
    /// As for [`EpochShedder::self_join`].
    pub fn self_join_estimate(&self) -> Result<Estimate> {
        let value = self.self_join()?;
        let lanes = self.self_join_basics()?;
        let af = self.schema.averaging_factor() as f64;
        let single = 2.0 * value * value / af;
        let e = self.epochs[0].sketch.combine_lanes(value, lanes, single);
        Ok(e.plus_variance(self.sampling_variance()))
    }

    /// Per-lane basics of [`EpochShedder::size_of_join_sketch`]: the
    /// `1/(p_e·q)`-scaled cross lanes summed over epochs.
    ///
    /// # Errors
    ///
    /// Rejects `q ∉ (0, 1]` and schema mismatches.
    pub fn size_of_join_sketch_basics(&self, other: &JoinSketch, q: f64) -> Result<Vec<f64>> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(sss_sampling::Error::InvalidProbability(q).into());
        }
        let mut lanes = vec![0.0; other.self_join_basics().len()];
        for e in &self.epochs {
            let scale = 1.0 / (e.p * q);
            for (lane, c) in lanes.iter_mut().zip(e.sketch.size_of_join_basics(other)?) {
                *lane += scale * c;
            }
        }
        Ok(lanes)
    }

    /// Typed counterpart of [`EpochShedder::size_of_join_sketch`]: value
    /// bit-identical to the scalar path; variance = backend-combined lane
    /// spread plus a two-sided Bernoulli sampling plug-in evaluated at the
    /// *smallest* epoch rate (the dominant noise contributor — a
    /// deliberate conservative simplification of the per-epoch mixture)
    /// with `other`'s F₂ bounded by `raw_self_join()/q²`.
    ///
    /// # Errors
    ///
    /// Rejects `q ∉ (0, 1]` and schema mismatches.
    pub fn size_of_join_sketch_estimate(&self, other: &JoinSketch, q: f64) -> Result<Estimate> {
        let value = self.size_of_join_sketch(other, q)?;
        let lanes = self.size_of_join_sketch_basics(other, q)?;
        let af = self.schema.averaging_factor() as f64;
        let f2_self = self.self_join()?.max(0.0);
        let f2_other = other.raw_self_join().max(0.0) / (q * q);
        let single = (f2_self * f2_other + value * value) / af;
        let sampling = sss_sampling::bernoulli_size_of_join_variance_plugin(
            self.min_probability(),
            q,
            f2_self,
            f2_other,
            value,
        );
        Ok(other
            .combine_lanes(value, lanes, single)
            .plus_variance(sampling))
    }

    /// Per-lane basics of [`EpochShedder::size_of_join`]: all epoch-pair
    /// cross lanes, each scaled by `1/(p_e·p_o)`.
    ///
    /// # Errors
    ///
    /// Schema mismatch between the two shedders' sketches.
    pub fn size_of_join_basics(&self, other: &EpochShedder) -> Result<Vec<f64>> {
        let mut lanes = vec![0.0; self.epochs[0].sketch.self_join_basics().len()];
        for e in &self.epochs {
            for o in &other.epochs {
                let scale = 1.0 / (e.p * o.p);
                for (lane, c) in lanes
                    .iter_mut()
                    .zip(e.sketch.size_of_join_basics(&o.sketch)?)
                {
                    *lane += scale * c;
                }
            }
        }
        Ok(lanes)
    }

    /// Typed counterpart of [`EpochShedder::size_of_join`] against another
    /// epoch-shedded stream. Value bit-identical to the scalar path;
    /// sampling plug-in evaluated at both sides' smallest epoch rates.
    ///
    /// # Errors
    ///
    /// Schema mismatch between the two shedders' sketches.
    pub fn size_of_join_estimate(&self, other: &EpochShedder) -> Result<Estimate> {
        let value = self.size_of_join(other)?;
        let lanes = self.size_of_join_basics(other)?;
        let af = self.schema.averaging_factor() as f64;
        let f2_self = self.self_join()?.max(0.0);
        let f2_other = other.self_join()?.max(0.0);
        let single = (f2_self * f2_other + value * value) / af;
        let sampling = sss_sampling::bernoulli_size_of_join_variance_plugin(
            self.min_probability(),
            other.min_probability(),
            f2_self,
            f2_other,
            value,
        );
        Ok(self.epochs[0]
            .sketch
            .combine_lanes(value, lanes, single)
            .plus_variance(sampling))
    }

    /// Collapse all epochs into a single merged sketch **only valid when
    /// every epoch used the same `p`** — the fast path for steady load.
    /// With compaction that means exactly one epoch.
    ///
    /// # Errors
    ///
    /// [`Error::IncompatibleEstimators`] if epochs used different rates.
    pub fn merged_sketch(&self) -> Result<(JoinSketch, f64, u64)> {
        let p = self.epochs[0].p;
        if self
            .epochs
            .iter()
            .any(|e| (e.p - p).abs() > f64::EPSILON * p)
        {
            return Err(Error::IncompatibleEstimators);
        }
        let mut merged = self.schema.sketch();
        let mut kept = 0;
        for e in &self.epochs {
            merged.merge(&e.sketch)?;
            kept += e.kept;
        }
        Ok((merged, p, kept))
    }

    /// Project the shedder to a [`SlimJoin`] read replica: the combined
    /// [`EpochShedder::self_join_estimate`] (value, per-lane basics,
    /// stacked sketch + sampling variance) plus this shedder's
    /// configuration fingerprint. The replica answers `self_join()`
    /// bit-identically to the fat shedder at projection time in O(lanes)
    /// bytes, however many epochs the fat side holds.
    ///
    /// # Errors
    ///
    /// As for [`EpochShedder::self_join_estimate`].
    pub fn slim(&self) -> Result<SlimJoin> {
        Ok(SlimJoin::project(
            Portable::fingerprint(self),
            self.self_join_estimate()?,
        ))
    }
}

/// The wire body of an [`EpochShedder`]: the schema plus every epoch in
/// parallel columns (the vendored serde backend has no tuple impls).
/// Sampling probabilities travel as IEEE-754 bit patterns per the
/// [`crate::wire`] determinism invariant.
#[derive(serde::Serialize, serde::Deserialize)]
struct EpochShedderRepr {
    schema: JoinSchema,
    epoch_p_bits: Vec<u64>,
    epoch_sketches: Vec<JoinSketch>,
    epoch_kept: Vec<u64>,
    epoch_seen: Vec<u64>,
    epoch_versions: Vec<u64>,
    current: u64,
    gap: u64,
}

/// Wire encoding for epoch-shedded state.
///
/// The geometric-skip RNG is **not** serialized — `StdRng` has no stable
/// wire representation. [`Portable::decode`] reconstructs the sampler at
/// the current epoch's rate from a seed derived deterministically from the
/// serialized state, and carries the pending `gap` over, so a decoded
/// shedder (a) is deterministic given the bytes and (b) keeps drawing
/// exact `Bernoulli(p)` inclusion decisions — every estimate stays
/// unbiased. What is *not* preserved is the source's private coin
/// sequence: a decoded shedder and its live source diverge on which
/// individual future tuples they keep. All query state (epochs, sketches,
/// counts) round-trips exactly, so estimates at decode time are
/// bit-identical.
impl Portable for EpochShedder {
    const KIND: &'static str = "epochs";
    const FORMAT: u32 = 1;

    /// Fingerprint of the shared sketch schema (all epochs use it), tagged
    /// so it can never collide with a bare [`JoinSketch`] payload of the
    /// same schema.
    fn fingerprint(&self) -> u64 {
        let schema_words = match &self.schema {
            JoinSchema::Agms(s) => vec![TAG_AGMS, s.id(), s.len() as u64],
            JoinSchema::Fagms(s) => {
                vec![TAG_FAGMS, s.id(), s.depth() as u64, s.width() as u64]
            }
        };
        let mut words = vec![TAG_EPOCHS];
        words.extend(schema_words);
        wire::fingerprint(&words)
    }

    fn encode(&self) -> Result<Vec<u8>> {
        let repr = EpochShedderRepr {
            schema: self.schema.clone(),
            epoch_p_bits: self.epochs.iter().map(|e| wire::bits_of(e.p)).collect(),
            epoch_sketches: self.epochs.iter().map(|e| e.sketch.clone()).collect(),
            epoch_kept: self.epochs.iter().map(|e| e.kept).collect(),
            epoch_seen: self.epochs.iter().map(|e| e.seen).collect(),
            epoch_versions: self.epochs.iter().map(|e| e.version).collect(),
            current: self.current as u64,
            gap: self.gap,
        };
        wire::encode_envelope(Self::KIND, Self::FORMAT, Portable::fingerprint(self), repr)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let repr: EpochShedderRepr = wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)?;
        let n = repr.epoch_sketches.len();
        if n == 0
            || repr.epoch_p_bits.len() != n
            || repr.epoch_kept.len() != n
            || repr.epoch_seen.len() != n
            || repr.epoch_versions.len() != n
        {
            return Err(Error::Wire {
                detail: "epochs payload has mismatched or empty columns".into(),
            });
        }
        let current = repr.current as usize;
        if current >= n {
            return Err(Error::Wire {
                detail: format!("current epoch {current} out of range (have {n})"),
            });
        }
        let mut epochs = Vec::with_capacity(n);
        for i in 0..n {
            let p = wire::f64_of(repr.epoch_p_bits[i]);
            if !(p > 0.0 && p <= 1.0) {
                return Err(Error::Wire {
                    detail: format!("epoch {i} carries invalid probability {p}"),
                });
            }
            epochs.push(Epoch {
                p,
                sketch: repr.epoch_sketches[i].clone(),
                kept: repr.epoch_kept[i],
                seen: repr.epoch_seen[i],
                version: repr.epoch_versions[i],
            });
        }
        // Deterministic reseed (see the impl docs): the coin stream is a
        // pure function of the serialized state, seeded off the counts so
        // distinct snapshots draw distinct streams.
        let seed = wire::fingerprint(&[
            TAG_EPOCHS,
            repr.gap,
            repr.current,
            epochs.iter().map(|e| e.seen).sum::<u64>(),
            epochs.iter().map(|e| e.kept).sum::<u64>(),
        ]);
        use rand::SeedableRng;
        let mut seed_rng = StdRng::seed_from_u64(seed);
        let skip = GeometricSkip::<StdRng>::new(epochs[current].p, &mut seed_rng)?;
        Ok(Self {
            schema: repr.schema,
            epochs,
            current,
            skip,
            gap: repr.gap,
            cache: RefCell::new(QueryCache::default()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::ReferenceEpochShedder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn estimates_match_scalar_queries_bit_for_bit() {
        let mut r = rng(42);
        let schema = JoinSchema::fagms(5, 256, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.8, &mut r).unwrap();
        for k in 0..20_000u64 {
            shed.observe(k % 300);
            if k == 7_000 {
                shed.set_probability(0.4, &mut r).unwrap();
            }
            if k == 14_000 {
                shed.set_probability(0.6, &mut r).unwrap();
            }
        }
        assert!(shed.epoch_count() > 1);
        let e = shed.self_join_estimate().unwrap();
        assert_eq!(e.value.to_bits(), shed.self_join().unwrap().to_bits());
        assert!(e.variance.is_finite() && e.variance > 0.0);
        assert_eq!(e.basics.len(), 5);

        let mut other = schema.sketch();
        for k in 0..5_000u64 {
            other.update(k % 300, 1);
        }
        let es = shed.size_of_join_sketch_estimate(&other, 1.0).unwrap();
        assert_eq!(
            es.value.to_bits(),
            shed.size_of_join_sketch(&other, 1.0).unwrap().to_bits()
        );
        assert!(es.variance.is_finite());

        let mut shed2 = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        for k in 0..10_000u64 {
            shed2.observe(k % 300);
        }
        let ee = shed.size_of_join_estimate(&shed2).unwrap();
        assert_eq!(
            ee.value.to_bits(),
            shed.size_of_join(&shed2).unwrap().to_bits()
        );
    }

    /// The lane decomposition must re-combine to (approximately — the
    /// summation order differs) the scalar combined estimate, and the mean
    /// path exactly distributes over lanes.
    #[test]
    fn self_join_basics_recombine_to_the_combined_estimate() {
        let mut r = rng(43);
        let schema = JoinSchema::agms(16, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.9, &mut r).unwrap();
        for k in 0..8_000u64 {
            shed.observe(k % 100);
            if k == 4_000 {
                shed.set_probability(0.5, &mut r).unwrap();
            }
        }
        let lanes = shed.self_join_basics().unwrap();
        assert_eq!(lanes.len(), 16);
        let combined: f64 = lanes.iter().sum::<f64>() / lanes.len() as f64;
        let scalar = shed.self_join().unwrap();
        assert!(
            (combined - scalar).abs() <= scalar.abs() * 1e-9 + 1e-6,
            "lanes {combined} vs scalar {scalar}"
        );
    }

    #[test]
    fn sampling_variance_is_zero_without_shedding() {
        let mut r = rng(44);
        let schema = JoinSchema::agms(8, &mut r);
        let mut shed = EpochShedder::new(&schema, 1.0, &mut r).unwrap();
        for k in 0..1_000u64 {
            shed.observe(k % 50);
        }
        assert_eq!(shed.sampling_variance(), 0.0);
        // Shedding makes it strictly positive.
        let mut lossy = EpochShedder::new(&schema, 0.3, &mut r).unwrap();
        for k in 0..1_000u64 {
            lossy.observe(k % 50);
        }
        assert!(lossy.sampling_variance() > 0.0);
    }

    #[test]
    fn single_epoch_matches_plain_shedder_scaling() {
        let mut r = rng(1);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        let mut shed = EpochShedder::new(&schema, 1.0, &mut r).unwrap();
        for k in 0..50_000u64 {
            shed.observe(k % 500);
        }
        assert_eq!(shed.epoch_count(), 1);
        assert_eq!(shed.kept(), 50_000);
        // p = 1: exact.
        let truth = 500.0 * 100.0 * 100.0;
        assert!((shed.self_join().unwrap() - truth).abs() / truth < 0.05);
    }

    #[test]
    fn probability_changes_create_epochs_lazily() {
        let mut r = rng(2);
        let schema = JoinSchema::agms(4, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        // Change before any tuple: reuse the empty epoch.
        shed.set_probability(0.25, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 1);
        assert_eq!(shed.probability(), 0.25);
        shed.observe(1);
        // Same p: no new epoch.
        shed.set_probability(0.25, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 1);
        // Different p after traffic: new epoch.
        shed.set_probability(0.5, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 2);
    }

    /// Compaction: revisiting a rate resumes its epoch instead of opening
    /// a new one, and an untouched trailing epoch is dropped on the way.
    #[test]
    fn recurring_rates_are_compacted() {
        let mut r = rng(20);
        let schema = JoinSchema::agms(4, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        shed.observe(1);
        shed.set_probability(0.25, &mut r).unwrap();
        shed.observe(2);
        shed.set_probability(0.5, &mut r).unwrap(); // revisit epoch 0
        assert_eq!(shed.epoch_count(), 2);
        assert_eq!(shed.probability(), 0.5);
        shed.observe(3);
        // A rate change that never sees traffic leaves no epoch behind.
        shed.set_probability(0.1, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 3);
        shed.set_probability(0.25, &mut r).unwrap(); // empty 0.1 epoch dropped
        assert_eq!(shed.epoch_count(), 2);
        assert_eq!(shed.probability(), 0.25);
        // 1000 alternations never grow past the two distinct rates.
        for i in 0..1000u64 {
            let p = if i % 2 == 0 { 0.5 } else { 0.25 };
            shed.set_probability(p, &mut r).unwrap();
            shed.observe(i);
        }
        assert_eq!(shed.epoch_count(), 2);
    }

    /// The headline property: an estimate over epochs with *different*
    /// sampling rates is still unbiased.
    #[test]
    fn varying_rates_stay_unbiased() {
        let mut r = rng(3);
        // Relation: 40 keys, key k appears 3(k+1) times, split across
        // three epochs with different rates.
        let truth: f64 = (1..=40u64)
            .map(|f| (3.0 * f as f64) * (3.0 * f as f64))
            .sum();
        let reps = 600;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut shed = EpochShedder::new(&schema, 0.9, &mut r).unwrap();
            for (epoch, p) in [(0u64, 0.9), (1, 0.3), (2, 0.6)] {
                shed.set_probability(p, &mut r).unwrap();
                for k in 0..40u64 {
                    for _ in 0..=k {
                        shed.observe(k);
                    }
                }
                let _ = epoch;
            }
            acc += shed.self_join().unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.08,
            "mean = {mean}, truth = {truth}"
        );
    }

    #[test]
    fn epoch_join_between_streams_is_unbiased() {
        let mut r = rng(4);
        // F: keys 0..30 ×4 (two epochs at different rates);
        // G: keys 15..45 ×20 (one epoch). Overlap: 15 keys.
        let truth = 15.0 * 4.0 * 20.0;
        let reps = 800;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut f = EpochShedder::new(&schema, 0.8, &mut r).unwrap();
            let mut g = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
            // F in two epochs of 2 copies each = 4 copies per key.
            for (p, copies) in [(0.8, 2u64), (0.4, 2)] {
                f.set_probability(p, &mut r).unwrap();
                for k in 0..30u64 {
                    for _ in 0..copies {
                        f.observe(k);
                    }
                }
            }
            for k in 15..45u64 {
                for _ in 0..20u64 {
                    g.observe(k);
                }
            }
            acc += f.size_of_join(&g).unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }

    /// The batched path must replay the scalar path exactly, including
    /// across epoch changes between batches — and compaction must keep the
    /// recurring rates (0.1 and 0.4 appear twice) in single epochs.
    #[test]
    fn feed_batch_is_bit_identical_to_observe() {
        let mut r = rng(10);
        let schema = JoinSchema::fagms(1, 512, &mut r);
        let mut seed_a = rng(11);
        let mut seed_b = rng(11);
        let mut scalar = EpochShedder::new(&schema, 0.4, &mut seed_a).unwrap();
        let mut batched = EpochShedder::new(&schema, 0.4, &mut seed_b).unwrap();
        let keys: Vec<u64> = (0..20_000u64).map(|i| (i * 2_654_435_761) % 300).collect();
        for (i, (batch, p)) in keys.chunks(4999).zip([0.4, 0.1, 0.8, 0.1, 0.4]).enumerate() {
            scalar.set_probability(p, &mut seed_a).unwrap();
            batched.set_probability(p, &mut seed_b).unwrap();
            for &k in batch {
                scalar.observe(k);
            }
            batched.feed_batch(batch);
            assert_eq!(scalar.kept(), batched.kept(), "batch {i}");
        }
        assert_eq!(scalar.epoch_count(), 3, "three distinct rates");
        assert_eq!(scalar.epoch_count(), batched.epoch_count());
        assert_eq!(scalar.seen(), batched.seen());
        assert_eq!(
            scalar.self_join().unwrap(),
            batched.self_join().unwrap(),
            "identical epochs must give identical estimates"
        );
    }

    /// The cached query path must agree with the cache-free recomputation
    /// exactly, at every point of an interleaved update/query sequence.
    #[test]
    fn cached_query_matches_uncached_under_interleaving() {
        let mut r = rng(30);
        let schema = JoinSchema::fagms(2, 256, &mut r);
        let mut shed = EpochShedder::new(&schema, 1.0, &mut r).unwrap();
        let ps = [1.0, 0.5, 0.25, 0.5, 0.125, 1.0, 0.25];
        for (round, p) in ps.iter().enumerate() {
            shed.set_probability(*p, &mut r).unwrap();
            let batch: Vec<u64> = (0..2_000u64)
                .map(|i| (i * 31 + round as u64) % 100)
                .collect();
            shed.feed_batch(&batch);
            assert_eq!(
                shed.self_join().unwrap(),
                shed.self_join_uncached().unwrap(),
                "round {round}"
            );
            // A second query with nothing dirty must serve from cache and
            // still agree.
            assert_eq!(
                shed.self_join().unwrap(),
                shed.self_join_uncached().unwrap(),
                "round {round} (repeat)"
            );
        }
        assert!(shed.epoch_count() <= 4, "four distinct rates used");
    }

    /// Compacted estimates equal the uncompacted reference bit-for-bit on
    /// a dyadic-rate schedule (every term exactly representable).
    #[test]
    fn compaction_is_bit_identical_to_reference() {
        let mut r = rng(31);
        let schema = JoinSchema::agms(8, &mut r);
        let mut seed_a = rng(32);
        let mut seed_b = rng(32);
        let mut compact = EpochShedder::new(&schema, 0.5, &mut seed_a).unwrap();
        let mut reference = ReferenceEpochShedder::new(&schema, 0.5, &mut seed_b).unwrap();
        let ps = [0.5, 0.25, 0.5, 1.0, 0.25, 0.5];
        for (round, p) in ps.iter().enumerate() {
            compact.set_probability(*p, &mut seed_a).unwrap();
            reference.set_probability(*p, &mut seed_b).unwrap();
            for k in 0..3_000u64 {
                let key = (k * 7 + round as u64) % 50;
                compact.observe(key);
                reference.observe(key);
            }
        }
        assert_eq!(reference.epoch_count(), 6, "one epoch per change");
        assert_eq!(compact.epoch_count(), 3, "one epoch per distinct rate");
        assert_eq!(compact.kept(), reference.kept());
        assert_eq!(compact.seen(), reference.seen());
        assert_eq!(
            compact.self_join().unwrap(),
            reference.self_join().unwrap(),
            "dyadic rates: every term is exact, any grouping agrees"
        );
    }

    /// The sketch cross term: a shedded stream joined against a full-rate
    /// sketch of a disjoint segment is unbiased, and rejects bad `q`.
    #[test]
    fn cross_term_against_plain_sketch_is_unbiased() {
        let mut r = rng(6);
        // F (shedded, two rates): keys 0..30, 4 copies each.
        // G (full-rate sketch):   keys 15..45, 10 copies each.
        let truth = 15.0 * 4.0 * 10.0;
        let reps = 600;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut f = EpochShedder::new(&schema, 0.8, &mut r).unwrap();
            for (p, copies) in [(0.8, 2u64), (0.4, 2)] {
                f.set_probability(p, &mut r).unwrap();
                for k in 0..30u64 {
                    for _ in 0..copies {
                        f.observe(k);
                    }
                }
            }
            let mut g = schema.sketch();
            for k in 15..45u64 {
                g.update(k, 10);
            }
            acc += f.size_of_join_sketch(&g, 1.0).unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
        // q outside (0, 1] is rejected up front.
        let schema = JoinSchema::agms(4, &mut r);
        let f = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        let g = schema.sketch();
        assert!(f.size_of_join_sketch(&g, 0.0).is_err());
        assert!(f.size_of_join_sketch(&g, 1.5).is_err());
    }

    /// Wire round-trip: all query state (epochs, sketches, counts, the
    /// pending gap) is preserved exactly, so every estimate at decode time
    /// is bit-identical; the reseeded coin stream only affects *future*
    /// inclusion draws.
    #[test]
    fn wire_round_trip_preserves_every_estimate() {
        use crate::summary::Portable;
        let mut r = rng(60);
        let schema = JoinSchema::fagms(3, 128, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.8, &mut r).unwrap();
        for k in 0..12_000u64 {
            shed.observe(k % 200);
            if k == 4_000 {
                shed.set_probability(0.3, &mut r).unwrap();
            }
            if k == 8_000 {
                shed.set_probability(0.6, &mut r).unwrap();
            }
        }
        let bytes = shed.encode().unwrap();
        let back = EpochShedder::decode(&bytes).unwrap();
        assert_eq!(back.epoch_count(), shed.epoch_count());
        assert_eq!(back.seen(), shed.seen());
        assert_eq!(back.kept(), shed.kept());
        assert_eq!(back.probability(), shed.probability());
        assert_eq!(
            back.self_join().unwrap().to_bits(),
            shed.self_join().unwrap().to_bits()
        );
        let a = shed.self_join_estimate().unwrap();
        let b = back.self_join_estimate().unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        // Determinism: decoding twice yields identical future behavior.
        let mut c = EpochShedder::decode(&bytes).unwrap();
        let mut d = EpochShedder::decode(&bytes).unwrap();
        for k in 0..5_000u64 {
            assert_eq!(c.observe(k), d.observe(k));
        }
        // Fingerprint pins the schema: a different schema refuses.
        assert_eq!(Portable::fingerprint(&back), Portable::fingerprint(&shed));
        let other = EpochShedder::new(&JoinSchema::fagms(3, 128, &mut r), 0.8, &mut r).unwrap();
        assert_ne!(Portable::fingerprint(&other), Portable::fingerprint(&shed));
    }

    /// The slim projection answers `self_join()` bit-identically to the
    /// fat shedder and survives its own wire round trip.
    #[test]
    fn slim_projection_is_bit_identical() {
        use crate::summary::{JoinQuery, Portable};
        let mut r = rng(61);
        let schema = JoinSchema::agms(16, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.7, &mut r).unwrap();
        for k in 0..6_000u64 {
            shed.observe(k % 90);
            if k == 3_000 {
                shed.set_probability(0.35, &mut r).unwrap();
            }
        }
        let slim = shed.slim().unwrap();
        assert_eq!(
            slim.self_join().to_bits(),
            shed.self_join().unwrap().to_bits()
        );
        assert_eq!(slim.fingerprint(), Portable::fingerprint(&shed));
        let back = SlimJoin::decode(&slim.encode().unwrap()).unwrap();
        assert_eq!(back.self_join().to_bits(), slim.self_join().to_bits());
        assert!(slim.encode().unwrap().len() < shed.encode().unwrap().len() / 5);
    }

    /// Corrupted payloads are typed errors, not panics.
    #[test]
    fn malformed_payloads_are_rejected() {
        use crate::summary::Portable;
        let mut r = rng(62);
        let schema = JoinSchema::agms(4, &mut r);
        let shed = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        let bytes = shed.encode().unwrap();
        // Foreign kind.
        assert!(matches!(
            EpochShedder::decode(&JoinSketch::encode(&schema.sketch()).unwrap()),
            Err(Error::WireMismatch { .. })
        ));
        // Truncated body.
        assert!(EpochShedder::decode(&bytes[..bytes.len() / 2]).is_err());
        assert!(EpochShedder::decode(b"{}").is_err());
    }

    #[test]
    fn merged_fast_path_requires_constant_p() {
        let mut r = rng(5);
        let schema = JoinSchema::agms(4, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        shed.observe(1);
        shed.set_probability(0.5, &mut r).unwrap();
        assert!(shed.merged_sketch().is_ok());
        shed.set_probability(0.25, &mut r).unwrap();
        shed.observe(2);
        assert!(matches!(
            shed.merged_sketch(),
            Err(Error::IncompatibleEstimators)
        ));
    }
}
