//! Epoch-based shedding: unbiased estimates under a **time-varying**
//! sampling rate.
//!
//! An adaptive load shedder changes `p` as the arrival rate drifts, but
//! the paper's Proposition 14 scaling assumes one fixed `p`. The fix is to
//! segment the stream into *epochs* of constant `p` and keep one sketch
//! per epoch (same schema). Writing `fᵢ = Σ_e fᵢᵉ` for the per-epoch
//! frequencies, the self-join size splits over epoch pairs:
//!
//! ```text
//! F₂ = Σ_{e} Σᵢ (fᵢᵉ)²  +  Σ_{e ≠ e′} Σᵢ fᵢᵉ fᵢᵉ′
//! ```
//!
//! and each piece has an unbiased sketch-over-samples estimator from the
//! paper: the diagonal terms via Proposition 14 (self-join over a
//! Bernoulli sample at `p_e`, with its additive correction), the
//! off-diagonal terms via Proposition 13 (size of join between two
//! *independent* Bernoulli samples at `p_e`, `p_e′` — independence holds
//! because the epochs cover disjoint stream segments). Everything reuses
//! the single shared sketch schema, so the combination is exact linear
//! algebra over the same counters.
//!
//! The same decomposition gives the size of join between two epoch-shedded
//! streams: `Σ_{e,e′} (1/(p_e q_e′))·S_e·T_e′` with no diagonal
//! correction, since the two relations' samples are always independent.

use crate::error::{Error, Result};
use crate::sketch::{JoinSchema, JoinSketch};
use rand::rngs::StdRng;
use rand::Rng;
use sss_sampling::bernoulli::GeometricSkip;

/// One constant-`p` segment of the stream.
#[derive(Debug, Clone)]
struct Epoch {
    p: f64,
    sketch: JoinSketch,
    kept: u64,
    seen: u64,
}

/// A load shedder whose sampling rate may change between epochs while the
/// overall estimate stays unbiased.
#[derive(Debug)]
pub struct EpochShedder {
    schema: JoinSchema,
    epochs: Vec<Epoch>,
    skip: GeometricSkip<StdRng>,
    gap: u64,
}

impl EpochShedder {
    /// Start a shedder with an initial sampling probability.
    pub fn new<R: Rng>(schema: &JoinSchema, p: f64, seed_rng: &mut R) -> Result<Self> {
        let mut skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        let gap = skip.next_gap();
        Ok(Self {
            schema: schema.clone(),
            epochs: vec![Epoch {
                p,
                sketch: schema.sketch(),
                kept: 0,
                seen: 0,
            }],
            skip,
            gap,
        })
    }

    /// Begin a new epoch at probability `p` (no-op if `p` equals the
    /// current epoch's rate). Empty current epochs are reused in place.
    pub fn set_probability<R: Rng>(&mut self, p: f64, seed_rng: &mut R) -> Result<()> {
        let current = self
            .epochs
            .last_mut()
            .expect("at least one epoch always exists");
        if (current.p - p).abs() < f64::EPSILON * p.abs() {
            return Ok(());
        }
        self.skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        self.gap = self.skip.next_gap();
        if current.seen == 0 {
            current.p = p;
        } else {
            self.epochs.push(Epoch {
                p,
                sketch: self.schema.sketch(),
                kept: 0,
                seen: 0,
            });
        }
        Ok(())
    }

    /// Offer the next stream tuple; returns whether it was sketched.
    #[inline]
    pub fn observe(&mut self, key: u64) -> bool {
        let epoch = self
            .epochs
            .last_mut()
            .expect("at least one epoch always exists");
        epoch.seen += 1;
        if self.gap > 0 {
            self.gap -= 1;
            return false;
        }
        epoch.sketch.update(key, 1);
        epoch.kept += 1;
        self.gap = self.skip.next_gap();
        true
    }

    /// Offer a whole batch of tuples to the current epoch; returns how many
    /// were kept.
    ///
    /// Bit-identical to calling [`EpochShedder::observe`] per key — same
    /// geometric-gap draw order, same sketch state via the batched update
    /// kernel — with the skip-sampling fast path of
    /// [`crate::LoadSheddingSketcher::feed_batch`]. The whole batch lands
    /// in the epoch in force when the call starts; rate changes take effect
    /// between batches via [`EpochShedder::set_probability`].
    pub fn feed_batch(&mut self, keys: &[u64]) -> u64 {
        const CHUNK: usize = 256;
        let epoch = self
            .epochs
            .last_mut()
            .expect("at least one epoch always exists");
        let mut kept_keys = [0u64; CHUNK];
        let mut fill = 0usize;
        let mut kept_now = 0u64;
        let mut pos = 0u64;
        let n = keys.len() as u64;
        loop {
            let remaining = n - pos;
            if self.gap >= remaining {
                self.gap -= remaining;
                break;
            }
            pos += self.gap;
            kept_keys[fill] = keys[pos as usize];
            fill += 1;
            kept_now += 1;
            if fill == CHUNK {
                epoch.sketch.update_batch(&kept_keys);
                fill = 0;
            }
            self.gap = self.skip.next_gap();
            pos += 1;
        }
        if fill > 0 {
            epoch.sketch.update_batch(&kept_keys[..fill]);
        }
        epoch.seen += n;
        epoch.kept += kept_now;
        kept_now
    }

    /// The probability currently in force.
    pub fn probability(&self) -> f64 {
        self.epochs
            .last()
            .expect("at least one epoch always exists")
            .p
    }

    /// Number of epochs (including the current one).
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Tuples offered across all epochs.
    pub fn seen(&self) -> u64 {
        self.epochs.iter().map(|e| e.seen).sum()
    }

    /// Tuples sketched across all epochs.
    pub fn kept(&self) -> u64 {
        self.epochs.iter().map(|e| e.kept).sum()
    }

    /// Unbiased self-join size estimate of the *entire* stream, combining
    /// Proposition 14 within epochs and Proposition 13 across them.
    pub fn self_join(&self) -> Result<f64> {
        let mut total = 0.0;
        for (i, e) in self.epochs.iter().enumerate() {
            // Diagonal: self-join of the epoch's own contribution.
            let p2 = e.p * e.p;
            total += e.sketch.raw_self_join() / p2 - (1.0 - e.p) / p2 * e.kept as f64;
            // Off-diagonal: joins against every later epoch, doubled.
            for e2 in &self.epochs[i + 1..] {
                let cross = e.sketch.raw_size_of_join(&e2.sketch)?;
                total += 2.0 * cross / (e.p * e2.p);
            }
        }
        Ok(total)
    }

    /// Unbiased size-of-join estimate against another epoch-shedded stream
    /// (sharing the sketch schema).
    pub fn size_of_join(&self, other: &EpochShedder) -> Result<f64> {
        let mut total = 0.0;
        for e in &self.epochs {
            for o in &other.epochs {
                let cross = e.sketch.raw_size_of_join(&o.sketch)?;
                total += cross / (e.p * o.p);
            }
        }
        Ok(total)
    }

    /// Collapse all epochs into a single merged sketch **only valid when
    /// every epoch used the same `p`** — the fast path for steady load.
    ///
    /// # Errors
    ///
    /// [`Error::IncompatibleEstimators`] if epochs used different rates.
    pub fn merged_sketch(&self) -> Result<(JoinSketch, f64, u64)> {
        let p = self.epochs[0].p;
        if self
            .epochs
            .iter()
            .any(|e| (e.p - p).abs() > f64::EPSILON * p)
        {
            return Err(Error::IncompatibleEstimators);
        }
        let mut merged = self.schema.sketch();
        let mut kept = 0;
        for e in &self.epochs {
            merged.merge(&e.sketch)?;
            kept += e.kept;
        }
        Ok((merged, p, kept))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn single_epoch_matches_plain_shedder_scaling() {
        let mut r = rng(1);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        let mut shed = EpochShedder::new(&schema, 1.0, &mut r).unwrap();
        for k in 0..50_000u64 {
            shed.observe(k % 500);
        }
        assert_eq!(shed.epoch_count(), 1);
        assert_eq!(shed.kept(), 50_000);
        // p = 1: exact.
        let truth = 500.0 * 100.0 * 100.0;
        assert!((shed.self_join().unwrap() - truth).abs() / truth < 0.05);
    }

    #[test]
    fn probability_changes_create_epochs_lazily() {
        let mut r = rng(2);
        let schema = JoinSchema::agms(4, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        // Change before any tuple: reuse the empty epoch.
        shed.set_probability(0.25, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 1);
        assert_eq!(shed.probability(), 0.25);
        shed.observe(1);
        // Same p: no new epoch.
        shed.set_probability(0.25, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 1);
        // Different p after traffic: new epoch.
        shed.set_probability(0.5, &mut r).unwrap();
        assert_eq!(shed.epoch_count(), 2);
    }

    /// The headline property: an estimate over epochs with *different*
    /// sampling rates is still unbiased.
    #[test]
    fn varying_rates_stay_unbiased() {
        let mut r = rng(3);
        // Relation: 40 keys, key k appears 3(k+1) times, split across
        // three epochs with different rates.
        let truth: f64 = (1..=40u64)
            .map(|f| (3.0 * f as f64) * (3.0 * f as f64))
            .sum();
        let reps = 600;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut shed = EpochShedder::new(&schema, 0.9, &mut r).unwrap();
            for (epoch, p) in [(0u64, 0.9), (1, 0.3), (2, 0.6)] {
                shed.set_probability(p, &mut r).unwrap();
                for k in 0..40u64 {
                    for _ in 0..=k {
                        shed.observe(k);
                    }
                }
                let _ = epoch;
            }
            acc += shed.self_join().unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.08,
            "mean = {mean}, truth = {truth}"
        );
    }

    #[test]
    fn epoch_join_between_streams_is_unbiased() {
        let mut r = rng(4);
        // F: keys 0..30 ×4 (two epochs at different rates);
        // G: keys 15..45 ×20 (one epoch). Overlap: 15 keys.
        let truth = 15.0 * 4.0 * 20.0;
        let reps = 800;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut f = EpochShedder::new(&schema, 0.8, &mut r).unwrap();
            let mut g = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
            // F in two epochs of 2 copies each = 4 copies per key.
            for (p, copies) in [(0.8, 2u64), (0.4, 2)] {
                f.set_probability(p, &mut r).unwrap();
                for k in 0..30u64 {
                    for _ in 0..copies {
                        f.observe(k);
                    }
                }
            }
            for k in 15..45u64 {
                for _ in 0..20u64 {
                    g.observe(k);
                }
            }
            acc += f.size_of_join(&g).unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }

    /// The batched path must replay the scalar path exactly, including
    /// across epoch changes between batches.
    #[test]
    fn feed_batch_is_bit_identical_to_observe() {
        let mut r = rng(10);
        let schema = JoinSchema::fagms(1, 512, &mut r);
        let mut seed_a = rng(11);
        let mut seed_b = rng(11);
        let mut scalar = EpochShedder::new(&schema, 0.4, &mut seed_a).unwrap();
        let mut batched = EpochShedder::new(&schema, 0.4, &mut seed_b).unwrap();
        let keys: Vec<u64> = (0..20_000u64).map(|i| (i * 2_654_435_761) % 300).collect();
        for (i, (batch, p)) in keys.chunks(4999).zip([0.4, 0.1, 0.8, 0.1, 0.4]).enumerate() {
            scalar.set_probability(p, &mut seed_a).unwrap();
            batched.set_probability(p, &mut seed_b).unwrap();
            for &k in batch {
                scalar.observe(k);
            }
            batched.feed_batch(batch);
            assert_eq!(scalar.kept(), batched.kept(), "batch {i}");
        }
        assert_eq!(scalar.epoch_count(), batched.epoch_count());
        assert_eq!(scalar.seen(), batched.seen());
        assert_eq!(
            scalar.self_join().unwrap(),
            batched.self_join().unwrap(),
            "identical epochs must give identical estimates"
        );
    }

    #[test]
    fn merged_fast_path_requires_constant_p() {
        let mut r = rng(5);
        let schema = JoinSchema::agms(4, &mut r);
        let mut shed = EpochShedder::new(&schema, 0.5, &mut r).unwrap();
        shed.observe(1);
        shed.set_probability(0.5, &mut r).unwrap();
        assert!(shed.merged_sketch().is_ok());
        shed.set_probability(0.25, &mut r).unwrap();
        shed.observe(2);
        assert!(matches!(
            shed.merged_sketch(),
            Err(Error::IncompatibleEstimators)
        ));
    }
}
