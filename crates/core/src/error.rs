//! Unified error type for the combined estimators.

use std::fmt;

/// Errors produced by the sketch-over-samples drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A sampling parameter was invalid (probability outside `(0, 1]`, …).
    Sampling(sss_sampling::Error),
    /// A sketch operation failed (schema mismatch, bad dimensions).
    Sketch(sss_sketch::Error),
    /// An analysis request was invalid (domain mismatch, …).
    Moments(sss_moments::Error),
    /// The estimator is not yet defined: the fixed-size-sample self-join
    /// corrections divide by `|F′| − 1`, so at least two tuples must have
    /// been observed.
    InsufficientSample {
        /// Tuples observed so far.
        got: u64,
        /// Minimum required.
        need: u64,
    },
    /// A scan observed more tuples than the declared relation size.
    ScanOverrun {
        /// Declared relation size.
        population: u64,
    },
    /// The two drivers of a size-of-join estimate disagree on a shared
    /// resource (sketch schema).
    IncompatibleEstimators,
    /// A rate-quantization grid was configured with no resolution.
    InvalidGrid {
        /// The rejected steps-per-decade value (must be ≥ 1).
        steps_per_decade: u32,
    },
    /// The summary does not support exact retraction
    /// ([`Summary::retract_from`](crate::Summary::retract_from)):
    /// callers needing an incremental merge must fall back to a full
    /// re-merge (see
    /// [`Summary::supports_retract`](crate::Summary::supports_retract)).
    RetractUnsupported,
    /// A wire payload could not be encoded or decoded
    /// ([`Portable`](crate::Portable)): malformed bytes, an unsupported
    /// format version, or a serializer refusal.
    Wire {
        /// What went wrong, for diagnostics.
        detail: String,
    },
    /// A wire payload decoded cleanly but carries a different summary kind
    /// or format than the receiver expected.
    WireMismatch {
        /// The kind/format the receiver expected.
        expected: String,
        /// The kind/format found in the payload head.
        found: String,
    },
    /// Two portable summaries have incompatible configuration fingerprints
    /// (different seeds, width/depth, precision, …) and must not merge.
    FingerprintMismatch {
        /// The receiver's fingerprint.
        expected: u64,
        /// The payload's fingerprint.
        found: u64,
    },
    /// A slim replica was asked a query its projection cannot answer; the
    /// fat update-side summary must be consulted instead.
    UnsupportedQuery {
        /// The query that was attempted.
        query: &'static str,
        /// The summary that rejected it.
        summary: &'static str,
    },
    /// A network peer violated the length-prefixed ingest framing
    /// ([`crate::wire::FrameError`] carries the precise violation).
    Frame(crate::wire::FrameError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sampling(e) => write!(f, "sampling: {e}"),
            Error::Sketch(e) => write!(f, "sketch: {e}"),
            Error::Moments(e) => write!(f, "analysis: {e}"),
            Error::InsufficientSample { got, need } => {
                write!(
                    f,
                    "estimator needs at least {need} sampled tuples, has {got}"
                )
            }
            Error::ScanOverrun { population } => {
                write!(
                    f,
                    "scan observed more tuples than the declared relation size {population}"
                )
            }
            Error::IncompatibleEstimators => {
                write!(
                    f,
                    "size-of-join requires both estimators to share a sketch schema"
                )
            }
            Error::InvalidGrid { steps_per_decade } => {
                write!(
                    f,
                    "rate grid needs at least one step per decade, got {steps_per_decade}"
                )
            }
            Error::RetractUnsupported => {
                write!(
                    f,
                    "estimator does not support exact retraction (supports_retract() is false)"
                )
            }
            Error::Wire { detail } => {
                write!(f, "wire codec: {detail}")
            }
            Error::WireMismatch { expected, found } => {
                write!(f, "wire payload is {found}, expected {expected}")
            }
            Error::FingerprintMismatch { expected, found } => {
                write!(
                    f,
                    "configuration fingerprint {found:#018x} does not match {expected:#018x}: \
                     only like-configured summaries merge"
                )
            }
            Error::UnsupportedQuery { query, summary } => {
                write!(
                    f,
                    "{summary} cannot answer {query}: query the fat update-side summary instead"
                )
            }
            Error::Frame(e) => write!(f, "ingest protocol: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sampling(e) => Some(e),
            Error::Sketch(e) => Some(e),
            Error::Moments(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sss_sampling::Error> for Error {
    fn from(e: sss_sampling::Error) -> Self {
        Error::Sampling(e)
    }
}

impl From<sss_sketch::Error> for Error {
    fn from(e: sss_sketch::Error) -> Self {
        Error::Sketch(e)
    }
}

impl From<sss_moments::Error> for Error {
    fn from(e: sss_moments::Error) -> Self {
        Error::Moments(e)
    }
}

impl From<crate::wire::FrameError> for Error {
    fn from(e: crate::wire::FrameError) -> Self {
        Error::Frame(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
