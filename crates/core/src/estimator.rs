//! The unified estimator interface every join-capable sketch implements.
//!
//! Historically each sketch family exposed its own ad-hoc surface
//! (`AgmsSketch::self_join`, `FagmsSketch::size_of_join`,
//! `JoinSketch::raw_self_join`, …) and the streaming layer was hard-coded
//! to [`JoinSketch`]. The contract is split in two:
//!
//! * [`StreamSummary`] is the *ingestion* contract the sharded runtime and
//!   the snapshot cache are generic over: anything that can absorb keyed
//!   updates and merge with a peer built from the same seeds (linearity).
//!   Join sketches satisfy it, and so do the heavy-hitter summaries of
//!   `sss_sketch::topk` — which can be sharded but cannot answer join
//!   queries.
//! * [`JoinEstimator`] extends it with the two join-size queries of the
//!   paper; the engine's `self_join`/`size_of_join` query surface requires
//!   this subtrait.
//!
//! The contract mirrors sketch linearity exactly:
//!
//! * [`update_batch`](StreamSummary::update_batch) must be **bit-identical**
//!   to the per-key update loop (integer counter updates commute);
//! * [`merge_from`](StreamSummary::merge_from) must make the merged state
//!   equivalent to summarizing the concatenated streams — bit-identical
//!   for the linear sketches, guarantee-preserving for the (order-lossy)
//!   heavy-hitter summaries — so a sharded runtime can partition tuples
//!   arbitrarily;
//! * [`self_join`](JoinEstimator::self_join) /
//!   [`size_of_join`](JoinEstimator::size_of_join) return the *raw*
//!   estimates of whatever was sketched — sampling-rate corrections
//!   (Propositions 13–16) stay in the drivers that know the rates.
//!
//! [`JoinEstimator`] implementations are provided for the two ±1 families'
//! sketches ([`AgmsSketch`], [`FagmsSketch`]), the [`CountMinSketch`]
//! baseline, and the backend-erased [`JoinSketch`] enum the drivers
//! default to; [`StreamSummary`]-only implementations for
//! [`MisraGries`] and [`CountSketchTopK`].

use crate::error::{Error, Result};
use crate::sketch::JoinSketch;
use sss_sketch::topk::HeavyHitters;
use sss_sketch::{
    AgmsSketch, CountMinSketch, CountSketchTopK, Estimate, FagmsSketch, MisraGries, Sketch,
};
use sss_xi::{BucketFamily, SignFamily};

/// A linear, mergeable summary of a keyed stream — the ingestion half of
/// the estimator contract, shared by join sketches and heavy-hitter
/// summaries alike.
///
/// `Clone` is required so a concurrent runtime can snapshot shard state
/// without draining it; `Send + 'static` so shards can live on worker
/// threads.
pub trait StreamSummary: Clone + Send + 'static {
    /// Add `count` occurrences of `key` (negative counts model deletions
    /// for turnstile-capable summaries; insert-only summaries may ignore
    /// them — see the implementor's docs).
    fn update(&mut self, key: u64, count: i64);

    /// Add one occurrence of every key, bit-identically to calling
    /// [`update`](StreamSummary::update) once per key.
    fn update_batch(&mut self, keys: &[u64]);

    /// Merge a peer summary built from the same schema: afterwards `self`
    /// summarizes the union of both streams.
    ///
    /// # Errors
    ///
    /// Schema mismatch (different random seeds, or structurally
    /// incompatible summaries) — merged state would be meaningless.
    fn merge_from(&mut self, other: &Self) -> Result<()>;

    /// Whether [`retract_from`](StreamSummary::retract_from) performs an
    /// **exact** entry-wise inverse of
    /// [`merge_from`](StreamSummary::merge_from).
    ///
    /// The provided sketch backends store integer counters, so
    /// `merge_from(new)` after `retract_from(old)` leaves the estimator
    /// bit-identical to a fresh merge over the updated parts — this is
    /// what lets a snapshot cache replace one shard's stale contribution
    /// in O(sketch) instead of re-merging every shard. Defaults to
    /// `false` so external implementations (e.g. floating-point or lossy
    /// summaries, where subtraction would not round-trip) honestly
    /// opt out and callers fall back to a full re-merge.
    fn supports_retract(&self) -> bool {
        false
    }

    /// Entry-wise retraction of a peer previously merged in: afterwards
    /// `self` summarizes its stream *minus* `other`'s, exactly — the delta
    /// counterpart of [`merge_from`](StreamSummary::merge_from).
    ///
    /// Only meaningful when
    /// [`supports_retract`](StreamSummary::supports_retract) returns
    /// `true`.
    ///
    /// # Errors
    ///
    /// [`Error::RetractUnsupported`] by default; schema mismatch for the
    /// provided sketch backends.
    fn retract_from(&mut self, other: &Self) -> Result<()> {
        let _ = other;
        Err(Error::RetractUnsupported)
    }
}

/// A [`StreamSummary`] that can additionally answer the paper's join-size
/// queries.
pub trait JoinEstimator: StreamSummary {
    /// Raw self-join (second frequency moment) estimate of the sketched
    /// stream.
    fn self_join(&self) -> f64;

    /// Raw size-of-join estimate against a peer built from the same
    /// schema.
    ///
    /// # Errors
    ///
    /// Schema mismatch, as for [`merge_from`](StreamSummary::merge_from).
    fn size_of_join(&self, other: &Self) -> Result<f64>;

    /// Typed self-join estimate with error state: same value as
    /// [`self_join`](JoinEstimator::self_join) (bit-identical for the
    /// provided implementations), plus an empirical variance and the
    /// per-lane basics it came from.
    ///
    /// The default implementation wraps [`self_join`] in
    /// [`Estimate::point`] — infinite variance, no basics — so external
    /// estimator implementations keep compiling and honestly report that
    /// they carry no error state.
    ///
    /// [`self_join`]: JoinEstimator::self_join
    fn self_join_estimate(&self) -> Estimate {
        Estimate::point(self.self_join())
    }

    /// Typed size-of-join estimate with error state; defaults to a
    /// zero-information [`Estimate::point`] like
    /// [`self_join_estimate`](JoinEstimator::self_join_estimate).
    ///
    /// # Errors
    ///
    /// Schema mismatch, as for [`merge_from`](StreamSummary::merge_from).
    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(Estimate::point(self.size_of_join(other)?))
    }
}

impl<F> StreamSummary for AgmsSketch<F>
where
    F: SignFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        Sketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Sketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.subtract(other)?)
    }
}

impl<F> JoinEstimator for AgmsSketch<F>
where
    F: SignFamily + Send + Sync + 'static,
{
    fn self_join(&self) -> f64 {
        AgmsSketch::self_join(self)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(AgmsSketch::size_of_join(self, other)?)
    }

    fn self_join_estimate(&self) -> Estimate {
        AgmsSketch::self_join_estimate(self)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(AgmsSketch::size_of_join_estimate(self, other)?)
    }
}

impl<S, B> StreamSummary for FagmsSketch<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        Sketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Sketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.subtract(other)?)
    }
}

impl<S, B> JoinEstimator for FagmsSketch<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn self_join(&self) -> f64 {
        FagmsSketch::self_join(self)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(FagmsSketch::size_of_join(self, other)?)
    }

    fn self_join_estimate(&self) -> Estimate {
        FagmsSketch::self_join_estimate(self)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(FagmsSketch::size_of_join_estimate(self, other)?)
    }
}

impl<B> StreamSummary for CountMinSketch<B>
where
    B: BucketFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        Sketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Sketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.subtract(other)?)
    }
}

impl<B> JoinEstimator for CountMinSketch<B>
where
    B: BucketFamily + Send + Sync + 'static,
{
    fn self_join(&self) -> f64 {
        CountMinSketch::self_join(self)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(CountMinSketch::size_of_join(self, other)?)
    }

    fn self_join_estimate(&self) -> Estimate {
        CountMinSketch::self_join_estimate(self)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(CountMinSketch::size_of_join_estimate(self, other)?)
    }
}

impl StreamSummary for JoinSketch {
    fn update(&mut self, key: u64, count: i64) {
        JoinSketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        JoinSketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        self.merge(other)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        self.subtract(other)
    }
}

impl JoinEstimator for JoinSketch {
    fn self_join(&self) -> f64 {
        self.raw_self_join()
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        self.raw_size_of_join(other)
    }

    fn self_join_estimate(&self) -> Estimate {
        self.raw_self_join_estimate()
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        self.raw_size_of_join_estimate(other)
    }
}

/// Heavy-hitter summaries shard like sketches do — merge via the
/// Agarwal-et-al. summary merge — but answer top-k queries, not joins,
/// so they implement only the base trait. Insert-only: non-positive
/// counts are dropped by [`MisraGries`] (see its docs).
impl StreamSummary for MisraGries {
    fn update(&mut self, key: u64, count: i64) {
        self.offer(key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.offer_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }
}

impl<S, B> StreamSummary for CountSketchTopK<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        self.offer(key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.offer_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::JoinSchema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sketch::{AgmsSchema, CountMinSchema, FagmsSchema};

    /// Exercise one implementation generically: batch vs scalar identity,
    /// merge-equals-union, and a self-join in the right ballpark.
    fn exercise<E: JoinEstimator>(make: impl Fn() -> E, tolerance: f64) {
        let keys: Vec<u64> = (0..4_000u64).map(|i| i % 100).collect();
        let mut scalar = make();
        for &k in &keys {
            StreamSummary::update(&mut scalar, k, 1);
        }
        let mut batched = make();
        StreamSummary::update_batch(&mut batched, &keys);
        assert_eq!(
            JoinEstimator::self_join(&scalar).to_bits(),
            JoinEstimator::self_join(&batched).to_bits(),
            "batch must replay the scalar path exactly"
        );
        // Merge = union: split the stream in two and merge the halves.
        let mut left = make();
        let mut right = make();
        StreamSummary::update_batch(&mut left, &keys[..keys.len() / 2]);
        StreamSummary::update_batch(&mut right, &keys[keys.len() / 2..]);
        left.merge_from(&right).unwrap();
        assert_eq!(
            JoinEstimator::self_join(&left).to_bits(),
            JoinEstimator::self_join(&scalar).to_bits(),
            "merge must equal sketching the union"
        );
        let truth = 100.0 * 40.0 * 40.0;
        let est = JoinEstimator::self_join(&scalar);
        assert!(
            (est - truth).abs() / truth < tolerance,
            "est = {est}, truth = {truth}"
        );
        // size_of_join against itself agrees with self_join for the ±1
        // sketches and the Count-Min inner product alike.
        let sj = JoinEstimator::size_of_join(&scalar, &scalar).unwrap();
        assert!((sj - est).abs() <= est.abs() * 1e-9 + 1e-9);
        // The typed estimates return the same values bit for bit, and the
        // multi-lane backends report a finite, usable error bar.
        let e = scalar.self_join_estimate();
        assert_eq!(e.value.to_bits(), est.to_bits());
        assert!(e.variance.is_finite());
        assert!(e.chebyshev(0.95).unwrap().contains(e.value));
        let ej = scalar.size_of_join_estimate(&scalar).unwrap();
        assert_eq!(ej.value.to_bits(), sj.to_bits());
        // Retraction is the exact inverse of merge for every provided
        // backend: retract(old) then merge(new) lands bit-identically on
        // the fresh merge — the delta-rebuild contract the sharded
        // runtime's snapshot cache relies on.
        assert!(scalar.supports_retract());
        let mut merged = make();
        merged.merge_from(&left).unwrap(); // left already holds the union
        let mut grown = make();
        StreamSummary::update_batch(&mut grown, &keys);
        StreamSummary::update_batch(&mut grown, &[1, 2, 3]);
        merged.retract_from(&left).unwrap();
        merged.merge_from(&grown).unwrap();
        let mut fresh = make();
        fresh.merge_from(&grown).unwrap();
        assert_eq!(
            JoinEstimator::self_join(&merged).to_bits(),
            JoinEstimator::self_join(&fresh).to_bits(),
            "retract + merge must equal a fresh merge exactly"
        );
    }

    #[test]
    fn all_four_backends_satisfy_the_contract() {
        let mut rng = StdRng::seed_from_u64(7);
        let agms: AgmsSchema = AgmsSchema::new(256, &mut rng);
        exercise(move || agms.sketch(), 0.25);
        let fagms: FagmsSchema = FagmsSchema::new(3, 1024, &mut rng);
        exercise(move || fagms.sketch(), 0.25);
        // Count-Min overestimates F₂ by collisions; with width ≫ distinct
        // keys the bias is tiny.
        let cm: CountMinSchema = CountMinSchema::new(3, 4096, &mut rng);
        exercise(move || cm.sketch(), 0.25);
        let schema = JoinSchema::fagms(2, 1024, &mut rng);
        exercise(move || schema.sketch(), 0.25);
    }

    /// A minimal external implementor relying entirely on the default
    /// methods: the refactor must not force it to change, and its
    /// estimates must honestly report zero information.
    #[test]
    fn trait_defaults_keep_external_implementors_compiling() {
        #[derive(Clone)]
        struct ExactCounter(std::collections::HashMap<u64, i64>);
        impl StreamSummary for ExactCounter {
            fn update(&mut self, key: u64, count: i64) {
                *self.0.entry(key).or_insert(0) += count;
            }
            fn update_batch(&mut self, keys: &[u64]) {
                for &k in keys {
                    self.update(k, 1);
                }
            }
            fn merge_from(&mut self, other: &Self) -> Result<()> {
                for (&k, &c) in &other.0 {
                    self.update(k, c);
                }
                Ok(())
            }
        }
        impl JoinEstimator for ExactCounter {
            fn self_join(&self) -> f64 {
                self.0.values().map(|&c| (c * c) as f64).sum()
            }
            fn size_of_join(&self, other: &Self) -> Result<f64> {
                Ok(self
                    .0
                    .iter()
                    .map(|(k, &c)| c as f64 * other.0.get(k).copied().unwrap_or(0) as f64)
                    .sum())
            }
        }
        let mut e = ExactCounter(Default::default());
        e.update_batch(&[1, 1, 2, 3]);
        // The delta-merge defaults: external implementors honestly report
        // that retraction is unsupported and the method errors.
        assert!(!e.supports_retract());
        assert!(matches!(
            e.clone().retract_from(&e),
            Err(crate::Error::RetractUnsupported)
        ));
        let est = e.self_join_estimate();
        assert_eq!(est.value, e.self_join());
        assert!(est.variance.is_infinite());
        assert!(est.basics.is_empty());
        let sj = e.size_of_join_estimate(&e).unwrap();
        assert_eq!(sj.value, e.self_join());
        assert!(sj.chebyshev(0.99).unwrap().half_width().is_infinite());
    }

    #[test]
    fn mismatched_schemas_error_through_the_trait() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = JoinSchema::agms(8, &mut rng).sketch();
        let mut b = JoinSchema::fagms(1, 8, &mut rng).sketch();
        assert!(b.merge_from(&a).is_err());
        assert!(JoinEstimator::size_of_join(&a, &b).is_err());
    }
}
