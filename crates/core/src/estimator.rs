//! Deprecated pre-redesign names for the [`crate::summary`] hierarchy.
//!
//! The estimator API was re-layered into a `Summary` base trait with
//! capability subtraits ([`crate::Summary`], [`crate::JoinQuery`],
//! [`crate::TopKQuery`], [`crate::DistinctQuery`],
//! [`crate::QuantileQuery`]). The old names remain here as deprecated
//! empty subtraits with blanket implementations, so existing *bounds*
//! (`fn f<E: StreamSummary>(…)`, `struct S<E: JoinEstimator>`) keep
//! compiling and resolving to the same methods — every method the old
//! traits had lives unchanged on the new ones, bit-identical.
//!
//! What does **not** keep compiling is a direct
//! `impl StreamSummary for MyType` — the blanket implementation owns the
//! trait now. Implement [`crate::Summary`] (same method set) instead.

#![allow(deprecated)]

use crate::summary::{JoinQuery, Summary};

/// Deprecated alias for the base ingestion trait.
#[deprecated(
    since = "0.1.0",
    note = "renamed to `sss_core::Summary`; implement/bound on that instead"
)]
pub trait StreamSummary: Summary {}

impl<T: Summary> StreamSummary for T {}

/// Deprecated alias for the join-query capability.
#[deprecated(
    since = "0.1.0",
    note = "renamed to `sss_core::JoinQuery`; implement/bound on that instead"
)]
pub trait JoinEstimator: JoinQuery {}

impl<T: JoinQuery> JoinEstimator for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::JoinSchema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Old-style bounds still compile and reach the same methods: the
    /// shims are pure renames over the same implementations.
    #[test]
    fn deprecated_bounds_still_resolve() {
        fn ingest<E: StreamSummary>(e: &mut E, keys: &[u64]) {
            e.update_batch(keys);
        }
        fn query<E: JoinEstimator>(e: &E) -> f64 {
            e.self_join()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let schema = JoinSchema::fagms(2, 512, &mut rng);
        let mut old = schema.sketch();
        let mut new = schema.sketch();
        let keys: Vec<u64> = (0..1000u64).map(|i| i % 40).collect();
        ingest(&mut old, &keys);
        Summary::update_batch(&mut new, &keys);
        assert_eq!(query(&old).to_bits(), JoinQuery::self_join(&new).to_bits());
    }
}
