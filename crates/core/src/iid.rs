//! Sketching i.i.d. streams: the with-replacement regime
//! (paper Section VI-B).
//!
//! Here no sampling is performed by us — the stream *is* a sample drawn
//! with replacement from a finite population of known size (a generative
//! model), and the goal is to estimate properties of the *population* from
//! the streamed sample. Every tuple is sketched ("the standard updating
//! algorithm for sketches can be used in this case. The estimation
//! algorithm is though different because it has to take into consideration
//! that the stream is only a sample").
//!
//! Estimates apply the Section III-D / Proposition 15 corrections with
//! `α = observed/population`:
//!
//! ```text
//! size of join:  X = (1/αβ) · S·T
//! self-join:     X = (1/αα₂)·S² − N/α₂
//! ```

use crate::error::{Error, Result};
use crate::sketch::{JoinSchema, JoinSketch};

/// Sketches a stream understood as a with-replacement sample from a finite
/// population of known size.
#[derive(Debug, Clone)]
pub struct IidStreamSketcher {
    sketch: JoinSketch,
    population: u64,
    observed: u64,
}

impl IidStreamSketcher {
    /// Create a sketcher for a population of `population` tuples.
    ///
    /// # Errors
    ///
    /// [`Error::Sampling`] if `population == 0`.
    pub fn new(schema: &JoinSchema, population: u64) -> Result<Self> {
        if population == 0 {
            return Err(sss_sampling::Error::EmptyPopulation.into());
        }
        Ok(Self {
            sketch: schema.sketch(),
            population,
            observed: 0,
        })
    }

    /// Observe (and sketch) the next sampled tuple.
    #[inline]
    pub fn observe(&mut self, key: u64) {
        self.sketch.update(key, 1);
        self.observed += 1;
    }

    /// Tuples observed so far (`m = |F′|`).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Declared population size `N = |F|`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The sampling fraction `α = m/N` (may exceed 1 for WR streams).
    pub fn alpha(&self) -> f64 {
        self.observed as f64 / self.population as f64
    }

    /// The underlying sketch.
    pub fn sketch(&self) -> &JoinSketch {
        &self.sketch
    }

    /// Unbiased estimate of the *population* self-join size.
    ///
    /// # Errors
    ///
    /// [`Error::InsufficientSample`] until two tuples have been observed
    /// (the `α₂` correction divides by `m − 1`).
    pub fn self_join(&self) -> Result<f64> {
        if self.observed < 2 {
            return Err(Error::InsufficientSample {
                got: self.observed,
                need: 2,
            });
        }
        let a = self.alpha();
        let a2 = (self.observed - 1) as f64 / self.population as f64;
        Ok(self.sketch.raw_self_join() / (a * a2) - self.population as f64 / a2)
    }

    /// Unbiased estimate of the *population* size of join against another
    /// i.i.d. stream sketch (built on the same schema).
    ///
    /// # Errors
    ///
    /// [`Error::InsufficientSample`] if either stream is empty;
    /// [`Error::Sketch`] on schema mismatch.
    pub fn size_of_join(&self, other: &IidStreamSketcher) -> Result<f64> {
        if self.observed == 0 || other.observed == 0 {
            return Err(Error::InsufficientSample {
                got: self.observed.min(other.observed),
                need: 1,
            });
        }
        let raw = self.sketch.raw_size_of_join(&other.sketch)?;
        Ok(raw / (self.alpha() * other.alpha()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Draw from a population of 200 keys where key k has frequency k+1
    /// (N = 20100, F₂ = Σ(k+1)² = 2_686_700).
    fn draw_population(r: &mut StdRng) -> u64 {
        // Inverse-CDF draw over triangular frequencies.
        let n: u64 = 20100;
        let t = r.random_range(0..n);
        // key k covers [k(k+1)/2, (k+1)(k+2)/2)
        let mut k = 0u64;
        let mut acc = 0u64;
        while acc + k < t {
            acc += k + 1;
            k += 1;
        }
        k
    }

    #[test]
    fn rejects_zero_population_and_tiny_samples() {
        let mut r = rng(1);
        let schema = JoinSchema::agms(8, &mut r);
        assert!(IidStreamSketcher::new(&schema, 0).is_err());
        let mut s = IidStreamSketcher::new(&schema, 100).unwrap();
        assert!(matches!(
            s.self_join(),
            Err(Error::InsufficientSample { got: 0, need: 2 })
        ));
        s.observe(1);
        assert!(s.self_join().is_err());
        s.observe(2);
        assert!(s.self_join().is_ok());
    }

    #[test]
    fn population_self_join_estimate_converges() {
        let mut r = rng(2);
        let schema = JoinSchema::fagms(1, 4000, &mut r);
        let mut s = IidStreamSketcher::new(&schema, 20100).unwrap();
        // Stream a 30% (with replacement) sample.
        for _ in 0..6000 {
            let k = draw_population(&mut r);
            s.observe(k);
        }
        let truth: f64 = (1..=200u64).map(|f| (f * f) as f64).sum();
        let est = s.self_join().unwrap();
        assert!(
            (est - truth).abs() / truth < 0.15,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn join_of_two_iid_streams() {
        let mut r = rng(3);
        let schema = JoinSchema::fagms(1, 4000, &mut r);
        // Both streams sample the same population; the population join of
        // the triangular frequencies with themselves is F₂.
        let mut s = IidStreamSketcher::new(&schema, 20100).unwrap();
        let mut t = IidStreamSketcher::new(&schema, 20100).unwrap();
        for _ in 0..8000 {
            s.observe(draw_population(&mut r));
            t.observe(draw_population(&mut r));
        }
        let truth: f64 = (1..=200u64).map(|f| (f * f) as f64).sum();
        let est = s.size_of_join(&t).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn oversampling_beyond_population_is_legal_for_wr() {
        let mut r = rng(4);
        let schema = JoinSchema::fagms(1, 1024, &mut r);
        let mut s = IidStreamSketcher::new(&schema, 100).unwrap();
        // 5× the population size — perfectly fine with replacement.
        for _ in 0..500 {
            s.observe(r.random_range(0..100u64));
        }
        assert!(s.alpha() > 4.9);
        let est = s.self_join().unwrap();
        let truth = 100.0; // uniform population: each key frequency 1, F₂ = 100
        assert!((est - truth).abs() / truth < 0.6, "est = {est}");
    }

    #[test]
    fn unbiasedness_over_repetitions() {
        let mut r = rng(5);
        // Population: 30 keys, key k frequency k+1, N = 465.
        let pop: Vec<u64> = (0..30u64)
            .flat_map(|k| std::iter::repeat(k).take(k as usize + 1))
            .collect();
        let truth: f64 = (1..=30u64).map(|f| (f * f) as f64).sum();
        let reps = 500;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut s = IidStreamSketcher::new(&schema, 465).unwrap();
            for _ in 0..100 {
                s.observe(pop[r.random_range(0..pop.len())]);
            }
            acc += s.self_join().unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }
}
