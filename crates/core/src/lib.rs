//! # sss-core — sketching sampled data streams
//!
//! The primary contribution of *"Sketching Sampled Data Streams"* (Rusu &
//! Dobra, ICDE 2009) as a production API: **sketch-over-samples estimators**
//! for the size of join and the self-join size, for the three sampling
//! regimes of the paper's Section VI, with the exact scaling factors and
//! bias corrections of Propositions 13–16 applied automatically.
//!
//! | Driver | Sampling scheme | Application (paper §VI) |
//! |---|---|---|
//! | [`LoadSheddingSketcher`] | Bernoulli(p), coin/skip | shedding tuples of a too-fast stream before they reach the sketch |
//! | [`CoordinatedShedder`] | Bernoulli(p), hash-coordinated | deletion-safe (turnstile) shedding: insert/delete decisions agree per tuple identity |
//! | [`EpochShedder`] | Bernoulli(p(t)) | unbiased estimates under a **time-varying** rate (adaptive shedding) |
//! | [`IidStreamSketcher`] | with replacement | the stream *is* an i.i.d. sample from a generative model over a known finite population |
//! | [`ScanSketcher`] | without replacement | a random-order relation scan feeding an online aggregation engine |
//!
//! [`cross::size_of_join`] joins any two of these across regimes (e.g. a
//! shedded live stream against a scanned stored table).
//!
//! Each driver owns a [`sketch::JoinSketch`] (AGMS or F-AGMS, selected by a
//! [`sketch::JoinSchema`]) and the per-scheme bookkeeping (tuples seen /
//! kept / scanned), and exposes unbiased `self_join()` and
//! `size_of_join()` estimates at any point in the stream.
//!
//! The exact error analysis (the variance of each estimate, confidence
//! intervals) is available through [`analysis`] whenever the true frequency
//! vector is known — which is how the experiment harness validates the
//! drivers — and is predicted by the `sss-moments` engine in general.
//! When the truth is *not* known (the live-query case), every query path
//! also offers a `*_estimate()` variant returning an [`Estimate`] whose
//! variance is measured from the sketch's own independent lanes plus a
//! plug-in for the shared sampling noise, with Chebyshev/CLT intervals via
//! [`Estimate::interval`].
//!
//! ## Quick example: 10× load shedding
//!
//! ```
//! use rand::SeedableRng;
//! use sss_core::sketch::JoinSchema;
//! use sss_core::LoadSheddingSketcher;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! // F-AGMS with 5000 buckets, as in the paper's experiments.
//! let schema = JoinSchema::fagms(1, 5000, &mut rng);
//! let mut sketcher = LoadSheddingSketcher::new(&schema, 0.1, &mut rng).unwrap();
//! // A stream of 200k tuples over 1000 values (uniform; F₂ = 4·10⁷).
//! for i in 0..200_000u64 {
//!     sketcher.observe(i % 1000);
//! }
//! let est = sketcher.self_join();
//! assert!((est - 4e7).abs() / 4e7 < 0.1, "est = {est}");
//! // Only ~10% of the stream was sketched:
//! assert!(sketcher.kept() < 25_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod compaction;
pub mod coordinated;
pub mod cross;
pub mod epochs;
pub mod error;
pub mod iid;
pub mod multi;
pub mod portable;
pub mod sampled;
pub mod scan;
pub mod shedding;
pub mod sketch;
pub mod slim;
pub mod summary;
pub mod topk;
pub mod wire;

pub use compaction::{RateGrid, ReferenceEpochShedder};
pub use coordinated::CoordinatedShedder;
pub use cross::RatedSketch;
pub use epochs::EpochShedder;
pub use error::{Error, Result};
pub use iid::IidStreamSketcher;
pub use multi::{MultiSpec, MultiSummary, SampledMultiSummary};
pub use sampled::{bernoulli_distinct_estimate, Sampled};
pub use scan::ScanSketcher;
pub use shedding::{bernoulli_self_join, bernoulli_self_join_estimate, LoadSheddingSketcher};
pub use sketch::{JoinSchema, JoinSketch};
pub use slim::{SlimJoin, SlimMultiSummary, SlimTopK};
pub use sss_sketch::{Bound, Estimate};
pub use summary::{
    DistinctQuery, JoinQuery, Portable, QuantileQuery, SlimQuery, Summary, TopKQuery,
};
#[allow(deprecated)]
pub use topk::SampledTopK;
