//! `MultiSummary` — one ingestion pass, every query capability.
//!
//! The paper's one-pass promise culminates here: a composite summary that
//! fans each `update_batch` into four specialized summaries —
//!
//! * a [`JoinSketch`] for F₂ / size-of-join ([`JoinQuery`]),
//! * a [`CountSketchTopK`] tracker for heavy hitters ([`TopKQuery`]),
//! * a [`HyperLogLog`] for distinct counts ([`DistinctQuery`]),
//! * a [`KllSketch`] for quantiles ([`QuantileQuery`]) —
//!
//! so one pass over the stream (or one `Bernoulli(p)` sample of it, via
//! [`SampledMultiSummary`]) answers all four query families at once.
//! Because [`MultiSummary`] implements [`Summary`], it rides the sharded
//! runtime unchanged: the stream is delivered to the shard workers once,
//! and every constituent summary is fed from that single delivery — this
//! is what the `multi_summary` bench measures against four separate
//! passes.
//!
//! Construction goes through a [`MultiSpec`], which freezes the random
//! seeds of all four constituents: any two summaries minted from the same
//! spec (or cloned from each other) are mergeable, which is exactly the
//! property sharding needs. The composite inherits the *weakest*
//! retraction guarantee of its parts — HyperLogLog and KLL are monotone,
//! so `supports_retract()` is honestly `false` and snapshot caches fall
//! back to full re-merges.

use crate::error::Result;
use crate::sampled::Sampled;
use crate::sketch::{JoinSchema, JoinSketch};
use crate::summary::{DistinctQuery, JoinQuery, QuantileQuery, Summary, TopKQuery};
use rand::Rng;
use sss_sketch::{CountSketchTopK, Estimate, FagmsSchema, HyperLogLog, KllSketch};

/// Frozen configuration (geometries + seeds) for [`MultiSummary`]
/// construction. Two summaries merge iff they were minted from the same
/// spec (or clones of it).
#[derive(Debug, Clone)]
pub struct MultiSpec {
    join: JoinSchema,
    topk_schema: FagmsSchema,
    topk_capacity: usize,
    hll_precision: u8,
    hll_seed: u64,
    kll_k: usize,
    kll_seed: u64,
}

impl MultiSpec {
    /// A spec over the given join schema with the crate's default
    /// geometries for the other three summaries: a 5×2048 Count-Sketch
    /// top-k tracker with 256 candidates, a precision-12 HyperLogLog
    /// (±1.6%), and a k = 200 KLL sketch (ε ≈ 1.6%).
    pub fn new<R: Rng>(join: JoinSchema, rng: &mut R) -> Self {
        Self {
            join,
            topk_schema: FagmsSchema::new(5, 2048, rng),
            topk_capacity: 256,
            hll_precision: 12,
            hll_seed: rng.random(),
            kll_k: 200,
            kll_seed: rng.random(),
        }
    }

    /// Override the top-k tracker geometry (its own sketch schema and
    /// candidate capacity).
    pub fn top_k(mut self, schema: FagmsSchema, capacity: usize) -> Self {
        self.topk_schema = schema;
        self.topk_capacity = capacity;
        self
    }

    /// Override the HyperLogLog precision (register count `2^precision`).
    pub fn distinct_precision(mut self, precision: u8) -> Self {
        self.hll_precision = precision;
        self
    }

    /// Override the KLL accuracy parameter `k`.
    pub fn quantile_k(mut self, k: usize) -> Self {
        self.kll_k = k;
        self
    }

    /// Mint an empty [`MultiSummary`]; all mints from one spec share
    /// seeds and therefore merge.
    ///
    /// # Errors
    ///
    /// Invalid geometry (zero capacity, out-of-range precision, tiny `k`).
    pub fn summary(&self) -> Result<MultiSummary> {
        Ok(MultiSummary {
            join: self.join.sketch(),
            topk: CountSketchTopK::new(&self.topk_schema, self.topk_capacity)?,
            distinct: HyperLogLog::with_seed(self.hll_precision, self.hll_seed)?,
            quantiles: KllSketch::with_seed(self.kll_k, self.kll_seed)?,
        })
    }

    /// Mint a [`SampledMultiSummary`]: the composite behind a
    /// `Bernoulli(p)` sampler, so one sampled pass serves all four query
    /// families with the paper's corrections applied on the way out.
    ///
    /// # Errors
    ///
    /// Invalid geometry or `p ∉ (0, 1]`.
    pub fn sampled<R: Rng>(&self, p: f64, seed_rng: &mut R) -> Result<SampledMultiSummary> {
        Sampled::new(self.summary()?, p, seed_rng)
    }
}

/// The composite summary: F₂ + top-k + F₀ + quantiles from one ingestion
/// pass. See the module docs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MultiSummary {
    join: JoinSketch,
    topk: CountSketchTopK,
    distinct: HyperLogLog,
    quantiles: KllSketch,
}

/// A [`MultiSummary`] behind the [`Sampled`] Bernoulli front end — the
/// one-pass sampled multi-query engine the acceptance bench exercises.
pub type SampledMultiSummary = Sampled<MultiSummary>;

impl MultiSummary {
    /// The constituent join sketch (raw, sample-domain).
    pub fn join(&self) -> &JoinSketch {
        &self.join
    }

    /// The constituent top-k tracker (raw, sample-domain).
    pub fn topk(&self) -> &CountSketchTopK {
        &self.topk
    }

    /// The constituent distinct counter (raw, sample-domain).
    pub fn hll(&self) -> &HyperLogLog {
        &self.distinct
    }

    /// The constituent quantile sketch (raw, sample-domain).
    pub fn kll(&self) -> &KllSketch {
        &self.quantiles
    }
}

/// Fan-out ingestion: every constituent absorbs the same tuples, each
/// with its own batch kernel, so `update_batch` stays bit-identical to
/// the per-key loop part by part.
///
/// A failed `merge_from` (mismatched specs) can leave earlier
/// constituents merged and later ones not — discard `self` on error;
/// summaries minted from one spec never hit this.
impl Summary for MultiSummary {
    fn update(&mut self, key: u64, count: i64) {
        Summary::update(&mut self.join, key, count);
        Summary::update(&mut self.topk, key, count);
        Summary::update(&mut self.distinct, key, count);
        Summary::update(&mut self.quantiles, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Summary::update_batch(&mut self.join, keys);
        Summary::update_batch(&mut self.topk, keys);
        Summary::update_batch(&mut self.distinct, keys);
        Summary::update_batch(&mut self.quantiles, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        self.join.merge_from(&other.join)?;
        self.topk.merge_from(&other.topk)?;
        self.distinct.merge_from(&other.distinct)?;
        self.quantiles.merge_from(&other.quantiles)
    }
}

impl JoinQuery for MultiSummary {
    fn self_join(&self) -> f64 {
        JoinQuery::self_join(&self.join)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        JoinQuery::size_of_join(&self.join, &other.join)
    }

    fn self_join_estimate(&self) -> Estimate {
        JoinQuery::self_join_estimate(&self.join)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        JoinQuery::size_of_join_estimate(&self.join, &other.join)
    }
}

impl TopKQuery for MultiSummary {
    fn frequency(&self, key: u64) -> f64 {
        TopKQuery::frequency(&self.topk, key)
    }

    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        TopKQuery::top_k(&self.topk, k)
    }

    fn frequency_variance(&self) -> f64 {
        TopKQuery::frequency_variance(&self.topk)
    }
}

impl DistinctQuery for MultiSummary {
    fn distinct(&self) -> f64 {
        DistinctQuery::distinct(&self.distinct)
    }

    fn distinct_estimate(&self) -> Estimate {
        DistinctQuery::distinct_estimate(&self.distinct)
    }
}

impl QuantileQuery for MultiSummary {
    fn quantile(&self, q: f64) -> Result<f64> {
        QuantileQuery::quantile(&self.quantiles, q)
    }

    fn rank(&self, value: u64) -> f64 {
        QuantileQuery::rank(&self.quantiles, value)
    }

    fn rank_error(&self) -> f64 {
        QuantileQuery::rank_error(&self.quantiles)
    }

    fn stream_len(&self) -> u64 {
        QuantileQuery::stream_len(&self.quantiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec(seed: u64) -> MultiSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let join = JoinSchema::fagms(3, 1024, &mut rng);
        MultiSpec::new(join, &mut rng)
    }

    fn stream() -> Vec<u64> {
        // Skewed-ish deterministic stream over 500 distinct keys.
        (0..60_000u64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 1000).min(499))
            .collect()
    }

    /// The fan-out answers every query bit-identically to feeding each
    /// constituent separately — the composite adds no estimation error.
    #[test]
    fn fan_out_matches_individual_summaries() {
        let spec = spec(1);
        let keys = stream();
        let mut multi = spec.summary().unwrap();
        Summary::update_batch(&mut multi, &keys);

        let mut parts = spec.summary().unwrap();
        Summary::update_batch(&mut parts.join, &keys);
        Summary::update_batch(&mut parts.topk, &keys);
        Summary::update_batch(&mut parts.distinct, &keys);
        Summary::update_batch(&mut parts.quantiles, &keys);

        assert_eq!(
            JoinQuery::self_join(&multi).to_bits(),
            JoinQuery::self_join(&parts.join).to_bits()
        );
        assert_eq!(
            TopKQuery::top_k(&multi, 10),
            TopKQuery::top_k(&parts.topk, 10)
        );
        assert_eq!(
            DistinctQuery::distinct(&multi).to_bits(),
            DistinctQuery::distinct(&parts.distinct).to_bits()
        );
        assert_eq!(
            QuantileQuery::quantile(&multi, 0.5).unwrap().to_bits(),
            QuantileQuery::quantile(&parts.quantiles, 0.5)
                .unwrap()
                .to_bits()
        );
    }

    /// Merging two composites is merging the parts: shard-split equals
    /// single-stream for every capability's guarantee.
    #[test]
    fn merge_equals_union() {
        let spec = spec(2);
        let keys = stream();
        let mut whole = spec.summary().unwrap();
        Summary::update_batch(&mut whole, &keys);
        let mut left = spec.summary().unwrap();
        let mut right = spec.summary().unwrap();
        Summary::update_batch(&mut left, &keys[..keys.len() / 2]);
        Summary::update_batch(&mut right, &keys[keys.len() / 2..]);
        left.merge_from(&right).unwrap();
        // Join sketches are linear: exactly equal.
        assert_eq!(
            JoinQuery::self_join(&left).to_bits(),
            JoinQuery::self_join(&whole).to_bits()
        );
        // HyperLogLog registers are max-merged: exactly equal.
        assert_eq!(
            DistinctQuery::distinct(&left).to_bits(),
            DistinctQuery::distinct(&whole).to_bits()
        );
        // KLL / top-k merges are guarantee-preserving, not bit-identical:
        // check the quantile lands within the (merged) rank error.
        let med = QuantileQuery::quantile(&left, 0.5).unwrap();
        let rank = QuantileQuery::rank(&whole, med as u64);
        assert!((rank - 0.5).abs() < 2.0 * QuantileQuery::rank_error(&left));
        assert_eq!(QuantileQuery::stream_len(&left), keys.len() as u64);
    }

    #[test]
    fn retraction_honestly_unsupported() {
        let spec = spec(3);
        let mut a = spec.summary().unwrap();
        let b = spec.summary().unwrap();
        assert!(!Summary::supports_retract(&a));
        assert!(matches!(
            Summary::retract_from(&mut a, &b),
            Err(crate::Error::RetractUnsupported)
        ));
    }

    #[test]
    fn mismatched_specs_refuse_to_merge() {
        let mut a = spec(4).summary().unwrap();
        let b = spec(5).summary().unwrap();
        assert!(a.merge_from(&b).is_err());
    }

    /// The sampled composite answers all four query families with
    /// corrections; sanity-check each against the known stream.
    #[test]
    fn sampled_composite_answers_everything() {
        let spec = spec(6);
        let keys: Vec<u64> = (0..100_000u64).map(|i| i % 500).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = spec.sampled(0.1, &mut rng).unwrap();
        s.feed_batch(&keys);
        assert!(s.kept() < 15_000);
        // F₂ = 500 · 200² = 2e7.
        let f2 = s.self_join_estimate();
        assert!((f2.value - 2e7).abs() / 2e7 < 0.2, "f2 {}", f2.value);
        // F₀ = 500, every key frequent enough to survive sampling.
        let d = s.distinct_estimate();
        assert!((d.value - 500.0).abs() / 500.0 < 0.1, "d {}", d.value);
        // Median of uniform 0..500 ≈ 250.
        let med = s.quantile(0.5).unwrap();
        assert!((med - 250.0).abs() < 50.0, "median {med}");
        // Top-k: all keys tie at 200; any tracked key's estimate ≈ 200.
        let top = s.top_k(5);
        assert!(!top.is_empty());
        assert!(
            (top[0].1.value - 200.0).abs() < 5.0 * top[0].1.variance.sqrt().max(1.0),
            "top freq {}",
            top[0].1.value
        );
    }
}
