//! [`Portable`] implementations for every serializable summary backend.
//!
//! Each impl pairs the backend's existing serde representation with a
//! [`crate::wire`] envelope: the kind tag names the concrete shape, the
//! format version pins the body layout, and the fingerprint hashes exactly
//! the configuration its `merge`/`merge_from` compatibility check depends
//! on — schema identities (which stand in for the random seeds they were
//! drawn with), dimensions, precision, capacities. Two summaries merge
//! through the wire iff they would merge in memory.
//!
//! Not here, deliberately:
//!
//! * [`crate::Sampled`] — carries a live `StdRng` skip-sampler whose
//!   state is not serializable; snapshot the *inner* summary (or use
//!   [`crate::EpochShedder`], which documents its RNG reseeding rule).
//! * [`crate::EpochShedder`] — implemented in [`crate::epochs`], next to
//!   the private state it serializes.

use crate::error::Result;
use crate::multi::MultiSummary;
use crate::sketch::JoinSketch;
use crate::summary::Portable;
use crate::wire;
use serde::de::DeserializeOwned;
use serde::Serialize;
use sss_sketch::{
    AgmsSketch, CountMinSketch, CountSketchTopK, FagmsSketch, HyperLogLog, KllSketch, MisraGries,
};
use sss_xi::{BucketFamily, SignFamily};

// Kind discriminant words folded into each fingerprint so that two
// backends whose remaining configuration words collide (e.g. equal
// depth/width) still fingerprint apart.
pub(crate) const TAG_AGMS: u64 = 0x01;
pub(crate) const TAG_FAGMS: u64 = 0x02;
pub(crate) const TAG_COUNTMIN: u64 = 0x03;
pub(crate) const TAG_MISRA_GRIES: u64 = 0x04;
pub(crate) const TAG_CS_TOPK: u64 = 0x05;
pub(crate) const TAG_HLL: u64 = 0x06;
pub(crate) const TAG_KLL: u64 = 0x07;
pub(crate) const TAG_EPOCHS: u64 = 0x08;

impl<F> Portable for AgmsSketch<F>
where
    F: SignFamily + Serialize + DeserializeOwned,
{
    const KIND: &'static str = "agms";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        let schema = self.schema();
        wire::fingerprint(&[TAG_AGMS, schema.id(), schema.len() as u64])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

impl<S, B> Portable for FagmsSketch<S, B>
where
    S: SignFamily + Serialize + DeserializeOwned,
    B: BucketFamily + Serialize + DeserializeOwned,
{
    const KIND: &'static str = "fagms";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        let schema = self.schema();
        wire::fingerprint(&[
            TAG_FAGMS,
            schema.id(),
            schema.depth() as u64,
            schema.width() as u64,
        ])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

impl<B> Portable for CountMinSketch<B>
where
    B: BucketFamily + Serialize + DeserializeOwned,
{
    const KIND: &'static str = "countmin";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        let schema = self.schema();
        wire::fingerprint(&[
            TAG_COUNTMIN,
            schema.id(),
            schema.depth() as u64,
            schema.width() as u64,
        ])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// The backend enum fingerprints like its active variant (plus the
/// variant's tag), so an AGMS-backed and an F-AGMS-backed [`JoinSketch`]
/// of coincidentally equal dimensions never claim compatibility.
impl Portable for JoinSketch {
    const KIND: &'static str = "join";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        match self {
            JoinSketch::Agms(s) => {
                wire::fingerprint(&[TAG_AGMS, s.schema().id(), s.schema().len() as u64])
            }
            JoinSketch::Fagms(s) => wire::fingerprint(&[
                TAG_FAGMS,
                s.schema().id(),
                s.schema().depth() as u64,
                s.schema().width() as u64,
            ]),
        }
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// Misra–Gries summaries merge whenever their capacities agree — there is
/// no randomness to pin — so the fingerprint covers exactly that.
impl Portable for MisraGries {
    const KIND: &'static str = "misra-gries";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        wire::fingerprint(&[TAG_MISRA_GRIES, self.capacity() as u64])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

impl<S, B> Portable for CountSketchTopK<S, B>
where
    S: SignFamily + Serialize + DeserializeOwned,
    B: BucketFamily + Serialize + DeserializeOwned,
{
    const KIND: &'static str = "cs-topk";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        let schema = self.sketch().schema();
        wire::fingerprint(&[
            TAG_CS_TOPK,
            schema.id(),
            schema.depth() as u64,
            schema.width() as u64,
            self.capacity() as u64,
        ])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// HyperLogLog merges iff precision *and* hash seed agree (the module
/// docs' schema identity), so both enter the fingerprint.
impl Portable for HyperLogLog {
    const KIND: &'static str = "hll";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        wire::fingerprint(&[TAG_HLL, self.precision() as u64, self.seed()])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// KLL merges on equal accuracy parameter `k` alone — the coin seed is
/// private randomness, not shared structure — so only `k` fingerprints.
impl Portable for KllSketch {
    const KIND: &'static str = "kll";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        wire::fingerprint(&[TAG_KLL, self.k() as u64])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// The composite fingerprints as the chain of its constituents'
/// fingerprints — two `MultiSummary`s are wire-compatible iff every part
/// is, which mirrors `merge_from`'s part-by-part checks exactly.
impl Portable for MultiSummary {
    const KIND: &'static str = "multi";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        wire::fingerprint(&[
            self.join().fingerprint(),
            self.topk().fingerprint(),
            self.hll().fingerprint(),
            self.kll().fingerprint(),
        ])
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint(), self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::sketch::JoinSchema;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sketch::topk::HeavyHitters;
    use sss_sketch::FagmsSchema;

    #[test]
    fn join_sketch_round_trips_through_the_wire() {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = JoinSchema::fagms(3, 64, &mut rng);
        let mut s = schema.sketch();
        for k in 0..500u64 {
            s.update(k, (k % 3 + 1) as i64);
        }
        let bytes = s.encode().unwrap();
        let head = wire::peek(&bytes).unwrap();
        assert_eq!(head.kind, "join");
        assert_eq!(head.fingerprint, s.fingerprint());
        let back = JoinSketch::decode(&bytes).unwrap();
        assert_eq!(
            back.raw_self_join().to_bits(),
            s.raw_self_join().to_bits(),
            "decode must reproduce the estimate exactly"
        );
    }

    #[test]
    fn merge_encoded_equals_in_memory_merge() {
        let mut rng = StdRng::seed_from_u64(12);
        let schema = JoinSchema::agms(32, &mut rng);
        let mut a = schema.sketch();
        let mut b = schema.sketch();
        a.update_batch(&[1, 2, 3, 4, 5]);
        b.update_batch(&[3, 4, 5, 6, 7]);
        let mut in_memory = a.clone();
        in_memory.merge_from(&b).unwrap();
        let mut through_wire = a.clone();
        through_wire.merge_encoded(&b.encode().unwrap()).unwrap();
        assert_eq!(
            through_wire.raw_self_join().to_bits(),
            in_memory.raw_self_join().to_bits()
        );
    }

    #[test]
    fn mismatched_fingerprints_refuse_to_merge() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut a = JoinSchema::fagms(2, 32, &mut rng).sketch();
        let b = JoinSchema::fagms(2, 32, &mut rng).sketch();
        let err = a.merge_encoded(&b.encode().unwrap()).unwrap_err();
        assert!(matches!(err, Error::FingerprintMismatch { .. }), "{err}");
    }

    #[test]
    fn foreign_kind_is_a_wire_mismatch() {
        let mut rng = StdRng::seed_from_u64(14);
        let hll = HyperLogLog::with_seed(12, 5).unwrap();
        let bytes = hll.encode().unwrap();
        assert!(matches!(
            KllSketch::decode(&bytes),
            Err(Error::WireMismatch { .. })
        ));
        let tk: CountSketchTopK =
            CountSketchTopK::new(&FagmsSchema::new(2, 16, &mut rng), 4).unwrap();
        assert!(matches!(
            MisraGries::decode(&tk.encode().unwrap()),
            Err(Error::WireMismatch { .. })
        ));
    }

    #[test]
    fn topk_summaries_round_trip_with_candidates() {
        let mut rng = StdRng::seed_from_u64(15);
        let schema: FagmsSchema = FagmsSchema::new(3, 128, &mut rng);
        let mut tk: CountSketchTopK = CountSketchTopK::new(&schema, 8).unwrap();
        let mut mg = MisraGries::new(8).unwrap();
        let keys: Vec<u64> = (0..3_000u64).map(|i| i % 37).collect();
        tk.offer_batch(&keys);
        mg.offer_batch(&keys);
        let tk2: CountSketchTopK = CountSketchTopK::decode(&tk.encode().unwrap()).unwrap();
        assert_eq!(tk.raw_top_k(8), tk2.raw_top_k(8));
        assert_eq!(tk.items_offered(), tk2.items_offered());
        let mg2 = MisraGries::decode(&mg.encode().unwrap()).unwrap();
        assert_eq!(mg.raw_top_k(8), mg2.raw_top_k(8));
        assert_eq!(mg.error_bound(), mg2.error_bound());
    }

    #[test]
    fn multi_summary_round_trips_and_fingerprints_all_parts() {
        let mut rng = StdRng::seed_from_u64(16);
        let spec = crate::MultiSpec::new(JoinSchema::fagms(2, 64, &mut rng), &mut rng);
        let mut m = spec.summary().unwrap();
        m.update_batch(&(0..2_000u64).map(|i| i % 99).collect::<Vec<_>>());
        let back = MultiSummary::decode(&m.encode().unwrap()).unwrap();
        assert_eq!(back.fingerprint(), m.fingerprint());
        assert_eq!(
            crate::JoinQuery::self_join(&back).to_bits(),
            crate::JoinQuery::self_join(&m).to_bits()
        );
        assert_eq!(
            crate::DistinctQuery::distinct(&back).to_bits(),
            crate::DistinctQuery::distinct(&m).to_bits()
        );
        // A spec with different seeds fingerprints apart.
        let mut rng2 = StdRng::seed_from_u64(17);
        let other = crate::MultiSpec::new(JoinSchema::fagms(2, 64, &mut rng2), &mut rng2)
            .summary()
            .unwrap();
        assert_ne!(other.fingerprint(), m.fingerprint());
    }

    /// Encoding is deterministic: the same state always yields the same
    /// bytes (hash-map-backed summaries serialize in sorted key order).
    #[test]
    fn encoding_is_deterministic() {
        let mut mg = MisraGries::new(16).unwrap();
        mg.offer_batch(&(0..500u64).map(|i| i % 23).collect::<Vec<_>>());
        assert_eq!(mg.encode().unwrap(), mg.encode().unwrap());
        let mut mg2 = mg.clone();
        mg2.offer(999, 1);
        assert_ne!(mg.encode().unwrap(), mg2.encode().unwrap());
    }
}
