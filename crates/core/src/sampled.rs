//! `Sampled<S>` — the Bernoulli sampling front end, generic over any
//! [`Summary`] capability.
//!
//! The paper's central idea is that a sketch over a `Bernoulli(p)` sample
//! still answers full-stream queries once the right `1/p` correction is
//! applied on the way out. Pre-redesign, each driver hard-coded one
//! summary kind (`LoadSheddingSketcher` for join sketches, `SampledTopK`
//! for heavy hitters). `Sampled<S>` factors the sampling machinery out
//! once: a geometric-skip Bernoulli sampler in front of *any* summary,
//! with query corrections unlocked per capability of `S`:
//!
//! | `S` implements | corrected queries | correction |
//! |---|---|---|
//! | [`JoinQuery`] | [`self_join`](Sampled::self_join), [`size_of_join`](Sampled::size_of_join) | Props 13–14: `S²/p² − (1−p)/p²·|F′|`, `S·T/(p·q)` |
//! | [`TopKQuery`] | [`point_estimate`](Sampled::point_estimate), [`top_k`](Sampled::top_k) | `f̂ = f′/p`, binomial thinning variance |
//! | [`DistinctQuery`] | [`distinct_estimate`](Sampled::distinct_estimate) | frequency-domain plug-in (see below) |
//! | [`QuantileQuery`] | [`quantile`](Sampled::quantile), [`quantile_bounds`](Sampled::quantile_bounds) | identity, with widened rank error |
//!
//! Because `Sampled<S>` itself implements [`Summary`], it rides the
//! sharded runtime like any other summary: sampling happens *inside the
//! shard workers*, so one delivery of the full stream pays one transport
//! cost while every summary sees only its kept tuples. Cloning preserves
//! the sampler state bit-for-bit — fine for snapshots (query clones never
//! advance the RNG), but shards that should sample *independently* must be
//! built via [`reseed`](Sampled::reseed) / per-shard prototypes, otherwise
//! identical skip sequences correlate the shards' inclusion decisions and
//! the cross-shard F₂ terms lose their `p²` scaling (the estimates would
//! be biased upward). `ShardedRuntime::new_per_shard` exists for exactly
//! this.
//!
//! ## F₀ under sampling: what is (and isn't) correctable
//!
//! A Bernoulli sample thins each key's frequency `fᵢ` binomially, so a key
//! survives into the sample with probability `1 − (1−p)^{fᵢ}` and
//! `E[D′] = Σᵢ (1 − (1−p)^{fᵢ})`. Inverting this **requires the full
//! frequency histogram**, which neither the sample nor any one-pass
//! summary retains — an *exact* unbiased F₀ correction from a Bernoulli
//! sample is impossible in one pass. [`Sampled::distinct_estimate`]
//! therefore applies the homogeneous-frequency plug-in: treat every key
//! as carrying the mean full-stream frequency `f̄ = (kept/p)/D` and solve
//! the self-consistency equation `D = D′/(1 − (1−p)^{f̄})` for `D` by
//! fixed-point iteration (see [`bernoulli_distinct_estimate`] for why the
//! one-step version is biased low). The unmodelled histogram spread is
//! acknowledged by inflating the variance with the full correction
//! magnitude (treated as one standard deviation of model error), so the
//! interval is honest: negligible when frequencies are high enough that
//! almost every key survives (`(1−p)^{f̄} ≈ 0`), and wide when the
//! correction actually matters.
//!
//! ## Quantiles under sampling
//!
//! Bernoulli sampling is **rank-invariant in expectation**: the sample
//! rank of any fixed value concentrates on its stream rank (each tuple is
//! kept independently with the same `p`), so the point correction is the
//! identity — the sample's `q`-quantile estimates the stream's. What
//! sampling does cost is rank precision: the sampled rank of a value with
//! true rank `q` has standard deviation `≈ √(q(1−q)(1−p)/kept)`, which
//! [`Sampled::quantile_bounds`] adds (at 3σ) to the backend's own rank
//! error before converting ranks back to value bounds. The *value-domain*
//! variance is unknowable without a density model, so
//! [`Sampled::quantile_estimate`] returns an honest [`Estimate::point`]
//! and callers are pointed at the rank-based bounds.

use crate::error::{Error, Result};
use crate::shedding::{bernoulli_self_join, skip_sample_batch};
use crate::summary::{DistinctQuery, JoinQuery, QuantileQuery, Summary, TopKQuery};
use rand::rngs::StdRng;
use rand::Rng;
use sss_sampling::bernoulli::GeometricSkip;
use sss_sampling::{
    bernoulli_frequency_variance_plugin, bernoulli_self_join_variance_plugin,
    bernoulli_size_of_join_variance_plugin,
};
use sss_sketch::{CountSketchTopK, Estimate, FagmsSchema, HyperLogLog, KllSketch, MisraGries};

/// Bernoulli load shedder in front of any mergeable summary; query
/// corrections are unlocked by the capabilities of `S` (see the module
/// docs).
///
/// Deliberately **not** [`crate::Portable`]: the live `StdRng` behind the
/// geometric skip has no stable wire representation, and a reseeded
/// decode would silently decorrelate a snapshot from its source sampler.
/// Ship the inner summary (plus `p`/`seen`/`kept`, which the typed
/// estimates already carry) instead.
#[derive(Debug, Clone)]
pub struct Sampled<S: Summary> {
    summary: S,
    skip: GeometricSkip<StdRng>,
    /// Tuples to silently drop before the next kept tuple.
    gap: u64,
    p: f64,
    seen: u64,
    kept: u64,
}

impl Sampled<MisraGries> {
    /// A Misra–Gries summary of `capacity` counters behind a
    /// `Bernoulli(p)` sample: deterministic `ε·n′` undercount bound on the
    /// kept substream, `1/p`-corrected on the way out.
    ///
    /// # Errors
    ///
    /// [`crate::Error`] if `p ∉ (0, 1]` or `capacity == 0`.
    pub fn misra_gries<R: Rng>(capacity: usize, p: f64, seed_rng: &mut R) -> Result<Self> {
        Self::new(MisraGries::new(capacity)?, p, seed_rng)
    }
}

impl Sampled<CountSketchTopK> {
    /// A Count-Sketch top-k tracker (candidate heap over a
    /// [`FagmsSchema`]) behind a `Bernoulli(p)` sample.
    ///
    /// # Errors
    ///
    /// [`crate::Error`] if `p ∉ (0, 1]` or `capacity == 0`.
    pub fn count_sketch<R: Rng>(
        schema: &FagmsSchema,
        capacity: usize,
        p: f64,
        seed_rng: &mut R,
    ) -> Result<Self> {
        Self::new(CountSketchTopK::new(schema, capacity)?, p, seed_rng)
    }
}

impl Sampled<HyperLogLog> {
    /// A HyperLogLog distinct counter behind a `Bernoulli(p)` sample.
    ///
    /// # Errors
    ///
    /// [`crate::Error`] if `p ∉ (0, 1]` or the precision is out of range.
    pub fn hyperloglog<R: Rng>(precision: u8, p: f64, seed_rng: &mut R) -> Result<Self> {
        let hll = HyperLogLog::new(precision, seed_rng)?;
        Self::new(hll, p, seed_rng)
    }
}

impl Sampled<KllSketch> {
    /// A KLL quantile summary behind a `Bernoulli(p)` sample.
    ///
    /// # Errors
    ///
    /// [`crate::Error`] if `p ∉ (0, 1]` or `k` is too small.
    pub fn kll<R: Rng>(k: usize, p: f64, seed_rng: &mut R) -> Result<Self> {
        let kll = KllSketch::new(k, seed_rng)?;
        Self::new(kll, p, seed_rng)
    }
}

impl<S: Summary> Sampled<S> {
    /// Wrap an empty summary with inclusion probability `p ∈ (0, 1]`.
    ///
    /// `p = 1` degenerates to feeding the summary directly (every tuple
    /// kept, sampling variance identically zero), which is how the
    /// unsampled engine paths reuse this type.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Sampling`] if `p ∉ (0, 1]`.
    pub fn new<R: Rng>(summary: S, p: f64, seed_rng: &mut R) -> Result<Self> {
        let mut skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        let gap = skip.next_gap();
        Ok(Self {
            summary,
            skip,
            gap,
            p,
            seen: 0,
            kept: 0,
        })
    }

    /// Replace the sampler's RNG with a freshly seeded one (and redraw the
    /// pending gap). Use this to decorrelate clones: a cloned `Sampled`
    /// replays the *same* skip sequence as its source, which is correct
    /// for snapshots but biases multi-shard deployments where each shard
    /// must sample independently.
    ///
    /// # Errors
    ///
    /// Never fails for a valid existing `p`; kept fallible for signature
    /// stability with [`new`](Sampled::new).
    pub fn reseed<R: Rng>(&mut self, seed_rng: &mut R) -> Result<()> {
        self.skip = GeometricSkip::<StdRng>::new(self.p, seed_rng)?;
        self.gap = self.skip.next_gap();
        Ok(())
    }

    /// Offer the next stream tuple; returns whether it was kept.
    #[inline]
    pub fn observe(&mut self, key: u64) -> bool {
        self.seen += 1;
        if self.gap > 0 {
            self.gap -= 1;
            return false;
        }
        self.summary.update(key, 1);
        self.kept += 1;
        self.gap = self.skip.next_gap();
        true
    }

    /// Offer a whole batch of stream tuples; returns how many were kept.
    ///
    /// Bit-identical to calling [`Sampled::observe`] on each key in turn —
    /// shares the geometric-gap kernel with the join shedders.
    pub fn feed_batch(&mut self, keys: &[u64]) -> u64 {
        let kept_now = skip_sample_batch(&mut self.summary, &mut self.skip, &mut self.gap, keys);
        self.seen += keys.len() as u64;
        self.kept += kept_now;
        kept_now
    }

    /// The inclusion probability `p`.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Tuples offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Tuples kept (summarized) so far.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// The underlying summary (e.g. to merge partial streams or reach raw
    /// sample-domain queries).
    pub fn summary(&self) -> &S {
        &self.summary
    }
}

/// `Sampled<S>` is itself a [`Summary`], so it rides the sharded runtime:
/// the sampler travels *with* the summary into the shard workers, and the
/// merged snapshot's corrected queries describe the full offered stream.
///
/// Insert-only: `update(key, count)` offers `count` independent tuples
/// (each with its own inclusion draw) and ignores non-positive counts —
/// retracting tuples that were never sampled is not meaningful.
/// Merging requires equal inclusion probabilities (the union of
/// independent `Bernoulli(p)` samples of disjoint streams is a
/// `Bernoulli(p)` sample of their concatenation); retraction is honestly
/// unsupported, so snapshot caches fall back to full re-merges.
impl<S: Summary> Summary for Sampled<S> {
    fn update(&mut self, key: u64, count: i64) {
        for _ in 0..count.max(0) {
            self.observe(key);
        }
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.feed_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        if self.p != other.p {
            return Err(Error::IncompatibleEstimators);
        }
        self.summary.merge_from(&other.summary)?;
        self.seen += other.seen;
        self.kept += other.kept;
        Ok(())
    }
}

impl<S: Summary + JoinQuery> Sampled<S> {
    /// Bernoulli-corrected self-join (F₂) estimate of the full offered
    /// stream (paper Proposition 14): `X = S²/p² − (1−p)/p² · |F′|`.
    pub fn self_join(&self) -> f64 {
        bernoulli_self_join(self.summary.self_join(), self.p, self.kept)
    }

    /// Typed corrected self-join estimate: the summary's own lane variance
    /// scaled by `1/p⁴` plus the sampling variance plug-in of the paper's
    /// Section VI-A, both stacked into one [`Estimate`].
    pub fn self_join_estimate(&self) -> Estimate {
        let raw = self.summary.self_join_estimate();
        let value = bernoulli_self_join(raw.value, self.p, self.kept);
        let basics = raw
            .basics
            .iter()
            .map(|&b| bernoulli_self_join(b, self.p, self.kept))
            .collect();
        let p4 = (self.p * self.p) * (self.p * self.p);
        let sketch_variance = raw.variance / p4;
        let sampling_variance = bernoulli_self_join_variance_plugin(self.p, self.seen, value);
        Estimate {
            value,
            variance: sketch_variance + sampling_variance,
            basics,
        }
    }

    /// Bernoulli-corrected size-of-join estimate against another sampled
    /// summary (paper Proposition 13): `X = S·T/(p·q)`. The two sides may
    /// use different inclusion probabilities.
    ///
    /// # Errors
    ///
    /// Schema mismatch between the underlying summaries.
    pub fn size_of_join(&self, other: &Sampled<S>) -> Result<f64> {
        Ok(self.summary.size_of_join(&other.summary)? / (self.p * other.p))
    }

    /// Typed corrected size-of-join estimate with both sketch and sampling
    /// variance terms.
    ///
    /// # Errors
    ///
    /// Schema mismatch between the underlying summaries.
    pub fn size_of_join_estimate(&self, other: &Sampled<S>) -> Result<Estimate> {
        let raw = self.summary.size_of_join_estimate(&other.summary)?;
        let scale = self.p * other.p;
        let value = raw.value / scale;
        let basics = raw.basics.iter().map(|&b| b / scale).collect();
        let sketch_variance = raw.variance / (scale * scale);
        let sampling_variance = bernoulli_size_of_join_variance_plugin(
            self.p,
            other.p,
            self.self_join(),
            other.self_join(),
            value,
        );
        Ok(Estimate {
            value,
            variance: sketch_variance + sampling_variance,
            basics,
        })
    }
}

impl<S: Summary + TopKQuery> Sampled<S> {
    /// Typed full-stream frequency estimate for one key: the summary's raw
    /// sample-frequency estimate scaled by `1/p`, with the summary noise
    /// (`/p²`) and the binomial thinning plug-in stacked into the variance.
    pub fn point_estimate(&self, key: u64) -> Estimate {
        self.correct_frequency(self.summary.frequency(key))
    }

    /// The `k` heaviest keys with typed full-stream frequency estimates,
    /// heaviest first (ties broken toward the smaller key).
    ///
    /// The `1/p` correction is monotone, so the ranking is exactly the
    /// summary's raw ranking over the kept sample; only the magnitudes and
    /// error bars are rescaled.
    pub fn top_k(&self, k: usize) -> Vec<(u64, Estimate)> {
        self.summary
            .top_k(k)
            .into_iter()
            .map(|(key, raw)| (key, self.correct_frequency(raw)))
            .collect()
    }

    fn correct_frequency(&self, raw: f64) -> Estimate {
        let value = raw / self.p;
        let summary_variance = self.summary.frequency_variance() / (self.p * self.p);
        let sampling_variance = bernoulli_frequency_variance_plugin(self.p, value);
        Estimate {
            value,
            variance: summary_variance + sampling_variance,
            basics: Vec::new(),
        }
    }
}

impl<S: Summary + DistinctQuery> Sampled<S> {
    /// Corrected full-stream distinct-count (F₀) estimate — the point
    /// value of [`distinct_estimate`](Sampled::distinct_estimate).
    pub fn distinct(&self) -> f64 {
        self.distinct_estimate().value
    }

    /// Typed corrected F₀ estimate via the homogeneous-frequency plug-in
    /// (see the module docs for why an exact one-pass correction is
    /// impossible and how the model error is priced into the variance).
    pub fn distinct_estimate(&self) -> Estimate {
        bernoulli_distinct_estimate(self.summary.distinct_estimate(), self.p, self.kept)
    }
}

impl<S: Summary + QuantileQuery> Sampled<S> {
    /// The full-stream `q`-quantile estimate: the sample's `q`-quantile,
    /// unchanged — Bernoulli sampling is rank-invariant (module docs).
    ///
    /// # Errors
    ///
    /// Invalid `q`, or nothing sampled yet.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        self.summary.quantile(q)
    }

    /// Typed quantile estimate. The value-domain variance of a quantile is
    /// unknowable without a density model, so this is an honest
    /// [`Estimate::point`] (infinite variance); use
    /// [`quantile_bounds`](Sampled::quantile_bounds) for the rank-based
    /// error bar.
    ///
    /// # Errors
    ///
    /// Invalid `q`, or nothing sampled yet.
    pub fn quantile_estimate(&self, q: f64) -> Result<Estimate> {
        Ok(Estimate::point(self.quantile(q)?))
    }

    /// The summary's rank error widened by the sampling noise: backend ε
    /// plus `3·√(q(1−q)(1−p)/kept)` — the 3σ binomial rank jitter of the
    /// sample itself (zero at `p = 1`).
    pub fn rank_error(&self, q: f64) -> f64 {
        let backend = self.summary.rank_error();
        if self.p >= 1.0 || self.kept == 0 {
            return backend;
        }
        let jitter = (q * (1.0 - q) * (1.0 - self.p) / self.kept as f64).sqrt();
        backend + 3.0 * jitter
    }

    /// Conservative full-stream value bounds for the `q`-quantile: the
    /// sample values at ranks `q ∓` [`rank_error`](Sampled::rank_error),
    /// clamped to `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Invalid `q`, or nothing sampled yet.
    pub fn quantile_bounds(&self, q: f64) -> Result<(f64, f64)> {
        let eps = self.rank_error(q);
        Ok((
            self.summary.quantile((q - eps).max(0.0))?,
            self.summary.quantile((q + eps).min(1.0))?,
        ))
    }
}

/// The homogeneous-frequency F₀ correction shared by
/// [`Sampled::distinct_estimate`] and the multi-summary drivers.
///
/// `raw` is the backend's typed estimate of the *sample's* distinct count
/// `D′`; `kept` the number of sampled tuples. The homogeneous model says a
/// stream of `N̂ = kept/p` tuples over `D` equally frequent keys loses a
/// key with probability `(1−p)^{N̂/D}`, so `D` must satisfy the
/// self-consistency equation
///
/// ```text
/// D = D′ / (1 − (1−p)^{N̂/D})
/// ```
///
/// solved here by fixed-point iteration from `D₀ = D′`. (The one-step
/// plug-in that evaluates the mean frequency at `D′` instead of `D` is
/// biased low — `D′ < D` overstates the mean frequency, understating the
/// correction — by ~20% in low-frequency regimes. The iteration map is
/// increasing and a contraction at the fixed point, so starting below it
/// converges monotonically upward.) The survival probability is floored
/// (at 1%) to keep the estimate finite in the degenerate
/// all-frequencies-tiny regime, and the correction magnitude `D̂ − D′` is
/// added to the standard deviation as model error — see the module docs
/// for why no one-pass estimator can do better without the full frequency
/// histogram.
pub fn bernoulli_distinct_estimate(raw: Estimate, p: f64, kept: u64) -> Estimate {
    if p >= 1.0 {
        return raw;
    }
    let d_sample = raw.value.max(0.0);
    if d_sample == 0.0 || kept == 0 {
        return raw;
    }
    let scaled_len = kept as f64 / p;
    let mut value = d_sample;
    for _ in 0..64 {
        let mean_frequency = scaled_len / value;
        let survival = (1.0 - (1.0 - p).powf(mean_frequency)).max(0.01);
        let next = d_sample / survival;
        if (next - value).abs() <= 1e-9 * value {
            value = next;
            break;
        }
        value = next;
    }
    // The survival probability implied by the fixed point itself.
    let survival = (d_sample / value).clamp(0.01, 1.0);
    let model_error = value - d_sample;
    Estimate {
        value,
        variance: raw.variance / (survival * survival) + model_error * model_error,
        basics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sketch::topk::HeavyHitters;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A fixed skewed stream: key k (0..10) appears 2^(9−k) · 64 times,
    /// shuffled deterministically.
    fn skewed_stream() -> Vec<u64> {
        let mut keys = Vec::new();
        for k in 0..10u64 {
            for _ in 0..(1u64 << (9 - k)) * 64 {
                keys.push(k);
            }
        }
        // LCG shuffle for a deterministic interleaving.
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        keys
    }

    #[test]
    fn p_one_is_the_raw_summary() {
        let mut r = rng(1);
        let mut t = Sampled::misra_gries(16, 1.0, &mut r).unwrap();
        let keys = skewed_stream();
        for &k in &keys {
            assert!(t.observe(k));
        }
        assert_eq!(t.kept(), keys.len() as u64);
        let top = t.top_k(3);
        let raw = t.summary().raw_top_k(3);
        for ((k, e), (rk, rv)) in top.iter().zip(raw.iter()) {
            assert_eq!(k, rk);
            assert_eq!(e.value.to_bits(), rv.to_bits());
        }
        // No sampling at p = 1 and MG is exact at this capacity: the top
        // key's variance is exactly zero.
        assert_eq!(top[0].1.variance, 0.0);
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut r = rng(2);
        assert!(Sampled::misra_gries(16, 0.0, &mut r).is_err());
        assert!(Sampled::misra_gries(16, 1.5, &mut r).is_err());
        assert!(Sampled::misra_gries(0, 0.5, &mut r).is_err());
    }

    #[test]
    fn sampled_estimates_recover_the_heavy_keys() {
        let mut r = rng(3);
        let mut t = Sampled::misra_gries(16, 0.25, &mut r).unwrap();
        let keys = skewed_stream();
        t.feed_batch(&keys);
        assert!(t.kept() < keys.len() as u64 / 2, "kept {}", t.kept());
        let top = t.top_k(3);
        assert_eq!(top[0].0, 0, "heaviest key is 0");
        // Key 0 appears 2^9·64 = 32768 times; the 1/p-corrected estimate
        // should land within a few sampling standard deviations.
        let truth = 32768.0;
        let e = &top[0].1;
        let sd = e.variance.sqrt();
        assert!(
            (e.value - truth).abs() < 5.0 * sd.max(1.0),
            "est {} truth {truth} sd {sd}",
            e.value
        );
        assert!(e.chebyshev(0.99).unwrap().half_width() > 0.0);
    }

    /// The batched path must replay the scalar path exactly, as for the
    /// join shedders.
    #[test]
    fn feed_batch_is_bit_identical_to_observe() {
        for p in [0.03, 0.5, 1.0] {
            let mut seed_a = rng(11);
            let mut seed_b = rng(11);
            let mut scalar = Sampled::misra_gries(8, p, &mut seed_a).unwrap();
            let mut batched = Sampled::misra_gries(8, p, &mut seed_b).unwrap();
            let keys: Vec<u64> = (0..30_000u64).map(|i| (i * 2_654_435_761) % 50).collect();
            for &k in &keys {
                scalar.observe(k);
            }
            batched.feed_batch(&[]);
            let mut rest = keys.as_slice();
            for size in [1usize, 7, 255, 256, 257, 1000].iter().cycle() {
                if rest.is_empty() {
                    break;
                }
                let take = (*size).min(rest.len());
                batched.feed_batch(&rest[..take]);
                rest = &rest[take..];
            }
            assert_eq!(scalar.seen(), batched.seen(), "p = {p}");
            assert_eq!(scalar.kept(), batched.kept(), "p = {p}");
            assert_eq!(
                scalar.summary().raw_top_k(8),
                batched.summary().raw_top_k(8),
                "p = {p}"
            );
        }
    }

    /// Monte-Carlo unbiasedness of the 1/p correction: the mean estimate
    /// of a fixed key's frequency over many independent samples matches
    /// the true frequency.
    #[test]
    fn sampled_frequency_is_unbiased() {
        let mut r = rng(7);
        let truth = 400.0;
        let reps = 300;
        let mut acc = 0.0;
        for _ in 0..reps {
            let mut t = Sampled::misra_gries(4, 0.3, &mut r).unwrap();
            for _ in 0..400u64 {
                t.observe(42);
            }
            acc += t.point_estimate(42).value;
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean = {mean}, truth = {truth}"
        );
    }

    /// The generic join corrections agree bit-for-bit with the dedicated
    /// `LoadSheddingSketcher` driver on the same sample (same kernel, same
    /// formulas — the lens is a pure generalization).
    #[test]
    fn join_corrections_match_the_dedicated_shedder() {
        use crate::sketch::JoinSchema;
        let mut r1 = rng(21);
        let mut r2 = rng(21);
        let schema = JoinSchema::fagms(3, 512, &mut StdRng::seed_from_u64(5));
        let mut lens = Sampled::new(schema.sketch(), 0.2, &mut r1).unwrap();
        let mut shed = crate::LoadSheddingSketcher::new(&schema, 0.2, &mut r2).unwrap();
        let keys = skewed_stream();
        lens.feed_batch(&keys);
        shed.feed_batch(&keys);
        assert_eq!(lens.kept(), shed.kept());
        assert_eq!(lens.self_join().to_bits(), shed.self_join().to_bits());
        let a = lens.self_join_estimate();
        let b = shed.self_join_estimate();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
    }

    #[test]
    fn distinct_correction_recovers_truth_in_the_valid_regime() {
        // 2000 distinct keys, each with frequency 100 — at p = 0.1 the
        // homogeneous plug-in's miss term (0.9)^100 ≈ 3e-5 is negligible.
        let keys: Vec<u64> = (0..200_000u64).map(|i| i % 2_000).collect();
        let mut r = rng(31);
        let mut d = Sampled::hyperloglog(12, 0.1, &mut r).unwrap();
        d.feed_batch(&keys);
        let est = d.distinct_estimate();
        let rel = (est.value - 2_000.0).abs() / 2_000.0;
        assert!(rel < 0.1, "est {} rel {rel}", est.value);
        assert!(est.variance.is_finite() && est.variance > 0.0);
        // Sanity: the interval covers the truth.
        assert!(est.chebyshev(0.99).unwrap().contains(2_000.0));
    }

    #[test]
    fn distinct_correction_widens_when_keys_are_rare() {
        // Every key appears once: at p = 0.25 the sample misses ~75% of
        // keys; the plug-in corrects upward and the model-error term keeps
        // the interval honest (very wide).
        let keys: Vec<u64> = (0..10_000u64).collect();
        let mut r = rng(33);
        let mut d = Sampled::hyperloglog(12, 0.25, &mut r).unwrap();
        d.feed_batch(&keys);
        let est = d.distinct_estimate();
        assert!(
            est.value > d.summary().raw_distinct(),
            "correction must scale up"
        );
        // Model error dominates: σ at least the correction magnitude.
        assert!(est.variance.sqrt() >= est.value - d.summary().raw_distinct() - 1.0);
    }

    #[test]
    fn quantiles_are_rank_invariant_under_sampling() {
        let n = 100_000u64;
        let mut r = rng(41);
        let mut q = Sampled::kll(200, 0.1, &mut r).unwrap();
        let mut v = 3u64;
        for _ in 0..n {
            v = v.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
            q.observe(v % n);
        }
        for target in [0.5, 0.99] {
            let est = q.quantile(target).unwrap();
            let true_rank = est / n as f64;
            let eps = q.rank_error(target);
            assert!(
                (true_rank - target).abs() <= eps,
                "q={target}: rank {true_rank}, ε={eps}"
            );
            let (lo, hi) = q.quantile_bounds(target).unwrap();
            assert!(lo <= est && est <= hi);
            // The honest point estimate: no density model, no variance.
            let typed = q.quantile_estimate(target).unwrap();
            assert!(typed.variance.is_infinite());
        }
        // Sampling widens the rank error beyond the backend's own ε.
        assert!(q.rank_error(0.5) > q.summary().rank_error());
    }

    /// Sampled summaries merge when probabilities agree (union of
    /// independent samples) and refuse otherwise.
    #[test]
    fn merge_requires_equal_probability() {
        let mut r = rng(51);
        let mut a = Sampled::hyperloglog(10, 0.5, &mut r).unwrap();
        let mut b = Sampled::new(a.summary().clone(), 0.5, &mut r).unwrap();
        b.reseed(&mut r).unwrap();
        let keys: Vec<u64> = (0..4_000u64).collect();
        a.feed_batch(&keys[..2_000]);
        b.feed_batch(&keys[2_000..]);
        let seen = a.seen() + b.seen();
        let kept = a.kept() + b.kept();
        a.merge_from(&b).unwrap();
        assert_eq!(a.seen(), seen);
        assert_eq!(a.kept(), kept);
        let c = Sampled::hyperloglog(10, 0.25, &mut r).unwrap();
        assert!(matches!(
            a.merge_from(&c),
            Err(Error::IncompatibleEstimators) | Err(Error::Sketch(_))
        ));
        // Retraction is honestly unsupported (sample state is not
        // subtractable), so snapshot caches must full-rebuild.
        assert!(!Summary::supports_retract(&a));
    }
}
