//! Online aggregation: sketching a random-order scan, whose prefixes are
//! without-replacement samples (paper Section VI-C).
//!
//! "The fraction of the relation seen at each point during the scan
//! represents a sample without replacement of the entire relation as long
//! as the order of the tuples is random. More accurate estimates for the
//! computed statistics are available as the scanning advances." The driver
//! therefore exposes a *running* estimate after every tuple; when the scan
//! completes (`α = α₁ = 1`) the corrections vanish and the estimate is the
//! plain sketch estimate of the full relation.
//!
//! Estimates apply the Section III-E / Proposition 16 corrections:
//!
//! ```text
//! size of join:  X = (1/αβ) · S·T
//! self-join:     X = (1/αα₁)·S² − ((1−α₁)/α₁)·N
//! ```

use crate::error::{Error, Result};
use crate::sketch::{JoinSchema, JoinSketch};

/// Sketches the prefix of a random-order scan of a relation of known size.
///
/// ```
/// use rand::SeedableRng;
/// use sss_core::sketch::JoinSchema;
/// use sss_core::ScanSketcher;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let schema = JoinSchema::fagms(1, 2000, &mut rng);
/// // A relation of 10k tuples, scanned 20% of the way (random order).
/// let mut scan = ScanSketcher::new(&schema, 10_000).unwrap();
/// for i in 0..2000u64 {
///     scan.observe(i % 100).unwrap();
/// }
/// assert_eq!(scan.progress(), 0.2);
/// // Running estimate of the FULL relation's self-join size: the true
/// // relation is 100 keys × 100 copies ⇒ F₂ = 10⁶.
/// let est = scan.self_join().unwrap();
/// assert!((est - 1e6).abs() / 1e6 < 0.25, "est = {est}");
/// ```
#[derive(Debug, Clone)]
pub struct ScanSketcher {
    sketch: JoinSketch,
    population: u64,
    scanned: u64,
}

impl ScanSketcher {
    /// Create a sketcher for a relation of `population` tuples.
    ///
    /// # Errors
    ///
    /// [`Error::Sampling`] if `population == 0`.
    pub fn new(schema: &JoinSchema, population: u64) -> Result<Self> {
        if population == 0 {
            return Err(sss_sampling::Error::EmptyPopulation.into());
        }
        Ok(Self {
            sketch: schema.sketch(),
            population,
            scanned: 0,
        })
    }

    /// Observe (and sketch) the next scanned tuple.
    ///
    /// # Errors
    ///
    /// [`Error::ScanOverrun`] if more tuples than the declared relation
    /// size are observed — a WOR sample cannot exceed its population.
    #[inline]
    pub fn observe(&mut self, key: u64) -> Result<()> {
        if self.scanned >= self.population {
            return Err(Error::ScanOverrun {
                population: self.population,
            });
        }
        self.sketch.update(key, 1);
        self.scanned += 1;
        Ok(())
    }

    /// Tuples scanned so far (`m = |F′|`).
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Declared relation size `N = |F|`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Scan progress `α = m/N ∈ [0, 1]`.
    pub fn progress(&self) -> f64 {
        self.scanned as f64 / self.population as f64
    }

    /// Whether the whole relation has been scanned (estimates are then the
    /// plain full-data sketch estimates).
    pub fn is_complete(&self) -> bool {
        self.scanned == self.population
    }

    /// The underlying sketch.
    pub fn sketch(&self) -> &JoinSketch {
        &self.sketch
    }

    /// Unbiased running estimate of the relation's self-join size.
    ///
    /// # Errors
    ///
    /// [`Error::InsufficientSample`] until two tuples have been scanned
    /// (the `α₁` correction divides by `m − 1`).
    pub fn self_join(&self) -> Result<f64> {
        if self.scanned < 2 {
            return Err(Error::InsufficientSample {
                got: self.scanned,
                need: 2,
            });
        }
        let a = self.progress();
        let a1 = if self.population == 1 {
            1.0
        } else {
            (self.scanned - 1) as f64 / (self.population - 1) as f64
        };
        Ok(self.sketch.raw_self_join() / (a * a1) - (1.0 - a1) / a1 * self.population as f64)
    }

    /// Running estimate of the **correlation** between the two scanned
    /// attributes — the normalized join size
    /// `Σfᵢgᵢ / √(F₂(f)·F₂(g))` — one of the statistics the paper's §VI-C
    /// names as input to an online aggregation engine's decisions.
    ///
    /// The estimate is the ratio of the unbiased component estimates — a
    /// consistent (though mildly biased) ratio estimator. Frequencies are
    /// non-negative, so the true value lies in `[0, 1]`; sketch noise can
    /// push the raw ratio outside that interval, and the result is clamped
    /// to keep reports interpretable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScanSketcher::size_of_join`] and
    /// [`ScanSketcher::self_join`] on both sides.
    pub fn correlation(&self, other: &ScanSketcher) -> Result<f64> {
        let join = self.size_of_join(other)?;
        let f2 = self.self_join()?;
        let g2 = other.self_join()?;
        if f2 <= 0.0 || g2 <= 0.0 {
            // Degenerate sketch noise; report zero correlation.
            return Ok(0.0);
        }
        Ok((join / (f2 * g2).sqrt()).clamp(0.0, 1.0))
    }

    /// Unbiased running estimate of the size of join against another scan
    /// (built on the same schema).
    ///
    /// # Errors
    ///
    /// [`Error::InsufficientSample`] if either scan is empty;
    /// [`Error::Sketch`] on schema mismatch.
    pub fn size_of_join(&self, other: &ScanSketcher) -> Result<f64> {
        if self.scanned == 0 || other.scanned == 0 {
            return Err(Error::InsufficientSample {
                got: self.scanned.min(other.scanned),
                need: 1,
            });
        }
        let raw = self.sketch.raw_size_of_join(&other.sketch)?;
        Ok(raw / (self.progress() * other.progress()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sampling::without_replacement::PrefixScan;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A relation of 100 keys, key k with frequency k+1 (N = 5050).
    fn relation() -> Vec<u64> {
        (0..100u64)
            .flat_map(|k| std::iter::repeat(k).take(k as usize + 1))
            .collect()
    }

    fn truth() -> f64 {
        (1..=100u64).map(|f| (f * f) as f64).sum()
    }

    #[test]
    fn complete_scan_equals_full_sketch_estimate() {
        let mut r = rng(1);
        let schema = JoinSchema::fagms(1, 2048, &mut r);
        let rel = relation();
        let scan = PrefixScan::new(rel.clone(), &mut r);
        let mut s = ScanSketcher::new(&schema, rel.len() as u64).unwrap();
        for &k in scan.tuples() {
            s.observe(k).unwrap();
        }
        assert!(s.is_complete());
        assert_eq!(s.progress(), 1.0);
        // α = α₁ = 1: the correction vanishes exactly.
        let est = s.self_join().unwrap();
        assert!((est - s.sketch().raw_self_join()).abs() < 1e-9);
        // And one more tuple is an overrun.
        assert!(matches!(s.observe(0), Err(Error::ScanOverrun { .. })));
    }

    #[test]
    fn running_estimates_stabilize_after_ten_percent() {
        let mut r = rng(2);
        let schema = JoinSchema::fagms(1, 5000, &mut r);
        let rel = relation();
        let scan = PrefixScan::new(rel.clone(), &mut r);
        let mut s = ScanSketcher::new(&schema, rel.len() as u64).unwrap();
        let mut errors = Vec::new();
        for (i, &k) in scan.tuples().iter().enumerate() {
            s.observe(k).unwrap();
            if (i + 1) % 505 == 0 {
                errors.push((s.self_join().unwrap() - truth()).abs() / truth());
            }
        }
        // After 10% the error should already be moderate; at 100% tiny.
        assert!(errors[0] < 0.5, "10% error {}", errors[0]);
        assert!(errors[9] < 0.05, "100% error {}", errors[9]);
    }

    #[test]
    fn size_of_join_between_two_scans() {
        let mut r = rng(3);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        // F: keys 0..200 ×50; G: keys 100..300 ×40; overlap 100 keys.
        let f_rel: Vec<u64> = (0..200u64)
            .flat_map(|k| std::iter::repeat(k).take(50))
            .collect();
        let g_rel: Vec<u64> = (100..300u64)
            .flat_map(|k| std::iter::repeat(k).take(40))
            .collect();
        let f_scan = PrefixScan::new(f_rel.clone(), &mut r);
        let g_scan = PrefixScan::new(g_rel.clone(), &mut r);
        let mut fs = ScanSketcher::new(&schema, f_rel.len() as u64).unwrap();
        let mut gs = ScanSketcher::new(&schema, g_rel.len() as u64).unwrap();
        // Scan 20% of F and 30% of G.
        for &k in f_scan.prefix(f_rel.len() / 5).unwrap() {
            fs.observe(k).unwrap();
        }
        for &k in g_scan.prefix(g_rel.len() * 3 / 10).unwrap() {
            gs.observe(k).unwrap();
        }
        let truth = 100.0 * 50.0 * 40.0;
        let est = fs.size_of_join(&gs).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.3,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn correlation_tracks_overlap() {
        let mut r = rng(31);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        // Identical relations ⇒ correlation 1.
        let rel: Vec<u64> = (0..500u64)
            .flat_map(|k| std::iter::repeat(k).take(10))
            .collect();
        let scan_a = PrefixScan::new(rel.clone(), &mut r);
        let scan_b = PrefixScan::new(rel.clone(), &mut r);
        let mut a = ScanSketcher::new(&schema, rel.len() as u64).unwrap();
        let mut b = ScanSketcher::new(&schema, rel.len() as u64).unwrap();
        for &k in scan_a.prefix(rel.len() / 2).unwrap() {
            a.observe(k).unwrap();
        }
        for &k in scan_b.prefix(rel.len() / 2).unwrap() {
            b.observe(k).unwrap();
        }
        let c = a.correlation(&b).unwrap();
        assert!(c > 0.8, "identical relations: correlation {c}");

        // Disjoint relations ⇒ correlation ≈ 0.
        let rel2: Vec<u64> = (1000..1500u64)
            .flat_map(|k| std::iter::repeat(k).take(10))
            .collect();
        let scan_c = PrefixScan::new(rel2.clone(), &mut r);
        let mut cship = ScanSketcher::new(&schema, rel2.len() as u64).unwrap();
        for &k in scan_c.prefix(rel2.len() / 2).unwrap() {
            cship.observe(k).unwrap();
        }
        let c0 = a.correlation(&cship).unwrap();
        assert!(c0 < 0.2, "disjoint relations: correlation {c0}");
    }

    #[test]
    fn error_paths() {
        let mut r = rng(4);
        let schema = JoinSchema::agms(8, &mut r);
        assert!(ScanSketcher::new(&schema, 0).is_err());
        let s = ScanSketcher::new(&schema, 10).unwrap();
        assert!(matches!(
            s.self_join(),
            Err(Error::InsufficientSample { .. })
        ));
        let other = ScanSketcher::new(&schema, 10).unwrap();
        assert!(matches!(
            s.size_of_join(&other),
            Err(Error::InsufficientSample { .. })
        ));
    }

    #[test]
    fn unbiasedness_of_partial_scans() {
        let mut r = rng(5);
        let rel: Vec<u64> = (0..30u64)
            .flat_map(|k| std::iter::repeat(k).take(k as usize + 1))
            .collect();
        let truth: f64 = (1..=30u64).map(|f| (f * f) as f64).sum();
        let reps = 500;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let scan = PrefixScan::new(rel.clone(), &mut r);
            let mut s = ScanSketcher::new(&schema, rel.len() as u64).unwrap();
            for &k in scan.prefix(rel.len() / 4).unwrap() {
                s.observe(k).unwrap();
            }
            acc += s.self_join().unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }
}
