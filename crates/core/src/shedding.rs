//! Load shedding: sketching a Bernoulli sample of a too-fast stream
//! (paper Section VI-A).
//!
//! The driver draws geometric skip intervals (work proportional to the
//! tuples actually *kept*, per Olken) and forwards kept tuples to the
//! sketch. Estimates apply the Proposition 13/14 scaling:
//!
//! ```text
//! size of join:  X = (1/p_F·p_G) · S·T
//! self-join:     X = (1/p²)·S² − ((1−p)/p²)·|F′|
//! ```
//!
//! where `|F′|` is the number of kept tuples — known exactly, which is why
//! Bernoulli sampling composes so cleanly with sketching ("the size of the
//! sample is unknown prior to running the process. This is not a problem
//! anymore when the sample is sketched").

use crate::error::Result;
use crate::sketch::{JoinSchema, JoinSketch};
use rand::rngs::StdRng;
use rand::Rng;
use sss_sampling::bernoulli::GeometricSkip;
use sss_sketch::Estimate;

/// The Proposition 14 self-join correction, shared by every Bernoulli
/// estimator in the workspace: the unbiased full-stream self-join estimate
/// from the raw sketch estimate of a Bernoulli(`p`) sample in which `kept`
/// tuples were retained:
///
/// ```text
/// X = (1/p²)·S² − ((1−p)/p²)·|F′|
/// ```
///
/// Keeping this in one place guarantees the scalar shedder, the epoch
/// compaction diagonals, and the parallel-shed merge all apply the exact
/// same formula.
#[inline]
pub fn bernoulli_self_join(raw_self_join: f64, p: f64, kept: u64) -> f64 {
    let p2 = p * p;
    raw_self_join / p2 - (1.0 - p) / p2 * kept as f64
}

/// Typed self-join estimate of a sketch built over a `Bernoulli(p)` sample,
/// shared by [`LoadSheddingSketcher`] and the parallel shedder.
///
/// * `value` — [`bernoulli_self_join`] applied to the raw combined
///   estimate, bit-identical to the scalar query path;
/// * `basics` — the same Prop.-14 affine correction applied to each lane's
///   raw basic (every lane sees the full sample, so every lane gets the
///   full `kept` subtraction);
/// * `variance` — the lanes' empirical sketch variance scaled by `1/p⁴`
///   (the correction divides each basic by `p²`), **plus** the sampling
///   variance plug-in, unscaled. All lanes share the one sample, so the
///   cross-lane spread cannot see the sampling noise and averaging lanes
///   does not reduce it — the paper's Prop.-13/14 covariance caveat.
pub fn bernoulli_self_join_estimate(sketch: &JoinSketch, p: f64, kept: u64, seen: u64) -> Estimate {
    let raw = sketch.raw_self_join_estimate();
    let value = bernoulli_self_join(raw.value, p, kept);
    let basics = raw
        .basics
        .iter()
        .map(|&b| bernoulli_self_join(b, p, kept))
        .collect();
    let p4 = (p * p) * (p * p);
    let sketch_variance = raw.variance / p4;
    let sampling_variance = sss_sampling::bernoulli_self_join_variance_plugin(p, seen, value);
    Estimate {
        value,
        variance: sketch_variance + sampling_variance,
        basics,
    }
}

/// The skip-sampled batch kernel shared by every Bernoulli shedder in the
/// crate ([`LoadSheddingSketcher::feed_batch`],
/// [`crate::EpochShedder::feed_batch`] and
/// [`crate::SampledTopK::feed_batch`]): walk the batch by geometric gaps,
/// stack-buffer the kept keys, and flush them through the summary's batched
/// update kernel (for the join sketches, the runtime-dispatched `sss_xi`
/// row kernels). Returns how many keys were kept.
///
/// Bit-identical to the per-tuple `observe` loop: gaps are consumed in the
/// same order (one draw per kept tuple) and `update_batch` shares the
/// scalar path's counter state exactly. Skipped tuples cost a pointer jump
/// instead of a per-tuple branch.
pub(crate) fn skip_sample_batch<S: crate::summary::Summary>(
    sketch: &mut S,
    skip: &mut GeometricSkip<StdRng>,
    gap: &mut u64,
    keys: &[u64],
) -> u64 {
    const CHUNK: usize = 256;
    let mut kept_keys = [0u64; CHUNK];
    let mut fill = 0usize;
    let mut kept_now = 0u64;
    let mut pos = 0u64;
    let n = keys.len() as u64;
    loop {
        let remaining = n - pos;
        if *gap >= remaining {
            // The rest of the batch is skipped outright.
            *gap -= remaining;
            break;
        }
        pos += *gap;
        kept_keys[fill] = keys[pos as usize];
        fill += 1;
        kept_now += 1;
        if fill == CHUNK {
            sketch.update_batch(&kept_keys);
            fill = 0;
        }
        *gap = skip.next_gap();
        pos += 1;
    }
    if fill > 0 {
        sketch.update_batch(&kept_keys[..fill]);
    }
    kept_now
}

/// Bernoulli load shedder in front of a join sketch.
#[derive(Debug)]
pub struct LoadSheddingSketcher {
    sketch: JoinSketch,
    skip: GeometricSkip<StdRng>,
    /// Tuples to silently drop before the next kept tuple.
    gap: u64,
    p: f64,
    seen: u64,
    kept: u64,
}

impl LoadSheddingSketcher {
    /// Create a shedder with inclusion probability `p ∈ (0, 1]` over the
    /// given sketch schema.
    pub fn new<R: Rng>(schema: &JoinSchema, p: f64, seed_rng: &mut R) -> Result<Self> {
        let mut skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        let gap = skip.next_gap();
        Ok(Self {
            sketch: schema.sketch(),
            skip,
            gap,
            p,
            seen: 0,
            kept: 0,
        })
    }

    /// Offer the next stream tuple; returns whether it was kept (sketched).
    #[inline]
    pub fn observe(&mut self, key: u64) -> bool {
        self.seen += 1;
        if self.gap > 0 {
            self.gap -= 1;
            return false;
        }
        self.sketch.update(key, 1);
        self.kept += 1;
        self.gap = self.skip.next_gap();
        true
    }

    /// Offer a whole batch of stream tuples; returns how many were kept.
    ///
    /// Bit-identical to calling [`LoadSheddingSketcher::observe`] on each
    /// key in turn — see `skip_sample_batch` (shared with the epoch
    /// shedder) for the kernel and its contract.
    pub fn feed_batch(&mut self, keys: &[u64]) -> u64 {
        let kept_now = skip_sample_batch(&mut self.sketch, &mut self.skip, &mut self.gap, keys);
        self.seen += keys.len() as u64;
        self.kept += kept_now;
        kept_now
    }

    /// The inclusion probability `p`.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Tuples offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Tuples kept (sketched) so far.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// The underlying sketch (e.g. to merge partial streams).
    pub fn sketch(&self) -> &JoinSketch {
        &self.sketch
    }

    /// Unbiased self-join size estimate of the *full* stream
    /// (Proposition 14 scaling).
    pub fn self_join(&self) -> f64 {
        bernoulli_self_join(self.sketch.raw_self_join(), self.p, self.kept)
    }

    /// Unbiased size-of-join estimate between this shedded stream and
    /// another (Proposition 13 scaling, supporting different `p`s).
    ///
    /// # Errors
    ///
    /// [`crate::Error::Sketch`] if the two sketches do not share a schema.
    pub fn size_of_join(&self, other: &LoadSheddingSketcher) -> Result<f64> {
        let raw = self.sketch.raw_size_of_join(&other.sketch)?;
        Ok(raw / (self.p * other.p))
    }

    /// Typed self-join estimate with error state: value bit-identical to
    /// [`LoadSheddingSketcher::self_join`], variance combining the lanes'
    /// empirical sketch spread with the Bernoulli sampling plug-in (see
    /// [`bernoulli_self_join_estimate`] for the decomposition).
    pub fn self_join_estimate(&self) -> Estimate {
        bernoulli_self_join_estimate(&self.sketch, self.p, self.kept, self.seen)
    }

    /// Typed size-of-join estimate: value bit-identical to
    /// [`LoadSheddingSketcher::size_of_join`]; the variance adds the
    /// two-sided Bernoulli sampling plug-in (each side's self-join estimate
    /// bounding its F₂) to the `1/(p_F·p_G)²`-scaled sketch spread.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Sketch`] if the two sketches do not share a schema.
    pub fn size_of_join_estimate(&self, other: &LoadSheddingSketcher) -> Result<Estimate> {
        let raw = self.sketch.raw_size_of_join_estimate(&other.sketch)?;
        let scale = self.p * other.p;
        let value = raw.value / scale;
        let basics = raw.basics.iter().map(|&b| b / scale).collect();
        let sketch_variance = raw.variance / (scale * scale);
        let sampling_variance = sss_sampling::bernoulli_size_of_join_variance_plugin(
            self.p,
            other.p,
            self.self_join(),
            other.self_join(),
            value,
        );
        Ok(Estimate {
            value,
            variance: sketch_variance + sampling_variance,
            basics,
        })
    }

    /// The effective speed-up over sketching every tuple: tuples seen per
    /// tuple sketched. Returns `None` before any tuple is kept.
    pub fn speedup(&self) -> Option<f64> {
        if self.kept == 0 {
            None
        } else {
            Some(self.seen as f64 / self.kept as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn p_one_keeps_everything_and_is_exact_scaling() {
        let mut r = rng(1);
        let schema = JoinSchema::fagms(1, 2048, &mut r);
        let mut shed = LoadSheddingSketcher::new(&schema, 1.0, &mut r).unwrap();
        for k in 0..10_000u64 {
            assert!(shed.observe(k % 100));
        }
        assert_eq!(shed.kept(), 10_000);
        assert_eq!(shed.seen(), 10_000);
        // p = 1: estimate equals the raw sketch estimate.
        assert_eq!(shed.self_join(), shed.sketch().raw_self_join());
        assert_eq!(shed.speedup(), Some(1.0));
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut r = rng(2);
        let schema = JoinSchema::agms(8, &mut r);
        assert!(LoadSheddingSketcher::new(&schema, 0.0, &mut r).is_err());
        assert!(LoadSheddingSketcher::new(&schema, 1.5, &mut r).is_err());
    }

    #[test]
    fn kept_fraction_tracks_p() {
        let mut r = rng(3);
        let schema = JoinSchema::fagms(1, 512, &mut r);
        let mut shed = LoadSheddingSketcher::new(&schema, 0.05, &mut r).unwrap();
        for k in 0..100_000u64 {
            shed.observe(k);
        }
        let frac = shed.kept() as f64 / shed.seen() as f64;
        assert!((frac - 0.05).abs() < 0.005, "kept fraction {frac}");
        let sp = shed.speedup().unwrap();
        assert!((sp - 20.0).abs() < 2.0, "speed-up {sp}");
    }

    #[test]
    fn self_join_estimate_is_accurate_at_10_percent() {
        let mut r = rng(4);
        let schema = JoinSchema::fagms(1, 5000, &mut r);
        let mut shed = LoadSheddingSketcher::new(&schema, 0.1, &mut r).unwrap();
        // 1000 keys × 300 copies: F₂ = 9·10⁷.
        for _rep in 0..300u64 {
            for k in 0..1000u64 {
                shed.observe(k.wrapping_mul(2654435761));
            }
        }
        let truth = 1000.0 * 300.0 * 300.0;
        let est = shed.self_join();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn size_of_join_with_asymmetric_probabilities() {
        let mut r = rng(5);
        let schema = JoinSchema::fagms(1, 4096, &mut r);
        let mut f = LoadSheddingSketcher::new(&schema, 0.5, &mut r).unwrap();
        let mut g = LoadSheddingSketcher::new(&schema, 0.25, &mut r).unwrap();
        // F: keys 0..1000 ×100; G: keys 500..1500 ×80. Overlap 500 keys.
        for _ in 0..100 {
            for k in 0..1000u64 {
                f.observe(k);
            }
        }
        for _ in 0..80 {
            for k in 500..1500u64 {
                g.observe(k);
            }
        }
        let truth = 500.0 * 100.0 * 80.0;
        let est = f.size_of_join(&g).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.2,
            "est = {est}, truth = {truth}"
        );
    }

    #[test]
    fn join_requires_shared_schema() {
        let mut r = rng(6);
        let s1 = JoinSchema::fagms(1, 64, &mut r);
        let s2 = JoinSchema::fagms(1, 64, &mut r);
        let f = LoadSheddingSketcher::new(&s1, 0.5, &mut r).unwrap();
        let g = LoadSheddingSketcher::new(&s2, 0.5, &mut r).unwrap();
        assert!(f.size_of_join(&g).is_err());
    }

    /// The batched path must replay the scalar path exactly: identically
    /// seeded shedders fed the same tuples — one per tuple, one in batches
    /// of awkward sizes — end with the same sample and the same sketch.
    #[test]
    fn feed_batch_is_bit_identical_to_observe() {
        let mut r = rng(10);
        for p in [0.03, 0.5, 1.0] {
            let schema = JoinSchema::fagms(2, 256, &mut r);
            let mut seed_a = rng(11);
            let mut seed_b = rng(11);
            let mut scalar = LoadSheddingSketcher::new(&schema, p, &mut seed_a).unwrap();
            let mut batched = LoadSheddingSketcher::new(&schema, p, &mut seed_b).unwrap();
            let keys: Vec<u64> = (0..30_000u64).map(|i| (i * 2_654_435_761) % 400).collect();
            for &k in &keys {
                scalar.observe(k);
            }
            batched.feed_batch(&[]); // empty batches are harmless
            let mut rest = keys.as_slice();
            for size in [1usize, 7, 255, 256, 257, 1000].iter().cycle() {
                if rest.is_empty() {
                    break;
                }
                let take = (*size).min(rest.len());
                batched.feed_batch(&rest[..take]);
                rest = &rest[take..];
            }
            assert_eq!(scalar.seen(), batched.seen(), "p = {p}");
            assert_eq!(scalar.kept(), batched.kept(), "p = {p}");
            assert_eq!(
                scalar.sketch().raw_self_join(),
                batched.sketch().raw_self_join(),
                "p = {p}"
            );
        }
    }

    /// Unbiasedness at a small p: average many runs.
    #[test]
    fn estimate_is_unbiased_at_small_p() {
        let mut r = rng(7);
        let truth: f64 = (1..=40u64).map(|f| (f * f) as f64).sum();
        let reps = 400;
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = JoinSchema::agms(16, &mut r);
            let mut shed = LoadSheddingSketcher::new(&schema, 0.3, &mut r).unwrap();
            for key in 0..40u64 {
                for _ in 0..=key {
                    shed.observe(key);
                }
            }
            acc += shed.self_join();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }

    /// The typed estimates return the scalar queries' values bit for bit
    /// and decompose the variance into sketch + sampling parts.
    #[test]
    fn typed_estimates_are_bit_identical_with_coherent_variance() {
        let mut r = rng(21);
        let schema = JoinSchema::agms(32, &mut r);
        let mut shed = LoadSheddingSketcher::new(&schema, 0.4, &mut r).unwrap();
        let mut full = LoadSheddingSketcher::new(&schema, 1.0, &mut r).unwrap();
        for k in 0..30_000u64 {
            shed.observe(k % 200);
            full.observe(k % 200);
        }
        let e = shed.self_join_estimate();
        assert_eq!(e.value.to_bits(), shed.self_join().to_bits());
        assert_eq!(e.basics.len(), 32);
        assert!(e.variance.is_finite() && e.variance > 0.0);
        // An unshedded estimator has no sampling noise: its variance is
        // pure sketch spread, strictly below the shedded one's on the same
        // stream (the 1/p⁴ scaling plus the sampling term).
        let ef = full.self_join_estimate();
        assert_eq!(ef.value.to_bits(), full.self_join().to_bits());
        assert!(ef.variance < e.variance);

        let ej = shed.size_of_join_estimate(&full).unwrap();
        assert_eq!(
            ej.value.to_bits(),
            shed.size_of_join(&full).unwrap().to_bits()
        );
        assert!(ej.variance.is_finite());
        // The interval machinery is reachable end to end.
        assert!(e.chebyshev(0.95).unwrap().contains(e.value));
        assert!(e.clt(0.95).unwrap().half_width() < e.chebyshev(0.95).unwrap().half_width());
    }
}
