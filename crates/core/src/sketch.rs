//! The sketch backend selector.
//!
//! The drivers can run on either sketch family from `sss-sketch`:
//!
//! * **AGMS** — `n` basic counters, O(n) per update, mean-combined. The
//!   reference estimator the theory is stated for.
//! * **F-AGMS** — `depth × width` bucketed counters, O(depth) per update,
//!   median-combined. The paper's experimental choice ("due to their
//!   superior performance both in accuracy and update time").
//!
//! [`JoinSchema`] fixes the seeds; every sketch created from one schema can
//! be joined against every other. The concrete families are the workspace
//! defaults (CW4 signs, CW2 bucket hashes).

use crate::error::Result;
use rand::Rng;
use sss_sketch::{AgmsSchema, AgmsSketch, Estimate, FagmsSchema, FagmsSketch, Sketch as _};

/// Seeds for a join-capable sketch (AGMS or F-AGMS).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum JoinSchema {
    /// Basic AGMS with the given number of averaged counters.
    Agms(AgmsSchema),
    /// F-AGMS with `depth` median-combined rows of `width` buckets.
    Fagms(FagmsSchema),
}

impl JoinSchema {
    /// An AGMS schema with `counters` basic estimators.
    pub fn agms<R: Rng + ?Sized>(counters: usize, rng: &mut R) -> Self {
        JoinSchema::Agms(AgmsSchema::new(counters, rng))
    }

    /// An F-AGMS schema with `depth` rows of `width` buckets. The paper's
    /// experiments use `fagms(1, 5000)` or `fagms(1, 10000)`.
    pub fn fagms<R: Rng + ?Sized>(depth: usize, width: usize, rng: &mut R) -> Self {
        JoinSchema::Fagms(FagmsSchema::new(depth, width, rng))
    }

    /// A zeroed sketch bound to this schema.
    pub fn sketch(&self) -> JoinSketch {
        match self {
            JoinSchema::Agms(s) => JoinSketch::Agms(s.sketch()),
            JoinSchema::Fagms(s) => JoinSketch::Fagms(s.sketch()),
        }
    }

    /// Total number of counters a sketch from this schema maintains.
    pub fn counters(&self) -> usize {
        match self {
            JoinSchema::Agms(s) => s.len(),
            JoinSchema::Fagms(s) => s.depth() * s.width(),
        }
    }

    /// The averaging factor `n` entering the variance formulas: the number
    /// of basic AGMS estimators effectively averaged (`width` per F-AGMS
    /// row).
    pub fn averaging_factor(&self) -> usize {
        match self {
            JoinSchema::Agms(s) => s.len(),
            JoinSchema::Fagms(s) => s.width(),
        }
    }
}

/// A sketch created from a [`JoinSchema`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum JoinSketch {
    /// Basic AGMS counters.
    Agms(AgmsSketch),
    /// F-AGMS rows.
    Fagms(FagmsSketch),
}

impl JoinSketch {
    /// Add `count` occurrences of `key`.
    #[inline]
    pub fn update(&mut self, key: u64, count: i64) {
        match self {
            JoinSketch::Agms(s) => s.update(key, count),
            JoinSketch::Fagms(s) => s.update(key, count),
        }
    }

    /// Add one occurrence of every key, through the backend's row-major
    /// batched kernel. Bit-identical to updating each key in turn, but the
    /// enum dispatch happens once per batch instead of once per tuple.
    #[inline]
    pub fn update_batch(&mut self, keys: &[u64]) {
        match self {
            JoinSketch::Agms(s) => s.update_batch(keys),
            JoinSketch::Fagms(s) => s.update_batch(keys),
        }
    }

    /// Add `count` occurrences of `key` for every `(key, count)` pair, via
    /// the backend's batched kernel (bit-identical to per-pair updates).
    #[inline]
    pub fn update_batch_counts(&mut self, items: &[(u64, i64)]) {
        match self {
            JoinSketch::Agms(s) => s.update_batch_counts(items),
            JoinSketch::Fagms(s) => s.update_batch_counts(items),
        }
    }

    /// Raw (unscaled) self-join estimate of whatever was sketched.
    pub fn raw_self_join(&self) -> f64 {
        match self {
            JoinSketch::Agms(s) => s.self_join(),
            JoinSketch::Fagms(s) => s.self_join(),
        }
    }

    /// Raw (unscaled) size-of-join estimate against another sketch of the
    /// same schema.
    pub fn raw_size_of_join(&self, other: &JoinSketch) -> Result<f64> {
        match (self, other) {
            (JoinSketch::Agms(a), JoinSketch::Agms(b)) => Ok(a.size_of_join(b)?),
            (JoinSketch::Fagms(a), JoinSketch::Fagms(b)) => Ok(a.size_of_join(b)?),
            _ => Err(sss_sketch::Error::SchemaMismatch.into()),
        }
    }

    /// Merge another sketch of the same schema (stream union).
    pub fn merge(&mut self, other: &JoinSketch) -> Result<()> {
        match (self, other) {
            (JoinSketch::Agms(a), JoinSketch::Agms(b)) => Ok(a.merge(b)?),
            (JoinSketch::Fagms(a), JoinSketch::Fagms(b)) => Ok(a.merge(b)?),
            _ => Err(sss_sketch::Error::SchemaMismatch.into()),
        }
    }

    /// Subtract another sketch of the same schema; afterwards this sketch
    /// summarizes the frequency difference, so [`raw_self_join`] estimates
    /// the squared L2 distance `Σᵢ(fᵢ−gᵢ)²` (change detection).
    ///
    /// [`raw_self_join`]: JoinSketch::raw_self_join
    pub fn subtract(&mut self, other: &JoinSketch) -> Result<()> {
        match (self, other) {
            (JoinSketch::Agms(a), JoinSketch::Agms(b)) => Ok(a.subtract(b)?),
            (JoinSketch::Fagms(a), JoinSketch::Fagms(b)) => Ok(a.subtract(b)?),
            _ => Err(sss_sketch::Error::SchemaMismatch.into()),
        }
    }

    /// The averaging factor `n` of the paper's variance formulas — see
    /// [`JoinSchema::averaging_factor`].
    pub fn averaging_factor(&self) -> usize {
        match self {
            JoinSketch::Agms(s) => s.schema().len(),
            JoinSketch::Fagms(s) => s.schema().width(),
        }
    }

    /// The independent per-lane basic self-join estimates: `Sₖ²` per AGMS
    /// counter, `Σ_b c_b²` per F-AGMS row. `raw_self_join()` is the
    /// mean (AGMS) or median (F-AGMS) of these lanes.
    pub fn self_join_basics(&self) -> Vec<f64> {
        match self {
            JoinSketch::Agms(s) => s.self_join_basics(),
            JoinSketch::Fagms(s) => s.self_join_rows(),
        }
    }

    /// The independent per-lane basic size-of-join estimates against
    /// another sketch of the same schema.
    pub fn size_of_join_basics(&self, other: &JoinSketch) -> Result<Vec<f64>> {
        match (self, other) {
            (JoinSketch::Agms(a), JoinSketch::Agms(b)) => Ok(a.size_of_join_basics(b)?),
            (JoinSketch::Fagms(a), JoinSketch::Fagms(b)) => Ok(a.size_of_join_rows(b)?),
            _ => Err(sss_sketch::Error::SchemaMismatch.into()),
        }
    }

    /// Typed raw self-join estimate with empirical error state; the value
    /// is bit-identical to [`JoinSketch::raw_self_join`].
    pub fn raw_self_join_estimate(&self) -> Estimate {
        match self {
            JoinSketch::Agms(s) => s.self_join_estimate(),
            JoinSketch::Fagms(s) => s.self_join_estimate(),
        }
    }

    /// Typed raw size-of-join estimate; the value is bit-identical to
    /// [`JoinSketch::raw_size_of_join`].
    pub fn raw_size_of_join_estimate(&self, other: &JoinSketch) -> Result<Estimate> {
        match (self, other) {
            (JoinSketch::Agms(a), JoinSketch::Agms(b)) => Ok(a.size_of_join_estimate(b)?),
            (JoinSketch::Fagms(a), JoinSketch::Fagms(b)) => Ok(a.size_of_join_estimate(b)?),
            _ => Err(sss_sketch::Error::SchemaMismatch.into()),
        }
    }

    /// Combine per-lane basic estimates of a *composite* estimator (e.g.
    /// merged-sketch lanes plus shedder correction lanes) with this
    /// backend's combining semantics: sample-variance-of-mean for AGMS,
    /// conservative median variance for F-AGMS.
    ///
    /// `value` overrides the combined point estimate so callers keep their
    /// exact legacy floating-point path; `single_lane_variance` is the
    /// analytic fallback used when the lanes carry no empirical spread
    /// (fewer than two lanes).
    pub fn combine_lanes(
        &self,
        value: f64,
        lanes: Vec<f64>,
        single_lane_variance: f64,
    ) -> Estimate {
        let e = match self {
            JoinSketch::Agms(_) => Estimate::from_mean(lanes),
            JoinSketch::Fagms(_) => Estimate::from_median(lanes),
        };
        e.with_value(value).or_variance(single_lane_variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_backends_estimate_the_same_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let truth: f64 = (0..500u64)
            .map(|k| ((k % 4 + 1) * (k % 4 + 1)) as f64)
            .sum();
        for schema in [
            JoinSchema::agms(1024, &mut rng),
            JoinSchema::fagms(3, 1024, &mut rng),
        ] {
            let mut s = schema.sketch();
            for k in 0..500u64 {
                s.update(k, (k % 4 + 1) as i64);
            }
            let est = s.raw_self_join();
            assert!(
                (est - truth).abs() / truth < 0.2,
                "est = {est}, truth = {truth}"
            );
        }
    }

    #[test]
    fn mixed_backends_cannot_be_joined() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = JoinSchema::agms(8, &mut rng).sketch();
        let mut b = JoinSchema::fagms(2, 8, &mut rng).sketch();
        assert!(a.raw_size_of_join(&b).is_err());
        assert!(b.merge(&a).is_err());
    }

    #[test]
    fn counters_and_averaging_factor() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = JoinSchema::agms(64, &mut rng);
        assert_eq!(a.counters(), 64);
        assert_eq!(a.averaging_factor(), 64);
        let f = JoinSchema::fagms(5, 1000, &mut rng);
        assert_eq!(f.counters(), 5000);
        assert_eq!(f.averaging_factor(), 1000);
    }

    #[test]
    fn merge_matches_union() {
        let mut rng = StdRng::seed_from_u64(8);
        let schema = JoinSchema::fagms(2, 64, &mut rng);
        let mut whole = schema.sketch();
        let mut part1 = schema.sketch();
        let mut part2 = schema.sketch();
        for k in 0..100u64 {
            whole.update(k, 1);
            if k < 50 {
                part1.update(k, 1);
            } else {
                part2.update(k, 1);
            }
        }
        part1.merge(&part2).unwrap();
        assert_eq!(part1.raw_self_join(), whole.raw_self_join());
    }
}
