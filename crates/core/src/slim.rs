//! The slim read-side stage: compact projections of fat update-side
//! summaries (the SF-sketch fat/slim split, arXiv 1701.04148).
//!
//! A fat summary spends its space on *ingestion* — the full counter
//! matrix every update touches. Answering a query needs far less: the
//! join estimate is a function of `depth`-or-`n` per-lane
//! medians-of-means aggregates, a top-k answer is its ranked candidate
//! list, and HLL/KLL state is already compact. [`SlimQuery::slim`]
//! projects the fat state down to exactly that query-sufficient core:
//!
//! | fat summary | slim form | kept state |
//! |---|---|---|
//! | AGMS / F-AGMS / Count-Min / [`JoinSketch`] | [`SlimJoin`] | per-lane self-join basics + combined [`Estimate`] |
//! | [`MisraGries`] / [`CountSketchTopK`] | [`SlimTopK`] | ranked candidate list + variance plug-in |
//! | [`HyperLogLog`] | itself | registers *are* the compact state (documented pass-through) |
//! | [`KllSketch`] | itself | compactors *are* the compact state (documented pass-through) |
//! | [`MultiSummary`] | [`SlimMultiSummary`] | all of the above |
//!
//! **Answer contract.** Every query a slim form answers is bit-identical
//! to the fat summary's answer at projection time. Queries that
//! structurally need the full counters return
//! [`Error::UnsupportedQuery`] instead of lying:
//!
//! * [`SlimJoin`] answers `self_join`/`self_join_estimate` exactly, but
//!   `size_of_join` against another summary needs both counter matrices —
//!   typed error.
//! * [`SlimTopK`] answers `top_k`/`frequency` for tracked candidates
//!   exactly; frequencies of *untracked* keys report `0.0` (for
//!   Misra–Gries that equals the fat answer; for Count-Sketch top-k the
//!   fat summary can point-query any key — the slim one honestly
//!   cannot).
//!
//! **Slim states do not merge.** `(a+b)² ≠ a² + b²`: a lane aggregate of
//! a union cannot be recovered from the unions' lane aggregates. The
//! two-stage read path therefore always merges *fat* state first and
//! projects after — see `sss-stream`'s replica hub.

use crate::error::{Error, Result};
use crate::multi::MultiSummary;
use crate::sketch::JoinSketch;
use crate::summary::{DistinctQuery, JoinQuery, Portable, QuantileQuery, SlimQuery, TopKQuery};
use crate::wire;
use serde::de::DeserializeOwned;
use serde::Serialize;
use sss_sketch::{
    AgmsSketch, CountMinSketch, CountSketchTopK, Estimate, FagmsSketch, HyperLogLog, KllSketch,
    MisraGries,
};
use sss_xi::{BucketFamily, SignFamily};

/// The slim join stage: the fat sketch's typed self-join estimate — value,
/// variance, and the per-lane medians-of-means basics it was combined
/// from — plus the fat configuration fingerprint. Tens of lanes instead
/// of `depth × width` counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SlimJoin {
    estimate: Estimate,
    fingerprint: u64,
}

impl SlimJoin {
    /// Package a fat summary's self-join estimate as its slim stage.
    /// `fingerprint` must be the fat summary's, so replicas built from
    /// snapshots of differently-seeded runtimes compare unequal.
    pub fn project(fingerprint: u64, estimate: Estimate) -> Self {
        Self {
            estimate,
            fingerprint,
        }
    }

    /// The projected estimate (value bit-identical to the fat summary's
    /// `self_join()` at projection time).
    pub fn estimate(&self) -> &Estimate {
        &self.estimate
    }

    /// Number of per-lane basics carried (the slim state's size driver).
    pub fn lanes(&self) -> usize {
        self.estimate.basics.len()
    }
}

impl JoinQuery for SlimJoin {
    fn self_join(&self) -> f64 {
        self.estimate.value
    }

    /// Slim stages carry lane aggregates, not counters; a cross-summary
    /// inner product is unanswerable.
    ///
    /// # Errors
    ///
    /// Always [`Error::UnsupportedQuery`].
    fn size_of_join(&self, _other: &Self) -> Result<f64> {
        Err(Error::UnsupportedQuery {
            query: "size_of_join",
            summary: "SlimJoin",
        })
    }

    fn self_join_estimate(&self) -> Estimate {
        self.estimate.clone()
    }

    fn size_of_join_estimate(&self, _other: &Self) -> Result<Estimate> {
        Err(Error::UnsupportedQuery {
            query: "size_of_join_estimate",
            summary: "SlimJoin",
        })
    }
}

// Wire form: all floats as IEEE-754 bits (the variance may legitimately
// be +∞ for estimators without an error model).
#[derive(serde::Serialize, serde::Deserialize)]
struct SlimJoinRepr {
    value_bits: u64,
    variance_bits: u64,
    basics_bits: Vec<u64>,
    fingerprint: u64,
}

impl serde::Serialize for SlimJoin {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        SlimJoinRepr {
            value_bits: wire::bits_of(self.estimate.value),
            variance_bits: wire::bits_of(self.estimate.variance),
            basics_bits: self
                .estimate
                .basics
                .iter()
                .map(|&b| wire::bits_of(b))
                .collect(),
            fingerprint: self.fingerprint,
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for SlimJoin {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let repr = SlimJoinRepr::deserialize(deserializer)?;
        Ok(Self {
            estimate: Estimate {
                value: wire::f64_of(repr.value_bits),
                variance: wire::f64_of(repr.variance_bits),
                basics: repr.basics_bits.into_iter().map(wire::f64_of).collect(),
            },
            fingerprint: repr.fingerprint,
        })
    }
}

impl Portable for SlimJoin {
    const KIND: &'static str = "slim-join";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint, self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// The slim top-k stage: the fat summary's full ranked candidate list
/// (estimate-descending, key-ascending tie-break — the crate-wide top-k
/// order) plus its frequency-variance plug-in.
#[derive(Debug, Clone, PartialEq)]
pub struct SlimTopK {
    ranked: Vec<(u64, f64)>,
    variance: f64,
    fingerprint: u64,
}

impl SlimTopK {
    /// Package a fat summary's ranked candidates as its slim stage.
    pub fn project(fingerprint: u64, ranked: Vec<(u64, f64)>, variance: f64) -> Self {
        Self {
            ranked,
            variance,
            fingerprint,
        }
    }

    /// Number of ranked candidates carried.
    pub fn tracked(&self) -> usize {
        self.ranked.len()
    }
}

impl TopKQuery for SlimTopK {
    /// The tracked estimate, or `0.0` for untracked keys (exact for
    /// Misra–Gries projections; honest refusal-by-zero for Count-Sketch
    /// ones, whose fat form could point-query any key).
    fn frequency(&self, key: u64) -> f64 {
        self.ranked
            .iter()
            .find(|&&(k, _)| k == key)
            .map_or(0.0, |&(_, est)| est)
    }

    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        self.ranked.iter().take(k).copied().collect()
    }

    fn frequency_variance(&self) -> f64 {
        self.variance
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct SlimTopKRepr {
    keys: Vec<u64>,
    est_bits: Vec<u64>,
    variance_bits: u64,
    fingerprint: u64,
}

impl serde::Serialize for SlimTopK {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        SlimTopKRepr {
            keys: self.ranked.iter().map(|&(k, _)| k).collect(),
            est_bits: self.ranked.iter().map(|&(_, e)| wire::bits_of(e)).collect(),
            variance_bits: wire::bits_of(self.variance),
            fingerprint: self.fingerprint,
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for SlimTopK {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let repr = SlimTopKRepr::deserialize(deserializer)?;
        if repr.keys.len() != repr.est_bits.len() {
            return Err(serde::de::Error::invalid_length(
                repr.keys.len(),
                &"matching key/estimate columns",
            ));
        }
        Ok(Self {
            ranked: repr
                .keys
                .into_iter()
                .zip(repr.est_bits.into_iter().map(wire::f64_of))
                .collect(),
            variance: wire::f64_of(repr.variance_bits),
            fingerprint: repr.fingerprint,
        })
    }
}

impl Portable for SlimTopK {
    const KIND: &'static str = "slim-topk";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint, self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

/// The slim composite: one slim stage per constituent capability. The
/// HLL and KLL constituents ride along whole (they are their own compact
/// state), so the composite's space win comes from the join and top-k
/// stages — which is where the fat space went.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SlimMultiSummary {
    join: SlimJoin,
    topk: SlimTopK,
    distinct: HyperLogLog,
    quantiles: KllSketch,
    fingerprint: u64,
}

impl SlimMultiSummary {
    /// The slim join stage.
    pub fn join(&self) -> &SlimJoin {
        &self.join
    }

    /// The slim top-k stage.
    pub fn topk(&self) -> &SlimTopK {
        &self.topk
    }
}

impl JoinQuery for SlimMultiSummary {
    fn self_join(&self) -> f64 {
        self.join.self_join()
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        self.join.size_of_join(&other.join)
    }

    fn self_join_estimate(&self) -> Estimate {
        self.join.self_join_estimate()
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        self.join.size_of_join_estimate(&other.join)
    }
}

impl TopKQuery for SlimMultiSummary {
    fn frequency(&self, key: u64) -> f64 {
        self.topk.frequency(key)
    }

    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        self.topk.top_k(k)
    }

    fn frequency_variance(&self) -> f64 {
        self.topk.frequency_variance()
    }
}

impl DistinctQuery for SlimMultiSummary {
    fn distinct(&self) -> f64 {
        DistinctQuery::distinct(&self.distinct)
    }

    fn distinct_estimate(&self) -> Estimate {
        DistinctQuery::distinct_estimate(&self.distinct)
    }
}

impl QuantileQuery for SlimMultiSummary {
    fn quantile(&self, q: f64) -> Result<f64> {
        QuantileQuery::quantile(&self.quantiles, q)
    }

    fn rank(&self, value: u64) -> f64 {
        QuantileQuery::rank(&self.quantiles, value)
    }

    fn rank_error(&self) -> f64 {
        QuantileQuery::rank_error(&self.quantiles)
    }

    fn stream_len(&self) -> u64 {
        QuantileQuery::stream_len(&self.quantiles)
    }
}

impl Portable for SlimMultiSummary {
    const KIND: &'static str = "slim-multi";
    const FORMAT: u32 = 1;

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn encode(&self) -> Result<Vec<u8>> {
        wire::encode_envelope(Self::KIND, Self::FORMAT, self.fingerprint, self)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        wire::decode_envelope(bytes, Self::KIND, Self::FORMAT)
    }
}

impl<F> SlimQuery for AgmsSketch<F>
where
    F: SignFamily + Send + Sync + 'static + Serialize + DeserializeOwned,
{
    type Slim = SlimJoin;

    fn slim(&self) -> SlimJoin {
        SlimJoin::project(
            Portable::fingerprint(self),
            AgmsSketch::self_join_estimate(self),
        )
    }
}

impl<S, B> SlimQuery for FagmsSketch<S, B>
where
    S: SignFamily + Send + Sync + 'static + Serialize + DeserializeOwned,
    B: BucketFamily + Send + Sync + 'static + Serialize + DeserializeOwned,
{
    type Slim = SlimJoin;

    fn slim(&self) -> SlimJoin {
        SlimJoin::project(
            Portable::fingerprint(self),
            FagmsSketch::self_join_estimate(self),
        )
    }
}

impl<B> SlimQuery for CountMinSketch<B>
where
    B: BucketFamily + Send + Sync + 'static + Serialize + DeserializeOwned,
{
    type Slim = SlimJoin;

    fn slim(&self) -> SlimJoin {
        SlimJoin::project(
            Portable::fingerprint(self),
            CountMinSketch::self_join_estimate(self),
        )
    }
}

impl SlimQuery for JoinSketch {
    type Slim = SlimJoin;

    fn slim(&self) -> SlimJoin {
        SlimJoin::project(Portable::fingerprint(self), self.raw_self_join_estimate())
    }
}

/// Projects the full tracked counter list (`capacity` entries), so every
/// candidate query the fat summary answers, the slim one answers
/// identically; untracked keys are 0 on both sides.
impl SlimQuery for MisraGries {
    type Slim = SlimTopK;

    fn slim(&self) -> SlimTopK {
        SlimTopK::project(
            Portable::fingerprint(self),
            TopKQuery::top_k(self, self.capacity()),
            TopKQuery::frequency_variance(self),
        )
    }
}

/// Projects the ranked candidate list re-scored from the sketch at
/// projection time; untracked keys honestly report 0 (the fat form can
/// point-query them, the slim one cannot — documented pass-through gap).
impl<S, B> SlimQuery for CountSketchTopK<S, B>
where
    S: SignFamily + Send + Sync + 'static + Serialize + DeserializeOwned,
    B: BucketFamily + Send + Sync + 'static + Serialize + DeserializeOwned,
{
    type Slim = SlimTopK;

    fn slim(&self) -> SlimTopK {
        SlimTopK::project(
            Portable::fingerprint(self),
            TopKQuery::top_k(self, self.capacity()),
            TopKQuery::frequency_variance(self),
        )
    }
}

/// Documented pass-through: the register array is already the minimal
/// query state, so the slim form *is* the summary.
impl SlimQuery for HyperLogLog {
    type Slim = HyperLogLog;

    fn slim(&self) -> HyperLogLog {
        self.clone()
    }
}

/// Documented pass-through: the compactor contents are already the
/// minimal query state, so the slim form *is* the summary.
impl SlimQuery for KllSketch {
    type Slim = KllSketch;

    fn slim(&self) -> KllSketch {
        self.clone()
    }
}

impl SlimQuery for MultiSummary {
    type Slim = SlimMultiSummary;

    fn slim(&self) -> SlimMultiSummary {
        SlimMultiSummary {
            join: self.join().slim(),
            topk: self.topk().slim(),
            distinct: self.hll().slim(),
            quantiles: self.kll().slim(),
            fingerprint: Portable::fingerprint(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::JoinSchema;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sketch::FagmsSchema;

    fn fed_join_sketch(seed: u64) -> JoinSketch {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = JoinSchema::fagms(5, 256, &mut rng).sketch();
        for k in 0..2_000u64 {
            s.update(k % 113, 1);
        }
        s
    }

    #[test]
    fn slim_join_answers_bit_identically_and_shrinks() {
        let fat = fed_join_sketch(1);
        let slim = fat.slim();
        assert_eq!(slim.self_join().to_bits(), fat.raw_self_join().to_bits());
        let fe = fat.raw_self_join_estimate();
        let se = slim.self_join_estimate();
        assert_eq!(se.value.to_bits(), fe.value.to_bits());
        assert_eq!(se.variance.to_bits(), fe.variance.to_bits());
        assert_eq!(slim.lanes(), 5, "one lane per F-AGMS row");
        let fat_bytes = fat.encode().unwrap().len();
        let slim_bytes = slim.encode().unwrap().len();
        assert!(
            slim_bytes * 5 < fat_bytes,
            "slim {slim_bytes}B should be well under 20% of fat {fat_bytes}B"
        );
    }

    #[test]
    fn slim_join_refuses_cross_joins_and_round_trips() {
        let slim = fed_join_sketch(2).slim();
        assert!(matches!(
            slim.size_of_join(&slim),
            Err(Error::UnsupportedQuery { .. })
        ));
        let back = SlimJoin::decode(&slim.encode().unwrap()).unwrap();
        assert_eq!(back, slim);
        assert_eq!(back.fingerprint(), slim.fingerprint());
    }

    #[test]
    fn slim_topk_matches_fat_answers() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema: FagmsSchema = FagmsSchema::new(4, 256, &mut rng);
        let mut fat = CountSketchTopK::new(&schema, 16).unwrap();
        let keys: Vec<u64> = (0..5_000u64).map(|i| (i * i) % 61).collect();
        Summary::update_batch(&mut fat, &keys);
        let slim = fat.slim();
        assert_eq!(slim.top_k(5), TopKQuery::top_k(&fat, 5));
        for &(k, est) in &slim.top_k(16) {
            assert_eq!(slim.frequency(k).to_bits(), est.to_bits());
            assert_eq!(
                slim.frequency(k).to_bits(),
                TopKQuery::frequency(&fat, k).to_bits()
            );
        }
        assert_eq!(
            slim.frequency_variance().to_bits(),
            TopKQuery::frequency_variance(&fat).to_bits()
        );
        // Untracked key: honest zero.
        assert_eq!(slim.frequency(10_000), 0.0);
        let back = SlimTopK::decode(&slim.encode().unwrap()).unwrap();
        assert_eq!(back, slim);
    }

    #[test]
    fn misra_gries_slim_is_exact_for_all_keys() {
        let mut fat = MisraGries::new(32).unwrap();
        let keys: Vec<u64> = (0..4_000u64).map(|i| i % 20).collect();
        Summary::update_batch(&mut fat, &keys);
        let slim = fat.slim();
        for key in 0..40u64 {
            assert_eq!(
                slim.frequency(key).to_bits(),
                TopKQuery::frequency(&fat, key).to_bits(),
                "key {key}: MG slim must answer every key exactly"
            );
        }
    }

    #[test]
    fn slim_multi_serves_all_four_capabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = crate::MultiSpec::new(JoinSchema::fagms(3, 128, &mut rng), &mut rng);
        let mut fat = spec.summary().unwrap();
        let keys: Vec<u64> = (0..30_000u64).map(|i| i % 777).collect();
        Summary::update_batch(&mut fat, &keys);
        let slim = fat.slim();
        assert_eq!(
            slim.self_join().to_bits(),
            JoinQuery::self_join(&fat).to_bits()
        );
        assert_eq!(slim.top_k(10), TopKQuery::top_k(&fat, 10));
        assert_eq!(
            slim.distinct().to_bits(),
            DistinctQuery::distinct(&fat).to_bits()
        );
        assert_eq!(
            slim.quantile(0.5).unwrap().to_bits(),
            QuantileQuery::quantile(&fat, 0.5).unwrap().to_bits()
        );
        assert_eq!(slim.stream_len(), keys.len() as u64);
        let back = SlimMultiSummary::decode(&slim.encode().unwrap()).unwrap();
        assert_eq!(back.self_join().to_bits(), slim.self_join().to_bits());
        assert_eq!(back.fingerprint(), Portable::fingerprint(&fat));
        let fat_bytes = fat.encode().unwrap().len();
        let slim_bytes = slim.encode().unwrap().len();
        assert!(
            slim_bytes < fat_bytes / 2,
            "slim multi {slim_bytes}B vs fat {fat_bytes}B"
        );
    }

    #[test]
    fn infinite_variance_survives_the_wire() {
        let slim = SlimJoin::project(9, Estimate::point(42.0));
        let back = SlimJoin::decode(&slim.encode().unwrap()).unwrap();
        assert!(back.estimate().variance.is_infinite());
        assert_eq!(back.estimate().value.to_bits(), 42.0f64.to_bits());
    }
}
