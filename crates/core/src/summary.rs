//! The layered `Summary` hierarchy — one ingestion contract, four query
//! capabilities.
//!
//! Historically each sketch family exposed its own ad-hoc surface
//! (`AgmsSketch::self_join`, `FagmsSketch::size_of_join`,
//! `JoinSketch::raw_self_join`, …), the streaming layer was hard-coded to
//! [`JoinSketch`], and the only query capability beyond joins (top-k) was
//! bolted on through `sss_sketch::topk::HeavyHitters`. The redesign splits
//! the contract into one base trait and standalone capability traits:
//!
//! * [`Summary`] is the *ingestion* contract the sharded runtime and the
//!   snapshot cache are generic over: anything that can absorb keyed
//!   updates and merge with a peer built from the same seeds.
//! * [`JoinQuery`] adds the paper's two join-size queries (F₂ /
//!   size-of-join).
//! * [`TopKQuery`] adds heavy-hitter point and top-k queries, absorbing
//!   the `HeavyHitters` plumbing behind a typed surface.
//! * [`DistinctQuery`] adds distinct-count (F₀) queries, served by
//!   [`HyperLogLog`].
//! * [`QuantileQuery`] adds rank/quantile queries, served by
//!   [`KllSketch`].
//!
//! The capability traits are deliberately **not** subtraits of
//! [`Summary`]: a query capability describes *answering*, not ingesting,
//! and the two-stage read path (DESIGN.md §4k) relies on the split. A fat
//! update-side summary implements `Summary` plus its capabilities; its
//! [`SlimQuery::slim`] projection is a compact read replica that
//! implements the same capability traits — answering queries
//! bit-identically at a fraction of the state — without pretending it can
//! absorb updates. Generic ingest paths bound `E: Summary + JoinQuery`
//! (etc.); pure query paths bound the capability alone.
//!
//! Two further capabilities make summaries portable across processes:
//!
//! * [`Portable`] — versioned, self-describing wire encode/decode with a
//!   configuration fingerprint, so snapshots can be saved, shipped, and
//!   merged only against like-configured peers.
//! * [`SlimQuery`] — project a fat update-side summary to its compact
//!   read-replica form (the SF-sketch fat/slim split of arXiv
//!   1701.04148).
//!
//! The PR-8 migration shims `StreamSummary` and `JoinEstimator` are gone;
//! code still naming them no longer compiles:
//!
//! ```compile_fail
//! use sss_core::StreamSummary; // removed: use `sss_core::Summary`
//! ```
//!
//! ```compile_fail
//! use sss_core::JoinEstimator; // removed: use `sss_core::JoinQuery`
//! ```
//!
//! A summary implements whichever capabilities it can actually answer;
//! [`crate::MultiSummary`] implements all four by fanning one
//! `update_batch` into a join sketch, a Count-Sketch top-k tracker, a
//! HyperLogLog, and a KLL sketch, which is how a single pass through the
//! sharded runtime serves every query type at once.
//!
//! Every query here is **raw**: it describes whatever stream the summary
//! actually absorbed. Bernoulli-sampling corrections (Propositions 13–16
//! of the paper, and their F₀/quantile analogues) live in one place — the
//! [`crate::Sampled`] front end that knows the inclusion probability.
//!
//! The ingestion contract mirrors sketch linearity exactly:
//!
//! * [`update_batch`](Summary::update_batch) must be **bit-identical** to
//!   the per-key update loop (integer counter updates commute);
//! * [`merge_from`](Summary::merge_from) must make the merged state
//!   equivalent to summarizing the concatenated streams — bit-identical
//!   for the linear sketches, guarantee-preserving for the (order-lossy)
//!   heavy-hitter/quantile summaries — so a sharded runtime can partition
//!   tuples arbitrarily;
//! * [`supports_retract`](Summary::supports_retract) gates the snapshot
//!   cache's delta rebuilds: linear sketches retract exactly, while
//!   monotone or lossy summaries (HyperLogLog, KLL, Misra–Gries) honestly
//!   return `false` and the cache falls back to a full re-merge.
//!
//! Why bit-identity is load-bearing: every pre-redesign query path
//! (scalar vs typed, scalar vs batched, merged vs single-stream) is pinned
//! by property tests that compare `f64::to_bits`. The hierarchy is a pure
//! re-layering — the same code runs under new names — so those pins keep
//! holding through the migration, which is what makes the refactor safe to
//! land in one PR.

use crate::error::{Error, Result};
use crate::sketch::JoinSketch;
use sss_sketch::topk::HeavyHitters;
use sss_sketch::{
    AgmsSketch, CountMinSketch, CountSketchTopK, Estimate, FagmsSketch, HyperLogLog, KllSketch,
    MisraGries, Sketch,
};
use sss_xi::{BucketFamily, SignFamily};

/// A mergeable summary of a keyed stream — the ingestion half of the
/// estimator contract, shared by join sketches, heavy-hitter summaries,
/// distinct counters and quantile sketches alike.
///
/// `Clone` is required so a concurrent runtime can snapshot shard state
/// without draining it; `Send + 'static` so shards can live on worker
/// threads.
pub trait Summary: Clone + Send + 'static {
    /// Add `count` occurrences of `key` (negative counts model deletions
    /// for turnstile-capable summaries; insert-only summaries may ignore
    /// them — see the implementor's docs).
    fn update(&mut self, key: u64, count: i64);

    /// Add one occurrence of every key, bit-identically to calling
    /// [`update`](Summary::update) once per key.
    fn update_batch(&mut self, keys: &[u64]);

    /// Merge a peer summary built from the same schema: afterwards `self`
    /// summarizes the union of both streams.
    ///
    /// # Errors
    ///
    /// Schema mismatch (different random seeds, or structurally
    /// incompatible summaries) — merged state would be meaningless.
    fn merge_from(&mut self, other: &Self) -> Result<()>;

    /// Whether [`retract_from`](Summary::retract_from) performs an
    /// **exact** entry-wise inverse of [`merge_from`](Summary::merge_from).
    ///
    /// The linear sketch backends store integer counters, so
    /// `merge_from(new)` after `retract_from(old)` leaves the estimator
    /// bit-identical to a fresh merge over the updated parts — this is
    /// what lets a snapshot cache replace one shard's stale contribution
    /// in O(sketch) instead of re-merging every shard. Defaults to
    /// `false` so monotone/lossy summaries (HyperLogLog, KLL,
    /// Misra–Gries) and external implementations honestly opt out and
    /// callers fall back to a full re-merge.
    fn supports_retract(&self) -> bool {
        false
    }

    /// Entry-wise retraction of a peer previously merged in: afterwards
    /// `self` summarizes its stream *minus* `other`'s, exactly — the delta
    /// counterpart of [`merge_from`](Summary::merge_from).
    ///
    /// Only meaningful when [`supports_retract`](Summary::supports_retract)
    /// returns `true`.
    ///
    /// # Errors
    ///
    /// [`Error::RetractUnsupported`] by default; schema mismatch for the
    /// linear sketch backends.
    fn retract_from(&mut self, other: &Self) -> Result<()> {
        let _ = other;
        Err(Error::RetractUnsupported)
    }
}

/// The capability of answering the paper's join-size queries.
///
/// Standalone rather than a [`Summary`] subtrait so read-only slim
/// replicas ([`SlimQuery::Slim`]) can answer joins without carrying the
/// ingestion contract; ingest-capable callers bound `Summary + JoinQuery`.
pub trait JoinQuery {
    /// Raw self-join (second frequency moment) estimate of the summarized
    /// stream.
    fn self_join(&self) -> f64;

    /// Raw size-of-join estimate against a peer built from the same
    /// schema.
    ///
    /// # Errors
    ///
    /// Schema mismatch, as for [`merge_from`](Summary::merge_from).
    fn size_of_join(&self, other: &Self) -> Result<f64>;

    /// Typed self-join estimate with error state: same value as
    /// [`self_join`](JoinQuery::self_join) (bit-identical for the provided
    /// implementations), plus an empirical variance and the per-lane
    /// basics it came from.
    ///
    /// The default implementation wraps [`self_join`] in
    /// [`Estimate::point`] — infinite variance, no basics — so external
    /// implementations keep compiling and honestly report that they carry
    /// no error state.
    ///
    /// [`self_join`]: JoinQuery::self_join
    fn self_join_estimate(&self) -> Estimate {
        Estimate::point(self.self_join())
    }

    /// Typed size-of-join estimate with error state; defaults to a
    /// zero-information [`Estimate::point`] like
    /// [`self_join_estimate`](JoinQuery::self_join_estimate).
    ///
    /// # Errors
    ///
    /// Schema mismatch, as for [`merge_from`](Summary::merge_from).
    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(Estimate::point(self.size_of_join(other)?))
    }
}

/// The capability of answering heavy-hitter queries: per-key frequency
/// point estimates and a top-k ranking over tracked candidates.
/// Standalone, like [`JoinQuery`], so slim replicas qualify.
pub trait TopKQuery {
    /// Raw frequency estimate for one key in the summarized stream.
    fn frequency(&self, key: u64) -> f64;

    /// The `k` heaviest tracked keys with raw frequency estimates,
    /// heaviest first (ties broken toward the smaller key).
    fn top_k(&self, k: usize) -> Vec<(u64, f64)>;

    /// The estimation variance of [`frequency`](TopKQuery::frequency)
    /// (e.g. `F₂/width` per Count-Sketch row). Defaults to infinity so
    /// implementations without an error model honestly report zero
    /// information.
    fn frequency_variance(&self) -> f64 {
        f64::INFINITY
    }

    /// Typed frequency estimate: the raw point value with
    /// [`frequency_variance`](TopKQuery::frequency_variance) attached.
    fn frequency_estimate(&self, key: u64) -> Estimate {
        Estimate {
            value: self.frequency(key),
            variance: self.frequency_variance(),
            basics: Vec::new(),
        }
    }
}

/// The capability of estimating the number of distinct keys (F₀) in the
/// summarized stream. Standalone, like [`JoinQuery`], so slim replicas
/// qualify.
pub trait DistinctQuery {
    /// Raw distinct-count estimate of the summarized stream.
    fn distinct(&self) -> f64;

    /// Typed distinct-count estimate; defaults to a zero-information
    /// [`Estimate::point`], overridden by backends with an analytic error
    /// model (HyperLogLog's `1.04/√m`).
    fn distinct_estimate(&self) -> Estimate {
        Estimate::point(self.distinct())
    }
}

/// The capability of answering rank/quantile queries over the key
/// *values* of the summarized stream. Standalone, like [`JoinQuery`], so
/// slim replicas qualify.
///
/// Values are reported as `f64` (exact for keys below 2⁵³) so they can
/// ride the typed [`Estimate`] path next to every other query.
pub trait QuantileQuery {
    /// The value at normalized rank `q ∈ [0, 1]` (`0` = minimum,
    /// `1` = maximum).
    ///
    /// # Errors
    ///
    /// Invalid `q`, or an empty summary (no value to report).
    fn quantile(&self, q: f64) -> Result<f64>;

    /// The normalized rank of `value` — the fraction of summarized weight
    /// strictly below it, in `[0, 1]`.
    fn rank(&self, value: u64) -> f64;

    /// The summary's normalized rank-error bound ε: a reported quantile's
    /// true rank lies within `±ε` of the requested one with high
    /// probability.
    fn rank_error(&self) -> f64;

    /// Total stream weight summarized (the `n` that normalizes ranks).
    fn stream_len(&self) -> u64;

    /// A conservative value interval for the `q`-quantile: the values at
    /// ranks `q ∓ ε` (clamped to `[0, 1]`). The true quantile lies between
    /// them with the backend's high-probability guarantee — this is the
    /// honest error bar for a query whose *value-domain* variance is
    /// unknowable without a density model.
    ///
    /// # Errors
    ///
    /// As for [`quantile`](QuantileQuery::quantile).
    fn quantile_bounds(&self, q: f64) -> Result<(f64, f64)> {
        let eps = self.rank_error();
        Ok((
            self.quantile((q - eps).max(0.0))?,
            self.quantile((q + eps).min(1.0))?,
        ))
    }
}

/// A summary with a versioned, self-describing wire form.
///
/// The encoding is a JSON envelope (`crate::wire`) carrying a kind tag, a
/// format version, and a **configuration fingerprint** hashing everything
/// merge compatibility depends on — random seeds (via schema identities),
/// width/depth, precision — ahead of the body. Receivers can
/// [`peek`](crate::wire::peek) the head without decoding the body, and
/// [`merge_encoded`](Portable::merge_encoded) refuses payloads whose
/// fingerprint differs, so only like-configured summaries ever merge.
///
/// Versioning rules (DESIGN.md §4k): a field *added* to a body bumps
/// [`FORMAT`](Portable::FORMAT) only if old decoders would misread the
/// payload — the deserializer ignores unknown fields, so purely additive
/// optional state keeps the version; renames, removals, and semantic
/// changes bump it, and decoders reject any version other than their own.
///
/// `Portable` deliberately does not require [`Summary`]: read-only
/// projections and non-`Clone` drivers (e.g. `EpochShedder`) serialize
/// too. Merging through the wire *does* require `Summary`, hence the
/// bound on [`merge_encoded`](Portable::merge_encoded) alone.
pub trait Portable: Sized {
    /// Wire kind tag — distinct per concrete summary shape (e.g.
    /// `"fagms"`, `"slim-join"`).
    const KIND: &'static str;

    /// Wire format version for this kind; decoders accept exactly this
    /// version.
    const FORMAT: u32;

    /// The configuration fingerprint: equal exactly when two summaries of
    /// this kind are merge-compatible (same seeds/width/depth/precision).
    fn fingerprint(&self) -> u64;

    /// Serialize to the self-describing wire form.
    ///
    /// # Errors
    ///
    /// [`Error::Wire`] if the serializer refuses the state.
    fn encode(&self) -> Result<Vec<u8>>;

    /// Deserialize from the wire form, validating kind and format.
    ///
    /// # Errors
    ///
    /// [`Error::Wire`] on malformed bytes, [`Error::WireMismatch`] on a
    /// foreign kind or format version.
    fn decode(bytes: &[u8]) -> Result<Self>;

    /// Decode a payload and merge it in, after checking that its
    /// fingerprint matches — the one-call primitive multi-process
    /// aggregation is built on (`sss merge-snapshots`).
    ///
    /// # Errors
    ///
    /// [`Error::FingerprintMismatch`] when the payload was built from
    /// different seeds/dimensions; decode and merge errors pass through.
    fn merge_encoded(&mut self, bytes: &[u8]) -> Result<()>
    where
        Self: Summary,
    {
        let head = crate::wire::peek(bytes)?;
        let expected = self.fingerprint();
        if head.fingerprint != expected {
            return Err(Error::FingerprintMismatch {
                expected,
                found: head.fingerprint,
            });
        }
        let other = Self::decode(bytes)?;
        self.merge_from(&other)
    }
}

/// A fat update-side summary that can project itself to a compact
/// read-side replica — the SF-sketch fat/slim split (arXiv 1701.04148).
///
/// The slim form answers the fat summary's query capabilities (each slim
/// type documents which, and how honestly) from per-lane aggregate state
/// — medians-of-means lanes for the join sketches, the candidate scores
/// for top-k — instead of the full counter matrix. Slim states are *not*
/// mergeable (lane aggregates don't add: `(a+b)² ≠ a² + b²`), so
/// projection always happens **after** fat merging; the read path ships
/// `encode()`d slim bytes to replicas, never the reverse.
pub trait SlimQuery: Summary + Portable {
    /// The compact read-replica form.
    type Slim: Portable + Clone + Send + 'static;

    /// Project the current state to its read-replica form.
    fn slim(&self) -> Self::Slim;
}

impl<F> Summary for AgmsSketch<F>
where
    F: SignFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        Sketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Sketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.subtract(other)?)
    }
}

impl<F> JoinQuery for AgmsSketch<F>
where
    F: SignFamily + Send + Sync + 'static,
{
    fn self_join(&self) -> f64 {
        AgmsSketch::self_join(self)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(AgmsSketch::size_of_join(self, other)?)
    }

    fn self_join_estimate(&self) -> Estimate {
        AgmsSketch::self_join_estimate(self)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(AgmsSketch::size_of_join_estimate(self, other)?)
    }
}

impl<S, B> Summary for FagmsSketch<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        Sketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Sketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.subtract(other)?)
    }
}

impl<S, B> JoinQuery for FagmsSketch<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn self_join(&self) -> f64 {
        FagmsSketch::self_join(self)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(FagmsSketch::size_of_join(self, other)?)
    }

    fn self_join_estimate(&self) -> Estimate {
        FagmsSketch::self_join_estimate(self)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(FagmsSketch::size_of_join_estimate(self, other)?)
    }
}

impl<B> Summary for CountMinSketch<B>
where
    B: BucketFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        Sketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        Sketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.subtract(other)?)
    }
}

impl<B> JoinQuery for CountMinSketch<B>
where
    B: BucketFamily + Send + Sync + 'static,
{
    fn self_join(&self) -> f64 {
        CountMinSketch::self_join(self)
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(CountMinSketch::size_of_join(self, other)?)
    }

    fn self_join_estimate(&self) -> Estimate {
        CountMinSketch::self_join_estimate(self)
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        Ok(CountMinSketch::size_of_join_estimate(self, other)?)
    }
}

impl Summary for JoinSketch {
    fn update(&mut self, key: u64, count: i64) {
        JoinSketch::update(self, key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        JoinSketch::update_batch(self, keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        self.merge(other)
    }

    fn supports_retract(&self) -> bool {
        true
    }

    fn retract_from(&mut self, other: &Self) -> Result<()> {
        self.subtract(other)
    }
}

impl JoinQuery for JoinSketch {
    fn self_join(&self) -> f64 {
        self.raw_self_join()
    }

    fn size_of_join(&self, other: &Self) -> Result<f64> {
        self.raw_size_of_join(other)
    }

    fn self_join_estimate(&self) -> Estimate {
        self.raw_self_join_estimate()
    }

    fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        self.raw_size_of_join_estimate(other)
    }
}

/// Heavy-hitter summaries shard like sketches do — merge via the
/// Agarwal-et-al. summary merge — but answer top-k queries, not joins.
/// Insert-only: non-positive counts are dropped by [`MisraGries`] (see its
/// docs). Merging subtracts candidate mass irreversibly, so retraction is
/// honestly unsupported.
impl Summary for MisraGries {
    fn update(&mut self, key: u64, count: i64) {
        self.offer(key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.offer_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }
}

impl TopKQuery for MisraGries {
    fn frequency(&self, key: u64) -> f64 {
        self.raw_estimate(key)
    }

    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        self.raw_top_k(k)
    }

    fn frequency_variance(&self) -> f64 {
        self.raw_estimate_variance()
    }
}

impl<S, B> Summary for CountSketchTopK<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn update(&mut self, key: u64, count: i64) {
        self.offer(key, count);
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.offer_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }
}

impl<S, B> TopKQuery for CountSketchTopK<S, B>
where
    S: SignFamily + Send + Sync + 'static,
    B: BucketFamily + Send + Sync + 'static,
{
    fn frequency(&self, key: u64) -> f64 {
        self.raw_estimate(key)
    }

    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        self.raw_top_k(k)
    }

    fn frequency_variance(&self) -> f64 {
        self.raw_estimate_variance()
    }
}

/// Distinct counting is duplicate-insensitive, so `update` treats any
/// positive count as one occurrence of the key and ignores deletions —
/// registers only ever grow (which is also why retraction is honestly
/// unsupported and sharded snapshots fall back to full re-merges).
impl Summary for HyperLogLog {
    fn update(&mut self, key: u64, count: i64) {
        if count > 0 {
            self.insert(key);
        }
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.insert_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }
}

impl DistinctQuery for HyperLogLog {
    fn distinct(&self) -> f64 {
        self.raw_distinct()
    }

    fn distinct_estimate(&self) -> Estimate {
        let value = self.raw_distinct();
        let std = self.relative_std_error() * value;
        Estimate {
            value,
            variance: std * std,
            basics: Vec::new(),
        }
    }
}

/// Quantile summaries weight a key by its multiplicity, so `update` with
/// `count > 1` inserts the key that many times; deletions are ignored
/// (compaction discards items irreversibly — no retraction).
impl Summary for KllSketch {
    fn update(&mut self, key: u64, count: i64) {
        for _ in 0..count.max(0) {
            self.insert(key);
        }
    }

    fn update_batch(&mut self, keys: &[u64]) {
        self.insert_batch(keys);
    }

    fn merge_from(&mut self, other: &Self) -> Result<()> {
        Ok(self.merge(other)?)
    }
}

impl QuantileQuery for KllSketch {
    fn quantile(&self, q: f64) -> Result<f64> {
        Ok(self.raw_quantile(q)? as f64)
    }

    fn rank(&self, value: u64) -> f64 {
        self.raw_rank(value)
    }

    fn rank_error(&self) -> f64 {
        KllSketch::rank_error(self)
    }

    fn stream_len(&self) -> u64 {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::JoinSchema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_sketch::{AgmsSchema, CountMinSchema, FagmsSchema};

    /// Exercise one implementation generically: batch vs scalar identity,
    /// merge-equals-union, and a self-join in the right ballpark.
    fn exercise<E: Summary + JoinQuery>(make: impl Fn() -> E, tolerance: f64) {
        let keys: Vec<u64> = (0..4_000u64).map(|i| i % 100).collect();
        let mut scalar = make();
        for &k in &keys {
            Summary::update(&mut scalar, k, 1);
        }
        let mut batched = make();
        Summary::update_batch(&mut batched, &keys);
        assert_eq!(
            JoinQuery::self_join(&scalar).to_bits(),
            JoinQuery::self_join(&batched).to_bits(),
            "batch must replay the scalar path exactly"
        );
        // Merge = union: split the stream in two and merge the halves.
        let mut left = make();
        let mut right = make();
        Summary::update_batch(&mut left, &keys[..keys.len() / 2]);
        Summary::update_batch(&mut right, &keys[keys.len() / 2..]);
        left.merge_from(&right).unwrap();
        assert_eq!(
            JoinQuery::self_join(&left).to_bits(),
            JoinQuery::self_join(&scalar).to_bits(),
            "merge must equal sketching the union"
        );
        let truth = 100.0 * 40.0 * 40.0;
        let est = JoinQuery::self_join(&scalar);
        assert!(
            (est - truth).abs() / truth < tolerance,
            "est = {est}, truth = {truth}"
        );
        // size_of_join against itself agrees with self_join for the ±1
        // sketches and the Count-Min inner product alike.
        let sj = JoinQuery::size_of_join(&scalar, &scalar).unwrap();
        assert!((sj - est).abs() <= est.abs() * 1e-9 + 1e-9);
        // The typed estimates return the same values bit for bit, and the
        // multi-lane backends report a finite, usable error bar.
        let e = scalar.self_join_estimate();
        assert_eq!(e.value.to_bits(), est.to_bits());
        assert!(e.variance.is_finite());
        assert!(e.chebyshev(0.95).unwrap().contains(e.value));
        let ej = scalar.size_of_join_estimate(&scalar).unwrap();
        assert_eq!(ej.value.to_bits(), sj.to_bits());
        // Retraction is the exact inverse of merge for every linear
        // backend: retract(old) then merge(new) lands bit-identically on
        // the fresh merge — the delta-rebuild contract the sharded
        // runtime's snapshot cache relies on.
        assert!(scalar.supports_retract());
        let mut merged = make();
        merged.merge_from(&left).unwrap(); // left already holds the union
        let mut grown = make();
        Summary::update_batch(&mut grown, &keys);
        Summary::update_batch(&mut grown, &[1, 2, 3]);
        merged.retract_from(&left).unwrap();
        merged.merge_from(&grown).unwrap();
        let mut fresh = make();
        fresh.merge_from(&grown).unwrap();
        assert_eq!(
            JoinQuery::self_join(&merged).to_bits(),
            JoinQuery::self_join(&fresh).to_bits(),
            "retract + merge must equal a fresh merge exactly"
        );
    }

    #[test]
    fn all_four_join_backends_satisfy_the_contract() {
        let mut rng = StdRng::seed_from_u64(7);
        let agms: AgmsSchema = AgmsSchema::new(256, &mut rng);
        exercise(move || agms.sketch(), 0.25);
        let fagms: FagmsSchema = FagmsSchema::new(3, 1024, &mut rng);
        exercise(move || fagms.sketch(), 0.25);
        // Count-Min overestimates F₂ by collisions; with width ≫ distinct
        // keys the bias is tiny.
        let cm: CountMinSchema = CountMinSchema::new(3, 4096, &mut rng);
        exercise(move || cm.sketch(), 0.25);
        let schema = JoinSchema::fagms(2, 1024, &mut rng);
        exercise(move || schema.sketch(), 0.25);
    }

    /// A minimal external implementor relying entirely on the default
    /// methods: the redesign must not force it to change, and its
    /// estimates must honestly report zero information.
    #[test]
    fn trait_defaults_keep_external_implementors_compiling() {
        #[derive(Clone)]
        struct ExactCounter(std::collections::HashMap<u64, i64>);
        impl Summary for ExactCounter {
            fn update(&mut self, key: u64, count: i64) {
                *self.0.entry(key).or_insert(0) += count;
            }
            fn update_batch(&mut self, keys: &[u64]) {
                for &k in keys {
                    self.update(k, 1);
                }
            }
            fn merge_from(&mut self, other: &Self) -> Result<()> {
                for (&k, &c) in &other.0 {
                    self.update(k, c);
                }
                Ok(())
            }
        }
        impl JoinQuery for ExactCounter {
            fn self_join(&self) -> f64 {
                self.0.values().map(|&c| (c * c) as f64).sum()
            }
            fn size_of_join(&self, other: &Self) -> Result<f64> {
                Ok(self
                    .0
                    .iter()
                    .map(|(k, &c)| c as f64 * other.0.get(k).copied().unwrap_or(0) as f64)
                    .sum())
            }
        }
        let mut e = ExactCounter(Default::default());
        e.update_batch(&[1, 1, 2, 3]);
        // The delta-merge defaults: external implementors honestly report
        // that retraction is unsupported and the method errors.
        assert!(!e.supports_retract());
        assert!(matches!(
            e.clone().retract_from(&e),
            Err(crate::Error::RetractUnsupported)
        ));
        let est = e.self_join_estimate();
        assert_eq!(est.value, e.self_join());
        assert!(est.variance.is_infinite());
        assert!(est.basics.is_empty());
        let sj = e.size_of_join_estimate(&e).unwrap();
        assert_eq!(sj.value, e.self_join());
        assert!(sj.chebyshev(0.99).unwrap().half_width().is_infinite());
    }

    #[test]
    fn mismatched_schemas_error_through_the_trait() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = JoinSchema::agms(8, &mut rng).sketch();
        let mut b = JoinSchema::fagms(1, 8, &mut rng).sketch();
        assert!(b.merge_from(&a).is_err());
        assert!(JoinQuery::size_of_join(&a, &b).is_err());
    }

    /// The top-k capability surfaces the raw heavy-hitter queries with a
    /// typed variance, bit-identical to the underlying summary.
    #[test]
    fn topk_capability_matches_raw_summary() {
        let mut mg = MisraGries::new(8).unwrap();
        let keys: Vec<u64> = (0..1000u64).map(|i| i % 10).collect();
        Summary::update_batch(&mut mg, &keys);
        assert_eq!(
            TopKQuery::frequency(&mg, 3).to_bits(),
            mg.raw_estimate(3).to_bits()
        );
        assert_eq!(TopKQuery::top_k(&mg, 4), mg.raw_top_k(4));
        let est = mg.frequency_estimate(3);
        assert_eq!(est.value.to_bits(), mg.raw_estimate(3).to_bits());
        assert_eq!(est.variance, mg.raw_estimate_variance());
    }

    /// HyperLogLog rides the ingestion contract: duplicate-insensitive
    /// updates, union merges, honest retraction refusal, analytic error.
    #[test]
    fn distinct_capability_over_hyperloglog() {
        let mut h = HyperLogLog::with_seed(12, 99).unwrap();
        let keys: Vec<u64> = (0..20_000u64).map(|i| i % 5_000).collect();
        Summary::update_batch(&mut h, &keys);
        Summary::update(&mut h, 17, 50); // duplicates are free
        Summary::update(&mut h, 17, -3); // deletions ignored
        let est = h.distinct_estimate();
        assert_eq!(est.value.to_bits(), h.raw_distinct().to_bits());
        assert!((est.value - 5_000.0).abs() / 5_000.0 < 5.0 * h.relative_std_error());
        assert!(est.variance.is_finite() && est.variance > 0.0);
        // No retraction: honest refusal, so delta rebuilds cannot lie.
        assert!(!Summary::supports_retract(&h));
        assert!(matches!(
            Summary::retract_from(&mut h.clone(), &h),
            Err(Error::RetractUnsupported)
        ));
    }

    /// KLL rides the ingestion contract with weight-aware updates, and its
    /// quantile bounds bracket the requested rank.
    #[test]
    fn quantile_capability_over_kll() {
        let mut s = KllSketch::with_seed(200, 5).unwrap();
        let keys: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(48271) % 50_000)
            .collect();
        Summary::update_batch(&mut s, &keys);
        Summary::update(&mut s, 7, 3); // weight-3 update
        assert_eq!(QuantileQuery::stream_len(&s), 50_003);
        let median = QuantileQuery::quantile(&s, 0.5).unwrap();
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert!(lo <= median && median <= hi);
        let true_rank = QuantileQuery::rank(&s, median as u64);
        assert!((true_rank - 0.5).abs() < 2.0 * QuantileQuery::rank_error(&s));
        assert!(!Summary::supports_retract(&s));
        assert!(QuantileQuery::quantile(&s, 1.4).is_err());
    }
}
