//! Heavy hitters over a Bernoulli-sampled stream (paper Section VI-A
//! applied to point queries instead of join sizes).
//!
//! [`SampledTopK`] puts the crate's geometric-skip Bernoulli driver in
//! front of any mergeable heavy-hitter summary from `sss-sketch`
//! ([`MisraGries`] or [`CountSketchTopK`]) and answers *full-stream*
//! frequency queries from the sample:
//!
//! ```text
//! f̂ = f′/p            (unbiased: E[f′] = p·f)
//! Var[f̂] = Var_summary[f′]/p² + f·(1−p)/p
//! ```
//!
//! The first variance term is the summary's own estimation noise (zero for
//! Misra–Gries up to its deterministic bound, `F₂/width` per Count-Sketch
//! row); the second is the binomial thinning noise of the sample itself,
//! plugged in with `f̂` in place of the unknown `f` (clamped at zero).
//! Both reach the caller through the typed [`Estimate`] path, so `top_k`
//! answers carry error bars exactly like the join estimators do.

use crate::error::Result;
use crate::estimator::StreamSummary;
use crate::shedding::skip_sample_batch;
use rand::rngs::StdRng;
use rand::Rng;
use sss_sampling::bernoulli::GeometricSkip;
use sss_sampling::bernoulli_frequency_variance_plugin;
use sss_sketch::topk::HeavyHitters;
use sss_sketch::{CountSketchTopK, Estimate, FagmsSchema, MisraGries};

/// Bernoulli load shedder in front of a heavy-hitter summary: the top-k
/// analogue of [`crate::LoadSheddingSketcher`].
///
/// Works with any summary that is both a [`HeavyHitters`] (point estimates
/// and candidate tracking) and a [`StreamSummary`] (mergeable stream state,
/// which is what lets the same summary type ride the sharded runtime).
#[derive(Debug, Clone)]
pub struct SampledTopK<H: HeavyHitters + StreamSummary> {
    summary: H,
    skip: GeometricSkip<StdRng>,
    /// Tuples to silently drop before the next kept tuple.
    gap: u64,
    p: f64,
    seen: u64,
    kept: u64,
}

impl SampledTopK<MisraGries> {
    /// A Misra–Gries summary of `capacity` counters behind a
    /// `Bernoulli(p)` sample: deterministic `ε·n′` undercount bound on the
    /// kept substream, `1/p`-corrected on the way out.
    ///
    /// # Errors
    ///
    /// [`crate::Error`] if `p ∉ (0, 1]` or `capacity == 0`.
    pub fn misra_gries<R: Rng>(capacity: usize, p: f64, seed_rng: &mut R) -> Result<Self> {
        Self::new(MisraGries::new(capacity)?, p, seed_rng)
    }
}

impl SampledTopK<CountSketchTopK> {
    /// A Count-Sketch top-k tracker (candidate heap over a
    /// [`FagmsSchema`]) behind a `Bernoulli(p)` sample.
    ///
    /// # Errors
    ///
    /// [`crate::Error`] if `p ∉ (0, 1]` or `capacity == 0`.
    pub fn count_sketch<R: Rng>(
        schema: &FagmsSchema,
        capacity: usize,
        p: f64,
        seed_rng: &mut R,
    ) -> Result<Self> {
        Self::new(CountSketchTopK::new(schema, capacity)?, p, seed_rng)
    }
}

impl<H: HeavyHitters + StreamSummary> SampledTopK<H> {
    /// Wrap an empty summary with inclusion probability `p ∈ (0, 1]`.
    ///
    /// `p = 1` degenerates to feeding the summary directly (every tuple
    /// kept, sampling variance identically zero), which is how the
    /// unsampled engine path reuses this type.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Sampling`] if `p ∉ (0, 1]`.
    pub fn new<R: Rng>(summary: H, p: f64, seed_rng: &mut R) -> Result<Self> {
        let mut skip = GeometricSkip::<StdRng>::new(p, seed_rng)?;
        let gap = skip.next_gap();
        Ok(Self {
            summary,
            skip,
            gap,
            p,
            seen: 0,
            kept: 0,
        })
    }

    /// Offer the next stream tuple; returns whether it was kept.
    #[inline]
    pub fn observe(&mut self, key: u64) -> bool {
        self.seen += 1;
        if self.gap > 0 {
            self.gap -= 1;
            return false;
        }
        self.summary.update(key, 1);
        self.kept += 1;
        self.gap = self.skip.next_gap();
        true
    }

    /// Offer a whole batch of stream tuples; returns how many were kept.
    ///
    /// Bit-identical to calling [`SampledTopK::observe`] on each key in
    /// turn — shares the geometric-gap kernel with the join shedders.
    pub fn feed_batch(&mut self, keys: &[u64]) -> u64 {
        let kept_now = skip_sample_batch(&mut self.summary, &mut self.skip, &mut self.gap, keys);
        self.seen += keys.len() as u64;
        self.kept += kept_now;
        kept_now
    }

    /// The inclusion probability `p`.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Tuples offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Tuples kept (summarized) so far.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// The underlying summary (e.g. to merge partial streams).
    pub fn summary(&self) -> &H {
        &self.summary
    }

    /// Typed full-stream frequency estimate for one key: the summary's raw
    /// sample-frequency estimate scaled by `1/p`, with the summary noise
    /// (`/p²`) and the binomial thinning plug-in stacked into the variance.
    pub fn point_estimate(&self, key: u64) -> Estimate {
        self.correct(self.summary.raw_estimate(key))
    }

    /// The `k` heaviest keys with typed full-stream frequency estimates,
    /// heaviest first (ties broken toward the smaller key).
    ///
    /// The `1/p` correction is monotone, so the ranking is exactly the
    /// summary's raw ranking over the kept sample; only the magnitudes and
    /// error bars are rescaled.
    pub fn top_k(&self, k: usize) -> Vec<(u64, Estimate)> {
        self.summary
            .raw_top_k(k)
            .into_iter()
            .map(|(key, raw)| (key, self.correct(raw)))
            .collect()
    }

    fn correct(&self, raw: f64) -> Estimate {
        let value = raw / self.p;
        let summary_variance = self.summary.raw_estimate_variance() / (self.p * self.p);
        let sampling_variance = bernoulli_frequency_variance_plugin(self.p, value);
        Estimate {
            value,
            variance: summary_variance + sampling_variance,
            basics: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A fixed skewed stream: key k (0..10) appears 2^(9−k) · 64 times,
    /// shuffled deterministically.
    fn skewed_stream() -> Vec<u64> {
        let mut keys = Vec::new();
        for k in 0..10u64 {
            for _ in 0..(1u64 << (9 - k)) * 64 {
                keys.push(k);
            }
        }
        // LCG shuffle for a deterministic interleaving.
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        keys
    }

    #[test]
    fn p_one_is_the_raw_summary() {
        let mut r = rng(1);
        let mut t = SampledTopK::misra_gries(16, 1.0, &mut r).unwrap();
        let keys = skewed_stream();
        for &k in &keys {
            assert!(t.observe(k));
        }
        assert_eq!(t.kept(), keys.len() as u64);
        let top = t.top_k(3);
        let raw = t.summary().raw_top_k(3);
        for ((k, e), (rk, rv)) in top.iter().zip(raw.iter()) {
            assert_eq!(k, rk);
            assert_eq!(e.value.to_bits(), rv.to_bits());
        }
        // No sampling at p = 1 and MG is exact at this capacity: the top
        // key's variance is exactly zero.
        assert_eq!(top[0].1.variance, 0.0);
    }

    #[test]
    fn invalid_probability_rejected() {
        let mut r = rng(2);
        assert!(SampledTopK::misra_gries(16, 0.0, &mut r).is_err());
        assert!(SampledTopK::misra_gries(16, 1.5, &mut r).is_err());
        assert!(SampledTopK::misra_gries(0, 0.5, &mut r).is_err());
    }

    #[test]
    fn sampled_estimates_recover_the_heavy_keys() {
        let mut r = rng(3);
        let mut t = SampledTopK::misra_gries(16, 0.25, &mut r).unwrap();
        let keys = skewed_stream();
        t.feed_batch(&keys);
        assert!(t.kept() < keys.len() as u64 / 2, "kept {}", t.kept());
        let top = t.top_k(3);
        assert_eq!(top[0].0, 0, "heaviest key is 0");
        // Key 0 appears 2^9·64 = 32768 times; the 1/p-corrected estimate
        // should land within a few sampling standard deviations.
        let truth = 32768.0;
        let e = &top[0].1;
        let sd = e.variance.sqrt();
        assert!(
            (e.value - truth).abs() < 5.0 * sd.max(1.0),
            "est {} truth {truth} sd {sd}",
            e.value
        );
        assert!(e.chebyshev(0.99).unwrap().half_width() > 0.0);
    }

    #[test]
    fn count_sketch_variant_agrees_with_truth() {
        let mut r = rng(4);
        let schema = FagmsSchema::new(5, 1024, &mut r);
        let mut t = SampledTopK::count_sketch(&schema, 16, 0.5, &mut r).unwrap();
        let keys = skewed_stream();
        t.feed_batch(&keys);
        let top = t.top_k(2);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
        let truth = 32768.0;
        let e = &top[0].1;
        assert!(
            (e.value - truth).abs() / truth < 0.2,
            "est {} truth {truth}",
            e.value
        );
        assert!(e.variance > 0.0);
        // Point estimates answer for any key, not just the candidates.
        let p9 = t.point_estimate(9);
        assert!((p9.value - 64.0).abs() < 5.0 * p9.variance.sqrt().max(1.0));
    }

    /// The batched path must replay the scalar path exactly, as for the
    /// join shedders.
    #[test]
    fn feed_batch_is_bit_identical_to_observe() {
        for p in [0.03, 0.5, 1.0] {
            let mut seed_a = rng(11);
            let mut seed_b = rng(11);
            let mut scalar = SampledTopK::misra_gries(8, p, &mut seed_a).unwrap();
            let mut batched = SampledTopK::misra_gries(8, p, &mut seed_b).unwrap();
            let keys: Vec<u64> = (0..30_000u64).map(|i| (i * 2_654_435_761) % 50).collect();
            for &k in &keys {
                scalar.observe(k);
            }
            batched.feed_batch(&[]);
            let mut rest = keys.as_slice();
            for size in [1usize, 7, 255, 256, 257, 1000].iter().cycle() {
                if rest.is_empty() {
                    break;
                }
                let take = (*size).min(rest.len());
                batched.feed_batch(&rest[..take]);
                rest = &rest[take..];
            }
            assert_eq!(scalar.seen(), batched.seen(), "p = {p}");
            assert_eq!(scalar.kept(), batched.kept(), "p = {p}");
            assert_eq!(
                scalar.summary().raw_top_k(8),
                batched.summary().raw_top_k(8),
                "p = {p}"
            );
        }
    }

    /// Monte-Carlo unbiasedness of the 1/p correction: the mean estimate
    /// of a fixed key's frequency over many independent samples matches
    /// the true frequency.
    #[test]
    fn sampled_frequency_is_unbiased() {
        let mut r = rng(7);
        let truth = 400.0;
        let reps = 300;
        let mut acc = 0.0;
        for _ in 0..reps {
            let mut t = SampledTopK::misra_gries(4, 0.3, &mut r).unwrap();
            for _ in 0..400u64 {
                t.observe(42);
            }
            acc += t.point_estimate(42).value;
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean = {mean}, truth = {truth}"
        );
    }
}
