//! Deprecated pre-redesign home of the sampled heavy-hitter driver.
//!
//! `SampledTopK<H>` was the Bernoulli front end for heavy-hitter
//! summaries only. The redesign generalized it into
//! [`Sampled<S>`](crate::Sampled), which wraps *any* [`crate::Summary`]
//! and unlocks corrected queries per capability — the top-k constructors
//! ([`Sampled::misra_gries`](crate::Sampled::misra_gries),
//! [`Sampled::count_sketch`](crate::Sampled::count_sketch)) and the
//! `observe`/`feed_batch`/`top_k`/`point_estimate` surface carried over
//! unchanged, bit-identical.

use crate::sampled::Sampled;

/// Deprecated alias for [`Sampled`] — the Bernoulli front end is now
/// generic over any summary capability, not just heavy hitters.
#[deprecated(
    since = "0.1.0",
    note = "renamed to `sss_core::Sampled`, which is generic over any `Summary`"
)]
pub type SampledTopK<H> = Sampled<H>;
