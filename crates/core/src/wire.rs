//! The snapshot wire format: a self-describing JSON envelope plus the
//! fingerprint hash every [`Portable`](crate::Portable) implementation
//! builds on.
//!
//! Layout of every payload:
//!
//! ```json
//! { "kind": "fagms", "format": 1, "fingerprint": 1234, "body": { ... } }
//! ```
//!
//! The head fields come first so a receiver can [`peek`] them — route,
//! version-check, and fingerprint-check a payload — without deserializing
//! the body (the deserializer ignores unknown fields, so `Head` reads the
//! same bytes the private `Envelope` does). JSON was chosen over a binary format
//! deliberately: the vendored serde backend supports it natively, payloads
//! are debuggable with standard tooling, and snapshot exchange is not a
//! hot path — the hot read path ships *slim* payloads whose size is tens
//! of lanes, not the fat counter matrix.
//!
//! Two invariants every wire representation in this crate maintains:
//!
//! * **Determinism** — encoding a given summary state yields one byte
//!   string (hash maps are serialized in sorted key order), so round-trip
//!   tests can pin bytes and replica refreshes can be deduplicated by
//!   comparison.
//! * **Finite floats** — the JSON writer rejects NaN/±∞, so any `f64`
//!   that may be non-finite (estimate variances) travels as its IEEE-754
//!   bit pattern via [`bits_of`]/[`f64_of`].

use crate::error::{Error, Result};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// The envelope head: everything a receiver needs before committing to a
/// body decode.
///
/// Also serializable on its own (see [`encode_head`]): the network ingest
/// handshake ships a body-less head so two processes can agree on
/// kind/format/fingerprint before any tuple crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Head {
    /// The summary kind tag ([`Portable::KIND`](crate::Portable::KIND)).
    pub kind: String,
    /// The wire format version
    /// ([`Portable::FORMAT`](crate::Portable::FORMAT)).
    pub format: u32,
    /// The configuration fingerprint
    /// ([`Portable::fingerprint`](crate::Portable::fingerprint)).
    pub fingerprint: u64,
}

/// A full envelope around a body `T`.
#[derive(Debug, Serialize, Deserialize)]
struct Envelope<T> {
    kind: String,
    format: u32,
    fingerprint: u64,
    body: T,
}

/// Serialize a body-less [`Head`] — the network handshake payload.
///
/// The bytes parse back through [`peek`] (the deserializer never looks
/// for a body), so a handshake receiver routes and fingerprint-checks a
/// connection with exactly the machinery it already uses on snapshot
/// files: one head codec, two transports.
///
/// # Errors
///
/// [`Error::Wire`] if the serializer refuses the head (it cannot — kept
/// for signature symmetry with [`encode_envelope`]).
pub fn encode_head(kind: &str, format: u32, fingerprint: u64) -> Result<Vec<u8>> {
    let head = Head {
        kind: kind.to_string(),
        format,
        fingerprint,
    };
    serde_json::to_string(&head)
        .map(String::into_bytes)
        .map_err(|e| Error::Wire {
            detail: format!("handshake head failed to serialize: {e}"),
        })
}

/// Read the head of a payload without decoding its body.
///
/// # Errors
///
/// [`Error::Wire`] if the bytes are not a valid envelope.
pub fn peek(bytes: &[u8]) -> Result<Head> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::Wire {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| Error::Wire {
        detail: format!("malformed envelope head: {e}"),
    })
}

/// Wrap `body` in an envelope and serialize it.
///
/// # Errors
///
/// [`Error::Wire`] if the serializer refuses the body (non-finite floats
/// must be pre-converted with [`bits_of`]).
pub fn encode_envelope<T: Serialize>(
    kind: &'static str,
    format: u32,
    fingerprint: u64,
    body: T,
) -> Result<Vec<u8>> {
    let envelope = Envelope {
        kind: kind.to_string(),
        format,
        fingerprint,
        body,
    };
    serde_json::to_string(&envelope)
        .map(String::into_bytes)
        .map_err(|e| Error::Wire {
            detail: format!("{kind} body failed to serialize: {e}"),
        })
}

/// Deserialize an envelope, validating kind and format, and return its
/// body.
///
/// # Errors
///
/// [`Error::Wire`] on malformed bytes, [`Error::WireMismatch`] when the
/// payload carries a different kind or format version.
pub fn decode_envelope<T: DeserializeOwned>(
    bytes: &[u8],
    kind: &'static str,
    format: u32,
) -> Result<T> {
    let head = peek(bytes)?;
    if head.kind != kind || head.format != format {
        return Err(Error::WireMismatch {
            expected: format!("{kind} v{format}"),
            found: format!("{} v{}", head.kind, head.format),
        });
    }
    let text = std::str::from_utf8(bytes).map_err(|e| Error::Wire {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    let envelope: Envelope<T> = serde_json::from_str(text).map_err(|e| Error::Wire {
        detail: format!("{kind} body failed to decode: {e}"),
    })?;
    Ok(envelope.body)
}

/// The `f64` → wire representation: IEEE-754 bits, so NaN/±∞ survive the
/// JSON writer and values round-trip exactly.
pub fn bits_of(value: f64) -> u64 {
    value.to_bits()
}

/// Inverse of [`bits_of`].
pub fn f64_of(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// One splitmix64 scramble — the fingerprint mixing primitive.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An order-sensitive fingerprint combinator: fold every word of a
/// summary's merge-relevant configuration (schema ids, dimensions, seeds,
/// precision) through a splitmix64 chain. Deliberately *not* a secure
/// hash — a 64-bit accidental-collision guard on configuration identity,
/// in the spirit of the schema `id` fields.
pub fn fingerprint(words: &[u64]) -> u64 {
    let mut acc = splitmix64(0x5353_5320_5749_5245); // "SSS WIRE"
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// A violation of the length-prefixed binary ingest framing — the typed
/// protocol errors the network plane reports instead of panicking or
/// silently dropping bytes.
///
/// Frames on the ingest plane are `[u32 LE length][u8 type][payload]`,
/// where `length` counts the type byte plus the payload. Every way a
/// byte stream can fail to be a frame sequence maps to exactly one
/// variant here, so the server can close *one* offending connection with
/// a precise diagnosis while every other connection keeps streaming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix declares an empty frame — there is no room for
    /// even the type byte.
    Undersized,
    /// The length prefix exceeds the protocol's frame-size ceiling (a
    /// corrupt prefix, or a non-protocol client such as HTTP reads as a
    /// gigantic length).
    Oversized {
        /// The declared length.
        len: u32,
        /// The ceiling it exceeded.
        max: u32,
    },
    /// The frame type byte names no known frame.
    UnknownType {
        /// The unrecognized type byte.
        tag: u8,
    },
    /// The payload's internal structure contradicts the frame length
    /// (e.g. a batch frame whose key count disagrees with the bytes
    /// present).
    LengthMismatch {
        /// Payload bytes the internal structure requires.
        declared: u32,
        /// Payload bytes the frame actually carries.
        payload: usize,
    },
    /// A data frame arrived before the handshake completed.
    HandshakeRequired,
    /// The peer hung up in the middle of a frame — `buffered` bytes of an
    /// incomplete frame were pending when the stream ended.
    TruncatedStream {
        /// Bytes of the incomplete frame that had arrived.
        buffered: usize,
    },
    /// The peer reported a protocol error and closed the lane (the
    /// client-side mirror of a server-sent error frame).
    Rejected {
        /// The machine-readable error code from the error frame.
        code: u16,
        /// The human-readable detail from the error frame.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Undersized => {
                write!(f, "frame length prefix is 0 (no room for a type byte)")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            FrameError::UnknownType { tag } => {
                write!(f, "unknown frame type {tag:#04x}")
            }
            FrameError::LengthMismatch { declared, payload } => {
                write!(
                    f,
                    "frame payload structure needs {declared} bytes but the frame carries {payload}"
                )
            }
            FrameError::HandshakeRequired => {
                write!(f, "data frame before the handshake completed")
            }
            FrameError::TruncatedStream { buffered } => {
                write!(
                    f,
                    "stream ended mid-frame with {buffered} bytes of an incomplete frame buffered"
                )
            }
            FrameError::Rejected { code, detail } => {
                write!(f, "peer rejected the connection (code {code}): {detail}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_encodes_and_peeks_without_a_body() {
        let bytes = encode_head("fagms", 2, 0xfeed_f00d).unwrap();
        let head = peek(&bytes).unwrap();
        assert_eq!(head.kind, "fagms");
        assert_eq!(head.format, 2);
        assert_eq!(head.fingerprint, 0xfeed_f00d);
    }

    #[test]
    fn frame_errors_display_their_evidence() {
        let cases: Vec<(FrameError, &str)> = vec![
            (FrameError::Undersized, "length prefix is 0"),
            (FrameError::Oversized { len: 9, max: 4 }, "9"),
            (FrameError::UnknownType { tag: 0xab }, "0xab"),
            (
                FrameError::LengthMismatch {
                    declared: 12,
                    payload: 7,
                },
                "12",
            ),
            (FrameError::HandshakeRequired, "handshake"),
            (FrameError::TruncatedStream { buffered: 3 }, "3 bytes"),
            (
                FrameError::Rejected {
                    code: 4,
                    detail: "nope".into(),
                },
                "code 4",
            ),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn envelope_round_trips_and_peeks() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Body {
            xs: Vec<u64>,
        }
        let bytes =
            encode_envelope("test-kind", 3, 0xdead_beef, Body { xs: vec![1, 2, 3] }).unwrap();
        let head = peek(&bytes).unwrap();
        assert_eq!(head.kind, "test-kind");
        assert_eq!(head.format, 3);
        assert_eq!(head.fingerprint, 0xdead_beef);
        let body: Body = decode_envelope(&bytes, "test-kind", 3).unwrap();
        assert_eq!(body, Body { xs: vec![1, 2, 3] });
    }

    #[test]
    fn foreign_kind_and_version_are_typed_errors() {
        let bytes = encode_envelope("alpha", 1, 7, 42u64).unwrap();
        assert!(matches!(
            decode_envelope::<u64>(&bytes, "beta", 1),
            Err(Error::WireMismatch { .. })
        ));
        assert!(matches!(
            decode_envelope::<u64>(&bytes, "alpha", 2),
            Err(Error::WireMismatch { .. })
        ));
        assert!(matches!(peek(b"not json"), Err(Error::Wire { .. })));
    }

    #[test]
    fn non_finite_floats_round_trip_as_bits() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1.5e300] {
            assert_eq!(f64_of(bits_of(v)).to_bits(), v.to_bits());
        }
        assert!(f64_of(bits_of(f64::NAN)).is_nan());
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        assert_eq!(fingerprint(&[1, 2, 3]), fingerprint(&[1, 2, 3]));
        assert_ne!(fingerprint(&[1, 2, 3]), fingerprint(&[3, 2, 1]));
        assert_ne!(fingerprint(&[1, 2, 3]), fingerprint(&[1, 2]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
    }
}
