//! Error-path coverage: every error variant renders a useful message and
//! carries its source.

use sss_core::Error;
use std::error::Error as _;

#[test]
fn display_messages_are_informative() {
    let cases: Vec<(Error, &str)> = vec![
        (
            Error::Sampling(sss_sampling::Error::InvalidProbability(1.5)),
            "1.5",
        ),
        (Error::Sketch(sss_sketch::Error::SchemaMismatch), "schema"),
        (
            Error::Moments(sss_moments::Error::DomainMismatch { left: 2, right: 3 }),
            "different domains",
        ),
        (Error::InsufficientSample { got: 1, need: 2 }, "at least 2"),
        (Error::ScanOverrun { population: 10 }, "relation size 10"),
        (Error::IncompatibleEstimators, "schema"),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "message {msg:?} should mention {needle:?}"
        );
    }
}

#[test]
fn sources_are_preserved() {
    let err = Error::Sampling(sss_sampling::Error::EmptySample);
    assert!(err.source().is_some(), "wrapped errors expose their source");
    let err = Error::InsufficientSample { got: 0, need: 2 };
    assert!(err.source().is_none(), "leaf errors have no source");
}

#[test]
fn conversions_from_subsystem_errors() {
    let e: Error = sss_sampling::Error::EmptyPopulation.into();
    assert!(matches!(e, Error::Sampling(_)));
    let e: Error = sss_sketch::Error::InvalidDimensions.into();
    assert!(matches!(e, Error::Sketch(_)));
    let e: Error = sss_moments::Error::InvalidAverageCount(0).into();
    assert!(matches!(e, Error::Moments(_)));
}
