//! Driver-level persistence: the distributed load-shedding workflow.
//!
//! A coordinator creates one `JoinSchema`, ships it to workers, each worker
//! sheds-and-sketches its stream partition, and the coordinator merges the
//! returned sketches and applies the Bernoulli scaling once over the union
//! (Bernoulli sampling composes across partitions: each tuple of the union
//! was kept independently with probability p).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::sketch::{JoinSchema, JoinSketch};
use sss_core::LoadSheddingSketcher;

#[test]
fn schema_and_sketch_roundtrip_both_backends() {
    let mut rng = StdRng::seed_from_u64(1);
    for schema in [
        JoinSchema::agms(16, &mut rng),
        JoinSchema::fagms(2, 128, &mut rng),
    ] {
        let json = serde_json::to_string(&schema).unwrap();
        let restored: JoinSchema = serde_json::from_str(&json).unwrap();
        let mut a = schema.sketch();
        let mut b = restored.sketch();
        for k in 0..1000u64 {
            a.update(k % 37, 1);
            b.update(k % 37, 1);
        }
        // Identical seeds ⇒ identical estimates, and cross-joinable.
        assert_eq!(a.raw_self_join(), b.raw_self_join());
        assert!(a.raw_size_of_join(&b).is_ok());

        let sketch_json = serde_json::to_string(&a).unwrap();
        let a2: JoinSketch = serde_json::from_str(&sketch_json).unwrap();
        assert_eq!(a2.raw_self_join(), a.raw_self_join());
    }
}

#[test]
fn distributed_shedding_merges_to_one_estimate() {
    let mut rng = StdRng::seed_from_u64(2);
    let schema = JoinSchema::fagms(1, 4096, &mut rng);
    let schema_json = serde_json::to_string(&schema).unwrap();
    let p = 0.2;

    // Three workers shed three partitions of the same logical stream.
    let mut worker_payloads = Vec::new();
    let mut total_kept = 0u64;
    for w in 0..3u64 {
        let worker_schema: JoinSchema = serde_json::from_str(&schema_json).unwrap();
        let mut shed = LoadSheddingSketcher::new(&worker_schema, p, &mut rng).unwrap();
        for i in 0..200_000u64 {
            shed.observe((w * 200_000 + i) % 1000);
        }
        total_kept += shed.kept();
        worker_payloads.push(serde_json::to_string(shed.sketch()).unwrap());
    }

    // Coordinator: merge and scale once.
    let mut merged: JoinSketch = serde_json::from_str(&worker_payloads[0]).unwrap();
    for payload in &worker_payloads[1..] {
        let part: JoinSketch = serde_json::from_str(payload).unwrap();
        merged.merge(&part).unwrap();
    }
    let est = merged.raw_self_join() / (p * p) - (1.0 - p) / (p * p) * total_kept as f64;

    // Truth: 1000 keys × 600 copies.
    let truth = 1000.0 * 600.0 * 600.0;
    let rel = (est - truth).abs() / truth;
    assert!(rel < 0.1, "distributed estimate off by {rel}");
}

#[test]
fn cross_backend_payloads_do_not_merge() {
    let mut rng = StdRng::seed_from_u64(3);
    let agms = JoinSchema::agms(8, &mut rng).sketch();
    let fagms = JoinSchema::fagms(1, 8, &mut rng).sketch();
    let a_json = serde_json::to_string(&agms).unwrap();
    let mut f: JoinSketch = serde_json::from_str(&serde_json::to_string(&fagms).unwrap()).unwrap();
    let a: JoinSketch = serde_json::from_str(&a_json).unwrap();
    assert!(f.merge(&a).is_err());
}
