//! Vose's alias method: exact O(1) sampling from any finite discrete
//! distribution after O(n) setup.
//!
//! Each of the `n` table slots holds a probability threshold and an alias;
//! a draw picks a uniform slot, then flips a biased coin between the slot
//! and its alias. The construction partitions the probability mass so every
//! slot's column has total mass exactly `1/n`, which makes the method exact
//! (up to f64 rounding of the input weights).

use rand::Rng;

/// Alias table for a discrete distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct DiscreteAlias {
    /// Probability of keeping the slot index rather than its alias.
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl DiscreteAlias {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/NaN entry, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        // Partition into under- and over-full slots.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Fill slot s's column with mass from l.
            alias[s as usize] = l;
            let remaining = prob[l as usize] - (1.0 - prob[s as usize]);
            prob[l as usize] = remaining;
            if remaining < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: both lists drain to slots with mass ≈ 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome in `0..len()`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let slot = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[slot] {
            slot as u64
        } else {
            self.alias[slot] as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_outcome() {
        let a = DiscreteAlias::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| a.sample(&mut rng) == 0));
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let a = DiscreteAlias::new(&[1.0, 0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = a.sample(&mut rng);
            assert!(s == 0 || s == 2, "drew zero-weight outcome {s}");
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let a = DiscreteAlias::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[a.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            let expect = weights[i] / 10.0;
            assert!(
                (freq - expect).abs() < 0.005,
                "outcome {i}: {freq} vs {expect}"
            );
        }
    }

    #[test]
    fn heavily_skewed_weights() {
        let mut weights = vec![1.0; 100];
        weights[7] = 1e6;
        let a = DiscreteAlias::new(&weights);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let hits = (0..n).filter(|_| a.sample(&mut rng) == 7).count();
        let expect = n as f64 * 1e6 / (1e6 + 99.0);
        assert!((hits as f64 - expect).abs() < 5.0 * (n as f64 * 1e-4).sqrt().max(30.0));
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = DiscreteAlias::new(&[]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_panic() {
        let _ = DiscreteAlias::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = DiscreteAlias::new(&[0.0, 0.0]);
    }
}
