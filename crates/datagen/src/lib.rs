//! # sss-datagen — workload generators for the experiments
//!
//! The paper's evaluation (Section VII) uses two kinds of data:
//!
//! * **Synthetic Zipf streams** — "10 or 100 million tuples generated from a
//!   Zipfian distribution with the coefficient ranging between 0 (uniform)
//!   and 5 (skewed). The domain of the possible values is 1 million." The
//!   [`zipf`] module generates these, with exact O(1)-per-tuple draws via
//!   the Vose [`alias`] method.
//! * **TPC-H scale-1 data** — the join `lineitem ⋈ orders` on the order
//!   key and the self-join of `lineitem.l_orderkey`. The [`tpch`] module is
//!   a mini-dbgen reproducing exactly the key-frequency structure those
//!   experiments depend on (each order key appears once in `orders` and
//!   1–7 times — uniformly — in `lineitem`), at a configurable scale
//!   factor. See DESIGN.md for the substitution rationale.
//!
//! All generators are deterministic given the caller's RNG, so experiments
//! are reproducible end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod tpch;
pub mod workloads;
pub mod zipf;

pub use alias::DiscreteAlias;
pub use tpch::{TpchGenerator, TpchTables};
pub use workloads::{uniform_relation, CorrelatedPair, SelfSimilar};
pub use zipf::ZipfGenerator;
