//! Mini TPC-H dbgen: the `orders` / `lineitem` key structure.
//!
//! The paper's without-replacement experiments (Figures 7–8) run on TPC-H
//! scale-1 data: the size of join `lineitem ⋈ orders` on the order key and
//! the second frequency moment of `lineitem.l_orderkey`. Those estimators
//! only observe the *join-key frequency profile*, which in TPC-H is fully
//! determined by dbgen's rules:
//!
//! * `orders` has `1,500,000 × SF` rows, each with a distinct order key
//!   (frequency exactly 1);
//! * `lineitem` has 1–7 rows per order, chosen uniformly (average 4, i.e.
//!   ≈ `6,000,000 × SF` rows at scale 1).
//!
//! This module reproduces exactly that profile at a configurable scale.
//! dbgen's *sparse* order-key numbering (8 keys used out of every 32) is
//! also reproduced — it does not affect frequencies, but it keeps the key
//! domain shaped like the real benchmark's, which matters for hash-bucket
//! contention in F-AGMS.

use rand::Rng;

/// TPC-H rows per unit scale factor in `orders`.
pub const ORDERS_PER_SF: u64 = 1_500_000;

/// Generator parameters.
///
/// ```
/// use rand::SeedableRng;
/// use sss_datagen::TpchGenerator;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let tables = TpchGenerator::new(0.001).generate(&mut rng); // 1500 orders
/// assert_eq!(tables.orders.len(), 1500);
/// // Every order key is unique in `orders`, so the join size is |lineitem|.
/// assert_eq!(tables.join_size(), tables.lineitem.len() as f64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchGenerator {
    /// TPC-H scale factor; 1.0 reproduces the paper's scale-1 setup, while
    /// the experiment harness defaults to smaller scales for laptop runs.
    pub scale: f64,
}

/// The generated key columns.
#[derive(Debug, Clone)]
pub struct TpchTables {
    /// `o_orderkey` of every `orders` row (distinct keys).
    pub orders: Vec<u64>,
    /// `l_orderkey` of every `lineitem` row (1–7 copies of each order key).
    pub lineitem: Vec<u64>,
}

impl TpchGenerator {
    /// Create a generator for the given scale factor.
    ///
    /// # Panics
    ///
    /// Panics if the scale is not a positive finite number or produces
    /// zero orders.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        assert!(
            (scale * ORDERS_PER_SF as f64) >= 1.0,
            "scale {scale} produces an empty orders table"
        );
        Self { scale }
    }

    /// Number of orders at this scale.
    pub fn order_count(&self) -> u64 {
        (self.scale * ORDERS_PER_SF as f64).round() as u64
    }

    /// dbgen's sparse order-key numbering: the i-th order (0-based) gets
    /// key `(i/8)*32 + i%8 + 1` — 8 used keys per block of 32.
    #[inline]
    pub fn order_key(index: u64) -> u64 {
        (index / 8) * 32 + index % 8 + 1
    }

    /// Generate both key columns.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TpchTables {
        let n = self.order_count();
        let mut orders = Vec::with_capacity(n as usize);
        let mut lineitem = Vec::with_capacity((n * 4) as usize);
        for i in 0..n {
            let key = Self::order_key(i);
            orders.push(key);
            let lines = rng.random_range(1..=7u32);
            for _ in 0..lines {
                lineitem.push(key);
            }
        }
        TpchTables { orders, lineitem }
    }
}

impl TpchTables {
    /// The exact size of join `|lineitem ⋈ orders|` on the order key.
    ///
    /// Every order key is unique in `orders`, so the join size is simply
    /// `|lineitem|`.
    pub fn join_size(&self) -> f64 {
        self.lineitem.len() as f64
    }

    /// The exact self-join size (second frequency moment) of
    /// `lineitem.l_orderkey`.
    pub fn lineitem_self_join(&self) -> f64 {
        // lineitem is generated key-contiguous; count runs.
        let mut total = 0f64;
        let mut run = 0f64;
        let mut prev = None;
        for &k in &self.lineitem {
            if prev == Some(k) {
                run += 1.0;
            } else {
                total += run * run;
                run = 1.0;
                prev = Some(k);
            }
        }
        total + run * run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn order_keys_are_sparse_and_distinct() {
        assert_eq!(TpchGenerator::order_key(0), 1);
        assert_eq!(TpchGenerator::order_key(7), 8);
        assert_eq!(TpchGenerator::order_key(8), 33);
        assert_eq!(TpchGenerator::order_key(15), 40);
        assert_eq!(TpchGenerator::order_key(16), 65);
        let keys: Vec<u64> = (0..1000).map(TpchGenerator::order_key).collect();
        let mut sorted = keys.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000, "keys must be distinct");
    }

    #[test]
    fn generated_sizes_match_tpch_rules() {
        let g = TpchGenerator::new(0.001); // 1500 orders
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.generate(&mut rng);
        assert_eq!(t.orders.len(), 1500);
        // lineitem: 1..=7 per order, mean 4.
        let per_order = t.lineitem.len() as f64 / 1500.0;
        assert!(
            (per_order - 4.0).abs() < 0.25,
            "mean lines/order = {per_order}"
        );
        assert!(t.lineitem.len() >= 1500 && t.lineitem.len() <= 7 * 1500);
    }

    #[test]
    fn lineitem_frequencies_are_one_to_seven() {
        let g = TpchGenerator::new(0.001);
        let mut rng = StdRng::seed_from_u64(2);
        let t = g.generate(&mut rng);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &k in &t.lineitem {
            *counts.entry(k).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 1500, "every order key appears in lineitem");
        assert!(counts.values().all(|&c| (1..=7).contains(&c)));
        // Uniform 1..=7: each multiplicity class ≈ 1500/7 ≈ 214.
        for m in 1..=7u64 {
            let class = counts.values().filter(|&&c| c == m).count();
            assert!(
                (140..300).contains(&class),
                "multiplicity {m}: {class} keys"
            );
        }
    }

    #[test]
    fn exact_aggregates() {
        let g = TpchGenerator::new(0.0005);
        let mut rng = StdRng::seed_from_u64(3);
        let t = g.generate(&mut rng);
        // Brute-force both aggregates and compare with the fast paths.
        let mut counts: HashMap<u64, f64> = HashMap::new();
        for &k in &t.lineitem {
            *counts.entry(k).or_insert(0.0) += 1.0;
        }
        let join: f64 = t
            .orders
            .iter()
            .map(|k| counts.get(k).copied().unwrap_or(0.0))
            .sum();
        assert_eq!(join, t.join_size());
        let f2: f64 = counts.values().map(|&c| c * c).sum();
        assert_eq!(f2, t.lineitem_self_join());
    }

    #[test]
    #[should_panic(expected = "empty orders")]
    fn microscopic_scale_panics() {
        let _ = TpchGenerator::new(1e-9);
    }
}
