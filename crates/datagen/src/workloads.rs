//! Additional workload families beyond Zipf.
//!
//! * [`SelfSimilar`] — the "80/20 law" generator (Gray et al., SIGMOD'94):
//!   a fraction `h` of the mass falls in the first half of the domain,
//!   recursively. A standard skew model distinct from Zipf's power law.
//! * [`uniform_relation`] — the skew-0 baseline, directly.
//! * [`CorrelatedPair`] — two streams over a shared domain with a tunable
//!   correlation knob: with probability `rho` the second stream repeats
//!   the first stream's draw, otherwise it draws independently. The
//!   resulting expected size of join interpolates linearly between the
//!   independent and identical cases, which the tests pin — the substrate
//!   for join-estimation experiments where overlap is the variable.

use crate::zipf::ZipfGenerator;
use rand::Rng;

/// Self-similar (80/20-style) distribution over `0..domain`.
///
/// Drawing walks the domain bisection: with probability `h` descend into
/// the lower half, else the upper half. `h = 0.5` is uniform; `h = 0.8` is
/// the classic 80/20 rule; `h → 1` concentrates on key 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfSimilar {
    domain: u64,
    h: f64,
}

impl SelfSimilar {
    /// Build a generator.
    ///
    /// # Panics
    ///
    /// Panics unless `domain > 0` and `h ∈ [0.5, 1)`.
    pub fn new(domain: u64, h: f64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!((0.5..1.0).contains(&h), "h must be in [0.5, 1)");
        Self { domain, h }
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut lo = 0u64;
        let mut len = self.domain;
        while len > 1 {
            let half = len / 2;
            if rng.random::<f64>() < self.h {
                // lower half keeps floor(len/2) + remainder on the left
                len -= half;
            } else {
                lo += len - half;
                len = half;
            }
        }
        lo
    }

    /// Generate a relation of `tuples` draws.
    pub fn relation<R: Rng + ?Sized>(&self, tuples: usize, rng: &mut R) -> Vec<u64> {
        (0..tuples).map(|_| self.sample(rng)).collect()
    }
}

/// A uniform relation: `tuples` draws from `0..domain`.
pub fn uniform_relation<R: Rng + ?Sized>(domain: u64, tuples: usize, rng: &mut R) -> Vec<u64> {
    assert!(domain > 0, "domain must be non-empty");
    (0..tuples).map(|_| rng.random_range(0..domain)).collect()
}

/// Paired streams with tunable correlation; see the module docs.
#[derive(Debug, Clone)]
pub struct CorrelatedPair {
    base: ZipfGenerator,
    rho: f64,
}

impl CorrelatedPair {
    /// Build over a Zipf(`skew`) base distribution with correlation knob
    /// `rho ∈ [0, 1]` (0 = independent draws, 1 = identical streams).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]` (domain/skew validation is the
    /// base generator's).
    pub fn new(domain: usize, skew: f64, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        Self {
            base: ZipfGenerator::new(domain, skew),
            rho,
        }
    }

    /// The correlation knob.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Draw one pair `(f_key, g_key)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u64, u64) {
        let f = self.base.sample(rng);
        let g = if rng.random::<f64>() < self.rho {
            f
        } else {
            self.base.sample(rng)
        };
        (f, g)
    }

    /// Generate two relations of `tuples` pairs.
    pub fn relations<R: Rng + ?Sized>(&self, tuples: usize, rng: &mut R) -> (Vec<u64>, Vec<u64>) {
        let mut f = Vec::with_capacity(tuples);
        let mut g = Vec::with_capacity(tuples);
        for _ in 0..tuples {
            let (a, b) = self.sample(rng);
            f.push(a);
            g.push(b);
        }
        (f, g)
    }

    /// The expected size of join of two `tuples`-sized relations: with
    /// `P_2 = Σ pᵢ²` the base collision mass,
    ///
    /// ```text
    /// E[|F ⋈ G|] = tuples·rho·(1 + (tuples−1)·P₂) + tuples·(tuples−rho·tuples)·P₂
    /// ```
    ///
    /// — derived from pairing each F-tuple with each G-tuple: a G-tuple
    /// copied from that same F-draw matches with probability 1, everything
    /// else collides with probability `P₂`. (Exact; pinned by tests.)
    pub fn expected_join(&self, tuples: u64) -> f64 {
        let n = tuples as f64;
        let p2: f64 = {
            let ef = self.base.expected_frequencies(1);
            ef.iter().map(|&p| p * p).sum()
        };
        // Same-index pairs: rho → identical (prob 1), else collide at P₂.
        let same = n * (self.rho + (1.0 - self.rho) * p2);
        // Cross-index pairs: always independent draws at P₂.
        let cross = n * (n - 1.0) * p2;
        same + cross
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn self_similar_half_is_uniform() {
        let g = SelfSimilar::new(16, 0.5);
        let mut r = rng(1);
        let n = 160_000;
        let mut counts = [0u64; 16];
        for _ in 0..n {
            counts[g.sample(&mut r) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 16.0).abs() < 0.005, "key {k}: {freq}");
        }
    }

    #[test]
    fn self_similar_eighty_twenty() {
        let g = SelfSimilar::new(1024, 0.8);
        let mut r = rng(2);
        let n = 100_000;
        let lower_half = (0..n).filter(|_| g.sample(&mut r) < 512).count() as f64;
        assert!(
            (lower_half / n as f64 - 0.8).abs() < 0.01,
            "lower-half mass {lower_half}"
        );
        // Recursively: the first quarter carries 0.64.
        let mut r = rng(3);
        let first_quarter = (0..n).filter(|_| g.sample(&mut r) < 256).count() as f64;
        assert!((first_quarter / n as f64 - 0.64).abs() < 0.01);
    }

    #[test]
    fn self_similar_stays_in_domain() {
        // Non-power-of-two domain must still cover exactly 0..domain.
        let g = SelfSimilar::new(13, 0.7);
        let mut r = rng(4);
        let mut seen = [false; 13];
        for _ in 0..50_000 {
            let k = g.sample(&mut r);
            assert!(k < 13);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 13 keys should occur");
    }

    #[test]
    fn uniform_relation_covers_domain() {
        let mut r = rng(5);
        let rel = uniform_relation(100, 50_000, &mut r);
        assert_eq!(rel.len(), 50_000);
        assert!(rel.iter().all(|&k| k < 100));
    }

    #[test]
    fn correlated_pair_rho_zero_and_one() {
        let mut r = rng(6);
        let indep = CorrelatedPair::new(1000, 1.0, 0.0);
        let (f, g) = indep.relations(20_000, &mut r);
        let same = f.iter().zip(&g).filter(|(a, b)| a == b).count() as f64 / 20_000.0;
        // At rho = 0 matches happen only by collision (P₂ of Zipf(1) over
        // 1000 ≈ 0.03).
        assert!(same < 0.1, "rho=0 same-index match rate {same}");

        let ident = CorrelatedPair::new(1000, 1.0, 1.0);
        let (f, g) = ident.relations(1000, &mut r);
        assert_eq!(f, g, "rho=1 must copy the stream");
    }

    /// The exact expected-join formula against brute force.
    #[test]
    fn expected_join_matches_empirical() {
        let pair = CorrelatedPair::new(200, 0.5, 0.4);
        let tuples = 2_000u64;
        let expect = pair.expected_join(tuples);
        let mut r = rng(7);
        let reps = 60;
        let mut acc = 0.0;
        for _ in 0..reps {
            let (f, g) = pair.relations(tuples as usize, &mut r);
            let mut counts = std::collections::HashMap::new();
            for &k in &f {
                *counts.entry(k).or_insert(0u64) += 1;
            }
            acc += g
                .iter()
                .map(|k| *counts.get(k).unwrap_or(&0) as f64)
                .sum::<f64>();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "empirical {mean} vs formula {expect}"
        );
    }

    #[test]
    fn join_grows_with_rho() {
        let lo = CorrelatedPair::new(500, 1.0, 0.1).expected_join(10_000);
        let hi = CorrelatedPair::new(500, 1.0, 0.9).expected_join(10_000);
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "rho must be in [0, 1]")]
    fn bad_rho_panics() {
        let _ = CorrelatedPair::new(10, 1.0, 1.5);
    }
}
