//! Zipf-distributed tuple streams.
//!
//! The paper's synthetic workloads draw tuples from a Zipfian distribution
//! `P(value = k) ∝ 1/k^z` over a domain of 1 million values, with the
//! coefficient `z` swept from 0 (uniform) to 5 (extremely skewed). For size
//! of join, "the tuples in the two relations are generated completely
//! independent" — two [`ZipfGenerator`]s with independent RNG states.
//!
//! Draws are exact and O(1) via the alias method; building the table is
//! O(domain).

use crate::alias::DiscreteAlias;
use rand::Rng;

/// A Zipf(z) sampler over the domain `0..domain` (value `k` has weight
/// `1/(k+1)^z`, so value 0 is the most frequent).
///
/// ```
/// use rand::SeedableRng;
/// use sss_datagen::ZipfGenerator;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let gen = ZipfGenerator::new(1000, 1.0);
/// let relation = gen.relation(50_000, &mut rng);
/// // Value 0 is drawn ≈ 1/H₁₀₀₀ ≈ 13.4% of the time at skew 1.
/// let zeros = relation.iter().filter(|&&k| k == 0).count() as f64;
/// assert!((zeros / 50_000.0 - 0.134).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    table: DiscreteAlias,
    skew: f64,
    domain: usize,
}

impl ZipfGenerator {
    /// Build a generator for the given domain size and skew `z ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0` or `skew` is negative/NaN.
    pub fn new(domain: usize, skew: f64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(
            skew >= 0.0 && skew.is_finite(),
            "skew must be a finite non-negative number"
        );
        let weights: Vec<f64> = (0..domain)
            .map(|k| 1.0 / ((k + 1) as f64).powf(skew))
            .collect();
        Self {
            table: DiscreteAlias::new(&weights),
            skew,
            domain,
        }
    }

    /// The skew coefficient `z`.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// The domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Draw one tuple (a value in `0..domain`).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.table.sample(rng)
    }

    /// Generate a relation of `tuples` draws.
    pub fn relation<R: Rng + ?Sized>(&self, tuples: usize, rng: &mut R) -> Vec<u64> {
        (0..tuples).map(|_| self.sample(rng)).collect()
    }

    /// The *expected* frequency vector of a relation of `tuples` draws —
    /// the analytical workload for the Figure 1–2 variance decompositions,
    /// which operate on true frequencies rather than realizations.
    pub fn expected_frequencies(&self, tuples: u64) -> Vec<f64> {
        let norm: f64 = (0..self.domain)
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.skew))
            .sum();
        (0..self.domain)
            .map(|k| tuples as f64 / ((k + 1) as f64).powf(self.skew) / norm)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_skew_zero() {
        let z = ZipfGenerator::new(16, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 160_000;
        let mut counts = [0u64; 16];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 16.0).abs() < 0.005, "value {k}: {freq}");
        }
    }

    #[test]
    fn skew_one_matches_harmonic_weights() {
        let z = ZipfGenerator::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let h8: f64 = (1..=8).map(|k| 1.0 / k as f64).sum();
        for (k, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            let expect = 1.0 / (k + 1) as f64 / h8;
            assert!(
                (freq - expect).abs() < 0.01,
                "value {k}: {freq} vs {expect}"
            );
        }
    }

    #[test]
    fn extreme_skew_concentrates_on_first_value() {
        let z = ZipfGenerator::new(1000, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let zeros = (0..n).filter(|_| z.sample(&mut rng) == 0).count();
        // P(0) = 1/ζ(5) ≈ 0.964
        assert!(zeros as f64 / n as f64 > 0.95, "zeros = {zeros}");
    }

    #[test]
    fn expected_frequencies_sum_to_tuple_count() {
        for skew in [0.0, 0.5, 1.0, 3.0] {
            let z = ZipfGenerator::new(100, skew);
            let ef = z.expected_frequencies(10_000);
            let total: f64 = ef.iter().sum();
            assert!((total - 10_000.0).abs() < 1e-6, "skew {skew}: {total}");
            // Monotone non-increasing
            assert!(ef.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        }
    }

    #[test]
    fn relation_has_requested_size_and_domain() {
        let z = ZipfGenerator::new(50, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        let rel = z.relation(5000, &mut rng);
        assert_eq!(rel.len(), 5000);
        assert!(rel.iter().all(|&k| k < 50));
    }

    #[test]
    fn realized_frequencies_track_expected() {
        let z = ZipfGenerator::new(32, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000usize;
        let rel = z.relation(n, &mut rng);
        let mut counts = vec![0f64; 32];
        for k in rel {
            counts[k as usize] += 1.0;
        }
        let expect = z.expected_frequencies(n as u64);
        for k in 0..4 {
            // Heavy values: relative agreement.
            assert!(
                (counts[k] - expect[k]).abs() / expect[k] < 0.05,
                "value {k}: {} vs {}",
                counts[k],
                expect[k]
            );
        }
    }
}
