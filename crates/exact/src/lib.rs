//! # sss-exact — exact streaming aggregates
//!
//! The ground-truth side of every experiment: exact frequency maps over
//! streams, frequency moments `F₀ … F₄`, self-join and join sizes, with
//! merge support so partitioned streams can be aggregated exactly too.
//!
//! The estimators in this workspace exist precisely because this crate's
//! memory footprint — Θ(distinct keys) — is unaffordable on real streams;
//! keeping the exact path as a first-class, well-tested component is what
//! makes the accuracy claims of every harness checkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// An exact, mergeable frequency map over `u64` keys.
///
/// Supports the turnstile model: negative updates delete occurrences, and
/// keys whose net count returns to zero are physically removed (so
/// [`distinct`](ExactAggregator::distinct) is the true `F₀` of the net
/// stream).
///
/// ```
/// use sss_exact::ExactAggregator;
///
/// let f = ExactAggregator::from_keys([1u64, 1, 2, 3]);
/// let g = ExactAggregator::from_keys([1u64, 3, 3]);
/// assert_eq!(f.self_join(), 6.0);       // 2² + 1² + 1²
/// assert_eq!(f.join(&g), 4.0);          // 2·1 + 1·0 + 1·2
/// assert_eq!(f.top_k(1), vec![(1, 2)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExactAggregator {
    counts: HashMap<u64, i64>,
    total: i64,
}

impl ExactAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an insert-only key stream.
    pub fn from_keys<I: IntoIterator<Item = u64>>(keys: I) -> Self {
        let mut a = Self::new();
        for k in keys {
            a.update(k, 1);
        }
        a
    }

    /// Apply a (possibly negative) count to a key.
    pub fn update(&mut self, key: u64, count: i64) {
        if count == 0 {
            return;
        }
        self.total += count;
        match self.counts.entry(key) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += count;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                e.insert(count);
            }
        }
    }

    /// Merge another aggregator (stream union).
    pub fn merge(&mut self, other: &ExactAggregator) {
        for (&k, &c) in &other.counts {
            self.update(k, c);
        }
    }

    /// Net stream size `F₁ = Σᵢ fᵢ`.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Number of keys with non-zero net count (`F₀` for insert-only
    /// streams).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The net frequency of `key`.
    pub fn get(&self, key: u64) -> i64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// The k-th frequency moment `F_k = Σᵢ fᵢᵏ` (k ≥ 1).
    pub fn moment(&self, k: u32) -> f64 {
        self.counts
            .values()
            .map(|&c| (c as f64).powi(k as i32))
            .sum()
    }

    /// The self-join size `F₂`.
    pub fn self_join(&self) -> f64 {
        self.moment(2)
    }

    /// The exact size of join `Σᵢ fᵢ·gᵢ` with another relation.
    pub fn join(&self, other: &ExactAggregator) -> f64 {
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .iter()
            .map(|(&k, &c)| c as f64 * large.get(k) as f64)
            .sum()
    }

    /// The exact cross sum `Σᵢ fᵢᵃ·gᵢᵇ` (the building block of the
    /// variance formulas).
    pub fn cross_sum(&self, other: &ExactAggregator, a: u32, b: u32) -> f64 {
        // Iterate the side whose exponent is non-zero and small; both maps
        // must be consulted when both exponents are non-zero.
        self.counts
            .iter()
            .map(|(&k, &c)| (c as f64).powi(a as i32) * (other.get(k) as f64).powi(b as i32))
            .sum()
    }

    /// Iterate over `(key, net frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// The keys ranked by net frequency (descending; ties by key), capped
    /// at `k` — exact heavy hitters.
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut v: Vec<(u64, i64)> = self.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

impl FromIterator<u64> for ExactAggregator {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_keys(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_moments() {
        let a = ExactAggregator::from_keys([1u64, 1, 2, 3, 3, 3]);
        assert_eq!(a.total(), 6);
        assert_eq!(a.distinct(), 3);
        assert_eq!(a.get(3), 3);
        assert_eq!(a.moment(1), 6.0);
        assert_eq!(a.self_join(), 4.0 + 1.0 + 9.0);
        assert_eq!(a.moment(3), 8.0 + 1.0 + 27.0);
        assert_eq!(a.moment(4), 16.0 + 1.0 + 81.0);
    }

    #[test]
    fn deletions_remove_keys() {
        let mut a = ExactAggregator::from_keys([5u64, 5, 6]);
        a.update(5, -2);
        assert_eq!(a.get(5), 0);
        assert_eq!(a.distinct(), 1, "zeroed keys leave the map");
        a.update(6, -1);
        assert_eq!(a.distinct(), 0);
        assert_eq!(a.total(), 0);
        // Negative net counts are representable (turnstile).
        a.update(7, -3);
        assert_eq!(a.get(7), -3);
        assert_eq!(a.self_join(), 9.0);
    }

    #[test]
    fn join_and_cross_sums() {
        let f = ExactAggregator::from_keys([1u64, 1, 2]);
        let g = ExactAggregator::from_keys([1u64, 2, 2, 3]);
        assert_eq!(f.join(&g), 2.0 + 2.0);
        assert_eq!(g.join(&f), 4.0);
        assert_eq!(f.cross_sum(&g, 2, 1), 4.0 + 2.0);
        assert_eq!(f.cross_sum(&g, 1, 2), 2.0 + 4.0);
        assert_eq!(f.cross_sum(&g, 2, 2), 4.0 + 4.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = ExactAggregator::from_keys([1u64, 2]);
        let b = ExactAggregator::from_keys([2u64, 3]);
        a.merge(&b);
        assert_eq!(a, ExactAggregator::from_keys([1u64, 2, 2, 3]));
    }

    #[test]
    fn top_k_orders_and_breaks_ties() {
        let a = ExactAggregator::from_keys([9u64, 9, 9, 4, 4, 7, 7, 1]);
        assert_eq!(a.top_k(3), vec![(9, 3), (4, 2), (7, 2)]);
        assert_eq!(a.top_k(0), vec![]);
        assert_eq!(a.top_k(100).len(), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let a = ExactAggregator::from_keys([1u64, 2, 2]);
        let json = serde_json::to_string(&a).unwrap();
        let b: ExactAggregator = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Merging partitions equals aggregating the union, for any
            /// split of any stream.
            #[test]
            fn merge_is_union(keys in prop::collection::vec(0u64..100, 0..200), split in 0usize..200) {
                let split = split.min(keys.len());
                let whole = ExactAggregator::from_keys(keys.iter().copied());
                let mut left = ExactAggregator::from_keys(keys[..split].iter().copied());
                let right = ExactAggregator::from_keys(keys[split..].iter().copied());
                left.merge(&right);
                prop_assert_eq!(left, whole);
            }

            /// F-moment inequalities: F₁² ≥ F₂ ≥ F₁ for insert-only
            /// streams (Cauchy–Schwarz and integrality).
            #[test]
            fn moment_inequalities(keys in prop::collection::vec(0u64..50, 1..200)) {
                let a = ExactAggregator::from_keys(keys.iter().copied());
                let f1 = a.moment(1);
                let f2 = a.moment(2);
                prop_assert!(f2 <= f1 * f1 + 1e-9);
                prop_assert!(f2 >= f1 - 1e-9);
                // F₂·F₀ ≥ F₁² (Cauchy–Schwarz with the all-ones vector)
                prop_assert!(f2 * a.distinct() as f64 >= f1 * f1 - 1e-6);
            }

            /// Insert-then-delete returns to the empty state.
            #[test]
            fn perfect_cancellation(keys in prop::collection::vec(0u64..100, 0..200)) {
                let mut a = ExactAggregator::from_keys(keys.iter().copied());
                for &k in &keys {
                    a.update(k, -1);
                }
                prop_assert_eq!(a.distinct(), 0);
                prop_assert_eq!(a.total(), 0);
            }
        }
    }
}
