//! Confidence intervals from (mean, variance) pairs.
//!
//! The paper (Section II) deliberately reports expected values and
//! variances, noting that "actual error guarantees can be obtained
//! straightforwardly" from them via distribution-independent bounds
//! (Chebyshev) or distribution-dependent ones (CLT). This module implements
//! both conversions so the estimators can report user-facing intervals.

use crate::engine::Moments;

/// A two-sided confidence interval around an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub low: f64,
    /// Upper bound.
    pub high: f64,
    /// The confidence level the interval was built for, in `(0, 1)`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }

    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        self.low <= value && value <= self.high
    }

    /// Render `center ± half_width` honestly when the error state is
    /// unknown: an estimator with infinite (or NaN) variance yields an
    /// unbounded interval, and `"1234.00 ± ∞ (no error state)"` says so,
    /// where a naive `{:.2}` format would print a bare `inf`/`NaN` that
    /// reads like a number. Callers pass the point estimate, which the
    /// interval endpoints alone cannot recover once they are infinite.
    pub fn describe(&self, center: f64) -> String {
        let hw = self.half_width();
        if hw.is_finite() {
            format!("{center:.2} ± {hw:.2}")
        } else {
            format!("{center:.2} ± ∞ (no error state)")
        }
    }
}

/// Distribution-independent interval via Chebyshev's inequality:
/// `P(|X − μ| ≥ k·σ) ≤ 1/k²`, so `k = 1/√(1−confidence)`.
pub fn chebyshev(center: f64, moments: &Moments, confidence: f64) -> ConfidenceInterval {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let k = (1.0 / (1.0 - confidence)).sqrt();
    let hw = k * moments.std();
    ConfidenceInterval {
        low: center - hw,
        high: center + hw,
        confidence,
    }
}

/// CLT-based interval: treats the estimator as normal with the given
/// variance (justified when many basics are averaged).
pub fn normal(center: f64, moments: &Moments, confidence: f64) -> ConfidenceInterval {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    let hw = z * moments.std();
    ConfidenceInterval {
        low: center - hw,
        high: center + hw,
        confidence,
    }
}

/// The standard normal CDF `Φ(z)`, via Abramowitz–Stegun 7.1.26
/// (|error| < 7.5e−8).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(x))
}

/// The error function (Abramowitz–Stegun 7.1.26 rational approximation).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The probability that a normal estimator with the given `moments` lands
/// within `±tolerance` of its mean — the CLT answer to "how often will the
/// estimate be this good?".
pub fn normal_coverage(moments: &Moments, tolerance: f64) -> f64 {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let sd = moments.std();
    if sd == 0.0 {
        return 1.0;
    }
    let z = tolerance / sd;
    normal_cdf(z) - normal_cdf(-z)
}

/// The standard normal quantile (inverse CDF), Acklam's rational
/// approximation — |relative error| < 1.15e−9 over (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for p in [0.01, 0.1, 0.25, 0.5, 0.9, 0.99] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn coverage_behaves() {
        let m = Moments {
            mean: 0.0,
            variance: 4.0,
        };
        // ±1.96σ covers 95%.
        assert!((normal_coverage(&m, 2.0 * 1.959964) - 0.95).abs() < 1e-4);
        assert_eq!(
            normal_coverage(&m, 0.0),
            0.0 + (normal_cdf(0.0) - normal_cdf(0.0))
        );
        // Zero-variance estimators always hit.
        assert_eq!(
            normal_coverage(
                &Moments {
                    mean: 1.0,
                    variance: 0.0
                },
                0.1
            ),
            1.0
        );
        // Wider tolerance ⇒ more coverage.
        assert!(normal_coverage(&m, 4.0) > normal_coverage(&m, 1.0));
    }

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        // Symmetry
        for p in [0.01, 0.1, 0.3] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn chebyshev_is_wider_than_normal() {
        let m = Moments {
            mean: 100.0,
            variance: 16.0,
        };
        let ch = chebyshev(100.0, &m, 0.95);
        let no = normal(100.0, &m, 0.95);
        assert!(ch.half_width() > no.half_width());
        // Chebyshev at 95%: k = sqrt(20) ≈ 4.472 → hw ≈ 17.9
        assert!((ch.half_width() - 4.0 * 20f64.sqrt()).abs() < 1e-9);
        // Normal at 95%: 1.96σ ≈ 7.84
        assert!((no.half_width() - 4.0 * 1.959964).abs() < 1e-3);
    }

    #[test]
    fn interval_contains_and_width() {
        let ci = ConfidenceInterval {
            low: 2.0,
            high: 6.0,
            confidence: 0.9,
        };
        assert_eq!(ci.half_width(), 2.0);
        assert!(ci.contains(2.0) && ci.contains(6.0) && ci.contains(4.0));
        assert!(!ci.contains(1.999) && !ci.contains(6.001));
    }

    #[test]
    fn describe_is_honest_about_unknown_error() {
        let ci = ConfidenceInterval {
            low: 2.0,
            high: 6.0,
            confidence: 0.9,
        };
        assert_eq!(ci.describe(4.0), "4.00 ± 2.00");
        // Infinite variance (Estimate::point) → unbounded endpoints.
        let unbounded = ConfidenceInterval {
            low: f64::NEG_INFINITY,
            high: f64::INFINITY,
            confidence: 0.95,
        };
        assert_eq!(unbounded.describe(1234.0), "1234.00 ± ∞ (no error state)");
        // A NaN half-width is equally "no error state", not a number.
        let poisoned = ConfidenceInterval {
            low: f64::NAN,
            high: f64::NAN,
            confidence: 0.95,
        };
        assert_eq!(poisoned.describe(7.0), "7.00 ± ∞ (no error state)");
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        let m = Moments {
            mean: 0.0,
            variance: 1.0,
        };
        let _ = chebyshev(0.0, &m, 1.0);
    }

    // The range is strict: 0.0 is *not* a valid level (Chebyshev at 0.0
    // would silently yield k = 1), and NaN fails the comparison chain.
    #[test]
    #[should_panic(expected = "confidence")]
    fn zero_confidence_panics() {
        let m = Moments {
            mean: 0.0,
            variance: 1.0,
        };
        let _ = chebyshev(0.0, &m, 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn nan_confidence_panics() {
        let m = Moments {
            mean: 0.0,
            variance: 1.0,
        };
        let _ = normal(0.0, &m, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn zero_confidence_panics_for_normal() {
        let m = Moments {
            mean: 0.0,
            variance: 1.0,
        };
        let _ = normal(0.0, &m, 0.0);
    }
}
