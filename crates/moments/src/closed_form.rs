//! The paper's printed variance formulas, implemented literally.
//!
//! Each function transcribes one numbered equation of *"Sketching Sampled
//! Data Streams"* in terms of power sums and cross sums of the true
//! frequency vectors. The test suite pins every formula against the generic
//! engine of [`crate::engine`], so a transcription error here or a
//! derivation error there cannot pass unnoticed — this is the
//! reproduction's strongest internal consistency check.
//!
//! Sums of the form `Σ_{i≠j} fᵢᵃgⱼᵇ` are expanded as
//! `(Σfᵃ)(Σgᵇ) − Σfᵢᵃgᵢᵇ`.

use crate::freq::FrequencyVector;
use crate::scheme::{Bernoulli, WithReplacement, WithoutReplacement};
use crate::{Error, Result};

fn check(f: &FrequencyVector, g: &FrequencyVector) -> Result<()> {
    if f.len() != g.len() {
        return Err(Error::DomainMismatch {
            left: f.len(),
            right: g.len(),
        });
    }
    Ok(())
}

/// Eq. 6 — variance of the Bernoulli sampling-only size-of-join estimator
/// `X = (1/pq)·Σf′g′` (Proposition 3).
pub fn bernoulli_sampling_sj_variance(
    f: &FrequencyVector,
    g: &FrequencyVector,
    p: &Bernoulli,
    q: &Bernoulli,
) -> Result<f64> {
    check(f, g)?;
    let (p, q) = (p.p(), q.p());
    let fg2 = f.cross_sum(g, 1, 2);
    let f2g = f.cross_sum(g, 2, 1);
    let fg = f.dot(g);
    Ok((1.0 - p) / p * fg2 + (1.0 - q) / q * f2g + (1.0 - p) * (1.0 - q) / (p * q) * fg)
}

/// Eq. 7 — variance of the Bernoulli sampling-only self-join estimator
/// `X = (1/p²)Σf′² − ((1−p)/p²)Σf′` (Proposition 4).
pub fn bernoulli_sampling_sjs_variance(f: &FrequencyVector, p: &Bernoulli) -> f64 {
    let p = p.p();
    let f3 = f.power_sum(3);
    let f2 = f.power_sum(2);
    let f1 = f.power_sum(1);
    (1.0 - p) / (p * p * p)
        * (4.0 * p * p * f3 + 2.0 * p * (1.0 - 3.0 * p) * f2 - p * (2.0 - 3.0 * p) * f1)
}

/// Eq. 10 — variance of the with-replacement sampling-only size-of-join
/// estimator `X = (1/αβ)·Σf′g′` (Proposition 5).
///
/// **Erratum.** The paper prints the middle coefficients as `|F|αβ₂` and
/// `|G|α₂β`; exact enumeration of tiny populations (see
/// `exhaustive_enumeration_wr_sampling_sj` below and the engine's
/// multinomial-oracle tests) shows the correct coefficients are `β₂` and
/// `α₂` — the printed versions are off by the sample sizes `|F′| = |F|α`
/// and `|G′| = |G|β`. This implementation uses the verified form
///
/// ```text
/// Var[X] = (1/αβ)·[ Σfg + β₂·Σfg² + α₂·Σf²g + (α₂β₂ − αβ)·(Σfg)² ]
/// ```
pub fn wr_sampling_sj_variance(
    f: &FrequencyVector,
    g: &FrequencyVector,
    sf: &WithReplacement,
    sg: &WithReplacement,
) -> Result<f64> {
    check(f, g)?;
    let (a, a2) = (sf.alpha(), sf.alpha2());
    let (b, b2) = (sg.alpha(), sg.alpha2());
    let fg = f.dot(g);
    let fg2 = f.cross_sum(g, 1, 2);
    let f2g = f.cross_sum(g, 2, 1);
    Ok((fg + b2 * fg2 + a2 * f2g + (a2 * b2 - a * b) * fg * fg) / (a * b))
}

/// Eq. 11 — variance of the without-replacement sampling-only size-of-join
/// estimator `X = (1/αβ)·Σf′g′` (Proposition 6).
pub fn wor_sampling_sj_variance(
    f: &FrequencyVector,
    g: &FrequencyVector,
    sf: &WithoutReplacement,
    sg: &WithoutReplacement,
) -> Result<f64> {
    check(f, g)?;
    let (a, a1) = (sf.alpha(), sf.alpha1());
    let (b, b1) = (sg.alpha(), sg.alpha1());
    let fg = f.dot(g);
    let fg2 = f.cross_sum(g, 1, 2);
    let f2g = f.cross_sum(g, 2, 1);
    Ok(((1.0 - a1) * (1.0 - b1) * fg
        + (1.0 - a1) * b1 * fg2
        + a1 * (1.0 - b1) * f2g
        + (a1 * b1 - a * b) * fg * fg)
        / (a * b))
}

/// Variance of the with-replacement sampling-only **self-join** estimator
/// `X = (1/αα₂)·Σf′² − N/α₂` (Section III-D — the paper omits this formula
/// "due to lack of space"; derived here from the multinomial factorial
/// moments and pinned against the generic engine and exhaustive
/// enumeration):
///
/// ```text
/// Var[X] = [ 2N²F₂ + 4(m−2)·N·F₃ − 2(2m−3)·F₂² ] / (m(m−1))
/// ```
///
/// with `N = |F|`, `m = |F′|` and power sums `F_k = Σfᵢᵏ`. Sanity limits:
/// a single-value relation (`F₂ = N²`, `F₃ = N³`) gives 0 only when the
/// estimator is degenerate, and `m → ∞` decays as `4NF₃/m`, the WR
/// analogue of Bernoulli's `4F₃/p` leading term.
pub fn wr_sampling_sjs_variance(f: &FrequencyVector, s: &WithReplacement) -> f64 {
    let n = s.population() as f64;
    let m = s.sample_size() as f64;
    let f2 = f.power_sum(2);
    let f3 = f.power_sum(3);
    (2.0 * n * n * f2 + 4.0 * (m - 2.0) * n * f3 - 2.0 * (2.0 * m - 3.0) * f2 * f2)
        / (m * (m - 1.0))
}

/// Variance of the **averaged sketch-over-WR-samples self-join** estimator
/// (the WR analogue of Eq. 26, omitted by the paper; derivation in the
/// multinomial factorial basis, engine-pinned):
///
/// ```text
/// Var = Var_sampling
///     + (2/(n·m(m−1)))·[ N²·Σ_{i≠j}fᵢfⱼ
///                       + 2(m−2)·N·Σ_{i≠j}fᵢ²fⱼ
///                       + (m−2)(m−3)·Σ_{i≠j}fᵢ²fⱼ² ]
/// ```
pub fn wr_combined_sjs_variance(
    f: &FrequencyVector,
    s: &WithReplacement,
    n_avg: usize,
) -> Result<f64> {
    if n_avg == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    let n = s.population() as f64;
    let m = s.sample_size() as f64;
    let f1 = f.power_sum(1);
    let f2 = f.power_sum(2);
    let f3 = f.power_sum(3);
    let f4 = f.power_sum(4);
    let cross_11 = f1 * f1 - f2; //      Σ_{i≠j} fᵢfⱼ
    let cross_21 = f2 * f1 - f3; //      Σ_{i≠j} fᵢ²fⱼ
    let cross_22 = f2 * f2 - f4; //      Σ_{i≠j} fᵢ²fⱼ²
    let sampling = wr_sampling_sjs_variance(f, s);
    let bracket =
        n * n * cross_11 + 2.0 * (m - 2.0) * n * cross_21 + (m - 2.0) * (m - 3.0) * cross_22;
    Ok(sampling + 2.0 * bracket / (n_avg as f64 * m * (m - 1.0)))
}

/// Variance of the without-replacement sampling-only **self-join**
/// estimator `X = (1/αα₁)·Σf′² − ((1−α₁)/α₁)·N` (Section III-E, omitted by
/// the paper). Closed form in the falling-factorial basis with
/// `κ_R = (m)_R/(N)_R` and `Φ_r = Σᵢ(fᵢ)_r`:
///
/// ```text
/// Var[X] = VarQ / (κ₂)²,   Q = Σf′²
/// VarQ = (m − m²) + (7 − 2m)κ₂Φ₂ + 6κ₃Φ₃ + κ₄Φ₄ + κ₂(N² − F₂)
///      + 2κ₃(N·Φ₂ − F₃ + F₂) + κ₄(Φ₂² − F₄ + 2F₃ − F₂) − κ₂²Φ₂²
/// ```
pub fn wor_sampling_sjs_variance(f: &FrequencyVector, s: &WithoutReplacement) -> f64 {
    let (var_q, kappa2) = wor_var_q(f, s);
    var_q / (kappa2 * kappa2)
}

/// Variance of the **averaged sketch-over-WOR-samples self-join** estimator
/// (the WOR analogue of Eq. 26, omitted by the paper):
///
/// ```text
/// Var = Var_sampling + (2/(n·κ₂²))·[ κ₂(N²−F₂) + 2κ₃(NΦ₂−F₃+F₂)
///                                   + κ₄(Φ₂²−F₄+2F₃−F₂) ]
/// ```
///
/// (the bracket is `Σ_{i≠j}E[f′ᵢ²f′ⱼ²]`, which is also the averaged term's
/// driver in Proposition 12). Vanishes entirely at a full scan except the
/// pure-sketch residue, which the full-scan tests pin.
pub fn wor_combined_sjs_variance(
    f: &FrequencyVector,
    s: &WithoutReplacement,
    n_avg: usize,
) -> Result<f64> {
    if n_avg == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    let (var_q, kappa2) = wor_var_q(f, s);
    let joint22 = wor_joint22(f, s);
    Ok((var_q + 2.0 * joint22 / n_avg as f64) / (kappa2 * kappa2))
}

/// `(Var[Σf′²], κ₂)` for a WOR sample — shared by the two public forms.
fn wor_var_q(f: &FrequencyVector, s: &WithoutReplacement) -> (f64, f64) {
    let m = s.sample_size() as f64;
    let (kappa2, kappa3, kappa4) = wor_kappas(s);
    let (phi2, phi3, phi4) = falling_sums(f);
    let s2 = m + kappa2 * phi2;
    let s4 = m + 7.0 * kappa2 * phi2 + 6.0 * kappa3 * phi3 + kappa4 * phi4;
    let joint22 = wor_joint22(f, s);
    (s4 + joint22 - s2 * s2, kappa2)
}

/// `Σ_{i≠j} E[f′ᵢ²f′ⱼ²]` for a WOR sample.
fn wor_joint22(f: &FrequencyVector, s: &WithoutReplacement) -> f64 {
    let n = s.population() as f64;
    let (kappa2, kappa3, kappa4) = wor_kappas(s);
    let (phi2, _, _) = falling_sums(f);
    let f2 = f.power_sum(2);
    let f3 = f.power_sum(3);
    let f4 = f.power_sum(4);
    kappa2 * (n * n - f2)
        + 2.0 * kappa3 * (n * phi2 - (f3 - f2))
        + kappa4 * (phi2 * phi2 - (f4 - 2.0 * f3 + f2))
}

fn wor_kappas(s: &WithoutReplacement) -> (f64, f64, f64) {
    let n = s.population() as f64;
    let m = s.sample_size() as f64;
    let falling = |x: f64, r: i32| -> f64 { (0..r).map(|k| x - k as f64).product() };
    let k = |r: i32| {
        let denom = falling(n, r);
        if denom == 0.0 {
            0.0
        } else {
            falling(m, r) / denom
        }
    };
    (k(2), k(3), k(4))
}

/// `(Φ₂, Φ₃, Φ₄) = (Σ(fᵢ)₂, Σ(fᵢ)₃, Σ(fᵢ)₄)`.
fn falling_sums(f: &FrequencyVector) -> (f64, f64, f64) {
    let mut phi2 = 0.0;
    let mut phi3 = 0.0;
    let mut phi4 = 0.0;
    for i in 0..f.len() {
        let x = f.get(i);
        let p2 = x * (x - 1.0);
        phi2 += p2;
        phi3 += p2 * (x - 2.0);
        phi4 += p2 * (x - 2.0) * (x - 3.0);
    }
    (phi2, phi3, phi4)
}

/// Eq. 14 — variance of one basic AGMS size-of-join estimator
/// (Proposition 7).
pub fn agms_sj_variance(f: &FrequencyVector, g: &FrequencyVector) -> Result<f64> {
    check(f, g)?;
    let fg = f.dot(g);
    Ok(f.power_sum(2) * g.power_sum(2) + fg * fg - 2.0 * f.cross_sum(g, 2, 2))
}

/// Eq. 16 — variance of one basic AGMS self-join estimator (Proposition 8).
pub fn agms_sjs_variance(f: &FrequencyVector) -> f64 {
    let f2 = f.power_sum(2);
    2.0 * (f2 * f2 - f.power_sum(4))
}

/// Eq. 25 — variance of the *averaged* sketch-over-Bernoulli-samples
/// size-of-join estimator (Proposition 13), with `n` the number of averaged
/// basic sketches.
pub fn bernoulli_combined_sj_variance(
    f: &FrequencyVector,
    g: &FrequencyVector,
    p: &Bernoulli,
    q: &Bernoulli,
    n: usize,
) -> Result<f64> {
    check(f, g)?;
    if n == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    let nf = n as f64;
    let (pp, qq) = (p.p(), q.p());
    let sampling = bernoulli_sampling_sj_variance(f, g, p, q)?;
    let sketch = agms_sj_variance(f, g)?;
    // Σ_{i≠j} fᵢgⱼᵇ expansions:
    let f1 = f.power_sum(1);
    let g1 = g.power_sum(1);
    let g2 = g.power_sum(2);
    let f2 = f.power_sum(2);
    let fg = f.dot(g);
    let fg2 = f.cross_sum(g, 1, 2);
    let f2g = f.cross_sum(g, 2, 1);
    let cross_1_2 = f1 * g2 - fg2; // Σ_{i≠j} fᵢ gⱼ²
    let cross_2_1 = f2 * g1 - f2g; // Σ_{i≠j} fᵢ² gⱼ
    let cross_1_1 = f1 * g1 - fg; //  Σ_{i≠j} fᵢ gⱼ
    let interaction = (1.0 - pp) / pp * cross_1_2
        + (1.0 - qq) / qq * cross_2_1
        + (1.0 - pp) * (1.0 - qq) / (pp * qq) * cross_1_1;
    Ok(sampling + sketch / nf + interaction / nf)
}

/// Eq. 26 — variance of the *averaged* sketch-over-Bernoulli-samples
/// self-join estimator (Proposition 14).
pub fn bernoulli_combined_sjs_variance(
    f: &FrequencyVector,
    p: &Bernoulli,
    n: usize,
) -> Result<f64> {
    if n == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    let nf = n as f64;
    let pp = p.p();
    let sampling = bernoulli_sampling_sjs_variance(f, p);
    let sketch = agms_sjs_variance(f);
    let f1 = f.power_sum(1);
    let f2 = f.power_sum(2);
    let f3 = f.power_sum(3);
    let cross_1_1 = f1 * f1 - f2; //  Σ_{i≠j} fᵢfⱼ
    let cross_2_1 = f2 * f1 - f3; //  Σ_{i≠j} fᵢ²fⱼ
    let q = 1.0 - pp;
    let interaction = 2.0 * (q * q / (pp * pp) * cross_1_1 + 2.0 * q / pp * cross_2_1);
    Ok(sampling + sketch / nf + interaction / nf)
}

/// Eq. 27 — variance of the *averaged* sketch-over-samples-with-replacement
/// size-of-join estimator (Proposition 15).
///
/// **Erratum.** As in [`wr_sampling_sj_variance`], the paper's printed
/// interaction coefficients `|F|αβ₂` / `|G|α₂β` are off by the sample
/// sizes; the verified coefficients are `β₂` / `α₂` (pinned against the
/// generic engine, which is itself pinned against exhaustive enumeration).
pub fn wr_combined_sj_variance(
    f: &FrequencyVector,
    g: &FrequencyVector,
    sf: &WithReplacement,
    sg: &WithReplacement,
    n: usize,
) -> Result<f64> {
    check(f, g)?;
    if n == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    let nf = n as f64;
    let (a, a2) = (sf.alpha(), sf.alpha2());
    let (b, b2) = (sg.alpha(), sg.alpha2());
    let sampling = wr_sampling_sj_variance(f, g, sf, sg)?;
    let sketch = agms_sj_variance(f, g)?;
    let f1 = f.power_sum(1);
    let g1 = g.power_sum(1);
    let f2 = f.power_sum(2);
    let g2 = g.power_sum(2);
    let fg = f.dot(g);
    let fg2 = f.cross_sum(g, 1, 2);
    let f2g = f.cross_sum(g, 2, 1);
    let cross_1_1 = f1 * g1 - fg;
    let cross_1_2 = f1 * g2 - fg2;
    let cross_2_1 = f2 * g1 - f2g;
    let interaction = (cross_1_1 + b2 * cross_1_2 + a2 * cross_2_1) / (a * b);
    Ok(sampling + (a2 / a) * (b2 / b) * sketch / nf + interaction / nf)
}

/// Eq. 28 — variance of the *averaged* sketch-over-samples-without-
/// replacement size-of-join estimator (Proposition 16).
pub fn wor_combined_sj_variance(
    f: &FrequencyVector,
    g: &FrequencyVector,
    sf: &WithoutReplacement,
    sg: &WithoutReplacement,
    n: usize,
) -> Result<f64> {
    check(f, g)?;
    if n == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    let nf = n as f64;
    let (a, a1) = (sf.alpha(), sf.alpha1());
    let (b, b1) = (sg.alpha(), sg.alpha1());
    let sampling = wor_sampling_sj_variance(f, g, sf, sg)?;
    let sketch = agms_sj_variance(f, g)?;
    let f1 = f.power_sum(1);
    let g1 = g.power_sum(1);
    let f2 = f.power_sum(2);
    let g2 = g.power_sum(2);
    let fg = f.dot(g);
    let fg2 = f.cross_sum(g, 1, 2);
    let f2g = f.cross_sum(g, 2, 1);
    let cross_1_1 = f1 * g1 - fg;
    let cross_1_2 = f1 * g2 - fg2;
    let cross_2_1 = f2 * g1 - f2g;
    let interaction = ((1.0 - a1) * (1.0 - b1) * cross_1_1
        + (1.0 - a1) * b1 * cross_1_2
        + a1 * (1.0 - b1) * cross_2_1)
        / (a * b);
    Ok(sampling + (a1 / a) * (b1 / b) * sketch / nf + interaction / nf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;

    fn fv(counts: &[u32]) -> FrequencyVector {
        FrequencyVector::from_counts(counts.to_vec())
    }

    /// A deterministic battery of (f, g) pairs with assorted shapes:
    /// uniform, skewed, sparse, disjoint-support, single-heavy-hitter.
    fn workloads() -> Vec<(FrequencyVector, FrequencyVector)> {
        vec![
            (fv(&[4, 4, 4, 4, 4, 4]), fv(&[4, 4, 4, 4, 4, 4])),
            (fv(&[100, 1, 1, 1, 0, 1]), fv(&[1, 50, 2, 0, 3, 1])),
            (fv(&[2, 0, 0, 7, 1, 3]), fv(&[0, 5, 0, 2, 2, 0])),
            (fv(&[1, 2, 3, 4, 5, 6]), fv(&[6, 5, 4, 3, 2, 1])),
            (fv(&[10, 0, 0, 0, 0, 0]), fv(&[0, 0, 0, 0, 0, 10])),
        ]
    }

    fn close(a: f64, b: f64, what: &str) {
        let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= tol, "{what}: closed {a} vs engine {b}");
    }

    #[test]
    fn eq6_and_eq7_match_engine() {
        for (f, g) in workloads() {
            for (pp, qq) in [(0.1, 0.1), (0.5, 0.25), (1.0, 0.75), (0.9, 1.0)] {
                let p = Bernoulli::new(pp).unwrap();
                let q = Bernoulli::new(qq).unwrap();
                let closed = bernoulli_sampling_sj_variance(&f, &g, &p, &q).unwrap();
                let eng = engine::sampling_sj(&p, &f, &q, &g).unwrap().variance;
                close(closed, eng, "Eq 6");
                let closed = bernoulli_sampling_sjs_variance(&f, &p);
                let eng = engine::sampling_sjs(&p, &f).unwrap().variance;
                close(closed, eng, "Eq 7");
            }
        }
    }

    #[test]
    fn eq10_and_eq11_match_engine() {
        for (f, g) in workloads() {
            let nf = f.total() as u64;
            let ng = g.total() as u64;
            for (m_f, m_g) in [(2u64, 3u64), (5, 5), (nf, ng), (3 * nf, 2 * ng)] {
                let sf = WithReplacement::new(m_f, nf).unwrap();
                let sg = WithReplacement::new(m_g, ng).unwrap();
                let closed = wr_sampling_sj_variance(&f, &g, &sf, &sg).unwrap();
                let eng = engine::sampling_sj(&sf, &f, &sg, &g).unwrap().variance;
                close(closed, eng, "Eq 10");
                if m_f <= nf && m_g <= ng {
                    let sf = WithoutReplacement::new(m_f, nf).unwrap();
                    let sg = WithoutReplacement::new(m_g, ng).unwrap();
                    let closed = wor_sampling_sj_variance(&f, &g, &sf, &sg).unwrap();
                    let eng = engine::sampling_sj(&sf, &f, &sg, &g).unwrap().variance;
                    close(closed, eng, "Eq 11");
                }
            }
        }
    }

    #[test]
    fn eq14_and_eq16_match_engine() {
        for (f, g) in workloads() {
            close(
                agms_sj_variance(&f, &g).unwrap(),
                engine::sketch_sj(&f, &g, 1).variance,
                "Eq 14",
            );
            close(
                agms_sjs_variance(&f),
                engine::sketch_sjs(&f, 1).variance,
                "Eq 16",
            );
        }
    }

    #[test]
    fn eq25_matches_engine() {
        for (f, g) in workloads() {
            for n in [1usize, 4, 100] {
                for (pp, qq) in [(0.05, 0.05), (0.3, 0.8), (1.0, 1.0)] {
                    let p = Bernoulli::new(pp).unwrap();
                    let q = Bernoulli::new(qq).unwrap();
                    let closed = bernoulli_combined_sj_variance(&f, &g, &p, &q, n).unwrap();
                    let eng = engine::sketch_sample_sj(&p, &f, &q, &g, n)
                        .unwrap()
                        .variance;
                    close(closed, eng, &format!("Eq 25 (p={pp}, q={qq}, n={n})"));
                }
            }
        }
    }

    #[test]
    fn eq26_matches_engine() {
        for (f, _) in workloads() {
            for n in [1usize, 4, 100] {
                for pp in [0.05, 0.3, 0.9, 1.0] {
                    let p = Bernoulli::new(pp).unwrap();
                    let closed = bernoulli_combined_sjs_variance(&f, &p, n).unwrap();
                    let eng = engine::sketch_sample_sjs(&p, &f, n).unwrap().variance;
                    close(closed, eng, &format!("Eq 26 (p={pp}, n={n})"));
                }
            }
        }
    }

    #[test]
    fn eq27_matches_engine() {
        for (f, g) in workloads() {
            let nf = f.total() as u64;
            let ng = g.total() as u64;
            for n in [1usize, 8] {
                for (m_f, m_g) in [(2u64, 2u64), (4, 7), (nf, ng)] {
                    let sf = WithReplacement::new(m_f, nf).unwrap();
                    let sg = WithReplacement::new(m_g, ng).unwrap();
                    let closed = wr_combined_sj_variance(&f, &g, &sf, &sg, n).unwrap();
                    let eng = engine::sketch_sample_sj(&sf, &f, &sg, &g, n)
                        .unwrap()
                        .variance;
                    close(closed, eng, &format!("Eq 27 (m=({m_f},{m_g}), n={n})"));
                }
            }
        }
    }

    #[test]
    fn eq28_matches_engine() {
        for (f, g) in workloads() {
            let nf = f.total() as u64;
            let ng = g.total() as u64;
            for n in [1usize, 8] {
                for (m_f, m_g) in [(2u64, 2u64), (4, 7), (nf, ng)] {
                    if m_f > nf || m_g > ng {
                        continue;
                    }
                    let sf = WithoutReplacement::new(m_f, nf).unwrap();
                    let sg = WithoutReplacement::new(m_g, ng).unwrap();
                    let closed = wor_combined_sj_variance(&f, &g, &sf, &sg, n).unwrap();
                    let eng = engine::sketch_sample_sj(&sf, &f, &sg, &g, n)
                        .unwrap()
                        .variance;
                    close(closed, eng, &format!("Eq 28 (m=({m_f},{m_g}), n={n})"));
                }
            }
        }
    }

    /// The paper-omitted closed forms (WR/WOR self-join variances) must
    /// agree with the generic engine on every workload and parameter
    /// combination.
    #[test]
    fn omitted_self_join_closed_forms_match_engine() {
        for (f, _) in workloads() {
            let nf = f.total() as u64;
            for m in [2u64, 3, nf / 2 + 2, nf] {
                let wr = WithReplacement::new(m, nf).unwrap();
                let closed = wr_sampling_sjs_variance(&f, &wr);
                let eng = engine::sampling_sjs(&wr, &f).unwrap().variance;
                close(closed, eng, &format!("WR sampling sjs (m={m})"));
                for n in [1usize, 16, 5000] {
                    let closed = wr_combined_sjs_variance(&f, &wr, n).unwrap();
                    let eng = engine::sketch_sample_sjs(&wr, &f, n).unwrap().variance;
                    close(closed, eng, &format!("WR combined sjs (m={m}, n={n})"));
                }
                if m <= nf {
                    let wor = WithoutReplacement::new(m, nf).unwrap();
                    let closed = wor_sampling_sjs_variance(&f, &wor);
                    let eng = engine::sampling_sjs(&wor, &f).unwrap().variance;
                    close(closed, eng, &format!("WOR sampling sjs (m={m})"));
                    for n in [1usize, 16, 5000] {
                        let closed = wor_combined_sjs_variance(&f, &wor, n).unwrap();
                        let eng = engine::sketch_sample_sjs(&wor, &f, n).unwrap().variance;
                        close(closed, eng, &format!("WOR combined sjs (m={m}, n={n})"));
                    }
                }
            }
        }
    }

    /// Limit checks for the omitted forms: full WOR scan has zero sampling
    /// variance; combined at full scan reduces to the pure sketch.
    #[test]
    fn omitted_forms_limits() {
        let f = fv(&[4, 7, 2, 9, 3]);
        let nf = f.total() as u64;
        let full = WithoutReplacement::new(nf, nf).unwrap();
        assert!(wor_sampling_sjs_variance(&f, &full).abs() < 1e-6);
        let v = wor_combined_sjs_variance(&f, &full, 10).unwrap();
        close(
            v,
            agms_sjs_variance(&f) / 10.0,
            "WOR combined sjs at full scan",
        );
    }

    /// The erratum decider: enumerate *all* with-replacement samples of two
    /// tiny populations and compute the exact variance of
    /// `X = (1/αβ)Σf′g′`. The verified Eq. 10 must match to 1e−12; the
    /// paper's printed `|F|αβ₂`/`|G|α₂β` coefficients do not (they are off
    /// by the sample sizes).
    #[test]
    fn exhaustive_enumeration_wr_sampling_sj() {
        // F: values [0,0,1] (f = [2,1]); G: values [0,1,1,1] (g = [1,3]).
        let f = fv(&[2, 1]);
        let g = fv(&[1, 3]);
        let (m_f, m_g) = (2u32, 3u32);
        let sf = WithReplacement::new(m_f as u64, 3).unwrap();
        let sg = WithReplacement::new(m_g as u64, 4).unwrap();
        let c = 1.0 / (sf.alpha() * sg.alpha());
        let f_owner = [0usize, 0, 1];
        let g_owner = [0usize, 1, 1, 1];
        let mut mean = 0.0;
        let mut second = 0.0;
        let total = 3f64.powi(m_f as i32) * 4f64.powi(m_g as i32);
        for df in 0u32..3u32.pow(m_f) {
            let mut fc = [0f64; 2];
            let mut d = df;
            for _ in 0..m_f {
                fc[f_owner[(d % 3) as usize]] += 1.0;
                d /= 3;
            }
            for dg in 0u32..4u32.pow(m_g) {
                let mut gc = [0f64; 2];
                let mut d = dg;
                for _ in 0..m_g {
                    gc[g_owner[(d % 4) as usize]] += 1.0;
                    d /= 4;
                }
                let x = c * (fc[0] * gc[0] + fc[1] * gc[1]);
                mean += x / total;
                second += x * x / total;
            }
        }
        let exact_var = second - mean * mean;
        assert!((mean - f.dot(&g)).abs() < 1e-9, "unbiasedness: {mean}");
        let ours = wr_sampling_sj_variance(&f, &g, &sf, &sg).unwrap();
        assert!(
            (ours - exact_var).abs() < 1e-12 * exact_var.max(1.0),
            "verified Eq 10: {ours} vs exact {exact_var}"
        );
        // The printed coefficients would give a different (wrong) value:
        let printed = {
            let (a, a2) = (sf.alpha(), sf.alpha2());
            let (b, b2) = (sg.alpha(), sg.alpha2());
            let fg = f.dot(&g);
            (fg + 3.0 * a * b2 * f.cross_sum(&g, 1, 2)
                + 4.0 * a2 * b * f.cross_sum(&g, 2, 1)
                + (a2 * b2 - a * b) * fg * fg)
                / (a * b)
        };
        assert!(
            (printed - exact_var).abs() > 0.1,
            "the printed form should be distinguishably wrong here"
        );
    }

    #[test]
    fn degenerate_reductions() {
        let (f, g) = (fv(&[3, 5, 2, 8]), fv(&[1, 0, 4, 2]));
        // p = q = 1 kills the sampling and interaction terms of Eq 25.
        let one = Bernoulli::new(1.0).unwrap();
        let v = bernoulli_combined_sj_variance(&f, &g, &one, &one, 10).unwrap();
        close(
            v,
            agms_sj_variance(&f, &g).unwrap() / 10.0,
            "Eq 25 at p=q=1",
        );
        // Full WOR sample likewise (α = α₁ = 1).
        let sf = WithoutReplacement::new(f.total() as u64, f.total() as u64).unwrap();
        let sg = WithoutReplacement::new(g.total() as u64, g.total() as u64).unwrap();
        let v = wor_combined_sj_variance(&f, &g, &sf, &sg, 10).unwrap();
        close(
            v,
            agms_sj_variance(&f, &g).unwrap() / 10.0,
            "Eq 28 at full sample",
        );
    }
}
