//! The sampling / sketch / interaction variance decomposition.
//!
//! Section V-E of the paper shows the variance of the averaged combined
//! estimator always splits as
//!
//! ```text
//! Var = V_sampling + (1/n)·c·V_sketch + (1/n)·V_interaction
//! ```
//!
//! where `V_sampling` is the sampling-only estimator variance, `V_sketch`
//! the AGMS variance over the *true* data (with a scheme-dependent
//! coefficient `c`: 1 for Bernoulli, `α₂β₂/αβ` for WR, `α₁β₁/αβ` for WOR),
//! and `V_interaction` the genuinely new cross term that makes the naive
//! "sum of the two variances" analysis wrong. Figures 1–2 of the paper plot
//! the *relative contribution* of the three terms as a function of data
//! skew; [`VarianceDecomposition`] is what those harnesses compute.
//!
//! The decomposition is obtained from exact quantities: total and sampling
//! variances come from the generic engine, the sketch term from the closed
//! AGMS formula, and the interaction term as the (exact) remainder.

use crate::closed_form;
use crate::engine;
use crate::freq::FrequencyVector;
use crate::scheme::{Bernoulli, SamplingScheme, WithReplacement, WithoutReplacement};
use crate::Result;

/// One three-way split of a combined-estimator variance.
///
/// ```
/// use sss_moments::decompose;
/// use sss_moments::scheme::Bernoulli;
/// use sss_moments::FrequencyVector;
///
/// // Uniform data at 1% sampling: the interaction term dominates.
/// let f = FrequencyVector::from_counts(vec![3u32; 500]);
/// let p = Bernoulli::new(0.01).unwrap();
/// let d = decompose::bernoulli_sjs(&f, &p, 5000).unwrap();
/// let [sampling, sketch, interaction] = d.relative();
/// assert!(interaction > sketch);
/// assert!((sampling + sketch + interaction - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceDecomposition {
    /// The sampling-only term (does **not** shrink with averaging).
    pub sampling: f64,
    /// The sketch term, already divided by `n` (and scaled by the WR/WOR
    /// coefficient where applicable).
    pub sketch: f64,
    /// The interaction term, already divided by `n`.
    pub interaction: f64,
}

impl VarianceDecomposition {
    /// Total variance.
    pub fn total(&self) -> f64 {
        self.sampling + self.sketch + self.interaction
    }

    /// The three terms as fractions of the total (sampling, sketch,
    /// interaction). Returns zeros when the total vanishes.
    pub fn relative(&self) -> [f64; 3] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 3];
        }
        [self.sampling / t, self.sketch / t, self.interaction / t]
    }
}

fn split<S: SamplingScheme>(
    total: f64,
    sampling: f64,
    sketch_true: f64,
    sketch_coeff: f64,
    n: usize,
    _scheme: &S,
) -> VarianceDecomposition {
    let sketch = sketch_coeff * sketch_true / n as f64;
    VarianceDecomposition {
        sampling,
        sketch,
        interaction: total - sampling - sketch,
    }
}

/// Figure 1 analytics: decomposition of Eq. 25 (size of join over Bernoulli
/// samples with probabilities `p`, `q`, `n` averaged sketches).
pub fn bernoulli_sj(
    f: &FrequencyVector,
    g: &FrequencyVector,
    p: &Bernoulli,
    q: &Bernoulli,
    n: usize,
) -> Result<VarianceDecomposition> {
    let total = closed_form::bernoulli_combined_sj_variance(f, g, p, q, n)?;
    let sampling = closed_form::bernoulli_sampling_sj_variance(f, g, p, q)?;
    let sketch = closed_form::agms_sj_variance(f, g)?;
    Ok(split(total, sampling, sketch, 1.0, n, p))
}

/// Figure 2 analytics: decomposition of Eq. 26 (self-join size over
/// Bernoulli samples).
pub fn bernoulli_sjs(
    f: &FrequencyVector,
    p: &Bernoulli,
    n: usize,
) -> Result<VarianceDecomposition> {
    let total = closed_form::bernoulli_combined_sjs_variance(f, p, n)?;
    let sampling = closed_form::bernoulli_sampling_sjs_variance(f, p);
    let sketch = closed_form::agms_sjs_variance(f);
    Ok(split(total, sampling, sketch, 1.0, n, p))
}

/// Decomposition of Eq. 27 (size of join over samples with replacement).
pub fn wr_sj(
    f: &FrequencyVector,
    g: &FrequencyVector,
    sf: &WithReplacement,
    sg: &WithReplacement,
    n: usize,
) -> Result<VarianceDecomposition> {
    let total = closed_form::wr_combined_sj_variance(f, g, sf, sg, n)?;
    let sampling = closed_form::wr_sampling_sj_variance(f, g, sf, sg)?;
    let sketch = closed_form::agms_sj_variance(f, g)?;
    let coeff = (sf.alpha2() / sf.alpha()) * (sg.alpha2() / sg.alpha());
    Ok(split(total, sampling, sketch, coeff, n, sf))
}

/// Decomposition of Eq. 28 (size of join over samples without replacement).
pub fn wor_sj(
    f: &FrequencyVector,
    g: &FrequencyVector,
    sf: &WithoutReplacement,
    sg: &WithoutReplacement,
    n: usize,
) -> Result<VarianceDecomposition> {
    let total = closed_form::wor_combined_sj_variance(f, g, sf, sg, n)?;
    let sampling = closed_form::wor_sampling_sj_variance(f, g, sf, sg)?;
    let sketch = closed_form::agms_sj_variance(f, g)?;
    let coeff = (sf.alpha1() / sf.alpha()) * (sg.alpha1() / sg.alpha());
    Ok(split(total, sampling, sketch, coeff, n, sf))
}

/// Self-join decomposition for WR samples. The paper omits this formula
/// ("due to space constraints"); the total comes from the exact generic
/// engine, the sketch term keeps the Eq.-27 coefficient structure
/// (`(α₂/α)²`), and the interaction is the exact remainder.
pub fn wr_sjs(f: &FrequencyVector, s: &WithReplacement, n: usize) -> Result<VarianceDecomposition> {
    let total = engine::sketch_sample_sjs(s, f, n)?.variance;
    let sampling = engine::sampling_sjs(s, f)?.variance;
    let sketch = closed_form::agms_sjs_variance(f);
    let coeff = (s.alpha2() / s.alpha()).powi(2);
    Ok(split(total, sampling, sketch, coeff, n, s))
}

/// Self-join decomposition for WOR samples (paper omits the closed form;
/// see [`wr_sjs`] for the construction, with `α₁` in place of `α₂`).
pub fn wor_sjs(
    f: &FrequencyVector,
    s: &WithoutReplacement,
    n: usize,
) -> Result<VarianceDecomposition> {
    let total = engine::sketch_sample_sjs(s, f, n)?.variance;
    let sampling = engine::sampling_sjs(s, f)?.variance;
    let sketch = closed_form::agms_sjs_variance(f);
    let coeff = (s.alpha1() / s.alpha()).powi(2);
    Ok(split(total, sampling, sketch, coeff, n, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(counts: &[u32]) -> FrequencyVector {
        FrequencyVector::from_counts(counts.to_vec())
    }

    #[test]
    fn terms_sum_to_total_and_match_engine() {
        let f = fv(&[9, 3, 1, 1, 1, 5]);
        let g = fv(&[2, 2, 8, 1, 0, 3]);
        let p = Bernoulli::new(0.2).unwrap();
        let q = Bernoulli::new(0.6).unwrap();
        let d = bernoulli_sj(&f, &g, &p, &q, 25).unwrap();
        let eng = engine::sketch_sample_sj(&p, &f, &q, &g, 25)
            .unwrap()
            .variance;
        assert!((d.total() - eng).abs() < 1e-9 * eng);
        let [rs, rk, ri] = d.relative();
        assert!((rs + rk + ri - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_low_skew_is_interaction_dominated() {
        // The paper (Section V-B): for uniform frequencies with value
        // smaller than the domain size, the interaction dominates the
        // sketch term.
        let f = fv(&vec![2u32; 1000]);
        let p = Bernoulli::new(0.1).unwrap();
        let d = bernoulli_sjs(&f, &p, 100).unwrap();
        assert!(
            d.interaction > d.sketch,
            "interaction {} should dominate sketch {} for uniform data",
            d.interaction,
            d.sketch
        );
    }

    #[test]
    fn skewed_data_is_sketch_dominated() {
        // One huge frequency: the AGMS variance term (∝ F₂²−F₄ relative to
        // the cross terms) dominates.
        let mut counts = vec![1u32; 100];
        counts[0] = 10_000;
        counts[1] = 8_000;
        let f = fv(&counts);
        let p = Bernoulli::new(0.5).unwrap();
        let d = bernoulli_sjs(&f, &p, 100).unwrap();
        assert!(
            d.sketch > d.sampling && d.sketch > d.interaction,
            "sketch term should dominate for skewed data: {d:?}"
        );
    }

    #[test]
    fn bernoulli_p1_has_pure_sketch_variance() {
        let f = fv(&[5, 2, 9, 4]);
        let p = Bernoulli::new(1.0).unwrap();
        let d = bernoulli_sjs(&f, &p, 10).unwrap();
        assert!(d.sampling.abs() < 1e-9);
        assert!(d.interaction.abs() < 1e-6 * d.sketch.max(1.0));
        assert!((d.total() - closed_form::agms_sjs_variance(&f) / 10.0).abs() < 1e-9);
    }

    #[test]
    fn wr_and_wor_sj_decompositions_are_consistent() {
        let f = fv(&[4, 1, 7, 2, 6]);
        let g = fv(&[3, 3, 1, 5, 2]);
        let nf = f.total() as u64;
        let ng = g.total() as u64;
        let wr_f = WithReplacement::new(6, nf).unwrap();
        let wr_g = WithReplacement::new(5, ng).unwrap();
        let d = wr_sj(&f, &g, &wr_f, &wr_g, 9).unwrap();
        let eng = engine::sketch_sample_sj(&wr_f, &f, &wr_g, &g, 9)
            .unwrap()
            .variance;
        assert!((d.total() - eng).abs() < 1e-9 * eng.max(1.0));

        let wor_f = WithoutReplacement::new(6, nf).unwrap();
        let wor_g = WithoutReplacement::new(5, ng).unwrap();
        let d = wor_sj(&f, &g, &wor_f, &wor_g, 9).unwrap();
        let eng = engine::sketch_sample_sj(&wor_f, &f, &wor_g, &g, 9)
            .unwrap()
            .variance;
        assert!((d.total() - eng).abs() < 1e-9 * eng.max(1.0));
    }

    #[test]
    fn sjs_decompositions_for_fixed_size_schemes() {
        let f = fv(&[4, 1, 7, 2, 6]);
        let n_pop = f.total() as u64;
        let wr = WithReplacement::new(8, n_pop).unwrap();
        let d = wr_sjs(&f, &wr, 16).unwrap();
        assert!(d.sampling > 0.0 && d.sketch > 0.0);
        let eng = engine::sketch_sample_sjs(&wr, &f, 16).unwrap().variance;
        assert!((d.total() - eng).abs() < 1e-9 * eng.max(1.0));

        let wor = WithoutReplacement::new(8, n_pop).unwrap();
        let d = wor_sjs(&f, &wor, 16).unwrap();
        let eng = engine::sketch_sample_sjs(&wor, &f, 16).unwrap().variance;
        assert!((d.total() - eng).abs() < 1e-9 * eng.max(1.0));
        // Full WOR scan: only the sketch term survives.
        let full = WithoutReplacement::new(n_pop, n_pop).unwrap();
        let d = wor_sjs(&f, &full, 16).unwrap();
        assert!(d.sampling.abs() < 1e-9);
        assert!(d.interaction.abs() < 1e-6 * d.sketch.max(1.0));
    }
}
