//! The generic moment evaluator.
//!
//! Implements the paper's generic propositions — Props 1–2 (sampling-only
//! estimators) and Props 9–12 (sketch-over-samples, basic and averaged) —
//! mechanically instantiated through the `(κ, φ)` oracles of
//! [`crate::scheme`]. Everything runs in O(|domain|).
//!
//! ## Building blocks
//!
//! For one scheme and one frequency vector, with `S2(a,r)` the Stirling
//! numbers and `Φᵣ = Σᵢ φᵣ(fᵢ)`:
//!
//! ```text
//! Σᵢ E[f′ᵢᵃ]              = Σᵣ S2(a,r)·κ(r)·Φᵣ
//! Σ_{i≠j} E[f′ᵢᵃ f′ⱼᵇ]    = Σᵣₛ S2(a,r)·S2(b,s)·κ(r+s)·(ΦᵣΦₛ − Σᵢφᵣ(fᵢ)φₛ(fᵢ))
//! ```
//!
//! Cross-relation pairings (size of join) additionally use the per-cell
//! first and second moments `E[f′ᵢ]`, `E[f′ᵢ²]` paired index-by-index with
//! the other relation's.

use crate::factorial::STIRLING2;
use crate::freq::FrequencyVector;
use crate::scheme::SamplingScheme;
use crate::{Error, Result};

/// First two moments of an estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Expected value `E[X]`.
    pub mean: f64,
    /// Variance `Var[X]`.
    pub variance: f64,
}

impl Moments {
    /// The standard deviation (0 for tiny negative round-off).
    pub fn std(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// The relative standard error `std/|truth|` — the paper's error metric
    /// in expectation.
    pub fn relative_error(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            f64::INFINITY
        } else {
            self.std() / truth.abs()
        }
    }
}

/// Cached per-(scheme, relation) sums.
///
/// `phi_sum[r] = Φᵣ`; `phi_pair[r][s] = Σᵢ φᵣ(fᵢ)φₛ(fᵢ)`; `e1`/`e2` are the
/// per-cell first/second power moments of `f′ᵢ`.
pub(crate) struct Analysis {
    kappa: [f64; 5],
    phi_sum: [f64; 5],
    phi_pair: [[f64; 5]; 5],
    pub(crate) e1: Vec<f64>,
    pub(crate) e2: Vec<f64>,
    phi1: Vec<f64>,
}

impl Analysis {
    pub(crate) fn new<S: SamplingScheme>(scheme: &S, freqs: &FrequencyVector) -> Self {
        let mut kappa = [0.0; 5];
        for (r, k) in kappa.iter_mut().enumerate() {
            *k = scheme.kappa(r as u32);
        }
        let mut phi_sum = [0.0; 5];
        let mut phi_pair = [[0.0; 5]; 5];
        let mut e1 = Vec::with_capacity(freqs.len());
        let mut e2 = Vec::with_capacity(freqs.len());
        let mut phi1 = Vec::with_capacity(freqs.len());
        for i in 0..freqs.len() {
            let f = freqs.get(i);
            let mut phis = [0.0; 5];
            for (r, p) in phis.iter_mut().enumerate() {
                *p = scheme.phi(f, r as u32);
            }
            for r in 0..5 {
                phi_sum[r] += phis[r];
                for s in 0..5 {
                    phi_pair[r][s] += phis[r] * phis[s];
                }
            }
            e1.push(kappa[1] * phis[1]);
            e2.push(kappa[2] * phis[2] + kappa[1] * phis[1]);
            phi1.push(phis[1]);
        }
        Self {
            kappa,
            phi_sum,
            phi_pair,
            e1,
            e2,
            phi1,
        }
    }

    /// `Σᵢ E[f′ᵢᵃ]`, `a ≤ 4`.
    pub(crate) fn sum_single(&self, a: usize) -> f64 {
        (1..=a)
            .map(|r| STIRLING2[a][r] * self.kappa[r] * self.phi_sum[r])
            .sum()
    }

    /// `Σ_{i≠j} E[f′ᵢᵃ f′ⱼᵇ]`, `a + b ≤ 4`.
    #[allow(clippy::needless_range_loop)] // r, s index three parallel tables
    pub(crate) fn sum_joint(&self, a: usize, b: usize) -> f64 {
        let mut acc = 0.0;
        for r in 1..=a {
            for s in 1..=b {
                acc += STIRLING2[a][r]
                    * STIRLING2[b][s]
                    * self.kappa[r + s]
                    * (self.phi_sum[r] * self.phi_sum[s] - self.phi_pair[r][s]);
            }
        }
        acc
    }

    /// κ(2) — used by the cross-relation all-pairs sum.
    fn kappa2(&self) -> f64 {
        self.kappa[2]
    }
}

/// `Σᵢⱼ E[f′ᵢf′ⱼ]·E[g′ᵢg′ⱼ]` over **all** pairs (including `i = j`),
/// the central quantity of Props 1, 9 and 11.
fn all_pairs_cross(fa: &Analysis, ga: &Analysis) -> f64 {
    // i ≠ j: κf(2)κg(2)·[(Σφ1(f)φ1(g))² − Σ(φ1(f)φ1(g))²]
    let mut pair_sum = 0.0;
    let mut pair_sq = 0.0;
    for (pf, pg) in fa.phi1.iter().zip(&ga.phi1) {
        let prod = pf * pg;
        pair_sum += prod;
        pair_sq += prod * prod;
    }
    let off_diag = fa.kappa2() * ga.kappa2() * (pair_sum * pair_sum - pair_sq);
    // i = j: Σᵢ E[f′ᵢ²]E[g′ᵢ²]
    let diag: f64 = fa.e2.iter().zip(&ga.e2).map(|(a, b)| a * b).sum();
    off_diag + diag
}

fn check_domains(f: &FrequencyVector, g: &FrequencyVector) -> Result<()> {
    if f.len() != g.len() {
        return Err(Error::DomainMismatch {
            left: f.len(),
            right: g.len(),
        });
    }
    Ok(())
}

fn check_averages(n: usize) -> Result<()> {
    if n == 0 {
        return Err(Error::InvalidAverageCount(0));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pure sketching (Propositions 7–8, averaged over n independent basics)
// ---------------------------------------------------------------------------

/// Moments of the averaged AGMS size-of-join estimator over the *full* data
/// (Proposition 7 / Eq. 14, divided by the number of averaged basics `n`).
pub fn sketch_sj(f: &FrequencyVector, g: &FrequencyVector, n: usize) -> Moments {
    assert_eq!(f.len(), g.len(), "sketch_sj requires a shared domain");
    assert!(n >= 1, "need at least one basic estimator");
    let mean = f.dot(g);
    let var =
        (f.power_sum(2) * g.power_sum(2) + mean * mean - 2.0 * f.cross_sum(g, 2, 2)) / n as f64;
    Moments {
        mean,
        variance: var,
    }
}

/// Moments of the averaged AGMS self-join estimator over the full data
/// (Proposition 8 / Eq. 16, divided by `n`).
pub fn sketch_sjs(f: &FrequencyVector, n: usize) -> Moments {
    assert!(n >= 1, "need at least one basic estimator");
    let f2 = f.power_sum(2);
    let f4 = f.power_sum(4);
    Moments {
        mean: f2,
        variance: 2.0 * (f2 * f2 - f4) / n as f64,
    }
}

// ---------------------------------------------------------------------------
// Sampling only (Propositions 1–2, instantiating 3–6)
// ---------------------------------------------------------------------------

/// Moments of the unbiased sampling-only size-of-join estimator
/// `X = C·Σf′ᵢg′ᵢ` with `C = 1/(rate_F·rate_G)` (Prop 1 instantiated).
pub fn sampling_sj<SF, SG>(
    scheme_f: &SF,
    f: &FrequencyVector,
    scheme_g: &SG,
    g: &FrequencyVector,
) -> Result<Moments>
where
    SF: SamplingScheme,
    SG: SamplingScheme,
{
    check_domains(f, g)?;
    let fa = Analysis::new(scheme_f, f);
    let ga = Analysis::new(scheme_g, g);
    let c = 1.0 / (scheme_f.rate() * scheme_g.rate());
    let m: f64 = fa.e1.iter().zip(&ga.e1).map(|(a, b)| a * b).sum();
    let a = all_pairs_cross(&fa, &ga);
    Ok(Moments {
        mean: c * m,
        variance: c * c * (a - m * m),
    })
}

/// Moments of the unbiased sampling-only self-join estimator
/// `X = u·Σf′² + v·Σf′ + c` (Prop 2 instantiated with the scheme's affine
/// correction).
pub fn sampling_sjs<S: SamplingScheme>(scheme: &S, f: &FrequencyVector) -> Result<Moments> {
    let a = Analysis::new(scheme, f);
    let (u, v, c) = scheme.sjs_affine();
    let s1 = a.sum_single(1);
    let s2 = a.sum_single(2);
    let e_sq2 = a.sum_single(4) + a.sum_joint(2, 2); // E[(Σf′²)²]
    let e_21 = a.sum_single(3) + a.sum_joint(2, 1); //  E[Σf′²·Σf′]
    let e_sq1 = a.sum_single(2) + a.sum_joint(1, 1); // E[(Σf′)²]
    let var_a = e_sq2 - s2 * s2;
    let cov = e_21 - s2 * s1;
    let var_b = e_sq1 - s1 * s1;
    Ok(Moments {
        mean: u * s2 + v * s1 + c,
        variance: u * u * var_a + 2.0 * u * v * cov + v * v * var_b,
    })
}

// ---------------------------------------------------------------------------
// Sketches over samples (Propositions 9–12, instantiating 13–16)
// ---------------------------------------------------------------------------

/// Moments of the **averaged** sketch-over-samples size-of-join estimator
/// (Proposition 11 with the unbiasing scale `C`); `n = 1` gives the basic
/// estimator of Proposition 9.
///
/// ```
/// use sss_moments::engine::sketch_sample_sj;
/// use sss_moments::scheme::Bernoulli;
/// use sss_moments::FrequencyVector;
///
/// let f = FrequencyVector::from_counts(vec![10u32, 5, 1, 0, 3]);
/// let g = FrequencyVector::from_counts(vec![2u32, 2, 2, 2, 2]);
/// let p = Bernoulli::new(0.1).unwrap();
/// let m = sketch_sample_sj(&p, &f, &p, &g, 5000).unwrap();
/// // Unbiased: the mean is the true join size Σ fᵢgᵢ = 38.
/// assert!((m.mean - 38.0).abs() < 1e-9);
/// assert!(m.variance > 0.0);
/// ```
pub fn sketch_sample_sj<SF, SG>(
    scheme_f: &SF,
    f: &FrequencyVector,
    scheme_g: &SG,
    g: &FrequencyVector,
    n: usize,
) -> Result<Moments>
where
    SF: SamplingScheme,
    SG: SamplingScheme,
{
    check_domains(f, g)?;
    check_averages(n)?;
    let fa = Analysis::new(scheme_f, f);
    let ga = Analysis::new(scheme_g, g);
    let c = 1.0 / (scheme_f.rate() * scheme_g.rate());
    let m: f64 = fa.e1.iter().zip(&ga.e1).map(|(a, b)| a * b).sum();
    let a = all_pairs_cross(&fa, &ga);
    let s2f = fa.sum_single(2);
    let s2g = ga.sum_single(2);
    let d: f64 = fa.e2.iter().zip(&ga.e2).map(|(x, y)| x * y).sum();
    let var = c * c * ((a - m * m) + (s2f * s2g + a - 2.0 * d) / n as f64);
    Ok(Moments {
        mean: c * m,
        variance: var,
    })
}

/// Moments of the **averaged** sketch-over-samples self-join estimator
/// with the scheme's affine bias correction:
///
/// ```text
/// X = u·(1/n)Σₖ Sₖ² + v·Σf′ + c,      Sₖ = Σᵢ f′ᵢ ξᵢ⁽ᵏ⁾
/// ```
///
/// (Proposition 12 for the quadratic part — the `n` sketches share one
/// sample, so averaging only reduces the sketch and interaction terms —
/// plus the covariance between the quadratic part and the `Σf′` correction,
/// which the generic machinery supplies exactly.) `n = 1` gives the basic
/// estimator of Proposition 10.
pub fn sketch_sample_sjs<S: SamplingScheme>(
    scheme: &S,
    f: &FrequencyVector,
    n: usize,
) -> Result<Moments> {
    check_averages(n)?;
    let a = Analysis::new(scheme, f);
    let (u, v, c) = scheme.sjs_affine();
    let s1 = a.sum_single(1);
    let s2 = a.sum_single(2);
    let s4 = a.sum_single(4);
    let a22 = s4 + a.sum_joint(2, 2); // Σᵢⱼ (all pairs) E[f′ᵢ²f′ⱼ²]
                                      // Prop 12, unscaled: Var[(1/n)ΣSₖ²]
    let var_quad = a22 - s2 * s2 + 2.0 * (a22 - s4) / n as f64;
    // Cov[Sₖ², Σf′] = Σᵢₗ E[f′ᵢ²f′ₗ] − E[Sₖ²]E[Σf′]  (same for every k)
    let cov = (a.sum_single(3) + a.sum_joint(2, 1)) - s2 * s1;
    let var_lin = a.sum_single(2) + a.sum_joint(1, 1) - s1 * s1;
    Ok(Moments {
        mean: u * s2 + v * s1 + c,
        variance: u * u * var_quad + 2.0 * u * v * cov + v * v * var_lin,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Bernoulli, WithReplacement, WithoutReplacement};

    fn fv(counts: &[u32]) -> FrequencyVector {
        FrequencyVector::from_counts(counts.to_vec())
    }

    #[test]
    fn moments_helpers() {
        let m = Moments {
            mean: 100.0,
            variance: 25.0,
        };
        assert_eq!(m.std(), 5.0);
        assert_eq!(m.relative_error(100.0), 0.05);
        assert_eq!(
            Moments {
                mean: 0.0,
                variance: -1e-18
            }
            .std(),
            0.0
        );
        assert_eq!(m.relative_error(0.0), f64::INFINITY);
    }

    #[test]
    fn pure_sketch_formulas() {
        let f = fv(&[1, 2, 3]);
        let g = fv(&[4, 0, 1]);
        // Eq 14: Σf²Σg² + (Σfg)² − 2Σf²g²
        let m = sketch_sj(&f, &g, 1);
        assert_eq!(m.mean, 7.0);
        assert_eq!(m.variance, 14.0 * 17.0 + 49.0 - 2.0 * (16.0 + 9.0));
        let m4 = sketch_sj(&f, &g, 4);
        assert_eq!(m4.variance, m.variance / 4.0);
        // Eq 16: 2[(F₂)² − F₄]
        let s = sketch_sjs(&f, 1);
        assert_eq!(s.mean, 14.0);
        assert_eq!(s.variance, 2.0 * (196.0 - 98.0));
    }

    #[test]
    fn all_estimators_are_unbiased() {
        let f = fv(&[5, 0, 2, 7, 1]);
        let g = fv(&[1, 3, 0, 2, 4]);
        let truth_join = f.dot(&g);
        let truth_f2 = f.self_join();
        let bern = Bernoulli::new(0.3).unwrap();
        let bern_q = Bernoulli::new(0.7).unwrap();
        let wr = WithReplacement::new(5, f.total() as u64).unwrap();
        let wr_g = WithReplacement::new(4, g.total() as u64).unwrap();
        let wor = WithoutReplacement::new(6, f.total() as u64).unwrap();
        let wor_g = WithoutReplacement::new(3, g.total() as u64).unwrap();

        let cases = [
            sampling_sj(&bern, &f, &bern_q, &g).unwrap().mean,
            sampling_sj(&wr, &f, &wr_g, &g).unwrap().mean,
            sampling_sj(&wor, &f, &wor_g, &g).unwrap().mean,
            sketch_sample_sj(&bern, &f, &bern_q, &g, 7).unwrap().mean,
            sketch_sample_sj(&wr, &f, &wr_g, &g, 7).unwrap().mean,
            sketch_sample_sj(&wor, &f, &wor_g, &g, 7).unwrap().mean,
        ];
        for (i, mean) in cases.into_iter().enumerate() {
            assert!(
                (mean - truth_join).abs() < 1e-9,
                "join case {i}: {mean} vs {truth_join}"
            );
        }
        let cases = [
            sampling_sjs(&bern, &f).unwrap().mean,
            sampling_sjs(&wr, &f).unwrap().mean,
            sampling_sjs(&wor, &f).unwrap().mean,
            sketch_sample_sjs(&bern, &f, 7).unwrap().mean,
            sketch_sample_sjs(&wr, &f, 7).unwrap().mean,
            sketch_sample_sjs(&wor, &f, 7).unwrap().mean,
        ];
        for (i, mean) in cases.into_iter().enumerate() {
            assert!(
                (mean - truth_f2).abs() < 1e-9,
                "sjs case {i}: {mean} vs {truth_f2}"
            );
        }
    }

    /// A Bernoulli sample at p = 1 *is* the full data: the combined
    /// estimator must degenerate to the pure sketch estimator.
    #[test]
    fn bernoulli_p1_reduces_to_pure_sketch() {
        let f = fv(&[3, 1, 4, 1, 5]);
        let g = fv(&[2, 7, 1, 8, 2]);
        let full = Bernoulli::new(1.0).unwrap();
        for n in [1usize, 8, 64] {
            let combined = sketch_sample_sj(&full, &f, &full, &g, n).unwrap();
            let pure = sketch_sj(&f, &g, n);
            assert!((combined.mean - pure.mean).abs() < 1e-9);
            assert!(
                (combined.variance - pure.variance).abs() < 1e-6 * pure.variance.max(1.0),
                "n={n}: {} vs {}",
                combined.variance,
                pure.variance
            );
            let combined = sketch_sample_sjs(&full, &f, n).unwrap();
            let pure = sketch_sjs(&f, n);
            assert!((combined.variance - pure.variance).abs() < 1e-6 * pure.variance.max(1.0));
        }
    }

    /// A full WOR sample is the full data, for any n.
    #[test]
    fn full_wor_sample_reduces_to_pure_sketch() {
        let f = fv(&[3, 1, 4, 1, 5]);
        let n_pop = f.total() as u64;
        let wor = WithoutReplacement::new(n_pop, n_pop).unwrap();
        let combined = sketch_sample_sjs(&wor, &f, 10).unwrap();
        let pure = sketch_sjs(&f, 10);
        assert!((combined.variance - pure.variance).abs() < 1e-6 * pure.variance.max(1.0));
        // and the sampling-only estimator becomes deterministic
        let samp = sampling_sjs(&wor, &f).unwrap();
        assert!(samp.variance.abs() < 1e-6);
    }

    /// As n → ∞, the averaged combined variance approaches the
    /// sampling-only variance from above (the sketch and interaction terms
    /// vanish, the sampling term does not).
    #[test]
    fn averaging_floor_is_the_sampling_variance() {
        let f = fv(&[9, 2, 5, 1, 8, 3]);
        let bern = Bernoulli::new(0.2).unwrap();
        let sampling = sampling_sjs(&bern, &f).unwrap().variance;
        let v1 = sketch_sample_sjs(&bern, &f, 1).unwrap().variance;
        let v100 = sketch_sample_sjs(&bern, &f, 100).unwrap().variance;
        let v_huge = sketch_sample_sjs(&bern, &f, 1_000_000).unwrap().variance;
        assert!(v1 > v100, "averaging must reduce variance");
        assert!(v100 > sampling, "combined variance is floored by sampling");
        assert!(
            (v_huge - sampling).abs() / sampling < 1e-3,
            "n→∞: {v_huge} vs sampling {sampling}"
        );
    }

    /// Brute-force verification of the Bernoulli combined self-join
    /// estimator: enumerate *all* sample outcomes and all ξ assignments for
    /// a tiny domain, and compare exact mean/variance with the engine.
    #[test]
    fn exhaustive_enumeration_bernoulli_sjs() {
        // Domain of 3 values with frequencies 2, 1, 2 — 2^5 subsets.
        let freqs = [2u64, 1, 2];
        let p = 0.4;
        let f = fv(&[2, 1, 2]);
        let bern = Bernoulli::new(p).unwrap();
        let (u, v, c) = bern.sjs_affine();

        // Enumerate subsets of the 5 tuples; tuple→value map:
        let owner = [0usize, 0, 1, 2, 2];
        // ξ over 3 values: 8 sign assignments, each probability 1/8 under
        // full independence (3 values ⇒ 4-wise independence is full).
        let mut mean = 0.0;
        let mut second = 0.0;
        for mask in 0u32..32 {
            let prob_mask = (0..5)
                .map(|t| if mask >> t & 1 == 1 { p } else { 1.0 - p })
                .product::<f64>();
            let mut cells = [0f64; 3];
            for t in 0..5 {
                if mask >> t & 1 == 1 {
                    cells[owner[t]] += 1.0;
                }
            }
            let sf1: f64 = cells.iter().sum();
            for signs in 0u32..8 {
                let xi = |i: usize| if signs >> i & 1 == 1 { 1.0 } else { -1.0 };
                let s: f64 = (0..3).map(|i| cells[i] * xi(i)).sum();
                let x = u * s * s + v * sf1 + c;
                let pr = prob_mask / 8.0;
                mean += pr * x;
                second += pr * x * x;
            }
        }
        let exact_var = second - mean * mean;
        let engine = sketch_sample_sjs(&bern, &f, 1).unwrap();
        let truth: f64 = freqs.iter().map(|&x| (x * x) as f64).sum();
        assert!(
            (mean - truth).abs() < 1e-9,
            "enumerated mean {mean} vs {truth}"
        );
        assert!((engine.mean - truth).abs() < 1e-9);
        assert!(
            (engine.variance - exact_var).abs() < 1e-9 * exact_var.max(1.0),
            "engine {} vs exact {exact_var}",
            engine.variance
        );
    }

    /// Same exhaustive check for the Bernoulli combined size-of-join.
    #[test]
    fn exhaustive_enumeration_bernoulli_sj() {
        let p = 0.5;
        let q = 0.3;
        let f = fv(&[2, 1]);
        let g = fv(&[1, 2]);
        let bf = Bernoulli::new(p).unwrap();
        let bg = Bernoulli::new(q).unwrap();
        let c = 1.0 / (p * q);
        let owner_f = [0usize, 0, 1];
        let owner_g = [0usize, 1, 1];
        let mut mean = 0.0;
        let mut second = 0.0;
        for fm in 0u32..8 {
            let pf = (0..3)
                .map(|t| if fm >> t & 1 == 1 { p } else { 1.0 - p })
                .product::<f64>();
            let mut fc = [0f64; 2];
            for t in 0..3 {
                if fm >> t & 1 == 1 {
                    fc[owner_f[t]] += 1.0;
                }
            }
            for gm in 0u32..8 {
                let pg = (0..3)
                    .map(|t| if gm >> t & 1 == 1 { q } else { 1.0 - q })
                    .product::<f64>();
                let mut gc = [0f64; 2];
                for t in 0..3 {
                    if gm >> t & 1 == 1 {
                        gc[owner_g[t]] += 1.0;
                    }
                }
                for signs in 0u32..4 {
                    let xi = |i: usize| if signs >> i & 1 == 1 { 1.0 } else { -1.0 };
                    let s: f64 = (0..2).map(|i| fc[i] * xi(i)).sum();
                    let t: f64 = (0..2).map(|i| gc[i] * xi(i)).sum();
                    let x = c * s * t;
                    let pr = pf * pg / 4.0;
                    mean += pr * x;
                    second += pr * x * x;
                }
            }
        }
        let exact_var = second - mean * mean;
        let engine = sketch_sample_sj(&bf, &f, &bg, &g, 1).unwrap();
        let truth = f.dot(&g);
        assert!((mean - truth).abs() < 1e-9);
        assert!((engine.mean - truth).abs() < 1e-9);
        assert!(
            (engine.variance - exact_var).abs() < 1e-9 * exact_var.max(1.0),
            "engine {} vs exact {exact_var}",
            engine.variance
        );
    }

    /// Exhaustive check of the WOR combined self-join estimator on a tiny
    /// population, enumerating all subsets of fixed size and all signs.
    #[test]
    fn exhaustive_enumeration_wor_sjs() {
        let tuples = [0usize, 0, 1, 2, 2]; // frequencies 2,1,2; N = 5
        let m = 3usize;
        let f = fv(&[2, 1, 2]);
        let wor = WithoutReplacement::new(m as u64, 5).unwrap();
        let (u, v, c) = wor.sjs_affine();
        let mut outcomes = Vec::new();
        for mask in 0u32..32 {
            if mask.count_ones() as usize != m {
                continue;
            }
            let mut cells = [0f64; 3];
            for t in 0..5 {
                if mask >> t & 1 == 1 {
                    cells[tuples[t]] += 1.0;
                }
            }
            outcomes.push(cells);
        }
        let n_sub = outcomes.len() as f64;
        let mut mean = 0.0;
        let mut second = 0.0;
        for cells in &outcomes {
            for signs in 0u32..8 {
                let xi = |i: usize| if signs >> i & 1 == 1 { 1.0 } else { -1.0 };
                let s: f64 = (0..3).map(|i| cells[i] * xi(i)).sum();
                let x = u * s * s + v * (m as f64) + c;
                let pr = 1.0 / (n_sub * 8.0);
                mean += pr * x;
                second += pr * x * x;
            }
        }
        let exact_var = second - mean * mean;
        let engine = sketch_sample_sjs(&wor, &f, 1).unwrap();
        assert!((mean - 9.0).abs() < 1e-9, "F₂ = 9");
        assert!((engine.mean - 9.0).abs() < 1e-9);
        assert!(
            (engine.variance - exact_var).abs() < 1e-9 * exact_var.max(1.0),
            "engine {} vs exact {exact_var}",
            engine.variance
        );
    }

    /// Exhaustive check of the WR combined self-join estimator.
    #[test]
    fn exhaustive_enumeration_wr_sjs() {
        let values = [0usize, 0, 1, 2, 2]; // N = 5, freq 2,1,2
        let m = 3u32;
        let f = fv(&[2, 1, 2]);
        let wr = WithReplacement::new(m as u64, 5).unwrap();
        let (u, v, c) = wr.sjs_affine();
        let mut mean = 0.0;
        let mut second = 0.0;
        let total = 5f64.powi(m as i32);
        for draw in 0u32..125 {
            let mut cells = [0f64; 3];
            let mut d = draw;
            for _ in 0..m {
                cells[values[(d % 5) as usize]] += 1.0;
                d /= 5;
            }
            for signs in 0u32..8 {
                let xi = |i: usize| if signs >> i & 1 == 1 { 1.0 } else { -1.0 };
                let s: f64 = (0..3).map(|i| cells[i] * xi(i)).sum();
                let x = u * s * s + v * (m as f64) + c;
                let pr = 1.0 / (total * 8.0);
                mean += pr * x;
                second += pr * x * x;
            }
        }
        let exact_var = second - mean * mean;
        let engine = sketch_sample_sjs(&wr, &f, 1).unwrap();
        assert!((mean - 9.0).abs() < 1e-9);
        assert!((engine.mean - 9.0).abs() < 1e-9);
        assert!(
            (engine.variance - exact_var).abs() < 1e-9 * exact_var.max(1.0),
            "engine {} vs exact {exact_var}",
            engine.variance
        );
    }

    #[test]
    fn domain_mismatch_and_zero_averages_error() {
        let f = fv(&[1, 2]);
        let g = fv(&[1, 2, 3]);
        let b = Bernoulli::new(0.5).unwrap();
        assert!(matches!(
            sampling_sj(&b, &f, &b, &g),
            Err(Error::DomainMismatch { left: 2, right: 3 })
        ));
        let g2 = fv(&[1, 2]);
        assert!(matches!(
            sketch_sample_sj(&b, &f, &b, &g2, 0),
            Err(Error::InvalidAverageCount(0))
        ));
    }
}
