//! Falling factorials and the power → factorial-moment conversion.
//!
//! Power moments of the sampling frequency random variables are obtained
//! from factorial moments through Stirling numbers of the second kind:
//!
//! ```text
//! xⁿ = Σ_{r=0}^{n} S(n, r) · (x)ᵣ      ⇒      E[Xⁿ] = Σᵣ S(n, r) · E[(X)ᵣ]
//! ```
//!
//! The analysis never needs powers above 4 (the highest moment in any
//! variance formula is `E[f′ᵢ² f′ⱼ²]` / `E[f′ᵢ⁴]`), so the table is small
//! and fully unit-tested against the recurrence.

/// Highest power any formula in this crate needs.
pub const MAX_POWER: usize = 4;

/// Stirling numbers of the second kind `S(n, r)` for `n, r ≤ 4`.
///
/// `STIRLING2[n][r]` is the number of ways to partition an `n`-set into `r`
/// non-empty blocks.
pub const STIRLING2: [[f64; MAX_POWER + 1]; MAX_POWER + 1] = [
    [1.0, 0.0, 0.0, 0.0, 0.0],
    [0.0, 1.0, 0.0, 0.0, 0.0],
    [0.0, 1.0, 1.0, 0.0, 0.0],
    [0.0, 1.0, 3.0, 1.0, 0.0],
    [0.0, 1.0, 7.0, 6.0, 1.0],
];

/// The falling factorial `(x)ᵣ = x(x−1)⋯(x−r+1)`; `(x)₀ = 1`.
#[inline]
pub fn falling(x: f64, r: u32) -> f64 {
    let mut acc = 1.0;
    for k in 0..r {
        acc *= x - k as f64;
    }
    acc
}

/// `(x)ᵣ` for integer `x`, exact in `f64` for the magnitudes used here.
#[inline]
pub fn falling_u64(x: u64, r: u32) -> f64 {
    falling(x as f64, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling(5.0, 0), 1.0);
        assert_eq!(falling(5.0, 1), 5.0);
        assert_eq!(falling(5.0, 2), 20.0);
        assert_eq!(falling(5.0, 3), 60.0);
        assert_eq!(falling(5.0, 4), 120.0);
        // r > x for integer x annihilates
        assert_eq!(falling(3.0, 4), 0.0);
        assert_eq!(falling(0.0, 1), 0.0);
    }

    #[test]
    fn stirling_table_matches_recurrence() {
        // S(n, r) = r·S(n−1, r) + S(n−1, r−1)
        for n in 1..=MAX_POWER {
            for r in 1..=MAX_POWER {
                let expect = r as f64 * STIRLING2[n - 1][r] + STIRLING2[n - 1][r - 1];
                assert_eq!(STIRLING2[n][r], expect, "S({n},{r})");
            }
        }
    }

    #[test]
    fn power_expansion_reproduces_powers() {
        // x^n = Σ_r S(n,r)·(x)_r must hold identically.
        #[allow(clippy::needless_range_loop)] // n indexes both the table and powi
        for x in [0.0f64, 1.0, 2.0, 3.5, 10.0, 100.0] {
            for n in 0..=MAX_POWER {
                let expanded: f64 = (0..=n)
                    .map(|r| STIRLING2[n][r] * falling(x, r as u32))
                    .sum();
                let direct = x.powi(n as i32);
                assert!(
                    (expanded - direct).abs() <= 1e-9 * direct.abs().max(1.0),
                    "x={x} n={n}: {expanded} vs {direct}"
                );
            }
        }
    }
}
