//! True frequency vectors and their power sums.
//!
//! The paper's analysis lives entirely in the *frequency domain*: a relation
//! `F` with join attribute over domain `I` is represented by the vector
//! `(fᵢ)_{i∈I}` of value frequencies. Every variance formula is a polynomial
//! in the power sums `Σfᵢᵏ` and the cross sums `Σfᵢᵃgᵢᵇ`.

/// The frequency vector of one relation over a dense domain `0..len`.
///
/// Zero entries are allowed (and are how two relations share a common
/// domain for join analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyVector {
    freqs: Vec<f64>,
    total: f64,
}

impl FrequencyVector {
    /// Build from per-value counts.
    pub fn from_counts<C: Into<f64> + Copy>(counts: Vec<C>) -> Self {
        let freqs: Vec<f64> = counts.iter().map(|&c| c.into()).collect();
        let total = freqs.iter().sum();
        Self { freqs, total }
    }

    /// Build by counting keys from a stream over the domain `0..domain`.
    ///
    /// Keys outside the domain are counted modulo `domain` — generators in
    /// this workspace always produce in-domain keys, the fold is a guard.
    pub fn from_keys<I: IntoIterator<Item = u64>>(keys: I, domain: usize) -> Self {
        let mut freqs = vec![0.0; domain];
        let mut total = 0.0;
        for k in keys {
            freqs[(k % domain as u64) as usize] += 1.0;
            total += 1.0;
        }
        Self { freqs, total }
    }

    /// Domain size `|I|`.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The frequency of value `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.freqs[i]
    }

    /// The relation size `|F| = Σᵢ fᵢ`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The raw frequencies.
    pub fn as_slice(&self) -> &[f64] {
        &self.freqs
    }

    /// The power sum `Σᵢ fᵢᵏ`. `power_sum(2)` is the self-join size F₂.
    pub fn power_sum(&self, k: u32) -> f64 {
        self.freqs.iter().map(|&f| f.powi(k as i32)).sum()
    }

    /// The cross sum `Σᵢ fᵢᵃ·gᵢᵇ` over a shared domain.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ; public APIs validate first.
    pub fn cross_sum(&self, other: &FrequencyVector, a: u32, b: u32) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "cross_sum requires a shared domain"
        );
        self.freqs
            .iter()
            .zip(&other.freqs)
            .map(|(&f, &g)| f.powi(a as i32) * g.powi(b as i32))
            .sum()
    }

    /// The size of join `|F ⋈ G| = Σᵢ fᵢgᵢ`.
    pub fn dot(&self, other: &FrequencyVector) -> f64 {
        self.cross_sum(other, 1, 1)
    }

    /// The self-join size (second frequency moment) `F₂ = Σᵢ fᵢ²`.
    pub fn self_join(&self) -> f64 {
        self.power_sum(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_from_counts_and_keys_agree() {
        let from_counts = FrequencyVector::from_counts(vec![2u32, 0, 3, 1]);
        let from_keys = FrequencyVector::from_keys([0u64, 0, 2, 2, 2, 3], 4);
        assert_eq!(from_counts, from_keys);
        assert_eq!(from_counts.total(), 6.0);
        assert_eq!(from_counts.len(), 4);
        assert_eq!(from_counts.get(2), 3.0);
    }

    #[test]
    fn power_sums() {
        let f = FrequencyVector::from_counts(vec![1u32, 2, 3]);
        assert_eq!(f.power_sum(1), 6.0);
        assert_eq!(f.power_sum(2), 14.0);
        assert_eq!(f.power_sum(3), 36.0);
        assert_eq!(f.power_sum(4), 98.0);
        assert_eq!(f.self_join(), 14.0);
    }

    #[test]
    fn cross_sums_and_dot() {
        let f = FrequencyVector::from_counts(vec![1u32, 2, 3]);
        let g = FrequencyVector::from_counts(vec![4u32, 5, 0]);
        assert_eq!(f.dot(&g), 14.0);
        assert_eq!(f.cross_sum(&g, 2, 1), 1.0 * 4.0 + 4.0 * 5.0);
        assert_eq!(f.cross_sum(&g, 1, 2), 16.0 + 50.0);
        assert_eq!(f.cross_sum(&g, 2, 2), 16.0 + 100.0);
    }

    #[test]
    fn out_of_domain_keys_fold() {
        let f = FrequencyVector::from_keys([0u64, 4, 8], 4);
        assert_eq!(f.get(0), 3.0);
    }

    #[test]
    #[should_panic(expected = "shared domain")]
    fn mismatched_domains_panic() {
        let f = FrequencyVector::from_counts(vec![1u32]);
        let g = FrequencyVector::from_counts(vec![1u32, 2]);
        let _ = f.dot(&g);
    }
}
