//! # sss-moments — exact moment analysis of sketches over samples
//!
//! This crate is the analytical engine behind *"Sketching Sampled Data
//! Streams"* (Rusu & Dobra, ICDE 2009): it computes the **exact expectation
//! and variance** of every estimator in the paper, for arbitrary true
//! frequency vectors, in O(|domain|) time.
//!
//! ## The unifying observation
//!
//! For all three sampling schemes the *joint factorial moments* of the
//! sampled frequency random variables factor through a scheme-specific pair
//! `(κ, φ)`:
//!
//! ```text
//! E[(f′ᵢ)ᵣ (f′ⱼ)ₛ] = κ(r+s) · φᵣ(fᵢ) · φₛ(fⱼ)        (i ≠ j)
//! E[(f′ᵢ)ᵣ]        = κ(r)   · φᵣ(fᵢ)
//! ```
//!
//! | Scheme | frequency law | `κ(R)` | `φᵣ(f)` |
//! |---|---|---|---|
//! | Bernoulli(p) | independent binomials | `pᴿ` | `(f)ᵣ` |
//! | With replacement (m of N) | multinomial | `(m)ᴿ` | `(f/N)ʳ` |
//! | Without replacement (m of N) | mv. hypergeometric | `(m)ᴿ/(N)ᴿ` | `(f)ᵣ` |
//!
//! (`(x)ᵣ` is the falling factorial.) Power moments follow via Stirling
//! numbers of the second kind, and every sum the paper's propositions need —
//! `Σᵢ E[f′ᵢᵃ]`, `Σ_{i≠j} E[f′ᵢᵃ f′ⱼᵇ]`, and their cross-relation pairings —
//! collapses to power sums of `φ`, computable in one pass over the domain.
//!
//! ## Modules
//!
//! * [`factorial`] — falling factorials and the Stirling-number conversion.
//! * [`freq`] — [`FrequencyVector`]: the true frequency profile of a
//!   relation plus its power sums.
//! * [`scheme`] — the `(κ, φ)` oracles for the three sampling schemes and
//!   the scaling/bias-correction constants of each estimator.
//! * [`engine`] — the **generic evaluator**: Propositions 1–2 (sampling
//!   only), 9–12 (sketch over samples, basic and averaged), instantiated
//!   mechanically through the oracles.
//! * [`closed_form`] — the paper's printed formulas (Eqs. 6, 7, 10, 11,
//!   14, 16, 25–28), implemented literally; tests pin them against the
//!   engine.
//! * [`decompose`] — the sampling / sketch / interaction variance
//!   decomposition behind Figures 1–2.
//! * [`bounds`] — confidence intervals from (mean, variance) pairs:
//!   Chebyshev and CLT-based, plus the normal CDF/coverage helpers.
//! * [`planning`] — the inverse questions: minimal averaging for a target
//!   error, and the sampling floor averaging cannot beat.
//! * [`tail`] — distribution-dependent bounds (Chernoff) for sample-size
//!   stability, with exact binomial pmfs pinning them.
//!
//! ## Example: how much accuracy does 1% load shedding cost?
//!
//! ```
//! use sss_moments::freq::FrequencyVector;
//! use sss_moments::scheme::Bernoulli;
//! use sss_moments::engine;
//!
//! // A uniform relation: 1000 keys, 100 tuples each.
//! let f = FrequencyVector::from_counts(vec![100; 1000]);
//! let full = engine::sketch_sjs(&f, 5000);
//! let shed = engine::sketch_sample_sjs(&Bernoulli::new(0.01).unwrap(), &f, 5000).unwrap();
//! // Standard errors, relative to the true F₂:
//! let rel = |v: f64| v.sqrt() / f.power_sum(2);
//! assert!(rel(shed.variance) < 10.0 * rel(full.variance).max(1e-6) + 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod closed_form;
pub mod decompose;
pub mod engine;
pub mod factorial;
pub mod freq;
pub mod planning;
pub mod scheme;
pub mod tail;

pub use bounds::ConfidenceInterval;
pub use decompose::VarianceDecomposition;
pub use engine::Moments;
pub use freq::FrequencyVector;
pub use scheme::{Bernoulli, SamplingScheme, WithReplacement, WithoutReplacement};

/// Error type for invalid analysis parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A probability was outside `(0, 1]`.
    InvalidProbability(f64),
    /// A sample size of zero, or larger than the population for WOR.
    InvalidSampleSize {
        /// Requested sample size.
        sample: u64,
        /// Population size.
        population: u64,
    },
    /// The two frequency vectors of a join must cover the same domain.
    DomainMismatch {
        /// Length of the left vector.
        left: usize,
        /// Length of the right vector.
        right: usize,
    },
    /// The number of averaged estimators must be at least 1.
    InvalidAverageCount(usize),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidProbability(p) => write!(f, "probability {p} outside (0, 1]"),
            Error::InvalidSampleSize { sample, population } => {
                write!(
                    f,
                    "invalid sample size {sample} for population {population}"
                )
            }
            Error::DomainMismatch { left, right } => {
                write!(
                    f,
                    "frequency vectors cover different domains ({left} vs {right})"
                )
            }
            Error::InvalidAverageCount(n) => write!(f, "cannot average {n} estimators"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
