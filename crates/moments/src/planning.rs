//! Planning utilities: inverting the variance formulas.
//!
//! The paper's introduction frames the analysis as a planning tool — "the
//! formulas resulting from such an analysis could be used to determine how
//! aggressive the load shedding can be without a significant loss in the
//! accuracy". This module answers the two inverse questions directly:
//!
//! * how many averaged basic sketches `n` are needed for a target error at
//!   a fixed sampling rate ([`averages_for_error`]), and
//! * what is the error floor no amount of averaging can beat at that rate
//!   ([`error_floor`]) — the sampling term of the decomposition, which the
//!   shared-sample covariance makes irreducible.

use crate::engine::{self};
use crate::freq::FrequencyVector;
use crate::scheme::SamplingScheme;
use crate::Result;

/// The irreducible relative standard error of the combined self-join
/// estimator at this sampling scheme — the `n → ∞` limit of averaging
/// (Proposition 12's sampling term).
pub fn error_floor<S: SamplingScheme>(scheme: &S, f: &FrequencyVector) -> Result<f64> {
    let sampling = engine::sampling_sjs(scheme, f)?;
    Ok(sampling.relative_error(f.self_join()))
}

/// The smallest number of averaged basic sketches `n` such that the
/// combined self-join estimator's relative standard error is at most
/// `target`. Returns `None` when the target is below the sampling
/// [`error_floor`] — no sketch size can reach it at this sampling rate.
///
/// Uses the exact variance split `Var(n) = V_samp + V_avg/n` (Prop 12), so
/// the answer is `n = ⌈V_avg / (target²·F₂² − V_samp)⌉`.
pub fn averages_for_error<S: SamplingScheme>(
    scheme: &S,
    f: &FrequencyVector,
    target: f64,
) -> Result<Option<usize>> {
    assert!(
        target > 0.0 && target.is_finite(),
        "target error must be positive"
    );
    let truth = f.self_join();
    let budget = target * target * truth * truth;
    let v_samp = engine::sampling_sjs(scheme, f)?.variance;
    if budget <= v_samp {
        return Ok(None);
    }
    // V_avg = n·(Var(n) − V_samp) for any n; read it off at n = 1.
    let v1 = engine::sketch_sample_sjs(scheme, f, 1)?.variance;
    let v_avg = v1 - v_samp;
    if v_avg <= 0.0 {
        return Ok(Some(1));
    }
    let n = (v_avg / (budget - v_samp)).ceil() as usize;
    Ok(Some(n.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Bernoulli, WithoutReplacement};

    fn workload() -> FrequencyVector {
        FrequencyVector::from_counts((1..=100u32).collect::<Vec<_>>())
    }

    #[test]
    fn planned_n_achieves_the_target() {
        let f = workload();
        let p = Bernoulli::new(0.3).unwrap();
        let target = 0.05;
        let n = averages_for_error(&p, &f, target)
            .unwrap()
            .expect("achievable");
        let achieved = engine::sketch_sample_sjs(&p, &f, n)
            .unwrap()
            .relative_error(f.self_join());
        assert!(
            achieved <= target * (1.0 + 1e-9),
            "n = {n}: achieved {achieved}"
        );
        // And it is minimal: n − 1 misses the target (unless n == 1).
        if n > 1 {
            let worse = engine::sketch_sample_sjs(&p, &f, n - 1)
                .unwrap()
                .relative_error(f.self_join());
            assert!(worse > target, "n − 1 = {} already achieves {worse}", n - 1);
        }
    }

    #[test]
    fn unreachable_targets_return_none() {
        let f = workload();
        let p = Bernoulli::new(0.05).unwrap();
        let floor = error_floor(&p, &f).unwrap();
        assert!(floor > 0.0);
        assert_eq!(averages_for_error(&p, &f, floor * 0.5).unwrap(), None);
        // Just above the floor, a (large) n exists.
        assert!(averages_for_error(&p, &f, floor * 1.5).unwrap().is_some());
    }

    #[test]
    fn full_scan_has_zero_floor() {
        let f = workload();
        let full = WithoutReplacement::new(f.total() as u64, f.total() as u64).unwrap();
        let floor = error_floor(&full, &f).unwrap();
        assert!(floor.abs() < 1e-6, "full scan floor {floor}");
        // Any target is reachable with enough averaging.
        let n = averages_for_error(&full, &f, 0.001)
            .unwrap()
            .expect("achievable");
        assert!(n >= 1);
    }

    #[test]
    fn higher_sampling_rate_needs_fewer_averages() {
        let f = workload();
        let target = 0.1;
        let n_lo = averages_for_error(&Bernoulli::new(0.5).unwrap(), &f, target)
            .unwrap()
            .expect("achievable at p = 0.5");
        let n_hi_rate = averages_for_error(&Bernoulli::new(0.9).unwrap(), &f, target)
            .unwrap()
            .expect("achievable at p = 0.9");
        assert!(
            n_hi_rate <= n_lo,
            "p=0.9 needs {n_hi_rate}, p=0.5 needs {n_lo}"
        );
    }

    #[test]
    #[should_panic(expected = "target error must be positive")]
    fn nonsense_target_panics() {
        let f = workload();
        let p = Bernoulli::new(0.5).unwrap();
        let _ = averages_for_error(&p, &f, 0.0);
    }
}
