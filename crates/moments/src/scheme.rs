//! The `(κ, φ)` factorial-moment oracles for the three sampling schemes.
//!
//! See the crate docs for the factorization. Each scheme also knows the
//! constants of its unbiased estimators:
//!
//! * the **rate** `E[f′ᵢ]/fᵢ` (the size-of-join scaling is the product of
//!   the two relations' inverse rates), and
//! * the affine self-join correction `X = u·Σf′ᵢ² + v·Σf′ᵢ + c` that undoes
//!   the `E[f′²] ≠ rate²·f²` bias.

use crate::factorial::falling_u64;
use crate::{Error, Result};

/// A sampling scheme's factorial-moment oracle plus estimator constants.
///
/// The contract (verified exhaustively in the tests of this module against
/// direct enumeration of the underlying distributions) is
///
/// ```text
/// E[(f′ᵢ)ᵣ]        = κ(r)   · φᵣ(fᵢ)
/// E[(f′ᵢ)ᵣ(f′ⱼ)ₛ]  = κ(r+s) · φᵣ(fᵢ) · φₛ(fⱼ)     for i ≠ j
/// ```
pub trait SamplingScheme {
    /// The order-R coefficient `κ(R)`.
    fn kappa(&self, order: u32) -> f64;

    /// The per-cell factor `φᵣ(f)` for a cell with true frequency `f`.
    fn phi(&self, freq: f64, r: u32) -> f64;

    /// `E[f′ᵢ] / fᵢ` — `p` for Bernoulli, `α` for the fixed-size schemes.
    fn rate(&self) -> f64;

    /// The `(u, v, c)` of the unbiased self-join estimator
    /// `X = u·Σf′² + v·Σf′ + c`.
    fn sjs_affine(&self) -> (f64, f64, f64);

    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;
}

/// Bernoulli sampling with inclusion probability `p`: `f′ᵢ ~ Binomial(fᵢ, p)`
/// independently across cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// `p` must lie in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if p > 0.0 && p <= 1.0 {
            Ok(Self { p })
        } else {
            Err(Error::InvalidProbability(p))
        }
    }

    /// The inclusion probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl SamplingScheme for Bernoulli {
    fn kappa(&self, order: u32) -> f64 {
        self.p.powi(order as i32)
    }

    fn phi(&self, freq: f64, r: u32) -> f64 {
        crate::factorial::falling(freq, r)
    }

    fn rate(&self) -> f64 {
        self.p
    }

    fn sjs_affine(&self) -> (f64, f64, f64) {
        // X = (1/p²)Σf′² − ((1−p)/p²)Σf′  (Proposition 4)
        let p2 = self.p * self.p;
        (1.0 / p2, -(1.0 - self.p) / p2, 0.0)
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

/// Sampling with replacement: `m` draws from a population of `N` tuples;
/// the `f′ᵢ` are multinomial components with cell probabilities `fᵢ/N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WithReplacement {
    m: u64,
    n: u64,
}

impl WithReplacement {
    /// `m ≥ 1` draws from a population of `n ≥ 1` tuples. `m` may exceed
    /// `n` (replacement allows it); the self-join estimator needs `m ≥ 2`.
    pub fn new(m: u64, n: u64) -> Result<Self> {
        if n == 0 || m == 0 {
            return Err(Error::InvalidSampleSize {
                sample: m,
                population: n,
            });
        }
        Ok(Self { m, n })
    }

    /// Sample size `m = |F′|`.
    pub fn sample_size(&self) -> u64 {
        self.m
    }

    /// Population size `N = |F|`.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// `α = m/N`.
    pub fn alpha(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// `α₂ = (m−1)/N`.
    pub fn alpha2(&self) -> f64 {
        (self.m - 1) as f64 / self.n as f64
    }
}

impl SamplingScheme for WithReplacement {
    fn kappa(&self, order: u32) -> f64 {
        falling_u64(self.m, order)
    }

    fn phi(&self, freq: f64, r: u32) -> f64 {
        (freq / self.n as f64).powi(r as i32)
    }

    fn rate(&self) -> f64 {
        self.alpha()
    }

    fn sjs_affine(&self) -> (f64, f64, f64) {
        // X = (1/αα₂)Σf′² − N/α₂   (Section III-D; needs m ≥ 2)
        let a = self.alpha();
        let a2 = self.alpha2();
        (1.0 / (a * a2), 0.0, -(self.n as f64) / a2)
    }

    fn name(&self) -> &'static str {
        "with-replacement"
    }
}

/// Sampling without replacement: a uniform `m`-subset of `N` tuples; the
/// `f′ᵢ` are multivariate-hypergeometric components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WithoutReplacement {
    m: u64,
    n: u64,
}

impl WithoutReplacement {
    /// `1 ≤ m ≤ n`.
    pub fn new(m: u64, n: u64) -> Result<Self> {
        if n == 0 || m == 0 || m > n {
            return Err(Error::InvalidSampleSize {
                sample: m,
                population: n,
            });
        }
        Ok(Self { m, n })
    }

    /// Sample size `m = |F′|`.
    pub fn sample_size(&self) -> u64 {
        self.m
    }

    /// Population size `N = |F|`.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// `α = m/N`.
    pub fn alpha(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// `α₁ = (m−1)/(N−1)` (1 when `N = 1`).
    pub fn alpha1(&self) -> f64 {
        if self.n == 1 {
            1.0
        } else {
            (self.m - 1) as f64 / (self.n - 1) as f64
        }
    }
}

impl SamplingScheme for WithoutReplacement {
    fn kappa(&self, order: u32) -> f64 {
        let denom = falling_u64(self.n, order);
        if denom == 0.0 {
            // Order exceeds the population: the factorial moment is 0 and
            // so is (m)_order; define κ = 0 (φ will multiply to 0 anyway).
            0.0
        } else {
            falling_u64(self.m, order) / denom
        }
    }

    fn phi(&self, freq: f64, r: u32) -> f64 {
        crate::factorial::falling(freq, r)
    }

    fn rate(&self) -> f64 {
        self.alpha()
    }

    fn sjs_affine(&self) -> (f64, f64, f64) {
        // X = (1/αα₁)Σf′² − ((1−α₁)/α₁)·N  (Section III-E; needs m ≥ 2)
        let a = self.alpha();
        let a1 = self.alpha1();
        (1.0 / (a * a1), 0.0, -(1.0 - a1) / a1 * self.n as f64)
    }

    fn name(&self) -> &'static str {
        "without-replacement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct enumeration of a Binomial(f, p) pmf.
    fn binomial_pmf(f: u64, p: f64) -> Vec<f64> {
        let mut pmf = vec![0.0; f as usize + 1];
        for (k, slot) in pmf.iter_mut().enumerate() {
            let mut log = 0.0f64;
            for j in 0..k {
                log += ((f as usize - j) as f64).ln() - (j as f64 + 1.0).ln();
            }
            *slot = log.exp() * p.powi(k as i32) * (1.0 - p).powi((f as usize - k) as i32);
        }
        pmf
    }

    #[test]
    fn bernoulli_factorial_moments_match_enumeration() {
        let b = Bernoulli::new(0.3).unwrap();
        for f in [0u64, 1, 3, 7] {
            let pmf = binomial_pmf(f, 0.3);
            for r in 0..=4u32 {
                let direct: f64 = pmf
                    .iter()
                    .enumerate()
                    .map(|(k, &pr)| pr * falling_u64(k as u64, r))
                    .sum();
                let oracle = b.kappa(r) * b.phi(f as f64, r);
                assert!(
                    (direct - oracle).abs() < 1e-10,
                    "f={f} r={r}: {direct} vs {oracle}"
                );
            }
        }
    }

    /// Enumerate all with-replacement samples of a tiny population and check
    /// both single and joint factorial moments of the oracle.
    #[test]
    #[allow(clippy::needless_range_loop)] // r, s index the moment tables
    fn multinomial_moments_match_enumeration() {
        // Population: value 0 ×2, value 1 ×1, value 2 ×3 (N = 6); m = 3.
        let freqs = [2u64, 1, 3];
        let n: u64 = freqs.iter().sum();
        let m = 3u32;
        let wr = WithReplacement::new(m as u64, n).unwrap();
        // Enumerate all 6^3 draws.
        let mut acc_single = [[0.0f64; 5]; 3];
        let mut acc_joint = [[0.0f64; 3]; 3]; // E[(f0)_r (f1)_s] r,s in 1..=2
        let mut acc_joint22 = 0.0f64; // E[(f0)_2 (f2)_2]
        let total = 6f64.powi(m as i32);
        let expand = |t: u32| -> [u64; 3] {
            let mut cells = [0u64; 3];
            let mut t = t;
            for _ in 0..m {
                let tuple = t % 6;
                t /= 6;
                let v = if tuple < 2 {
                    0
                } else if tuple < 3 {
                    1
                } else {
                    2
                };
                cells[v] += 1;
            }
            cells
        };
        for t in 0..6u32.pow(m) {
            let cells = expand(t);
            for (v, acc) in acc_single.iter_mut().enumerate() {
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot += falling_u64(cells[v], r as u32) / total;
                }
            }
            for r in 1..=2usize {
                for s in 1..=2usize {
                    acc_joint[r][s] +=
                        falling_u64(cells[0], r as u32) * falling_u64(cells[1], s as u32) / total;
                }
            }
            acc_joint22 += falling_u64(cells[0], 2) * falling_u64(cells[2], 2) / total;
        }
        for (v, &f) in freqs.iter().enumerate() {
            for r in 0..=4u32 {
                let oracle = wr.kappa(r) * wr.phi(f as f64, r);
                assert!(
                    (acc_single[v][r as usize] - oracle).abs() < 1e-10,
                    "single v={v} r={r}: {} vs {oracle}",
                    acc_single[v][r as usize]
                );
            }
        }
        for r in 1..=2u32 {
            for s in 1..=2u32 {
                let oracle = wr.kappa(r + s) * wr.phi(2.0, r) * wr.phi(1.0, s);
                assert!(
                    (acc_joint[r as usize][s as usize] - oracle).abs() < 1e-10,
                    "joint r={r} s={s}"
                );
            }
        }
        let oracle22 = wr.kappa(4) * wr.phi(2.0, 2) * wr.phi(3.0, 2);
        assert!((acc_joint22 - oracle22).abs() < 1e-10);
    }

    /// Enumerate all without-replacement subsets of a tiny population.
    #[test]
    #[allow(clippy::needless_range_loop)] // r, s index the moment tables
    fn hypergeometric_moments_match_enumeration() {
        // Population of 6 tuples: values [0,0,1,2,2,2]; m = 3.
        let tuples = [0u64, 0, 1, 2, 2, 2];
        let freqs = [2u64, 1, 3];
        let m = 3usize;
        let wor = WithoutReplacement::new(m as u64, 6).unwrap();
        let mut acc_single = [[0.0f64; 5]; 3];
        let mut acc_joint = [[0.0f64; 3]; 3];
        let mut count = 0u32;
        // Enumerate all C(6,3) = 20 subsets via bitmasks.
        for mask in 0u32..64 {
            if mask.count_ones() as usize != m {
                continue;
            }
            count += 1;
            let mut cells = [0u64; 3];
            for (t, &v) in tuples.iter().enumerate() {
                if mask >> t & 1 == 1 {
                    cells[v as usize] += 1;
                }
            }
            for (v, acc) in acc_single.iter_mut().enumerate() {
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot += falling_u64(cells[v], r as u32);
                }
            }
            for r in 1..=2usize {
                for s in 1..=2usize {
                    acc_joint[r][s] +=
                        falling_u64(cells[0], r as u32) * falling_u64(cells[2], s as u32);
                }
            }
        }
        assert_eq!(count, 20);
        for (v, &f) in freqs.iter().enumerate() {
            for r in 0..=4u32 {
                let direct = acc_single[v][r as usize] / count as f64;
                let oracle = wor.kappa(r) * wor.phi(f as f64, r);
                assert!((direct - oracle).abs() < 1e-10, "single v={v} r={r}");
            }
        }
        for r in 1..=2u32 {
            for s in 1..=2u32 {
                let direct = acc_joint[r as usize][s as usize] / count as f64;
                let oracle = wor.kappa(r + s) * wor.phi(2.0, r) * wor.phi(3.0, s);
                assert!((direct - oracle).abs() < 1e-10, "joint r={r} s={s}");
            }
        }
    }

    #[test]
    fn constructors_validate() {
        assert!(Bernoulli::new(0.0).is_err());
        assert!(Bernoulli::new(1.2).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
        assert!(Bernoulli::new(1.0).is_ok());
        assert!(WithReplacement::new(0, 5).is_err());
        assert!(WithReplacement::new(5, 0).is_err());
        assert!(WithReplacement::new(10, 5).is_ok(), "WR may oversample");
        assert!(WithoutReplacement::new(6, 5).is_err());
        assert!(WithoutReplacement::new(5, 5).is_ok());
    }

    #[test]
    fn rates_and_affine_constants() {
        let b = Bernoulli::new(0.25).unwrap();
        assert_eq!(b.rate(), 0.25);
        let (u, v, c) = b.sjs_affine();
        assert_eq!(u, 16.0);
        assert_eq!(v, -12.0);
        assert_eq!(c, 0.0);

        let wr = WithReplacement::new(10, 100).unwrap();
        assert_eq!(wr.rate(), 0.1);
        let (u, v, c) = wr.sjs_affine();
        assert!((u - 1.0 / (0.1 * 0.09)).abs() < 1e-12);
        assert_eq!(v, 0.0);
        assert!((c - -(100.0 / 0.09)).abs() < 1e-9);

        let wor = WithoutReplacement::new(10, 100).unwrap();
        let a1 = 9.0 / 99.0;
        let (u, v, c) = wor.sjs_affine();
        assert!((u - 1.0 / (0.1 * a1)).abs() < 1e-12);
        assert_eq!(v, 0.0);
        assert!((c - -((1.0 - a1) / a1 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn wor_kappa_saturates_beyond_population() {
        // population 3, order 4: (3)_4 = 0 in the denominator — κ must be 0.
        let wor = WithoutReplacement::new(2, 3).unwrap();
        assert_eq!(wor.kappa(4), 0.0);
    }

    #[test]
    fn full_wor_sample_has_deterministic_frequencies() {
        // m = N: f′ = f exactly, so E[(f′)_r] = (f)_r, i.e. κ(r) = 1.
        let wor = WithoutReplacement::new(5, 5).unwrap();
        for r in 0..=4u32 {
            if falling_u64(5, r) > 0.0 {
                assert!((wor.kappa(r) - 1.0).abs() < 1e-12, "r = {r}");
            }
        }
    }
}
