//! Distribution-dependent tail bounds.
//!
//! Section II of the paper lists the two standard routes from (mean,
//! variance) to error guarantees: distribution-independent inequalities
//! (Chebyshev — see [`crate::bounds`]) and distribution-dependent bounds.
//! This module supplies the distribution-dependent side for the quantities
//! whose exact laws we know:
//!
//! * Chernoff bounds for the **sample size** of a Bernoulli shedder — how
//!   far `|F′|` can stray from `p·|F|`, which governs both the memory of a
//!   stored sample and the stability of the speed-up factor;
//! * exact binomial pmf/cdf (stable log-space evaluation), used by the
//!   tests to verify the Chernoff bounds are actually bounds.

/// Natural log of `n!` via the log-gamma function (Lanczos approximation,
/// accurate to ~1e-13 for the integer arguments used here).
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Log-gamma by the Lanczos approximation (g = 7, 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = C[0];
    let t = x + G + 0.5;
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "choose requires k <= n");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact `P(Binomial(n, p) = k)`, evaluated in log space.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Exact `P(Binomial(n, p) ≤ k)` by summation (fine for the test sizes;
/// production users should window the sum).
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, p, i))
        .sum::<f64>()
        .min(1.0)
}

/// Chernoff upper bound on `P(X ≥ (1+δ)·np)` for `X ~ Binomial(n, p)`,
/// `δ ≥ 0`: `exp(−np·((1+δ)ln(1+δ) − δ))`.
pub fn chernoff_upper(n: u64, p: f64, delta: f64) -> f64 {
    assert!(delta >= 0.0, "delta must be non-negative");
    let mu = n as f64 * p;
    (-(mu * ((1.0 + delta) * (1.0 + delta).ln() - delta)))
        .exp()
        .min(1.0)
}

/// Chernoff upper bound on `P(X ≤ (1−δ)·np)`, `0 ≤ δ ≤ 1`:
/// `exp(−np·δ²/2)`.
pub fn chernoff_lower(n: u64, p: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&delta), "delta must be in [0, 1]");
    let mu = n as f64 * p;
    (-(mu * delta * delta / 2.0)).exp().min(1.0)
}

/// The smallest stream length `n` such that a Bernoulli(p) shedder's kept
/// count stays within `±tol·np` of its mean with probability `≥ 1 − fail`
/// (union bound over both Chernoff tails). `None` if `tol` or `fail` make
/// the requirement unsatisfiable.
pub fn stream_length_for_stable_sample(p: f64, tol: f64, fail: f64) -> Option<u64> {
    let valid = p > 0.0 && p <= 1.0 && tol > 0.0 && fail > 0.0 && fail < 1.0;
    if !valid {
        return None;
    }
    // Solve exp(-np·tol²/3) ≤ fail/2 (the weaker of the two exponents for
    // tol ≤ 1 is δ²/3 on the upper side).
    let np = 3.0 * (2.0 / fail).ln() / (tol * tol);
    Some((np / p).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn factorials_and_binomials() {
        assert!((ln_factorial(0)).abs() < 1e-12);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 3) - 120f64.ln()).abs() < 1e-9);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn pmf_sums_to_one_and_matches_small_cases() {
        let total: f64 = (0..=20).map(|k| binomial_pmf(20, 0.3, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // P(Bin(4, 1/2) = 2) = 6/16.
        assert!((binomial_pmf(4, 0.5, 2) - 0.375).abs() < 1e-12);
        assert_eq!(binomial_pmf(4, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(4, 1.0, 4), 1.0);
        assert_eq!(binomial_pmf(4, 0.5, 5), 0.0);
    }

    #[test]
    fn chernoff_bounds_actually_bound() {
        let (n, p) = (2000u64, 0.1);
        let mu = n as f64 * p;
        for delta in [0.1, 0.25, 0.5, 1.0] {
            let exact_upper = 1.0 - binomial_cdf(n, p, ((1.0 + delta) * mu).floor() as u64 - 1);
            assert!(
                chernoff_upper(n, p, delta) >= exact_upper - 1e-12,
                "upper δ={delta}: bound {} < exact {exact_upper}",
                chernoff_upper(n, p, delta)
            );
            if delta <= 1.0 {
                let exact_lower = binomial_cdf(n, p, ((1.0 - delta) * mu).floor() as u64);
                assert!(
                    chernoff_lower(n, p, delta) >= exact_lower - 1e-12,
                    "lower δ={delta}"
                );
            }
        }
    }

    #[test]
    fn bounds_decay_with_n() {
        assert!(chernoff_upper(10_000, 0.1, 0.2) < chernoff_upper(1_000, 0.1, 0.2));
        assert!(chernoff_lower(10_000, 0.1, 0.2) < chernoff_lower(1_000, 0.1, 0.2));
    }

    #[test]
    fn stable_sample_planner() {
        let n = stream_length_for_stable_sample(0.1, 0.05, 0.01).expect("satisfiable");
        // The planned n must make both Chernoff tails ≤ fail/2.
        assert!(chernoff_upper(n, 0.1, 0.05) <= 0.005 * 1.5);
        assert!(chernoff_lower(n, 0.1, 0.05) <= 0.005);
        // Degenerate parameters are rejected.
        assert_eq!(stream_length_for_stable_sample(0.0, 0.1, 0.1), None);
        assert_eq!(stream_length_for_stable_sample(0.1, 0.0, 0.1), None);
        assert_eq!(stream_length_for_stable_sample(0.1, 0.1, 1.0), None);
    }
}
