//! End-to-end Monte-Carlo verification: the *actual* samplers from
//! `sss-sampling` feeding *actual* AGMS sketches from `sss-sketch` must
//! reproduce the mean and variance the analytical engine predicts.
//!
//! This closes the loop the unit tests leave open: the engine is pinned
//! against exhaustive enumeration (tiny domains, idealized ξ), and here the
//! production CW4 families and real sampling code are pinned against the
//! engine on larger inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_moments::engine::{self, Moments};
use sss_moments::freq::FrequencyVector;
use sss_moments::scheme::{Bernoulli, SamplingScheme, WithReplacement, WithoutReplacement};
use sss_sampling::bernoulli::BernoulliSampler;
use sss_sampling::with_replacement::sample_with_replacement;
use sss_sampling::without_replacement::sample_without_replacement;
use sss_sketch::agms::AgmsSchema;
use sss_sketch::Sketch;
use sss_xi::Cw4;

/// Expand a frequency vector into the multiset of tuples it describes.
fn expand(f: &FrequencyVector) -> Vec<u64> {
    let mut tuples = Vec::new();
    for i in 0..f.len() {
        for _ in 0..f.get(i) as u64 {
            tuples.push(i as u64);
        }
    }
    tuples
}

fn empirical(xs: &[f64]) -> Moments {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    Moments {
        mean,
        variance: var,
    }
}

fn assert_moments(empirical: Moments, theory: Moments, reps: usize, what: &str) {
    // Mean: the estimator std over reps runs shrinks by sqrt(reps).
    let mean_tol = 6.0 * (theory.variance / reps as f64).sqrt();
    assert!(
        (empirical.mean - theory.mean).abs() <= mean_tol,
        "{what}: empirical mean {} vs theory {} (tol {mean_tol})",
        empirical.mean,
        theory.mean
    );
    // Variance: generous 20% envelope (sampling error of a variance
    // estimate depends on the 4th moment; reps is sized to keep this safe).
    assert!(
        (empirical.variance - theory.variance).abs() <= 0.20 * theory.variance,
        "{what}: empirical var {} vs theory {}",
        empirical.variance,
        theory.variance
    );
}

/// Frequencies with a mild skew; domain of 12, population 78.
fn workload_f() -> FrequencyVector {
    FrequencyVector::from_counts(vec![12u32, 9, 9, 8, 7, 7, 6, 6, 5, 4, 3, 2])
}

/// Second relation over the same domain; population 60.
fn workload_g() -> FrequencyVector {
    FrequencyVector::from_counts(vec![1u32, 2, 3, 4, 5, 6, 7, 8, 9, 5, 5, 5])
}

#[test]
fn bernoulli_combined_self_join_matches_theory() {
    let f = workload_f();
    let tuples = expand(&f);
    let p = 0.3;
    let scheme = Bernoulli::new(p).unwrap();
    let (u, v, c) = scheme.sjs_affine();
    let n_avg = 6usize;
    let reps = 6000;
    let mut rng = StdRng::seed_from_u64(0xB0);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut sampler = BernoulliSampler::<StdRng>::new(p, &mut rng).unwrap();
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut sk = schema.sketch();
        let mut kept = 0u64;
        for &t in &tuples {
            if sampler.keep() {
                sk.update(t, 1);
                kept += 1;
            }
        }
        xs.push(u * sk.self_join() + v * kept as f64 + c);
    }
    let theory = engine::sketch_sample_sjs(&scheme, &f, n_avg).unwrap();
    assert_moments(empirical(&xs), theory, reps, "bernoulli sjs");
}

#[test]
fn bernoulli_combined_size_of_join_matches_theory() {
    let f = workload_f();
    let g = workload_g();
    let tf = expand(&f);
    let tg = expand(&g);
    let (p, q) = (0.4, 0.25);
    let sp = Bernoulli::new(p).unwrap();
    let sq = Bernoulli::new(q).unwrap();
    let c = 1.0 / (p * q);
    let n_avg = 6usize;
    let reps = 6000;
    let mut rng = StdRng::seed_from_u64(0xB1);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        let mut keep_f = BernoulliSampler::<StdRng>::new(p, &mut rng).unwrap();
        let mut keep_g = BernoulliSampler::<StdRng>::new(q, &mut rng).unwrap();
        for &k in &tf {
            if keep_f.keep() {
                s.update(k, 1);
            }
        }
        for &k in &tg {
            if keep_g.keep() {
                t.update(k, 1);
            }
        }
        xs.push(c * s.size_of_join(&t).unwrap());
    }
    let theory = engine::sketch_sample_sj(&sp, &f, &sq, &g, n_avg).unwrap();
    assert_moments(empirical(&xs), theory, reps, "bernoulli sj");
}

#[test]
fn wr_combined_self_join_matches_theory() {
    let f = workload_f();
    let tuples = expand(&f);
    let n_pop = tuples.len() as u64;
    let m = 30u64;
    let scheme = WithReplacement::new(m, n_pop).unwrap();
    let (u, v, c) = scheme.sjs_affine();
    let n_avg = 6usize;
    let reps = 6000;
    let mut rng = StdRng::seed_from_u64(0xB2);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut sk = schema.sketch();
        for k in sample_with_replacement(&tuples, m, &mut rng).unwrap() {
            sk.update(k, 1);
        }
        xs.push(u * sk.self_join() + v * m as f64 + c);
    }
    let theory = engine::sketch_sample_sjs(&scheme, &f, n_avg).unwrap();
    assert_moments(empirical(&xs), theory, reps, "wr sjs");
}

#[test]
fn wor_combined_self_join_matches_theory() {
    let f = workload_f();
    let tuples = expand(&f);
    let n_pop = tuples.len() as u64;
    let m = 30u64;
    let scheme = WithoutReplacement::new(m, n_pop).unwrap();
    let (u, v, c) = scheme.sjs_affine();
    let n_avg = 6usize;
    let reps = 6000;
    let mut rng = StdRng::seed_from_u64(0xB3);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut sk = schema.sketch();
        for k in sample_without_replacement(&tuples, m, &mut rng).unwrap() {
            sk.update(k, 1);
        }
        xs.push(u * sk.self_join() + v * m as f64 + c);
    }
    let theory = engine::sketch_sample_sjs(&scheme, &f, n_avg).unwrap();
    assert_moments(empirical(&xs), theory, reps, "wor sjs");
}

#[test]
fn wr_combined_size_of_join_matches_theory() {
    let f = workload_f();
    let g = workload_g();
    let tf = expand(&f);
    let tg = expand(&g);
    let (mf, mg) = (30u64, 25u64);
    let sf = WithReplacement::new(mf, tf.len() as u64).unwrap();
    let sg = WithReplacement::new(mg, tg.len() as u64).unwrap();
    let c = 1.0 / (sf.rate() * sg.rate());
    let n_avg = 6usize;
    let reps = 6000;
    let mut rng = StdRng::seed_from_u64(0xB4);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        for k in sample_with_replacement(&tf, mf, &mut rng).unwrap() {
            s.update(k, 1);
        }
        for k in sample_with_replacement(&tg, mg, &mut rng).unwrap() {
            t.update(k, 1);
        }
        xs.push(c * s.size_of_join(&t).unwrap());
    }
    let theory = engine::sketch_sample_sj(&sf, &f, &sg, &g, n_avg).unwrap();
    assert_moments(empirical(&xs), theory, reps, "wr sj");
}

#[test]
fn wor_combined_size_of_join_matches_theory() {
    let f = workload_f();
    let g = workload_g();
    let tf = expand(&f);
    let tg = expand(&g);
    let (mf, mg) = (30u64, 25u64);
    let sf = WithoutReplacement::new(mf, tf.len() as u64).unwrap();
    let sg = WithoutReplacement::new(mg, tg.len() as u64).unwrap();
    let c = 1.0 / (sf.rate() * sg.rate());
    let n_avg = 6usize;
    let reps = 6000;
    let mut rng = StdRng::seed_from_u64(0xB5);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        for k in sample_without_replacement(&tf, mf, &mut rng).unwrap() {
            s.update(k, 1);
        }
        for k in sample_without_replacement(&tg, mg, &mut rng).unwrap() {
            t.update(k, 1);
        }
        xs.push(c * s.size_of_join(&t).unwrap());
    }
    let theory = engine::sketch_sample_sj(&sf, &f, &sg, &g, n_avg).unwrap();
    assert_moments(empirical(&xs), theory, reps, "wor sj");
}

/// The covariance effect the paper emphasizes: because the `n` averaged
/// sketches share one sample, the empirical variance at large `n` must
/// approach the *sampling* variance, not zero.
#[test]
fn averaging_cannot_erase_the_sampling_variance() {
    let f = workload_f();
    let tuples = expand(&f);
    let p = 0.2;
    let scheme = Bernoulli::new(p).unwrap();
    let (u, v, c) = scheme.sjs_affine();
    let n_avg = 64usize;
    let reps = 3000;
    let mut rng = StdRng::seed_from_u64(0xB6);
    let mut xs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut sampler = BernoulliSampler::<StdRng>::new(p, &mut rng).unwrap();
        let schema = AgmsSchema::<Cw4>::new(n_avg, &mut rng);
        let mut sk = schema.sketch();
        let mut kept = 0u64;
        for &t in &tuples {
            if sampler.keep() {
                sk.update(t, 1);
                kept += 1;
            }
        }
        xs.push(u * sk.self_join() + v * kept as f64 + c);
    }
    let emp = empirical(&xs);
    let sampling_floor = engine::sampling_sjs(&scheme, &f).unwrap().variance;
    let naive_if_independent =
        engine::sketch_sample_sjs(&scheme, &f, 1).unwrap().variance / n_avg as f64;
    assert!(
        emp.variance > 0.8 * sampling_floor,
        "variance {} must not fall below the sampling floor {}",
        emp.variance,
        sampling_floor
    );
    assert!(
        emp.variance > 2.0 * naive_if_independent,
        "shared-sample covariance must keep the variance ({}) well above the \
         naive independent-estimator prediction ({})",
        emp.variance,
        naive_if_independent
    );
}
