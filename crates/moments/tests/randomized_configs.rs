//! Randomized-configuration Monte-Carlo sweep: for a battery of random
//! (frequency vector, scheme, averaging) configurations, the simulated
//! combined estimator must match the engine's exact mean and variance.
//!
//! This complements `monte_carlo.rs` (which pins a few hand-chosen
//! workloads with tight budgets) with breadth: many shapes, all three
//! schemes, deterministic seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_moments::engine;
use sss_moments::scheme::{Bernoulli, SamplingScheme, WithReplacement, WithoutReplacement};
use sss_moments::FrequencyVector;
use sss_sampling::bernoulli::BernoulliSampler;
use sss_sampling::with_replacement::sample_with_replacement;
use sss_sampling::without_replacement::sample_without_replacement;
use sss_sketch::agms::AgmsSchema;
use sss_sketch::Sketch;
use sss_xi::Cw4;

/// One random workload: 4–10 keys with counts 1–9 (plus possible zeros).
fn random_freqs(rng: &mut StdRng) -> (FrequencyVector, Vec<u64>) {
    let len = rng.random_range(4..=10usize);
    let counts: Vec<u32> = (0..len)
        .map(|i| {
            if i > 0 && rng.random::<f64>() < 0.2 {
                0
            } else {
                rng.random_range(1..=9u32)
            }
        })
        .collect();
    let freqs = FrequencyVector::from_counts(counts.clone());
    let tuples: Vec<u64> = counts
        .iter()
        .enumerate()
        .flat_map(|(k, &c)| std::iter::repeat(k as u64).take(c as usize))
        .collect();
    (freqs, tuples)
}

type Simulator = Box<dyn FnMut(&mut StdRng) -> f64>;

fn run_config(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (freqs, tuples) = random_freqs(&mut rng);
    let n_pop = tuples.len() as u64;
    let n_avg = rng.random_range(2..=12usize);
    let reps = 4000;

    // Pick a scheme at random.
    let scheme_id = rng.random_range(0..3u8);
    let (theory, simulate): (engine::Moments, Simulator) = match scheme_id {
        0 => {
            let p = rng.random_range(0.15..=0.9);
            let scheme = Bernoulli::new(p).unwrap();
            let (u, v, c) = scheme.sjs_affine();
            let theory = engine::sketch_sample_sjs(&scheme, &freqs, n_avg).unwrap();
            let tuples = tuples.clone();
            (
                theory,
                Box::new(move |r: &mut StdRng| {
                    let schema = AgmsSchema::<Cw4>::new(n_avg, r);
                    let mut sk = schema.sketch();
                    let mut sampler = BernoulliSampler::<StdRng>::new(p, r).unwrap();
                    let mut kept = 0u64;
                    for &t in &tuples {
                        if sampler.keep() {
                            sk.update(t, 1);
                            kept += 1;
                        }
                    }
                    u * sk.self_join() + v * kept as f64 + c
                }),
            )
        }
        1 => {
            let m = rng.random_range(2..=(2 * n_pop).max(3));
            let scheme = WithReplacement::new(m, n_pop).unwrap();
            let (u, v, c) = scheme.sjs_affine();
            let theory = engine::sketch_sample_sjs(&scheme, &freqs, n_avg).unwrap();
            let tuples = tuples.clone();
            (
                theory,
                Box::new(move |r: &mut StdRng| {
                    let schema = AgmsSchema::<Cw4>::new(n_avg, r);
                    let mut sk = schema.sketch();
                    for t in sample_with_replacement(&tuples, m, r).unwrap() {
                        sk.update(t, 1);
                    }
                    u * sk.self_join() + v * m as f64 + c
                }),
            )
        }
        _ => {
            let m = rng.random_range(2..=n_pop);
            let scheme = WithoutReplacement::new(m, n_pop).unwrap();
            let (u, v, c) = scheme.sjs_affine();
            let theory = engine::sketch_sample_sjs(&scheme, &freqs, n_avg).unwrap();
            let tuples = tuples.clone();
            (
                theory,
                Box::new(move |r: &mut StdRng| {
                    let schema = AgmsSchema::<Cw4>::new(n_avg, r);
                    let mut sk = schema.sketch();
                    for t in sample_without_replacement(&tuples, m, r).unwrap() {
                        sk.update(t, 1);
                    }
                    u * sk.self_join() + v * m as f64 + c
                }),
            )
        }
    };

    let mut simulate = simulate;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..reps {
        let x = simulate(&mut rng);
        sum += x;
        sum_sq += x * x;
    }
    let mean = sum / reps as f64;
    let var = sum_sq / reps as f64 - mean * mean;
    let truth = freqs.self_join();
    assert!(
        (theory.mean - truth).abs() < 1e-9,
        "config {seed}: engine mean {} vs truth {truth}",
        theory.mean
    );
    let mean_tol = 6.0 * (theory.variance / reps as f64).sqrt().max(1e-9);
    assert!(
        (mean - theory.mean).abs() <= mean_tol,
        "config {seed} (scheme {scheme_id}): empirical mean {mean} vs {} (tol {mean_tol})",
        theory.mean
    );
    // Variance-of-variance tolerance: generous 30% + absolute slack for
    // near-deterministic configs (full WOR scans).
    assert!(
        (var - theory.variance).abs() <= 0.3 * theory.variance + 3.0,
        "config {seed} (scheme {scheme_id}): empirical var {var} vs {}",
        theory.variance
    );
}

#[test]
fn randomized_configurations_match_theory() {
    for seed in 0..12u64 {
        run_config(seed);
    }
}
