//! Client-side embeddings of both wire planes: the batching/pipelining
//! ingest writer, the line-oriented query client, and the
//! multi-connection load generator behind `sss bench-client` and the
//! `net_ingest` acceptance bench.

use crate::error::{NetError, Result};
use crate::protocol::{self, FrameReader};
use sss_core::wire::{self, FrameError, Head};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Flush threshold for the pipelined write buffer: batches accumulate
/// until this many bytes are pending, then go out in one `write_all` —
/// pipelining without per-batch syscalls.
const FLUSH_THRESHOLD: usize = 256 << 10;

/// A blocking ingest-plane connection: handshake on connect, batched
/// pipelined writes, and a [`sync`](Self::sync) barrier.
///
/// The handshake is synchronous: [`connect`](Self::connect) returns
/// only after the server acknowledged the echoed head, so a returned
/// client is guaranteed fingerprint-compatible — a mismatch surfaces
/// as a typed [`FrameError::Rejected`] from `connect`, not as a
/// surprise mid-stream.
#[derive(Debug)]
pub struct IngestClient {
    stream: TcpStream,
    reader: FrameReader,
    out: Vec<u8>,
    server_head: Head,
    next_cookie: u64,
}

impl IngestClient {
    /// Connect and adopt the server's advertised head (the common
    /// case: the client trusts the server's configuration).
    ///
    /// # Errors
    ///
    /// Socket failures, a malformed banner, or a server rejection.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::connect_inner(addr, None)
    }

    /// Connect, announcing `head` as the client's own expected
    /// configuration. The server refuses the connection (typed
    /// [`FrameError::Rejected`], code
    /// [`ERR_FINGERPRINT`](protocol::ERR_FINGERPRINT) or
    /// [`ERR_WIRE_MISMATCH`](protocol::ERR_WIRE_MISMATCH)) unless it
    /// matches — the snapshot-merge fingerprint discipline, applied at
    /// connection time.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect), plus the mismatch rejection.
    pub fn connect_checked(addr: impl ToSocketAddrs, head: &Head) -> Result<Self> {
        Self::connect_inner(addr, Some(head.clone()))
    }

    fn connect_inner(addr: impl ToSocketAddrs, own_head: Option<Head>) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::io("connect ingest", e))?;
        let _ = stream.set_nodelay(true);
        let mut client = IngestClient {
            stream,
            reader: FrameReader::new(),
            out: Vec::with_capacity(FLUSH_THRESHOLD + 1024),
            server_head: Head {
                kind: String::new(),
                format: 0,
                fingerprint: 0,
            },
            next_cookie: 0,
        };
        // Server speaks first: its banner head.
        let (tag, payload) = client.read_frame()?;
        if tag != protocol::FRAME_HELLO_OK {
            return Err(FrameError::UnknownType { tag }.into());
        }
        client.server_head = wire::peek(&payload)?;
        // Echo (or assert) the head, then wait for the verdict.
        let announced = own_head.unwrap_or_else(|| client.server_head.clone());
        let hello = wire::encode_head(&announced.kind, announced.format, announced.fingerprint)?;
        protocol::write_frame(&mut client.out, protocol::FRAME_HELLO, &hello);
        client.flush()?;
        match client.read_frame()? {
            (protocol::FRAME_HELLO_OK, _) => Ok(client),
            (protocol::FRAME_ERROR, payload) => Err(protocol::decode_error(&payload).into()),
            (tag, _) => Err(FrameError::UnknownType { tag }.into()),
        }
    }

    /// The head the server advertised in its banner.
    pub fn server_head(&self) -> &Head {
        &self.server_head
    }

    /// Queue a batch of keys (split to the protocol's frame ceiling if
    /// oversized); flushes automatically when the pipeline buffer
    /// fills.
    ///
    /// # Errors
    ///
    /// Socket failures from an automatic flush.
    pub fn send_batch(&mut self, keys: &[u64]) -> Result<()> {
        for chunk in keys.chunks(protocol::MAX_BATCH_KEYS.max(1)) {
            protocol::write_batch(&mut self.out, chunk);
            if self.out.len() >= FLUSH_THRESHOLD {
                self.flush()?;
            }
        }
        Ok(())
    }

    /// Push every queued frame to the socket.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn flush(&mut self) -> Result<()> {
        if !self.out.is_empty() {
            self.stream
                .write_all(&self.out)
                .map_err(|e| NetError::io("write ingest frames", e))?;
            self.out.clear();
        }
        Ok(())
    }

    /// Flush, then block until the server confirms every batch sent so
    /// far has been accepted into the shard rings. After this returns,
    /// a zero-staleness replica query covers all of them. Returns the
    /// barrier cookie the server echoed.
    ///
    /// # Errors
    ///
    /// Socket failures, or a typed server rejection (the server
    /// reports protocol errors here, since the error frame is the last
    /// thing it writes before closing).
    pub fn sync(&mut self) -> Result<u64> {
        self.next_cookie += 1;
        let cookie = self.next_cookie;
        protocol::write_sync(&mut self.out, protocol::FRAME_SYNC, cookie);
        self.flush()?;
        loop {
            match self.read_frame()? {
                (protocol::FRAME_SYNC_OK, payload) => {
                    let echoed = protocol::decode_sync(&payload)?;
                    if echoed == cookie {
                        return Ok(echoed);
                    }
                    // A stale cookie from an earlier (coalesced) sync.
                }
                (protocol::FRAME_ERROR, payload) => {
                    return Err(protocol::decode_error(&payload).into())
                }
                (tag, _) => return Err(FrameError::UnknownType { tag }.into()),
            }
        }
    }

    /// Flush and close the write half; the connection drops cleanly on
    /// a frame boundary.
    ///
    /// # Errors
    ///
    /// Socket failures from the final flush.
    pub fn finish(mut self) -> Result<()> {
        self.flush()?;
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        Ok(())
    }

    /// Read one complete frame, blocking.
    fn read_frame(&mut self) -> Result<(u8, Vec<u8>)> {
        let mut scratch = [0u8; 4096];
        loop {
            if let Some((tag, payload)) = self.reader.next_frame()? {
                return Ok((tag, payload.to_vec()));
            }
            let n = self
                .stream
                .read(&mut scratch)
                .map_err(|e| NetError::io("read ingest frame", e))?;
            if n == 0 {
                return match self.reader.finish() {
                    Ok(()) => Err(NetError::HandshakeClosed),
                    Err(truncated) => Err(truncated.into()),
                };
            }
            self.reader.extend(&scratch[..n]);
        }
    }
}

/// A blocking query-plane connection: one JSON line out, one JSON line
/// back.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    inbuf: Vec<u8>,
}

impl QueryClient {
    /// Connect to the query plane.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::io("connect query", e))?;
        let _ = stream.set_nodelay(true);
        Ok(QueryClient {
            stream,
            inbuf: Vec::new(),
        })
    }

    /// Send one request line and read its response line.
    ///
    /// # Errors
    ///
    /// Socket failures, or the server closing without answering.
    pub fn request(&mut self, line: &str) -> Result<String> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line.trim_end_matches('\n'));
        framed.push('\n');
        self.stream
            .write_all(framed.as_bytes())
            .map_err(|e| NetError::io("write query line", e))?;
        let mut scratch = [0u8; 4096];
        loop {
            if let Some(nl) = self.inbuf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.inbuf.drain(..=nl).collect();
                return Ok(String::from_utf8_lossy(&line[..nl]).into_owned());
            }
            let n = self
                .stream
                .read(&mut scratch)
                .map_err(|e| NetError::io("read query line", e))?;
            if n == 0 {
                return Err(NetError::HandshakeClosed);
            }
            self.inbuf.extend_from_slice(&scratch[..n]);
        }
    }

    /// `{"cmd":"self_join"}` → the exact point estimate (decoded from
    /// its IEEE-754 bits, so it compares bit-identically to the
    /// in-process query).
    ///
    /// # Errors
    ///
    /// Transport failures, or an `ok:false` response (wrapped as a
    /// wire error with the server's message).
    pub fn self_join_bits(&mut self) -> Result<f64> {
        let line = self.request("{\"cmd\":\"self_join\"}")?;
        expect_ok(&line)?;
        protocol::response_u64(&line, "value_bits")
            .map(wire::f64_of)
            .ok_or_else(|| response_error("self_join response missing value_bits", &line))
    }

    /// `{"cmd":"stats"}` → the raw response line (fields documented in
    /// [`protocol`]).
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn stats_line(&mut self) -> Result<String> {
        let line = self.request("{\"cmd\":\"stats\"}")?;
        expect_ok(&line)?;
        Ok(line)
    }

    /// `{"cmd":"shutdown"}` — ask the service to drain, snapshot, and
    /// exit.
    ///
    /// # Errors
    ///
    /// As for [`request`](Self::request).
    pub fn shutdown(&mut self) -> Result<()> {
        let line = self.request("{\"cmd\":\"shutdown\"}")?;
        expect_ok(&line)
    }
}

/// Fail on an `ok:false` response, carrying the server's message.
fn expect_ok(line: &str) -> Result<()> {
    if line.contains("\"ok\":true") {
        Ok(())
    } else {
        Err(response_error("query failed", line))
    }
}

fn response_error(context: &str, line: &str) -> NetError {
    NetError::Core(sss_core::Error::Wire {
        detail: format!("{context}: {line}"),
    })
}

/// One splitmix64 scramble — the load generator's key synthesizer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic key stream the load generator sends: connection
/// `connection`'s `index`-th tuple under `seed`, folded into `domain`
/// distinct values (0 = the full `u64` range). Exposed so an oracle
/// can regenerate exactly the tuples a [`run_load`] call ingested and
/// sketch them sequentially for comparison.
pub fn synth_key(seed: u64, connection: u64, index: u64, domain: u64) -> u64 {
    let raw = splitmix64(seed ^ splitmix64(connection.wrapping_add(1)) ^ index);
    if domain == 0 {
        raw
    } else {
        raw % domain
    }
}

/// Load-generation parameters for [`run_load`].
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent ingest connections.
    pub connections: usize,
    /// Tuples sent per connection.
    pub tuples_per_connection: u64,
    /// Keys per `BATCH` frame.
    pub batch: usize,
    /// Distinct-key domain (0 = full `u64` range).
    pub domain: u64,
    /// Key-stream seed (see [`synth_key`]).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            connections: 1,
            tuples_per_connection: 100_000,
            batch: 512,
            domain: 10_000,
            seed: 7,
        }
    }
}

/// What a [`run_load`] burst measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total tuples sent and synced across all connections.
    pub tuples: u64,
    /// Wall-clock from first byte to last `SYNC_OK`.
    pub elapsed: Duration,
    /// Aggregate throughput: `tuples / elapsed`.
    pub tuples_per_sec: f64,
    /// Per-connection throughput over each connection's own elapsed
    /// time (each includes its final sync barrier).
    pub per_connection_tps: Vec<f64>,
}

/// Drive the ingest plane with `connections` concurrent clients, each
/// sending its deterministic [`synth_key`] stream in batched pipelined
/// writes and ending with a [`sync`](IngestClient::sync) barrier — so
/// when this returns, every tuple it reports is queryable at zero
/// staleness.
///
/// # Errors
///
/// The first connection/transport error any client hit.
pub fn run_load(addr: impl ToSocketAddrs, cfg: &LoadConfig) -> Result<LoadReport> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| NetError::io("resolve ingest address", e))?
        .next()
        .ok_or_else(|| {
            NetError::io(
                "resolve ingest address",
                std::io::Error::new(std::io::ErrorKind::NotFound, "no address"),
            )
        })?;
    let connections = cfg.connections.max(1);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let cfg = *cfg;
        workers.push(std::thread::spawn(move || -> Result<Duration> {
            let mut client = IngestClient::connect(addr)?;
            let conn_started = Instant::now();
            let mut batch = Vec::with_capacity(cfg.batch.max(1));
            let mut index = 0u64;
            while index < cfg.tuples_per_connection {
                batch.clear();
                while batch.len() < cfg.batch.max(1) && index < cfg.tuples_per_connection {
                    batch.push(synth_key(cfg.seed, conn_index as u64, index, cfg.domain));
                    index += 1;
                }
                client.send_batch(&batch)?;
            }
            client.sync()?;
            let elapsed = conn_started.elapsed();
            client.finish()?;
            Ok(elapsed)
        }));
    }
    let mut per_connection_tps = Vec::with_capacity(connections);
    let mut first_error = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(elapsed)) => {
                let secs = elapsed.as_secs_f64().max(1e-9);
                per_connection_tps.push(cfg.tuples_per_connection as f64 / secs);
            }
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            Err(_) => {
                first_error = first_error.or(Some(NetError::ThreadPanicked { thread: "ingest" }));
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let elapsed = started.elapsed();
    let tuples = cfg.tuples_per_connection * connections as u64;
    Ok(LoadReport {
        tuples,
        elapsed,
        tuples_per_sec: tuples as f64 / elapsed.as_secs_f64().max(1e-9),
        per_connection_tps,
    })
}
