//! Unified error type for the network service.

use std::fmt;

/// Errors produced by the ingest service and its clients.
///
/// Protocol violations arrive as
/// [`sss_core::Error::Frame`] (wrapping the typed
/// [`FrameError`](sss_core::wire::FrameError)), so a caller can match
/// the precise framing violation; socket failures keep their
/// [`std::io::Error`]; runtime failures keep their
/// [`StreamError`](sss_stream::StreamError).
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io {
        /// What the service was doing when the socket failed.
        context: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An estimator or wire-codec failure, including every typed
    /// protocol violation ([`sss_core::Error::Frame`]).
    Core(sss_core::Error),
    /// A sharded-runtime failure (dead shard worker, invalid config).
    Stream(sss_stream::StreamError),
    /// A background service thread panicked — its estimator state is
    /// gone.
    ThreadPanicked {
        /// Which thread died (`"ingest"` or `"query"`).
        thread: &'static str,
    },
    /// The peer closed the connection before completing the handshake
    /// banner exchange.
    HandshakeClosed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "{context}: {source}"),
            NetError::Core(e) => write!(f, "{e}"),
            NetError::Stream(e) => write!(f, "{e}"),
            NetError::ThreadPanicked { thread } => {
                write!(f, "server {thread} thread panicked")
            }
            NetError::HandshakeClosed => {
                write!(f, "peer closed the connection during the handshake")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Core(e) => Some(e),
            NetError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sss_core::Error> for NetError {
    fn from(e: sss_core::Error) -> Self {
        NetError::Core(e)
    }
}

impl From<sss_core::wire::FrameError> for NetError {
    fn from(e: sss_core::wire::FrameError) -> Self {
        NetError::Core(sss_core::Error::Frame(e))
    }
}

impl From<sss_stream::StreamError> for NetError {
    fn from(e: sss_stream::StreamError) -> Self {
        NetError::Stream(e)
    }
}

impl NetError {
    /// Wrap an I/O error with the operation that produced it.
    pub fn io(context: &'static str, source: std::io::Error) -> Self {
        NetError::Io { context, source }
    }

    /// The typed framing violation inside this error, if that is what it
    /// is — convenience for tests asserting on precise protocol errors.
    pub fn frame_error(&self) -> Option<&sss_core::wire::FrameError> {
        match self {
            NetError::Core(sss_core::Error::Frame(e)) => Some(e),
            _ => None,
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;
