//! # sss-net — the network ingest service over the sharded runtime
//!
//! The ROADMAP's production-scale north star needs a network-facing
//! front end: this crate turns [`ShardedRuntime`](sss_stream::runtime)'s
//! in-process throughput into an end-to-end service without giving up
//! either of its two hot-path guarantees:
//!
//! * **Zero allocations per ingested batch.** The ingest plane speaks a
//!   length-prefixed binary protocol ([`protocol`]) and decodes each
//!   batch frame *directly into* a pooled buffer loaned from the shard
//!   recycle rings ([`loan_batch_buf`](sss_stream::ShardedRuntime::loan_batch_buf) /
//!   [`push_loaned`](sss_stream::ShardedRuntime::push_loaned)), so the
//!   `PoolStats` zero-allocation invariant extends across the socket
//!   boundary — the bytes go NIC → read buffer → pooled `Vec<u64>` →
//!   shard ring with no intermediate `Vec` per frame.
//! * **Queries never block ingest.** The query plane is a separate
//!   thread and listener speaking newline-delimited JSON, answered from
//!   a [`ReadReplica`](sss_stream::ReadReplica) slim frame — the
//!   two-stage read path — so a slow or chatty query client costs the
//!   ingest loop nothing.
//!
//! The event loop is hand-rolled ([`sys`]): epoll on Linux, `poll(2)` on
//! other unix — the workspace is offline/vendored, so there is no tokio
//! and no `libc` crate; the [`sys`] module is the crate's one audited
//! `unsafe` island (the same policy as `sss-stream::ring` and the
//! `sss-xi` SIMD kernels), declaring the four syscall entry points
//! against the libc the binary already links.
//!
//! The handshake reuses the snapshot wire head
//! ([`sss_core::wire::Head`]): on accept the server sends its summary
//! kind / format / configuration fingerprint as a body-less JSON head,
//! and the client echoes one back — two processes agree they are
//! sketching *the same* configured summary before any tuple crosses the
//! wire, with exactly the machinery snapshot files already use. Every
//! way a byte stream can fail to be a frame sequence maps to a typed
//! [`FrameError`](sss_core::wire::FrameError), closes *that* connection
//! with an error frame, and leaves every other connection streaming.

// `deny` rather than `forbid`: the syscall shim ([`sys`]) is the one
// audited module allowed to use `unsafe`, mirroring the ring-transport
// policy of `sss-stream` and the SIMD kernel policy of `sss-xi`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;
pub mod sys;

pub use client::{run_load, synth_key, IngestClient, LoadConfig, LoadReport, QueryClient};
pub use error::{NetError, Result};
pub use server::{RunningServer, ServerConfig, ServerStats};
