//! The two wire planes: length-prefixed binary frames for ingest,
//! newline-delimited JSON for queries.
//!
//! # Ingest plane
//!
//! Every frame is `[u32 LE length][u8 type][payload]`, where `length`
//! counts the type byte plus the payload (so the smallest legal frame
//! is five bytes on the wire). Frame types:
//!
//! | type | name       | payload                                        |
//! |------|------------|------------------------------------------------|
//! | 0x01 | `HELLO`    | body-less JSON [`Head`](sss_core::wire::Head)  |
//! | 0x02 | `BATCH`    | `u32 LE count` + `count × u64 LE` keys         |
//! | 0x03 | `SYNC`     | `u64 LE` cookie                                |
//! | 0x81 | `HELLO_OK` | body-less JSON head (the server banner)        |
//! | 0x83 | `SYNC_OK`  | the echoed `u64 LE` cookie                     |
//! | 0x7f | `ERROR`    | `u16 LE` code + UTF-8 detail, then close       |
//!
//! The server speaks first: on accept it sends `HELLO_OK` carrying its
//! summary kind/format/configuration fingerprint, and the client must
//! answer with a matching `HELLO` before any `BATCH` is accepted — the
//! same fingerprint discipline snapshot merging already enforces, over
//! a second transport. `SYNC` is the client's flush barrier: once the
//! matching `SYNC_OK` arrives, every batch written before the `SYNC`
//! has been accepted into the shard rings, so an immediately following
//! replica query (with zero staleness budget) covers them.
//!
//! Batch payloads are little-endian `u64` keys decoded **directly into
//! a pooled buffer** ([`decode_batch_into`]) loaned from the shard
//! recycle rings — the frame is the only copy between socket and ring.
//!
//! Malformed input never panics and never kills the server: every
//! violation is a typed [`FrameError`] (length prefix of zero, a
//! length over [`MAX_FRAME`], an unknown type byte, a payload whose
//! internal structure contradicts the frame length, data before the
//! handshake, a disconnect mid-frame), and the connection that sent it
//! is answered with an `ERROR` frame and closed while every other
//! connection keeps streaming. The proptest suite drives the reader
//! with arbitrary corrupted bytes to pin exactly that.
//!
//! # Query plane
//!
//! One JSON object per line, flat fields only:
//!
//! ```json
//! {"cmd":"self_join","confidence":0.95}
//! {"cmd":"distinct"}
//! {"cmd":"quantile","q":0.5}
//! {"cmd":"topk","k":10}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses are one JSON object per line; every `f64` that must
//! round-trip exactly (point estimates compared against oracles) also
//! travels as its IEEE-754 bit pattern in a sibling `*_bits` field,
//! the same convention the snapshot wire format uses
//! ([`sss_core::wire::bits_of`]). The request parser is hand-rolled:
//! the vendored serde backend has no lenient/optional-field
//! deserialization, and a flat scanner over `"key":value` pairs is
//! both smaller and easier to fuzz than a derive would be here.

use sss_core::wire::FrameError;

/// Client → server: the echoed handshake head.
pub const FRAME_HELLO: u8 = 0x01;
/// Client → server: a batch of keys for ingestion.
pub const FRAME_BATCH: u8 = 0x02;
/// Client → server: flush barrier carrying a cookie to echo.
pub const FRAME_SYNC: u8 = 0x03;
/// Server → client: the banner head, sent on accept.
pub const FRAME_HELLO_OK: u8 = 0x81;
/// Server → client: the echoed sync cookie.
pub const FRAME_SYNC_OK: u8 = 0x83;
/// Either direction: a terminal protocol error; sender closes after it.
pub const FRAME_ERROR: u8 = 0x7f;

/// Frame-size ceiling (4 MiB): anything larger is a corrupt prefix or
/// a non-protocol client (an HTTP request line reads as a gigantic
/// little-endian length).
pub const MAX_FRAME: u32 = 1 << 22;

/// Largest key count a `BATCH` frame can carry under [`MAX_FRAME`].
pub const MAX_BATCH_KEYS: usize = ((MAX_FRAME as usize) - 1 - 4) / 8;

/// `ERROR` code: generic framing violation.
pub const ERR_PROTOCOL: u16 = 1;
/// `ERROR` code: handshake head had a different kind/format.
pub const ERR_WIRE_MISMATCH: u16 = 3;
/// `ERROR` code: handshake head had a different configuration
/// fingerprint.
pub const ERR_FINGERPRINT: u16 = 4;

/// Incremental frame extractor over a growing byte buffer.
///
/// Feed it whatever the socket produced ([`extend`](Self::extend)),
/// then drain complete frames with [`next_frame`](Self::next_frame);
/// partial frames stay buffered until their bytes arrive. Consumed
/// bytes are compacted away lazily (only once the buffer's dead prefix
/// outgrows the live tail), so steady-state extraction is copy-free.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already handed out as frames.
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // frame plus one read, instead of growing for the connection's
        // lifetime.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extract the next complete frame as `(type, payload)`, or `None`
    /// if more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Undersized`] for a zero length prefix,
    /// [`FrameError::Oversized`] for a length over [`MAX_FRAME`],
    /// [`FrameError::UnknownType`] for an unrecognized type byte. After
    /// an error the reader is poisoned in place — the connection is
    /// expected to close, so no resynchronization is attempted.
    pub fn next_frame(&mut self) -> Result<Option<(u8, &[u8])>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len == 0 {
            return Err(FrameError::Undersized);
        }
        if len > MAX_FRAME {
            return Err(FrameError::Oversized {
                len,
                max: MAX_FRAME,
            });
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let tag = avail[4];
        if !matches!(
            tag,
            FRAME_HELLO | FRAME_BATCH | FRAME_SYNC | FRAME_HELLO_OK | FRAME_SYNC_OK | FRAME_ERROR
        ) {
            return Err(FrameError::UnknownType { tag });
        }
        let payload_range = (self.start + 5)..(self.start + total);
        self.start += total;
        Ok(Some((tag, &self.buf[payload_range])))
    }

    /// The stream ended: `Ok` if it ended on a frame boundary,
    /// [`FrameError::TruncatedStream`] if a partial frame was pending.
    pub fn finish(&self) -> Result<(), FrameError> {
        match self.buffered() {
            0 => Ok(()),
            buffered => Err(FrameError::TruncatedStream { buffered }),
        }
    }
}

/// Append one frame (`[len][type][payload]`) to `out`.
pub fn write_frame(out: &mut Vec<u8>, frame_type: u8, payload: &[u8]) {
    let len = 1 + payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(frame_type);
    out.extend_from_slice(payload);
}

/// Append a `BATCH` frame carrying `keys` to `out`.
///
/// Callers must keep `keys.len() ≤` [`MAX_BATCH_KEYS`]; larger batches
/// should be split (the clients in this crate do).
pub fn write_batch(out: &mut Vec<u8>, keys: &[u64]) {
    debug_assert!(keys.len() <= MAX_BATCH_KEYS);
    let len = 1 + 4 + 8 * keys.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(FRAME_BATCH);
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for &k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
}

/// Append a `SYNC` or `SYNC_OK` frame carrying `cookie` to `out`.
pub fn write_sync(out: &mut Vec<u8>, frame_type: u8, cookie: u64) {
    write_frame(out, frame_type, &cookie.to_le_bytes());
}

/// Append an `ERROR` frame (`u16 LE` code + UTF-8 detail) to `out`.
pub fn write_error(out: &mut Vec<u8>, code: u16, detail: &str) {
    let mut payload = Vec::with_capacity(2 + detail.len());
    payload.extend_from_slice(&code.to_le_bytes());
    payload.extend_from_slice(detail.as_bytes());
    write_frame(out, FRAME_ERROR, &payload);
}

/// Decode a `BATCH` payload **into** `out` (a pooled buffer loaned from
/// the shard recycle rings) — the zero-copy hop between socket bytes
/// and ring buffer.
///
/// # Errors
///
/// [`FrameError::LengthMismatch`] when the declared key count does not
/// match the bytes present.
pub fn decode_batch_into(payload: &[u8], out: &mut Vec<u64>) -> Result<(), FrameError> {
    if payload.len() < 4 {
        return Err(FrameError::LengthMismatch {
            declared: 4,
            payload: payload.len(),
        });
    }
    let count = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
    let need = 4 + 8 * count as usize;
    if payload.len() != need {
        return Err(FrameError::LengthMismatch {
            declared: need as u32,
            payload: payload.len(),
        });
    }
    out.reserve(count as usize);
    for chunk in payload[4..].chunks_exact(8) {
        out.push(u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]));
    }
    Ok(())
}

/// Decode a `SYNC`/`SYNC_OK` payload.
///
/// # Errors
///
/// [`FrameError::LengthMismatch`] unless the payload is exactly the
/// eight cookie bytes.
pub fn decode_sync(payload: &[u8]) -> Result<u64, FrameError> {
    let bytes: [u8; 8] = payload.try_into().map_err(|_| FrameError::LengthMismatch {
        declared: 8,
        payload: payload.len(),
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// Decode an `ERROR` payload into the [`FrameError::Rejected`] the
/// receiving side reports.
pub fn decode_error(payload: &[u8]) -> FrameError {
    if payload.len() < 2 {
        return FrameError::Rejected {
            code: 0,
            detail: "malformed error frame".to_string(),
        };
    }
    FrameError::Rejected {
        code: u16::from_le_bytes([payload[0], payload[1]]),
        detail: String::from_utf8_lossy(&payload[2..]).into_owned(),
    }
}

/// A parsed query-plane request line. Fields absent from the JSON stay
/// `None`; each command validates the fields it needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryRequest {
    /// The command name (`self_join`, `distinct`, `quantile`, `topk`,
    /// `stats`, `shutdown`).
    pub cmd: String,
    /// Quantile rank for `quantile`.
    pub q: Option<f64>,
    /// Result size for `topk`.
    pub k: Option<u64>,
    /// Confidence level for interval-bearing answers.
    pub confidence: Option<f64>,
}

/// Parse one flat JSON request line (see the module docs for why this
/// is hand-rolled rather than a serde derive). Unknown keys are
/// ignored; duplicate keys keep the last value, as JSON parsers
/// conventionally do.
///
/// # Errors
///
/// A human-readable description of the malformation — the server wraps
/// it into an error response for that line, keeping the connection.
pub fn parse_query_line(line: &str) -> Result<QueryRequest, String> {
    let body = line.trim();
    let inner = body
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "request must be one JSON object".to_string())?;
    let mut req = QueryRequest::default();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key: a quoted string.
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at: {rest:.20}"))?;
        let key_end = after_quote
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..].trim_start();
        let mut value_part = after_key
            .strip_prefix(':')
            .ok_or_else(|| format!("missing ':' after key {key:?}"))?
            .trim_start();
        // Value: a quoted string or a bare JSON scalar up to the next
        // top-level comma (requests have no nested containers).
        if let Some(after) = value_part.strip_prefix('"') {
            let end = after
                .find('"')
                .ok_or_else(|| format!("unterminated string value for {key:?}"))?;
            match key {
                "cmd" => req.cmd = after[..end].to_string(),
                "q" | "k" | "confidence" => {
                    return Err(format!("key {key:?} needs a number, got a string"))
                }
                _ => {}
            }
            value_part = after[end + 1..].trim_start();
        } else {
            let end = value_part.find(',').unwrap_or(value_part.len());
            let token = value_part[..end].trim();
            if token.is_empty() {
                return Err(format!("missing value for key {key:?}"));
            }
            let number = token
                .parse::<f64>()
                .map_err(|_| format!("non-numeric value {token:?} for key {key:?}"))?;
            match key {
                "q" => req.q = Some(number),
                "k" => req.k = Some(number as u64),
                "confidence" => req.confidence = Some(number),
                _ => {}
            }
            value_part = &value_part[end..];
        }
        rest = match value_part.strip_prefix(',') {
            Some(r) => r.trim_start(),
            None => {
                let trailing = value_part.trim();
                if !trailing.is_empty() {
                    return Err(format!("trailing bytes after value: {trailing:.20}"));
                }
                ""
            }
        };
    }
    if req.cmd.is_empty() {
        return Err("request has no \"cmd\" field".to_string());
    }
    Ok(req)
}

/// Extract a numeric field from a flat JSON response line — the client
/// side of the hand-rolled convention. Returns `None` when the field
/// is absent or non-numeric.
pub fn response_f64(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extract a `u64` field (typically `*_bits` IEEE-754 payloads) from a
/// flat JSON response line.
pub fn response_u64(line: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_reader() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_HELLO, b"{}");
        write_batch(&mut wire, &[1, 2, 3]);
        write_sync(&mut wire, FRAME_SYNC, 42);
        write_error(&mut wire, ERR_FINGERPRINT, "bad print");

        let mut reader = FrameReader::new();
        // Deliver byte-by-byte to exercise partial-frame buffering.
        let mut seen = Vec::new();
        for &b in &wire {
            reader.extend(&[b]);
            while let Some((tag, payload)) = reader.next_frame().unwrap() {
                seen.push((tag, payload.to_vec()));
            }
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0].0, FRAME_HELLO);
        let mut keys = Vec::new();
        decode_batch_into(&seen[1].1, &mut keys).unwrap();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(decode_sync(&seen[2].1).unwrap(), 42);
        assert_eq!(
            decode_error(&seen[3].1),
            FrameError::Rejected {
                code: ERR_FINGERPRINT,
                detail: "bad print".to_string(),
            }
        );
        reader.finish().unwrap();
    }

    #[test]
    fn violations_are_typed_not_panics() {
        // Zero length prefix.
        let mut r = FrameReader::new();
        r.extend(&[0, 0, 0, 0, 9]);
        assert_eq!(r.next_frame(), Err(FrameError::Undersized));

        // Oversized length prefix ("GET " as LE u32 is enormous).
        let mut r = FrameReader::new();
        r.extend(b"GET / HTTP/1.1\r\n");
        assert!(matches!(r.next_frame(), Err(FrameError::Oversized { .. })));

        // Unknown type byte.
        let mut r = FrameReader::new();
        r.extend(&[1, 0, 0, 0, 0x55]);
        assert_eq!(r.next_frame(), Err(FrameError::UnknownType { tag: 0x55 }));

        // Mid-frame hangup.
        let mut r = FrameReader::new();
        r.extend(&[200, 0, 0, 0, FRAME_BATCH, 1, 2, 3]);
        assert_eq!(r.next_frame(), Ok(None));
        assert_eq!(r.finish(), Err(FrameError::TruncatedStream { buffered: 8 }));

        // Batch whose key count contradicts its length.
        let mut payload = vec![0u8; 4 + 8];
        payload[0] = 7; // claims 7 keys, carries 1
        let mut out = Vec::new();
        assert!(matches!(
            decode_batch_into(&payload, &mut out),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn reader_compacts_consumed_bytes() {
        let mut r = FrameReader::new();
        for i in 0..1000u64 {
            let mut wire = Vec::new();
            write_batch(&mut wire, &[i; 16]);
            r.extend(&wire);
            let (tag, _) = r.next_frame().unwrap().unwrap();
            assert_eq!(tag, FRAME_BATCH);
        }
        // Compaction keeps the buffer near one frame, not 1000.
        assert!(r.buf.len() < 4 * (4 + 1 + 4 + 16 * 8));
    }

    #[test]
    fn query_lines_parse_and_reject() {
        let req = parse_query_line(r#"{"cmd":"quantile","q":0.5}"#).unwrap();
        assert_eq!(req.cmd, "quantile");
        assert_eq!(req.q, Some(0.5));
        assert_eq!(req.k, None);

        let req =
            parse_query_line(r#"{ "k" : 10 , "cmd" : "topk" , "confidence" : 0.99 }"#).unwrap();
        assert_eq!(req.cmd, "topk");
        assert_eq!(req.k, Some(10));
        assert_eq!(req.confidence, Some(0.99));

        for bad in [
            "",
            "not json",
            "{}",
            r#"{"q":0.5}"#,
            r#"{"cmd":}"#,
            r#"{"cmd":"x" junk}"#,
            r#"{"cmd":"x","q":"not a number"}"#,
        ] {
            assert!(parse_query_line(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn response_fields_extract() {
        let line = r#"{"ok":true,"value":12.5,"value_bits":4622945017495814144,"n":3}"#;
        assert_eq!(response_f64(line, "value"), Some(12.5));
        assert_eq!(response_u64(line, "value_bits"), Some(4622945017495814144));
        assert_eq!(response_f64(line, "missing"), None);
    }
}
