//! The ingest service: an event-loop front end over
//! [`ShardedRuntime<MultiSummary>`].
//!
//! Two planes, two threads, two listeners:
//!
//! * The **ingest thread** owns the sharded runtime and a [`Poller`]
//!   over the ingest listener plus every ingest connection. Batch
//!   frames are decoded *directly into* pooled buffers loaned from the
//!   shard recycle rings ([`loan_batch_buf`](sss_stream::ShardedRuntime::loan_batch_buf) →
//!   [`protocol::decode_batch_into`] →
//!   [`push_loaned`](sss_stream::ShardedRuntime::push_loaned)), so the steady-state path from
//!   socket to shard ring performs zero heap allocations per batch —
//!   the invariant [`pool_stats`](sss_stream::ShardedRuntime::pool_stats) proves in-process,
//!   extended across the socket boundary and mirrored into
//!   [`ServerStats`]. When every shard ring is full the loop blocks in
//!   `push_loaned` — backpressure propagates to the TCP receive
//!   windows of every client rather than buffering unboundedly.
//! * The **query thread** owns a [`ReadReplica`] opened from the
//!   runtime's query handle and a second poller over the query
//!   listener. Queries are answered from the local slim projection
//!   (single-flight refresh through the shared frame hub), so a slow
//!   or chatty query client never blocks ingest, and sustained ingest
//!   costs a query only the staleness the replica's `max_pending`
//!   budget allows — with the estimate's error bar widened to match.
//!
//! A graceful shutdown (the query-plane `{"cmd":"shutdown"}`, or
//! [`RunningServer::shutdown_and_wait`]) stops accepting, drains the
//! shard rings through [`ShardedRuntime::into_merged`], optionally
//! flushes the merged summary as a `Portable` snapshot — loadable by
//! `sss load` and mergeable with snapshots from other processes — and
//! hands the merged [`MultiSummary`] back to the embedder.

use crate::error::{NetError, Result};
use crate::protocol::{self, FrameReader};
use crate::sys::{Event, Interest, Poller};
use sss_core::wire::{self, FrameError};
use sss_core::{MultiSpec, MultiSummary, Portable};
use sss_stream::runtime::RuntimeConfig;
use sss_stream::{QueryHandle, ReadReplica, ShardedRuntime};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the listening socket; connections count up from 1.
const TOKEN_LISTENER: u64 = 0;
/// Event-loop tick: the latency bound on noticing the shutdown flag.
const TICK: Duration = Duration::from_millis(25);
/// Socket read chunk per readiness event (per loop turn, for fairness).
const READ_CHUNK: usize = 64 << 10;

/// Configuration for [`RunningServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Ingest-plane bind address (port 0 picks an ephemeral port).
    pub ingest_addr: String,
    /// Query-plane bind address.
    pub query_addr: String,
    /// Sharded-runtime geometry under the ingest plane.
    pub runtime: RuntimeConfig,
    /// Replica staleness budget, in accepted batches: 0 means every
    /// query reflects every batch accepted before it (the at-all-times
    /// query); larger values trade staleness (with honestly widened
    /// error bars) for refresh cost.
    pub max_pending: u64,
    /// Where to flush the final merged snapshot on shutdown.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            ingest_addr: "127.0.0.1:0".to_string(),
            query_addr: "127.0.0.1:0".to_string(),
            runtime: RuntimeConfig::default(),
            max_pending: 0,
            snapshot_path: None,
        }
    }
}

/// Monotonic service gauges, shared by both planes.
///
/// These are **server-lifetime accumulators**, deliberately not
/// recomputed from live connections: a gauge derived from per-connection
/// state silently resets when a client reconnects, and counts a batch a
/// client *started* sending even if the connection died mid-frame. Here
/// a batch is counted exactly once, after it has been fully decoded
/// *and* accepted into a shard ring, so `tuples_ingested()` is monotonic
/// across any amount of connection churn and never includes a partial
/// batch (the regression tests pin both properties).
#[derive(Debug, Default)]
struct StatsInner {
    tuples: AtomicU64,
    batches: AtomicU64,
    protocol_errors: AtomicU64,
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
    pool_allocations: AtomicU64,
    pool_reuses: AtomicU64,
}

/// A cloneable view of the service gauges (see the invariants on the
/// internal accumulator docs: monotonic across reconnects, partial
/// batches never counted).
#[derive(Debug, Clone)]
pub struct ServerStats {
    inner: Arc<StatsInner>,
    started: Instant,
}

impl ServerStats {
    fn new() -> Self {
        Self {
            inner: Arc::new(StatsInner::default()),
            started: Instant::now(),
        }
    }

    /// Tuples fully decoded and accepted into shard rings, ever.
    /// Monotonic across client reconnects and mid-batch disconnects.
    pub fn tuples_ingested(&self) -> u64 {
        self.inner.tuples.load(Ordering::Acquire)
    }

    /// Batches fully decoded and accepted into shard rings, ever.
    pub fn batches_ingested(&self) -> u64 {
        self.inner.batches.load(Ordering::Acquire)
    }

    /// Wire-ingest throughput gauge: accepted tuples per second of
    /// monotonic wall-clock since the server started. Never skewed by
    /// system-clock adjustments or connection churn.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.tuples_ingested() as f64 / secs
    }

    /// Typed protocol violations observed (each closed exactly one
    /// connection).
    pub fn protocol_errors(&self) -> u64 {
        self.inner.protocol_errors.load(Ordering::Acquire)
    }

    /// Ingest connections accepted, ever.
    pub fn connections_accepted(&self) -> u64 {
        self.inner.connections_accepted.load(Ordering::Acquire)
    }

    /// Ingest connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.inner.connections_open.load(Ordering::Acquire)
    }

    /// The runtime's batch-buffer pool counters, mirrored out of the
    /// ingest thread after every accepted batch — the zero-allocations
    /// evidence, observable over the query plane while ingest runs.
    pub fn pool_stats(&self) -> sss_stream::PoolStats {
        sss_stream::PoolStats {
            allocations: self.inner.pool_allocations.load(Ordering::Acquire),
            reuses: self.inner.pool_reuses.load(Ordering::Acquire),
        }
    }
}

/// One ingest connection's state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    out: Vec<u8>,
    out_pos: usize,
    /// Handshake completed: `BATCH`/`SYNC` frames are admissible.
    hello_done: bool,
    /// Close once the out-buffer drains (set after queueing an `ERROR`).
    closing: bool,
    /// Write interest currently armed with the poller.
    armed_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            out_pos: 0,
            hello_done: false,
            closing: false,
            armed_write: false,
        }
    }

    /// Push buffered response bytes; `Ok(true)` when fully drained.
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped reading",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

/// What the per-connection frame pump decided.
enum Verdict {
    /// Keep serving this connection.
    Keep,
    /// Drop it now (peer gone, or socket error).
    Drop,
}

/// A started service: two background threads, two bound listeners.
///
/// Obtain the final merged summary with
/// [`wait`](RunningServer::wait) (after a client-driven shutdown) or
/// [`shutdown_and_wait`](RunningServer::shutdown_and_wait).
#[derive(Debug)]
pub struct RunningServer {
    ingest_addr: SocketAddr,
    query_addr: SocketAddr,
    stats: ServerStats,
    shutdown: Arc<AtomicBool>,
    ingest: Option<JoinHandle<Result<MultiSummary>>>,
    query: Option<JoinHandle<Result<()>>>,
}

impl RunningServer {
    /// Bind both planes and spawn the service threads. The listeners
    /// are bound synchronously, so [`ingest_addr`](Self::ingest_addr) /
    /// [`query_addr`](Self::query_addr) are valid (with real ports,
    /// even for port-0 binds) as soon as this returns.
    ///
    /// # Errors
    ///
    /// Bind failures, invalid runtime geometry, or invalid summary
    /// geometry in `spec`.
    pub fn start(config: ServerConfig, spec: &MultiSpec) -> Result<RunningServer> {
        let ingest_listener = TcpListener::bind(&config.ingest_addr)
            .map_err(|e| NetError::io("bind ingest listener", e))?;
        let query_listener = TcpListener::bind(&config.query_addr)
            .map_err(|e| NetError::io("bind query listener", e))?;
        let ingest_addr = ingest_listener
            .local_addr()
            .map_err(|e| NetError::io("resolve ingest address", e))?;
        let query_addr = query_listener
            .local_addr()
            .map_err(|e| NetError::io("resolve query address", e))?;

        let prototype = spec.summary()?;
        let head = wire::Head {
            kind: MultiSummary::KIND.to_string(),
            format: MultiSummary::FORMAT,
            fingerprint: prototype.fingerprint(),
        };
        let runtime = ShardedRuntime::new(config.runtime, &prototype)?;
        let replica = runtime.read_replica(config.max_pending)?;
        let query_handle = runtime.query_handle();

        let stats = ServerStats::new();
        let shutdown = Arc::new(AtomicBool::new(false));

        let ingest = {
            let stats = Arc::clone(&stats.inner);
            let shutdown = Arc::clone(&shutdown);
            let snapshot_path = config.snapshot_path.clone();
            std::thread::Builder::new()
                .name("sss-net-ingest".to_string())
                .spawn(move || {
                    ingest_loop(
                        ingest_listener,
                        runtime,
                        head,
                        stats,
                        shutdown,
                        snapshot_path,
                    )
                })
                .map_err(|e| NetError::io("spawn ingest thread", e))?
        };
        let query = {
            let stats = stats.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("sss-net-query".to_string())
                .spawn(move || query_loop(query_listener, query_handle, replica, stats, shutdown))
                .map_err(|e| NetError::io("spawn query thread", e))?
        };

        Ok(RunningServer {
            ingest_addr,
            query_addr,
            stats,
            shutdown,
            ingest: Some(ingest),
            query: Some(query),
        })
    }

    /// The bound ingest-plane address (real port, even for port-0
    /// binds).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound query-plane address.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// A cloneable view of the service gauges.
    pub fn stats(&self) -> ServerStats {
        self.stats.clone()
    }

    /// Raise the shutdown flag; both threads notice within one event
    /// tick. Does not block — pair with [`wait`](Self::wait).
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Join both service threads and return the final merged summary
    /// (after the shard rings drained; the snapshot, if configured, has
    /// been written). Blocks until a shutdown is signalled — by
    /// [`signal_shutdown`](Self::signal_shutdown) or a query-plane
    /// `{"cmd":"shutdown"}`.
    ///
    /// # Errors
    ///
    /// The first error either thread hit, or
    /// [`NetError::ThreadPanicked`].
    pub fn wait(mut self) -> Result<MultiSummary> {
        let ingest = self.ingest.take().expect("wait() consumes self");
        let query = self.query.take().expect("wait() consumes self");
        let summary = ingest
            .join()
            .map_err(|_| NetError::ThreadPanicked { thread: "ingest" })?;
        let query_result = query
            .join()
            .map_err(|_| NetError::ThreadPanicked { thread: "query" })?;
        let summary = summary?;
        query_result?;
        Ok(summary)
    }

    /// [`signal_shutdown`](Self::signal_shutdown) then
    /// [`wait`](Self::wait).
    ///
    /// # Errors
    ///
    /// As for [`wait`](Self::wait).
    pub fn shutdown_and_wait(self) -> Result<MultiSummary> {
        self.signal_shutdown();
        self.wait()
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        // A dropped-without-wait server must not leave service threads
        // spinning: raise the flag so they exit within a tick.
        self.shutdown.store(true, Ordering::Release);
    }
}

/// The ingest plane: accept, handshake, decode into loaned buffers,
/// push, until shutdown; then drain and merge.
fn ingest_loop(
    listener: TcpListener,
    mut runtime: ShardedRuntime<MultiSummary>,
    head: wire::Head,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    snapshot_path: Option<PathBuf>,
) -> Result<MultiSummary> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::io("ingest listener nonblocking", e))?;
    let banner = wire::encode_head(&head.kind, head.format, head.fingerprint)?;
    let mut poller = Poller::new().map_err(|e| NetError::io("create ingest poller", e))?;
    poller
        .register(&listener, TOKEN_LISTENER, Interest::READ)
        .map_err(|e| NetError::io("register ingest listener", e))?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];

    while !shutdown.load(Ordering::Acquire) {
        poller
            .wait(&mut events, Some(TICK))
            .map_err(|e| NetError::io("ingest poll", e))?;
        for &ev in &events {
            if ev.token == TOKEN_LISTENER {
                accept_all(
                    &listener,
                    &mut poller,
                    &mut conns,
                    &mut next_token,
                    &banner,
                    &stats,
                );
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue; // closed earlier this turn
            };
            let mut verdict = Verdict::Keep;
            if ev.readable || ev.hangup {
                verdict = pump_connection(conn, &mut runtime, &head, &stats, &mut scratch);
            }
            if matches!(verdict, Verdict::Keep) && (ev.writable || !conn.out.is_empty()) {
                match conn.flush() {
                    Ok(true) if conn.closing => verdict = Verdict::Drop,
                    Ok(_) => {}
                    Err(_) => verdict = Verdict::Drop,
                }
            }
            match verdict {
                Verdict::Drop => {
                    let conn = conns.remove(&ev.token).expect("checked above");
                    let _ = poller.deregister(&conn.stream);
                    stats.connections_open.fetch_sub(1, Ordering::AcqRel);
                }
                Verdict::Keep => {
                    let want_write = conn.out_pos < conn.out.len();
                    if want_write != conn.armed_write {
                        conn.armed_write = want_write;
                        let interest = if want_write {
                            Interest::READ_WRITE
                        } else {
                            Interest::READ
                        };
                        let _ = poller.modify(&conn.stream, ev.token, interest);
                    }
                }
            }
        }
    }

    // Graceful drain: best-effort flush of pending responses, then let
    // the rings empty through into_merged (dropping the lanes closes
    // the data rings; each worker drains before exiting).
    for (_, mut conn) in conns.drain() {
        let _ = conn.flush();
    }
    drop(poller);
    drop(listener);
    mirror_pool(&stats, &runtime);
    let summary = runtime.into_merged()?;
    if let Some(path) = snapshot_path {
        let bytes = summary.encode()?;
        std::fs::write(&path, bytes).map_err(|e| NetError::io("write final snapshot", e))?;
    }
    Ok(summary)
}

/// Drain the accept queue, registering each new connection and queueing
/// its banner.
fn accept_all(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    banner: &[u8],
    stats: &StatsInner,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                let mut conn = Conn::new(stream);
                // The server speaks first: the banner head goes out
                // before any client frame is read.
                protocol::write_frame(&mut conn.out, protocol::FRAME_HELLO_OK, banner);
                let drained = conn.flush().unwrap_or(false);
                conn.armed_write = !drained;
                let interest = if drained {
                    Interest::READ
                } else {
                    Interest::READ_WRITE
                };
                if poller.register(&conn.stream, token, interest).is_err() {
                    continue;
                }
                stats.connections_accepted.fetch_add(1, Ordering::AcqRel);
                stats.connections_open.fetch_add(1, Ordering::AcqRel);
                conns.insert(token, conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Read what the socket has, decode complete frames, apply them.
fn pump_connection(
    conn: &mut Conn,
    runtime: &mut ShardedRuntime<MultiSummary>,
    head: &wire::Head,
    stats: &StatsInner,
    scratch: &mut [u8],
) -> Verdict {
    let mut peer_gone = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                peer_gone = true;
                break;
            }
            Ok(n) => {
                conn.reader.extend(&scratch[..n]);
                // Fairness: one chunk per loop turn; level-triggered
                // polling re-reports any remainder.
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                peer_gone = true;
                break;
            }
        }
    }

    if !conn.closing {
        if let Err(frame_error) = drain_frames(conn, runtime, head, stats) {
            // One typed violation: report it on this connection, close
            // only this connection. Everything else keeps streaming.
            stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
            let code = error_code(&frame_error);
            protocol::write_error(&mut conn.out, code, &frame_error.to_string());
            conn.closing = true;
        }
    }

    if peer_gone {
        // A disconnect mid-frame is itself a typed protocol error —
        // partially transferred batches are never counted as ingested.
        if let Err(truncated) = conn.reader.finish() {
            if !conn.closing {
                stats.protocol_errors.fetch_add(1, Ordering::AcqRel);
            }
            let _ = truncated; // the evidence: FrameError::TruncatedStream
        }
        return Verdict::Drop;
    }
    Verdict::Keep
}

/// Apply every complete frame buffered on `conn`.
fn drain_frames(
    conn: &mut Conn,
    runtime: &mut ShardedRuntime<MultiSummary>,
    head: &wire::Head,
    stats: &StatsInner,
) -> std::result::Result<(), FrameError> {
    loop {
        let Some((tag, payload)) = conn.reader.next_frame()? else {
            return Ok(());
        };
        match tag {
            protocol::FRAME_HELLO => {
                let client_head = wire::peek(payload).map_err(|_| FrameError::Rejected {
                    code: protocol::ERR_PROTOCOL,
                    detail: "unparseable handshake head".to_string(),
                })?;
                if client_head.kind != head.kind || client_head.format != head.format {
                    return Err(FrameError::Rejected {
                        code: protocol::ERR_WIRE_MISMATCH,
                        detail: format!(
                            "client speaks {} v{}, server is {} v{}",
                            client_head.kind, client_head.format, head.kind, head.format
                        ),
                    });
                }
                if client_head.fingerprint != head.fingerprint {
                    return Err(FrameError::Rejected {
                        code: protocol::ERR_FINGERPRINT,
                        detail: format!(
                            "client fingerprint {:#018x} does not match server {:#018x}",
                            client_head.fingerprint, head.fingerprint
                        ),
                    });
                }
                conn.hello_done = true;
                // Ack so the client's connect() is synchronous — it
                // knows the handshake verdict before sending a batch.
                protocol::write_frame(&mut conn.out, protocol::FRAME_HELLO_OK, &[]);
            }
            protocol::FRAME_BATCH => {
                if !conn.hello_done {
                    return Err(FrameError::HandshakeRequired);
                }
                let hint = payload.len() / 8;
                let mut batch = runtime.loan_batch_buf(hint);
                match protocol::decode_batch_into(payload, &mut batch) {
                    Ok(()) => {
                        let tuples = batch.len() as u64;
                        if runtime.push_loaned(batch).is_err() {
                            // A dead shard worker is a server-side
                            // failure, not a client protocol error.
                            return Err(FrameError::Rejected {
                                code: protocol::ERR_PROTOCOL,
                                detail: "ingest runtime unavailable".to_string(),
                            });
                        }
                        stats.tuples.fetch_add(tuples, Ordering::AcqRel);
                        stats.batches.fetch_add(1, Ordering::AcqRel);
                        mirror_pool(stats, runtime);
                    }
                    Err(e) => {
                        // Return the loaned buffer before reporting.
                        batch.clear();
                        let _ = runtime.push_loaned(batch);
                        return Err(e);
                    }
                }
            }
            protocol::FRAME_SYNC => {
                if !conn.hello_done {
                    return Err(FrameError::HandshakeRequired);
                }
                let cookie = protocol::decode_sync(payload)?;
                protocol::write_sync(&mut conn.out, protocol::FRAME_SYNC_OK, cookie);
            }
            other => {
                // Server-to-client frames arriving at the server.
                return Err(FrameError::UnknownType { tag: other });
            }
        }
    }
}

/// The `ERROR`-frame code for a framing violation.
fn error_code(e: &FrameError) -> u16 {
    match e {
        FrameError::Rejected { code, .. } => *code,
        _ => protocol::ERR_PROTOCOL,
    }
}

/// Mirror the runtime's pool counters into the shared stats so the
/// query plane (and the acceptance bench) can observe the
/// zero-allocations invariant while ingest runs.
fn mirror_pool(stats: &StatsInner, runtime: &ShardedRuntime<MultiSummary>) {
    let pool = runtime.pool_stats();
    stats
        .pool_allocations
        .store(pool.allocations, Ordering::Release);
    stats.pool_reuses.store(pool.reuses, Ordering::Release);
}

/// One query connection's state: a line buffer in, a response buffer
/// out.
struct QueryConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
}

impl QueryConn {
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped reading",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

/// The query plane: newline-delimited JSON over the slim replica.
fn query_loop(
    listener: TcpListener,
    handle: QueryHandle<MultiSummary>,
    mut replica: ReadReplica<MultiSummary>,
    stats: ServerStats,
    shutdown: Arc<AtomicBool>,
) -> Result<()> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::io("query listener nonblocking", e))?;
    let mut poller = Poller::new().map_err(|e| NetError::io("create query poller", e))?;
    poller
        .register(&listener, TOKEN_LISTENER, Interest::READ)
        .map_err(|e| NetError::io("register query listener", e))?;

    let mut conns: HashMap<u64, QueryConn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];

    while !shutdown.load(Ordering::Acquire) {
        poller
            .wait(&mut events, Some(TICK))
            .map_err(|e| NetError::io("query poll", e))?;
        for &ev in &events {
            if ev.token == TOKEN_LISTENER {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let token = next_token;
                            next_token += 1;
                            let conn = QueryConn {
                                stream,
                                inbuf: Vec::new(),
                                out: Vec::new(),
                                out_pos: 0,
                            };
                            if poller.register(&conn.stream, token, Interest::READ).is_ok() {
                                conns.insert(token, conn);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            let mut drop_conn = false;
            if ev.readable || ev.hangup {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            drop_conn = true;
                            break;
                        }
                        Ok(n) => {
                            conn.inbuf.extend_from_slice(&scratch[..n]);
                            if n < scratch.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            drop_conn = true;
                            break;
                        }
                    }
                }
                // Answer every complete line buffered so far.
                while let Some(nl) = conn.inbuf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = conn.inbuf.drain(..=nl).collect();
                    let line = String::from_utf8_lossy(&line[..nl]);
                    let response =
                        answer_query(line.trim(), &mut replica, &handle, &stats, &shutdown);
                    conn.out.extend_from_slice(response.as_bytes());
                    conn.out.push(b'\n');
                }
            }
            if !drop_conn && !conn.out.is_empty() {
                match conn.flush() {
                    Ok(_) => {}
                    Err(_) => drop_conn = true,
                }
            }
            if drop_conn || ev.hangup {
                if let Some(conn) = conns.remove(&ev.token) {
                    let _ = poller.deregister(&conn.stream);
                }
            } else {
                let want_write = conn.out_pos < conn.out.len();
                let interest = if want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                let _ = poller.modify(&conn.stream, ev.token, interest);
            }
        }
    }

    for (_, mut conn) in conns.drain() {
        let _ = conn.flush();
    }
    Ok(())
}

/// Render a finite float as a JSON number, a non-finite one as `null`
/// (the sibling `*_bits` field always carries the exact IEEE-754
/// pattern, the same convention as the snapshot wire format).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Append `"name":value,"name_bits":bits` for an exact-round-trip
/// float field.
fn push_f64_field(out: &mut String, name: &str, value: f64) {
    out.push_str(&format!(
        "\"{name}\":{},\"{name}_bits\":{}",
        json_num(value),
        wire::bits_of(value)
    ));
}

/// Answer one query-plane request line.
fn answer_query(
    line: &str,
    replica: &mut ReadReplica<MultiSummary>,
    handle: &QueryHandle<MultiSummary>,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) -> String {
    let req = match protocol::parse_query_line(line) {
        Ok(req) => req,
        Err(e) => return format!("{{\"ok\":false,\"error\":{e:?}}}"),
    };
    let result: std::result::Result<String, String> = match req.cmd.as_str() {
        "self_join" => replica
            .self_join_estimate()
            .map(|est| {
                let mut out = String::from("{\"ok\":true,\"cmd\":\"self_join\",");
                push_f64_field(&mut out, "value", est.value);
                out.push(',');
                push_f64_field(&mut out, "variance", est.variance);
                push_intervals(&mut out, &est, req.confidence);
                out.push('}');
                out
            })
            .map_err(|e| e.to_string()),
        "distinct" => replica
            .distinct_estimate()
            .map(|est| {
                let mut out = String::from("{\"ok\":true,\"cmd\":\"distinct\",");
                push_f64_field(&mut out, "value", est.value);
                out.push(',');
                push_f64_field(&mut out, "variance", est.variance);
                push_intervals(&mut out, &est, req.confidence);
                out.push('}');
                out
            })
            .map_err(|e| e.to_string()),
        "quantile" => {
            let q = req.q.unwrap_or(0.5);
            replica
                .quantile(q)
                .and_then(|value| {
                    let (lo, hi) = replica.quantile_bounds(q)?;
                    let mut out = String::from("{\"ok\":true,\"cmd\":\"quantile\",");
                    out.push_str(&format!("\"q\":{},", json_num(q)));
                    push_f64_field(&mut out, "value", value);
                    out.push(',');
                    push_f64_field(&mut out, "lo", lo);
                    out.push(',');
                    push_f64_field(&mut out, "hi", hi);
                    out.push('}');
                    Ok(out)
                })
                .map_err(|e| e.to_string())
        }
        "topk" => {
            let k = req.k.unwrap_or(10) as usize;
            replica
                .top_k(k)
                .map(|top| {
                    let mut out = String::from("{\"ok\":true,\"cmd\":\"topk\",\"top\":[");
                    for (i, (key, est)) in top.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{{\"key\":{key},"));
                        push_f64_field(&mut out, "value", est.value);
                        push_intervals(&mut out, est, req.confidence);
                        out.push('}');
                    }
                    out.push_str("]}");
                    out
                })
                .map_err(|e| e.to_string())
        }
        "stats" => {
            let pool = stats.pool_stats();
            Ok(format!(
                "{{\"ok\":true,\"cmd\":\"stats\",\"tuples\":{},\"batches\":{},\
                 \"tuples_per_sec\":{},\"protocol_errors\":{},\
                 \"connections_accepted\":{},\"connections_open\":{},\
                 \"pool_allocations\":{},\"pool_reuses\":{},\
                 \"replica_version\":{},\"replica_pending\":{},\
                 \"runtime_tuples\":{}}}",
                stats.tuples_ingested(),
                stats.batches_ingested(),
                json_num(stats.tuples_per_sec()),
                stats.protocol_errors(),
                stats.connections_accepted(),
                stats.connections_open(),
                pool.allocations,
                pool.reuses,
                replica.version(),
                replica.pending(),
                handle.tuples_ingested(),
            ))
        }
        "shutdown" => {
            shutdown.store(true, Ordering::Release);
            Ok("{\"ok\":true,\"cmd\":\"shutdown\"}".to_string())
        }
        other => Err(format!("unknown cmd {other:?}")),
    };
    match result {
        Ok(json) => json,
        Err(e) => format!("{{\"ok\":false,\"error\":{e:?}}}"),
    }
}

/// Append `,"half_width_chebyshev":…,"half_width_clt":…` when a
/// confidence level was requested and the estimate carries variance.
fn push_intervals(out: &mut String, est: &sss_core::Estimate, confidence: Option<f64>) {
    let Some(level) = confidence else { return };
    if let (Ok(cheb), Ok(clt)) = (est.chebyshev(level), est.clt(level)) {
        out.push_str(&format!(
            ",\"confidence\":{},\"half_width_chebyshev\":{},\"half_width_clt\":{}",
            json_num(level),
            json_num(cheb.half_width()),
            json_num(clt.half_width())
        ));
    }
}
