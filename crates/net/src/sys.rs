//! The event-notification shim: epoll on Linux, `poll(2)` elsewhere.
//!
//! The workspace is offline/vendored — no tokio, no mio, no `libc`
//! crate — so readiness notification is declared directly against the
//! C library the binary already links: four `extern "C"` entry points
//! on Linux (`epoll_create1`/`epoll_ctl`/`epoll_wait`/`close`), one on
//! other unix (`poll`). This module is the crate's single audited
//! `unsafe` island (see the crate docs); everything above it sees only
//! the safe [`Poller`]/[`Event`] API.
//!
//! Both backends are used **level-triggered**: a socket with unread
//! bytes (or writable space, when write interest is armed) reports
//! ready on every wait until drained. Level-triggering is deliberate —
//! the ingest loop reads a bounded amount per readiness event to keep
//! per-connection fairness, and a level-triggered poller re-reports the
//! remainder without the re-arm bookkeeping edge-triggering needs.
//!
//! On x86-64 Linux `struct epoll_event` is `#[repr(C, packed)]` — the
//! kernel ABI has no padding between `events` and `data` there — while
//! every other architecture uses natural `#[repr(C)]` alignment;
//! getting this wrong corrupts the token of every second event, so the
//! layout is pinned by `cfg_attr` exactly as the kernel headers do.

// The one audited unsafe island of the crate (see crate docs): raw
// syscall declarations and the calls into them, nothing else.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// A readiness event: which registered token fired, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// The descriptor has buffer space to write.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the connection
    /// should be drained and closed.
    pub hangup: bool,
}

/// What a registered descriptor should wake the poller for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable bytes / pending accepts.
    pub readable: bool,
    /// Wake on writable buffer space.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an ingest connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — armed while a response is buffered.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// Clamp an optional timeout to the `c_int` milliseconds the syscalls
/// take (`-1` = block forever). Sub-millisecond waits round up to 1ms
/// so a short timeout never becomes a busy spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if d > Duration::ZERO && ms == 0 {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI: packed on x86-64 (no padding between the 32-bit
    // event mask and the 64-bit data word), naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// The Linux backend: one epoll instance, closed on drop.
    pub struct Poller {
        epfd: RawFd,
        /// Reused kernel-side event buffer for [`wait`](Poller::wait).
        scratch: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flags word and returns a new
            // fd or -1; no pointers are exchanged.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                scratch: vec![EpollEvent { events: 0, data: 0 }; 64],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if interest.readable {
                mask |= EPOLLIN;
            }
            if interest.writable {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: mask,
                data: token,
            };
            // SAFETY: `ev` is a live, correctly laid out epoll_event for
            // the duration of the call; the kernel copies it out.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // A dummy event for portability with pre-2.6.9 kernels, which
            // required a non-null pointer even for DEL.
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            // SAFETY: `scratch` is a live buffer of `len` epoll_events;
            // the kernel writes at most `maxevents` entries into it.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for slot in &self.scratch[..n as usize] {
                // Copy out of the (possibly packed) struct by value
                // before touching the fields — references into packed
                // fields are undefined behaviour.
                let mask = { slot.events };
                let token = { slot.data };
                events.push(Event {
                    token,
                    readable: mask & EPOLLIN != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(events.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is a descriptor this struct exclusively owns.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// The portable unix backend: the full registration list is handed
    /// to `poll(2)` on every wait. O(n) per wait instead of epoll's
    /// O(ready), which is fine at the connection counts the service
    /// targets on non-Linux dev hosts.
    pub struct Poller {
        registered: Vec<(RawFd, u64, Interest)>,
        scratch: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Vec::new(),
                scratch: Vec::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.registered.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for entry in &mut self.registered {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.registered.len();
            self.registered.retain(|&(f, _, _)| f != fd);
            if self.registered.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            self.scratch.clear();
            for &(fd, _, interest) in &self.registered {
                let mut mask = 0i16;
                if interest.readable {
                    mask |= POLLIN;
                }
                if interest.writable {
                    mask |= POLLOUT;
                }
                self.scratch.push(PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                });
            }
            if self.scratch.is_empty() {
                if let Some(d) = timeout {
                    std::thread::sleep(d);
                }
                return Ok(0);
            }
            // SAFETY: `scratch` is a live pollfd array of exactly `nfds`
            // entries for the duration of the call.
            let n = unsafe {
                poll(
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for (slot, &(_, token, _)) in self.scratch.iter().zip(&self.registered) {
                if slot.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: slot.revents & POLLIN != 0,
                    writable: slot.revents & POLLOUT != 0,
                    hangup: slot.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(not(unix))]
compile_error!("sss-net's event loop needs a unix host (epoll or poll(2))");

/// Readiness notification over a set of registered file descriptors.
///
/// A thin safe facade over the platform backend; see the module docs
/// for the backend selection and triggering semantics.
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// Create an empty poller.
    ///
    /// # Errors
    ///
    /// The OS refused an epoll instance (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Start watching `fd` under `token`. The descriptor must outlive
    /// its registration (deregister before closing it).
    ///
    /// # Errors
    ///
    /// The fd is already registered, or the kernel rejected it.
    pub fn register(
        &mut self,
        fd: &impl AsRawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(fd.as_raw_fd(), token, interest)
    }

    /// Change the interest set (and token) of a registered descriptor.
    ///
    /// # Errors
    ///
    /// The fd is not registered.
    pub fn modify(&mut self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd.as_raw_fd(), token, interest)
    }

    /// Stop watching a registered descriptor.
    ///
    /// # Errors
    ///
    /// The fd is not registered.
    pub fn deregister(&mut self, fd: &impl AsRawFd) -> io::Result<()> {
        self.inner.deregister(fd.as_raw_fd())
    }

    /// Block until at least one registered descriptor is ready, the
    /// timeout elapses, or a signal interrupts the wait (reported as
    /// zero events, not an error). Ready events replace the contents of
    /// `events`; the return value is the event count.
    ///
    /// # Errors
    ///
    /// A genuine syscall failure (bad fd slipped into the set, fd
    /// exhaustion) — `EINTR` is absorbed.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_accept_and_read_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&listener, 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait returns no events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let mut client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let (mut conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.register(&conn, 9, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();

        // Level-triggered: the data re-reports until drained.
        for _ in 0..2 {
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(n >= 1);
            assert!(events.iter().any(|e| e.token == 9 && e.readable));
        }
        let mut buf = [0u8; 8];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);

        poller.deregister(&conn).unwrap();
        poller.deregister(&listener).unwrap();
        assert!(poller.deregister(&listener).is_err());
    }

    #[test]
    fn write_interest_fires_on_an_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&client, 3, Interest::READ_WRITE).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
    }
}
