//! End-to-end tests of the ingest service: wire-ingested runs must be
//! bit-identical to in-process `push`, protocol violations must be
//! typed and single-connection, and the service gauges must be
//! monotonic across connection churn.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::wire::{FrameError, Head};
use sss_core::{JoinSchema, MultiSpec, MultiSummary, Portable, Summary};
use sss_net::protocol;
use sss_net::{IngestClient, NetError, QueryClient, RunningServer, ServerConfig};
use sss_stream::runtime::RuntimeConfig;
use sss_stream::{Partition, ShardedRuntime};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A small spec every test agrees on (seeded, so fingerprints match
/// across independently constructed copies).
fn spec(seed: u64) -> MultiSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiSpec::new(JoinSchema::fagms(2, 64, &mut rng), &mut rng)
        .distinct_precision(6)
        .quantile_k(64)
}

fn server(seed: u64, shards: usize, partition: Partition) -> RunningServer {
    let config = ServerConfig {
        runtime: RuntimeConfig {
            shards,
            queue_depth: 8,
            partition,
        },
        ..ServerConfig::default()
    };
    RunningServer::start(config, &spec(seed)).expect("server starts")
}

/// Read one `[len][type][payload]` frame from a raw socket.
fn read_raw_frame(stream: &mut TcpStream) -> Option<(u8, Vec<u8>)> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).ok()?;
    let len = u32::from_le_bytes(len) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    Some((body[0], body[1..].to_vec()))
}

/// Complete the banner handshake on a raw socket (echoing the head),
/// for tests that then violate the protocol deliberately.
fn raw_handshake(stream: &mut TcpStream) -> Vec<u8> {
    let (tag, banner) = read_raw_frame(stream).expect("banner");
    assert_eq!(tag, protocol::FRAME_HELLO_OK);
    let mut hello = Vec::new();
    protocol::write_frame(&mut hello, protocol::FRAME_HELLO, &banner);
    stream.write_all(&hello).unwrap();
    let (tag, _) = read_raw_frame(stream).expect("handshake ack");
    assert_eq!(tag, protocol::FRAME_HELLO_OK);
    banner
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance-criteria pin: a stream ingested over the wire by
    /// one connection produces a merged summary **bit-identical** to
    /// in-process `push` of the same batches into an identically
    /// configured runtime (same spec, same shard count, same batch
    /// boundaries — KLL is insertion-order-dependent, so the guarantee
    /// is stated for an identical delivery schedule, exactly as the
    /// in-process linearity tests state it).
    #[test]
    fn wire_ingest_is_bit_identical_to_in_process_push(
        keys in prop::collection::vec(any::<u64>(), 1..600),
        chunk in 1usize..97,
        shards in 1usize..3,
        seed in 0u64..1000,
    ) {
        let config = RuntimeConfig {
            shards,
            queue_depth: 8,
            partition: Partition::RoundRobin,
        };

        // In-process reference.
        let prototype = spec(seed).summary().unwrap();
        let mut reference = ShardedRuntime::new(config, &prototype).unwrap();
        for batch in keys.chunks(chunk) {
            reference.push(batch).unwrap();
        }
        let expect = reference.into_merged().unwrap();

        // Same batches over the wire.
        let srv = RunningServer::start(
            ServerConfig { runtime: config, ..ServerConfig::default() },
            &spec(seed),
        ).unwrap();
        let mut client = IngestClient::connect(srv.ingest_addr()).unwrap();
        for batch in keys.chunks(chunk) {
            client.send_batch(batch).unwrap();
        }
        client.sync().unwrap();
        client.finish().unwrap();
        let got = srv.shutdown_and_wait().unwrap();

        prop_assert_eq!(got.encode().unwrap(), expect.encode().unwrap());
    }
}

#[test]
fn handshake_rejects_wrong_fingerprint_and_kind_with_typed_codes() {
    let srv = server(42, 1, Partition::RoundRobin);

    // Wrong fingerprint: same kind/format, different configuration.
    let bad = Head {
        kind: MultiSummary::KIND.to_string(),
        format: MultiSummary::FORMAT,
        fingerprint: 0xdead_beef,
    };
    match IngestClient::connect_checked(srv.ingest_addr(), &bad) {
        Err(NetError::Core(sss_core::Error::Frame(FrameError::Rejected { code, .. }))) => {
            assert_eq!(code, protocol::ERR_FINGERPRINT);
        }
        other => panic!("expected a fingerprint rejection, got {other:?}"),
    }

    // Wrong kind entirely.
    let alien = Head {
        kind: "join".to_string(),
        format: 1,
        fingerprint: 1,
    };
    match IngestClient::connect_checked(srv.ingest_addr(), &alien) {
        Err(NetError::Core(sss_core::Error::Frame(FrameError::Rejected { code, .. }))) => {
            assert_eq!(code, protocol::ERR_WIRE_MISMATCH);
        }
        other => panic!("expected a wire-mismatch rejection, got {other:?}"),
    }

    // The rejections closed only their own connections: a correct
    // client still gets through and ingests.
    let mut good = IngestClient::connect(srv.ingest_addr()).unwrap();
    good.send_batch(&[1, 2, 3]).unwrap();
    good.sync().unwrap();
    assert_eq!(srv.stats().tuples_ingested(), 3);
    assert_eq!(srv.stats().protocol_errors(), 2);
    srv.shutdown_and_wait().unwrap();
}

#[test]
fn malformed_frames_close_one_connection_and_spare_the_rest() {
    let srv = server(7, 2, Partition::Hash);
    let mut good = IngestClient::connect(srv.ingest_addr()).unwrap();
    good.send_batch(&[10, 20, 30, 40]).unwrap();
    good.sync().unwrap();

    // An HTTP client wanders in: its request line reads as an absurd
    // length prefix. The server must answer with a typed ERROR frame
    // and close that connection only.
    let mut http = TcpStream::connect(srv.ingest_addr()).unwrap();
    let _banner = read_raw_frame(&mut http).expect("banner");
    http.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (tag, payload) = read_raw_frame(&mut http).expect("error frame");
    assert_eq!(tag, protocol::FRAME_ERROR);
    assert!(matches!(
        protocol::decode_error(&payload),
        FrameError::Rejected {
            code: protocol::ERR_PROTOCOL,
            ..
        }
    ));
    let mut rest = Vec::new();
    http.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closes after the error frame");

    // A batch before the handshake is its own typed violation.
    let mut eager = TcpStream::connect(srv.ingest_addr()).unwrap();
    let _banner = read_raw_frame(&mut eager).expect("banner");
    let mut frame = Vec::new();
    protocol::write_batch(&mut frame, &[1, 2, 3]);
    eager.write_all(&frame).unwrap();
    let (tag, payload) = read_raw_frame(&mut eager).expect("error frame");
    assert_eq!(tag, protocol::FRAME_ERROR);
    let detail = protocol::decode_error(&payload).to_string();
    assert!(detail.contains("handshake"), "got: {detail}");

    // A batch whose key count contradicts its length, on a completed
    // handshake.
    let mut liar = TcpStream::connect(srv.ingest_addr()).unwrap();
    raw_handshake(&mut liar);
    let mut bad_batch = Vec::new();
    // Claims 7 keys, carries 1.
    let payload: Vec<u8> = 7u32
        .to_le_bytes()
        .iter()
        .chain(42u64.to_le_bytes().iter())
        .copied()
        .collect();
    protocol::write_frame(&mut bad_batch, protocol::FRAME_BATCH, &payload);
    liar.write_all(&bad_batch).unwrap();
    let (tag, _) = read_raw_frame(&mut liar).expect("error frame");
    assert_eq!(tag, protocol::FRAME_ERROR);

    // Through all three failures the good connection kept streaming,
    // and no partial batch leaked into the gauges.
    good.send_batch(&[50, 60]).unwrap();
    good.sync().unwrap();
    let stats = srv.stats();
    assert_eq!(stats.tuples_ingested(), 6);
    assert_eq!(stats.protocol_errors(), 3);
    let merged = srv.shutdown_and_wait().unwrap();
    // Exactly the good client's six tuples were sketched: an
    // identically configured in-process runtime fed the same batches
    // (same delivery schedule — KLL is insertion-order-dependent)
    // produces the same bytes.
    let mut reference = ShardedRuntime::new(
        RuntimeConfig {
            shards: 2,
            queue_depth: 8,
            partition: Partition::Hash,
        },
        &spec(7).summary().unwrap(),
    )
    .unwrap();
    reference.push(&[10, 20, 30, 40]).unwrap();
    reference.push(&[50, 60]).unwrap();
    let expect = reference.into_merged().unwrap();
    assert_eq!(merged.encode().unwrap(), expect.encode().unwrap());
}

#[test]
fn gauges_are_monotonic_across_reconnects_and_mid_batch_disconnects() {
    let srv = server(9, 1, Partition::RoundRobin);
    let stats = srv.stats();

    // First client: 5 tuples, then a clean disconnect.
    let mut first = IngestClient::connect(srv.ingest_addr()).unwrap();
    first.send_batch(&[1, 2, 3, 4, 5]).unwrap();
    first.sync().unwrap();
    first.finish().unwrap();
    assert_eq!(stats.tuples_ingested(), 5);
    assert_eq!(stats.batches_ingested(), 1);

    // Reconnect: the gauge continues, it does not reset with the
    // connection.
    let mut second = IngestClient::connect(srv.ingest_addr()).unwrap();
    second.send_batch(&[6, 7]).unwrap();
    second.sync().unwrap();
    assert_eq!(stats.tuples_ingested(), 7);

    // A third client dies mid-frame: the truncated batch must count as
    // a protocol error, never as ingested tuples.
    let mut dying = TcpStream::connect(srv.ingest_addr()).unwrap();
    raw_handshake(&mut dying);
    let mut frame = Vec::new();
    protocol::write_batch(&mut frame, &[100, 200, 300]);
    dying.write_all(&frame[..frame.len() / 2]).unwrap();
    drop(dying);

    // The disconnect lands asynchronously; the still-open connection
    // keeps working while we wait for it to register.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while stats.protocol_errors() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(stats.protocol_errors(), 1, "truncated stream is typed");
    assert_eq!(stats.tuples_ingested(), 7, "partial batch never counted");

    second.send_batch(&[8]).unwrap();
    second.sync().unwrap();
    assert_eq!(stats.tuples_ingested(), 8);
    assert!(stats.tuples_per_sec() > 0.0);
    assert_eq!(stats.connections_accepted(), 3);
    srv.shutdown_and_wait().unwrap();
}

#[test]
fn query_plane_answers_all_four_families_and_shutdown_snapshots() {
    let dir = std::env::temp_dir().join(format!("sss-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("final.sss");

    let config = ServerConfig {
        runtime: RuntimeConfig {
            shards: 2,
            queue_depth: 8,
            partition: Partition::RoundRobin,
        },
        snapshot_path: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let srv = RunningServer::start(config, &spec(3)).unwrap();

    let keys: Vec<u64> = (0..500u64).map(|i| i % 50).collect();
    let mut client = IngestClient::connect(srv.ingest_addr()).unwrap();
    for batch in keys.chunks(64) {
        client.send_batch(batch).unwrap();
    }
    client.sync().unwrap();

    let mut queries = QueryClient::connect(srv.query_addr()).unwrap();

    // All four query families answer ok, with interval fields when a
    // confidence level rides along.
    let sj = queries
        .request("{\"cmd\":\"self_join\",\"confidence\":0.95}")
        .unwrap();
    assert!(sj.contains("\"ok\":true"), "{sj}");
    assert!(sj.contains("half_width_chebyshev"), "{sj}");
    let distinct = queries.request("{\"cmd\":\"distinct\"}").unwrap();
    assert!(distinct.contains("\"ok\":true"), "{distinct}");
    let quantile = queries.request("{\"cmd\":\"quantile\",\"q\":0.5}").unwrap();
    assert!(quantile.contains("\"lo\""), "{quantile}");
    let topk = queries.request("{\"cmd\":\"topk\",\"k\":5}").unwrap();
    assert!(topk.contains("\"top\":["), "{topk}");
    let stats_line = queries.stats_line().unwrap();
    assert!(stats_line.contains("\"tuples\":500"), "{stats_line}");

    // A malformed query line is an error *response*, not a dropped
    // connection.
    let bad = queries.request("{\"q\":0.5}").unwrap();
    assert!(bad.contains("\"ok\":false"), "{bad}");
    let still = queries.request("{\"cmd\":\"distinct\"}").unwrap();
    assert!(still.contains("\"ok\":true"), "{still}");

    // The wire answer matches the in-process oracle bit for bit.
    let server_value = queries.self_join_bits().unwrap();
    let mut oracle = spec(3).summary().unwrap();
    oracle.update_batch(&keys);
    use sss_core::JoinQuery;
    assert_eq!(
        server_value.to_bits(),
        oracle.self_join_estimate().value.to_bits(),
        "slim replica answer must be bit-identical to the sequential oracle"
    );

    // Client-driven shutdown: drains, snapshots, exits. The merged
    // state is bit-identical to an identically sharded in-process run
    // of the same batches (the flat `oracle` above only pins the
    // linear self-join value — KLL bytes depend on the shard split).
    queries.shutdown().unwrap();
    let merged = srv.wait().unwrap();
    let mut reference = ShardedRuntime::new(
        RuntimeConfig {
            shards: 2,
            queue_depth: 8,
            partition: Partition::RoundRobin,
        },
        &spec(3).summary().unwrap(),
    )
    .unwrap();
    for batch in keys.chunks(64) {
        reference.push(batch).unwrap();
    }
    let expect = reference.into_merged().unwrap();
    assert_eq!(merged.encode().unwrap(), expect.encode().unwrap());

    // The final snapshot is a loadable Portable payload of the same
    // state.
    let bytes = std::fs::read(&snapshot).unwrap();
    let decoded = MultiSummary::decode(&bytes).unwrap();
    assert_eq!(decoded.encode().unwrap(), merged.encode().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The frame reader survives arbitrary corruption: any byte soup,
    /// delivered in any chunking, yields frames or one typed error —
    /// never a panic, never an untyped failure.
    #[test]
    fn frame_reader_never_panics_on_corrupt_streams(
        bytes in prop::collection::vec(any::<u8>(), 0..2000),
        chunk in 1usize..64,
    ) {
        let mut reader = protocol::FrameReader::new();
        'outer: for piece in bytes.chunks(chunk) {
            reader.extend(piece);
            loop {
                match reader.next_frame() {
                    Ok(Some((_tag, payload))) => {
                        // Decoders on arbitrary payloads must also be
                        // typed-total.
                        let mut sink = Vec::new();
                        let _ = protocol::decode_batch_into(payload, &mut sink);
                        let _ = protocol::decode_sync(payload);
                        let _ = protocol::decode_error(payload);
                    }
                    Ok(None) => break,
                    Err(_typed) => break 'outer,
                }
            }
        }
        // finish() is equally total.
        let _ = reader.finish();
    }
}
