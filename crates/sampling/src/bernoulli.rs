//! Bernoulli sampling: each tuple is kept independently with probability `p`.
//!
//! This is the *load shedding* scheme of the paper's Section VI-A. Two
//! implementations are provided:
//!
//! * [`BernoulliSampler`] tosses one coin per tuple — O(1) work per stream
//!   item whether or not it is kept.
//! * [`GeometricSkip`] draws the *gap* until the next kept tuple from the
//!   geometric distribution (Olken's interval generation, the paper's
//!   reference \[18\]) — O(1) work per *kept* tuple, which is what makes the
//!   speed-up of sketching a p-sample proportional to `1/p` rather than
//!   bounded by the per-tuple coin cost.

use crate::error::{Error, Result};
use rand::Rng;

/// Per-tuple coin-flip Bernoulli sampler.
///
/// The sampler owns its RNG so that a pipeline can call [`keep`] in a tight
/// loop without re-borrowing.
///
/// [`keep`]: BernoulliSampler::keep
#[derive(Debug, Clone)]
pub struct BernoulliSampler<R = rand::rngs::StdRng> {
    p: f64,
    rng: R,
}

impl<R: Rng> BernoulliSampler<R> {
    /// Create a sampler with inclusion probability `p ∈ (0, 1]`, seeding its
    /// internal RNG from `seed_rng`.
    ///
    /// `p = 0` is rejected along with everything else outside `(0, 1]`:
    /// a zero-probability sample carries no information, and every
    /// `1/p`-scaled estimator downstream would silently produce inf/NaN.
    pub fn new<S: Rng>(p: f64, seed_rng: &mut S) -> Result<Self>
    where
        R: rand::SeedableRng,
    {
        if !(p > 0.0 && p <= 1.0) {
            return Err(Error::InvalidProbability(p));
        }
        Ok(Self {
            p,
            rng: R::from_rng(seed_rng),
        })
    }

    /// Create from an explicit RNG. Same `p ∈ (0, 1]` contract as
    /// [`new`](Self::new).
    pub fn with_rng(p: f64, rng: R) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(Error::InvalidProbability(p));
        }
        Ok(Self { p, rng })
    }

    /// The inclusion probability.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Toss the coin for the next tuple.
    #[inline]
    pub fn keep(&mut self) -> bool {
        // Fast path for p = 1.0 keeps the unsampled case exactly lossless
        // (random() < 1.0 would already be always-true, but being explicit
        // documents the contract). p = 0 cannot occur: the constructors
        // reject it.
        if self.p >= 1.0 {
            return true;
        }
        self.rng.random::<f64>() < self.p
    }

    /// Filter an iterator of items, keeping each independently with
    /// probability `p`.
    pub fn filter_iter<I>(mut self, iter: I) -> impl Iterator<Item = I::Item>
    where
        I: IntoIterator,
    {
        iter.into_iter().filter(move |_| self.keep())
    }
}

/// Geometric-skip Bernoulli sampler: generates the positions of kept tuples
/// directly.
///
/// The gap `G` before the next kept tuple satisfies `P(G = k) = (1−p)ᵏ·p`,
/// i.e. `G = ⌊ln U / ln(1−p)⌋` for `U ~ Uniform(0,1)`. Work is proportional
/// to the number of *kept* tuples only.
///
/// ```
/// use rand::SeedableRng;
/// use sss_sampling::GeometricSkip;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sampler: GeometricSkip = GeometricSkip::new(0.01, &mut rng).unwrap();
/// let positions = sampler.sample_indices(1_000_000);
/// // ≈ 1% of the stream positions are selected, strictly increasing.
/// assert!((positions.len() as f64 - 10_000.0).abs() < 600.0);
/// assert!(positions.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct GeometricSkip<R = rand::rngs::StdRng> {
    /// `ln(1 − p)`, cached.
    log_q: f64,
    p: f64,
    rng: R,
}

impl<R: Rng> GeometricSkip<R> {
    /// Create a skip sampler with inclusion probability `p ∈ (0, 1]`.
    ///
    /// `p = 0` is rejected: the gap would be infinite.
    pub fn new<S: Rng>(p: f64, seed_rng: &mut S) -> Result<Self>
    where
        R: rand::SeedableRng,
    {
        if !(p > 0.0 && p <= 1.0) {
            return Err(Error::InvalidProbability(p));
        }
        Ok(Self {
            log_q: (1.0 - p).ln(),
            p,
            rng: R::from_rng(seed_rng),
        })
    }

    /// The inclusion probability.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// The number of tuples to skip before the next kept tuple.
    #[inline]
    pub fn next_gap(&mut self) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // U ∈ (0, 1]; ln U ≤ 0; log_q < 0 — the ratio is the geometric draw.
        let u: f64 = 1.0 - self.rng.random::<f64>();
        let g = (u.ln() / self.log_q).floor();
        // Guard against numeric overflow for astronomically unlikely draws.
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Iterator over the (0-based) positions of kept tuples in an infinite
    /// stream; take positions `< n` to sample a stream of length `n`.
    pub fn positions(mut self) -> impl Iterator<Item = u64> {
        let mut next: Option<u64> = Some(0);
        std::iter::from_fn(move || {
            let base = next?;
            let pos = base.checked_add(self.next_gap())?;
            next = pos.checked_add(1);
            Some(pos)
        })
    }

    /// Sample the indices of kept tuples from a stream of length `n`.
    pub fn sample_indices(self, n: u64) -> Vec<u64> {
        self.positions().take_while(|&pos| pos < n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut r = rng(0);
        assert!(BernoulliSampler::<StdRng>::new(-0.1, &mut r).is_err());
        assert!(BernoulliSampler::<StdRng>::new(1.1, &mut r).is_err());
        assert!(BernoulliSampler::<StdRng>::new(f64::NAN, &mut r).is_err());
        // p = 0 is rejected: downstream 1/p corrections would be inf/NaN.
        assert!(matches!(
            BernoulliSampler::<StdRng>::new(0.0, &mut r),
            Err(Error::InvalidProbability(p)) if p == 0.0
        ));
        assert!(BernoulliSampler::with_rng(0.0, rng(1)).is_err());
        assert!(GeometricSkip::<StdRng>::new(0.0, &mut r).is_err());
        assert!(GeometricSkip::<StdRng>::new(-1.0, &mut r).is_err());
        assert!(GeometricSkip::<StdRng>::new(1.5, &mut r).is_err());
    }

    #[test]
    fn degenerate_probabilities() {
        let mut s = BernoulliSampler::<StdRng>::new(1.0, &mut rng(1)).unwrap();
        assert!((0..100).all(|_| s.keep()));
        let mut g = GeometricSkip::<StdRng>::new(1.0, &mut rng(3)).unwrap();
        assert!((0..100).all(|_| g.next_gap() == 0));
    }

    #[test]
    fn coin_sample_size_concentrates() {
        let n = 100_000u64;
        let p = 0.1;
        let mut s = BernoulliSampler::<StdRng>::new(p, &mut rng(4)).unwrap();
        let kept = (0..n).filter(|_| s.keep()).count() as f64;
        let mean = n as f64 * p;
        let std = (n as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (kept - mean).abs() < 5.0 * std,
            "kept = {kept}, expect ≈ {mean}"
        );
    }

    #[test]
    fn skip_sample_size_concentrates() {
        let n = 100_000u64;
        let p = 0.05;
        let g = GeometricSkip::<StdRng>::new(p, &mut rng(5)).unwrap();
        let kept = g.sample_indices(n).len() as f64;
        let mean = n as f64 * p;
        let std = (n as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (kept - mean).abs() < 5.0 * std,
            "kept = {kept}, expect ≈ {mean}"
        );
    }

    #[test]
    fn skip_positions_are_strictly_increasing_and_in_range() {
        let g = GeometricSkip::<StdRng>::new(0.03, &mut rng(6)).unwrap();
        let idx = g.sample_indices(50_000);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 50_000));
    }

    /// The gap distribution must be geometric: compare the empirical mean
    /// and the P(G = 0) mass against theory.
    #[test]
    fn gap_distribution_is_geometric() {
        let p: f64 = 0.2;
        let mut g = GeometricSkip::<StdRng>::new(p, &mut rng(7)).unwrap();
        let n = 200_000;
        let mut sum = 0u64;
        let mut zeros = 0u64;
        for _ in 0..n {
            let gap = g.next_gap();
            sum += gap;
            zeros += (gap == 0) as u64;
        }
        let mean = sum as f64 / n as f64;
        let expect_mean = (1.0 - p) / p; // E[G] for gaps counted before the success
        assert!(
            (mean - expect_mean).abs() < 0.05,
            "mean gap = {mean}, expect {expect_mean}"
        );
        let p0 = zeros as f64 / n as f64;
        assert!((p0 - p).abs() < 0.01, "P(G=0) = {p0}, expect {p}");
    }

    /// Coin and skip samplers induce the same inclusion law: each index is
    /// kept with probability p, independently. Check per-index inclusion
    /// frequency for the skip sampler.
    #[test]
    fn skip_inclusion_is_uniform_over_positions() {
        let p = 0.3;
        let n = 50u64;
        let reps = 20_000;
        let mut incl = vec![0u32; n as usize];
        let mut r = rng(8);
        for _ in 0..reps {
            let g: GeometricSkip<StdRng> = GeometricSkip::new(p, &mut r).unwrap();
            for i in g.sample_indices(n) {
                incl[i as usize] += 1;
            }
        }
        for (i, &c) in incl.iter().enumerate() {
            let freq = c as f64 / reps as f64;
            assert!((freq - p).abs() < 0.02, "index {i}: inclusion {freq}");
        }
    }

    #[test]
    fn filter_iter_keeps_order() {
        let s = BernoulliSampler::<StdRng>::new(0.5, &mut rng(9)).unwrap();
        let kept: Vec<u64> = s.filter_iter(0..1000u64).collect();
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }
}
