//! The sampling-fraction coefficients of Eq. 8 of the paper.
//!
//! All fixed-size-sample formulas are written in terms of
//!
//! ```text
//! α  = |F′| / |F|          β  = |G′| / |G|
//! α₁ = (|F′|−1) / (|F|−1)  β₁ = (|G′|−1) / (|G|−1)
//! α₂ = (|F′|−1) / |F|      β₂ = (|G′|−1) / |G|
//! ```
//!
//! `α` is the plain sampling fraction; `α₁` and `α₂` are the "one less"
//! variants that arise from second factorial moments of the multinomial
//! (`(m)₂/|F|² = α·α₂`) and the hypergeometric (`(m)₂/(N)₂ = α·α₁`).

use crate::error::{Error, Result};

/// The `α, α₁, α₂` coefficients for one relation (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingFractions {
    /// Sample size `|F′|`.
    pub sample: u64,
    /// Population (relation) size `|F|`.
    pub population: u64,
}

impl SamplingFractions {
    /// Build the coefficient set for a sample of `sample` tuples drawn from
    /// a relation of `population` tuples.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyPopulation`] if `population == 0`.
    /// * [`Error::EmptySample`] if `sample == 0` (every estimator divides
    ///   by `α`).
    pub fn new(sample: u64, population: u64) -> Result<Self> {
        if population == 0 {
            return Err(Error::EmptyPopulation);
        }
        if sample == 0 {
            return Err(Error::EmptySample);
        }
        Ok(Self { sample, population })
    }

    /// `α = |F′|/|F|`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.sample as f64 / self.population as f64
    }

    /// `α₁ = (|F′|−1)/(|F|−1)`.
    ///
    /// For a single-tuple population this is defined as 1 (the sample is
    /// the population).
    #[inline]
    pub fn alpha1(&self) -> f64 {
        if self.population == 1 {
            1.0
        } else {
            (self.sample - 1) as f64 / (self.population - 1) as f64
        }
    }

    /// `α₂ = (|F′|−1)/|F|`.
    #[inline]
    pub fn alpha2(&self) -> f64 {
        (self.sample - 1) as f64 / self.population as f64
    }

    /// Whether the sample covers the whole population (WOR variance → 0).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.sample == self.population
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_match_definitions() {
        let f = SamplingFractions::new(10, 100).unwrap();
        assert_eq!(f.alpha(), 0.1);
        assert!((f.alpha1() - 9.0 / 99.0).abs() < 1e-15);
        assert!((f.alpha2() - 9.0 / 100.0).abs() < 1e-15);
        assert!(!f.is_full());
    }

    #[test]
    fn full_sample_has_unit_fractions() {
        let f = SamplingFractions::new(100, 100).unwrap();
        assert_eq!(f.alpha(), 1.0);
        assert_eq!(f.alpha1(), 1.0);
        assert!(f.is_full());
        // α₂ < 1 even for a full sample — this is what keeps the WR
        // variance non-zero when the whole population is resampled.
        assert!((f.alpha2() - 0.99).abs() < 1e-15);
    }

    #[test]
    fn degenerate_population_of_one() {
        let f = SamplingFractions::new(1, 1).unwrap();
        assert_eq!(f.alpha(), 1.0);
        assert_eq!(f.alpha1(), 1.0);
        assert_eq!(f.alpha2(), 0.0);
    }

    #[test]
    fn constructor_rejects_invalid_sizes() {
        assert_eq!(SamplingFractions::new(1, 0), Err(Error::EmptyPopulation));
        assert_eq!(SamplingFractions::new(0, 10), Err(Error::EmptySample));
    }

    #[test]
    fn ordering_of_coefficients() {
        // α₂ ≤ α₁ ≤ α for any m ≤ N; the paper's variance interpretations
        // depend on this ordering.
        for (m, n) in [(1u64, 10u64), (5, 10), (10, 10), (3, 1000)] {
            let f = SamplingFractions::new(m, n).unwrap();
            assert!(f.alpha2() <= f.alpha1() + 1e-15);
            assert!(f.alpha1() <= f.alpha() + 1e-15);
        }
    }
}
