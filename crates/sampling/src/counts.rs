//! Frequency counts of a sampled key multiset.
//!
//! Every sampling-only estimator in this crate consumes the sample through
//! its frequency vector `f′` — the number of times each key appears in the
//! sample — which is exactly how the paper's frequency-domain analysis
//! models the sampling process.

use std::collections::HashMap;

/// The frequency vector `f′` of a sample, stored sparsely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleCounts {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl SampleCounts {
    /// An empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of sampled keys (with multiplicity).
    pub fn from_keys<I: IntoIterator<Item = u64>>(keys: I) -> Self {
        let mut s = Self::new();
        for k in keys {
            s.insert(k);
        }
        s
    }

    /// Record one occurrence of `key`.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `count` occurrences of `key`.
    pub fn insert_many(&mut self, key: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(key).or_insert(0) += count;
        self.total += count;
    }

    /// The sample size `|F′| = Σᵢ f′ᵢ`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The number of distinct keys in the sample.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The sampled frequency `f′ᵢ` of `key` (0 if absent).
    #[inline]
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Iterate over `(key, f′ᵢ)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// `Σᵢ f′ᵢ²` — the raw self-join size of the sample.
    pub fn sum_squares(&self) -> f64 {
        self.counts.values().map(|&c| (c as f64) * (c as f64)).sum()
    }

    /// `Σᵢ f′ᵢ g′ᵢ` — the raw size of join between two samples.
    pub fn dot(&self, other: &SampleCounts) -> f64 {
        // Iterate over the smaller map for speed.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .iter()
            .map(|(&k, &c)| c as f64 * large.get(k) as f64)
            .sum()
    }
}

// Persistence: only the frequency map travels; the total is recomputed on
// deserialization so a tampered payload cannot desynchronize the two.
impl serde::Serialize for SampleCounts {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serde::Serialize::serialize(&self.counts, serializer)
    }
}

impl<'de> serde::Deserialize<'de> for SampleCounts {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let counts: HashMap<u64, u64> = serde::Deserialize::deserialize(deserializer)?;
        let total = counts
            .values()
            .try_fold(0u64, |acc, &c| acc.checked_add(c))
            .ok_or_else(|| {
                serde::de::Error::custom("sample counts overflow the total tuple counter")
            })?;
        Ok(Self { counts, total })
    }
}

impl FromIterator<u64> for SampleCounts {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_keys(iter)
    }
}

impl Extend<u64> for SampleCounts {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let s = SampleCounts::from_keys([1u64, 2, 2, 3, 3, 3]);
        assert_eq!(s.total(), 6);
        assert_eq!(s.distinct(), 3);
        assert_eq!(s.get(1), 1);
        assert_eq!(s.get(2), 2);
        assert_eq!(s.get(3), 3);
        assert_eq!(s.get(99), 0);
    }

    #[test]
    fn sum_squares_matches_definition() {
        let s = SampleCounts::from_keys([1u64, 2, 2, 3, 3, 3]);
        assert_eq!(s.sum_squares(), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn dot_product_is_symmetric_and_sparse() {
        let a = SampleCounts::from_keys([1u64, 1, 2, 5]);
        let b = SampleCounts::from_keys([1u64, 2, 2, 2, 7]);
        // Σ f'g' = f'(1)g'(1) + f'(2)g'(2) = 2·1 + 1·3 = 5
        assert_eq!(a.dot(&b), 5.0);
        assert_eq!(b.dot(&a), 5.0);
        assert_eq!(a.dot(&SampleCounts::new()), 0.0);
    }

    #[test]
    fn insert_many_aggregates() {
        let mut s = SampleCounts::new();
        s.insert_many(9, 4);
        s.insert_many(9, 0);
        s.insert(9);
        assert_eq!(s.get(9), 5);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn extend_and_collect() {
        let mut s: SampleCounts = [1u64, 2].into_iter().collect();
        s.extend([2u64, 3]);
        assert_eq!(s.total(), 4);
        assert_eq!(s.get(2), 2);
    }

    #[test]
    fn serde_roundtrip_recomputes_total() {
        let s = SampleCounts::from_keys([1u64, 2, 2, 9, 9, 9]);
        let json = serde_json::to_string(&s).unwrap();
        let restored: SampleCounts = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.total(), 6);
        // A hand-crafted payload still gets a consistent total.
        let crafted: SampleCounts = serde_json::from_str(r#"{"5": 3, "6": 4}"#).unwrap();
        assert_eq!(crafted.total(), 7);
        assert_eq!(crafted.get(5), 3);
    }

    #[test]
    fn serde_rejects_overflowing_totals() {
        let crafted = format!(r#"{{"1": {}, "2": {}}}"#, u64::MAX, 2u64);
        let res: std::result::Result<SampleCounts, _> = serde_json::from_str(&crafted);
        assert!(res.is_err(), "overflowing counts must not deserialize");
    }
}
