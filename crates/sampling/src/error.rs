//! Error type shared by the sampling constructors and estimators.

use std::fmt;

/// Errors produced by sampling constructors and estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A probability parameter was outside `(0, 1]` (or `[0, 1]` where a
    /// zero is meaningful); the payload is the offending value.
    InvalidProbability(f64),
    /// A sample size of zero was requested where at least one element is
    /// required for the estimator to be defined.
    EmptySample,
    /// A without-replacement sample larger than the population was requested.
    SampleExceedsPopulation {
        /// Requested sample size.
        sample: u64,
        /// Available population size.
        population: u64,
    },
    /// An estimator needs at least two sampled tuples (the `α₁`, `α₂`
    /// corrections divide by `|F′| − 1`).
    SampleTooSmall {
        /// Sample size that was provided.
        got: u64,
        /// Minimum size the estimator requires.
        need: u64,
    },
    /// The population size parameter was zero.
    EmptyPopulation,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProbability(p) => {
                write!(f, "sampling probability {p} is outside the valid range")
            }
            Error::EmptySample => write!(f, "sample is empty"),
            Error::SampleExceedsPopulation { sample, population } => write!(
                f,
                "without-replacement sample of size {sample} exceeds population of size {population}"
            ),
            Error::SampleTooSmall { got, need } => {
                write!(f, "estimator requires a sample of at least {need} tuples, got {got}")
            }
            Error::EmptyPopulation => write!(f, "population size must be non-zero"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
