//! Sampling-only estimators for size of join and self-join size
//! (Propositions 3–6 of the paper).
//!
//! Each estimator is the raw sample aggregate with the scheme's scaling
//! factor `C` and — for self-join size, where plain scaling cannot remove
//! the bias — an additive correction:
//!
//! | Scheme | Size of join | Self-join size |
//! |---|---|---|
//! | Bernoulli | `(1/pq)·Σf′g′` | `(1/p²)·Σf′² − ((1−p)/p²)·Σf′` |
//! | With replacement | `(1/αβ)·Σf′g′` | `(1/αα₂)·Σf′² − |F|/α₂` |
//! | Without replacement | `(1/αβ)·Σf′g′` | `(1/αα₁)·Σf′² − ((1−α₁)/α₁)·|F|` |
//!
//! All are unbiased; their variances (Eqs. 6, 7, 10, 11) are implemented in
//! `sss-moments` and verified against these estimators by Monte-Carlo
//! integration tests.

use crate::coefficients::SamplingFractions;
use crate::counts::SampleCounts;
use crate::error::{Error, Result};

fn check_prob(p: f64) -> Result<f64> {
    if p > 0.0 && p <= 1.0 {
        Ok(p)
    } else {
        Err(Error::InvalidProbability(p))
    }
}

/// Proposition 3: unbiased size-of-join estimator over Bernoulli samples
/// with inclusion probabilities `p` (for `F′`) and `q` (for `G′`).
pub fn bernoulli_size_of_join(
    f_sample: &SampleCounts,
    g_sample: &SampleCounts,
    p: f64,
    q: f64,
) -> Result<f64> {
    let p = check_prob(p)?;
    let q = check_prob(q)?;
    Ok(f_sample.dot(g_sample) / (p * q))
}

/// Proposition 4: unbiased self-join size estimator over a Bernoulli sample
/// with inclusion probability `p`.
///
/// The `−(1−p)/p²·Σf′` correction removes the `E[f′²] = p²f² + p(1−p)f`
/// bias that scaling alone cannot.
pub fn bernoulli_self_join(sample: &SampleCounts, p: f64) -> Result<f64> {
    let p = check_prob(p)?;
    Ok(sample.sum_squares() / (p * p) - (1.0 - p) / (p * p) * sample.total() as f64)
}

/// Proposition 5: unbiased size-of-join estimator over samples drawn with
/// replacement; `f_pop` and `g_pop` are the population sizes `|F|`, `|G|`.
pub fn wr_size_of_join(
    f_sample: &SampleCounts,
    g_sample: &SampleCounts,
    f_pop: u64,
    g_pop: u64,
) -> Result<f64> {
    let fa = SamplingFractions::new(f_sample.total(), f_pop)?;
    let fb = SamplingFractions::new(g_sample.total(), g_pop)?;
    Ok(f_sample.dot(g_sample) / (fa.alpha() * fb.alpha()))
}

/// Unbiased self-join size estimator over a with-replacement sample
/// (Section III-D): `X = (1/αα₂)·Σf′² − |F|/α₂`.
///
/// # Errors
///
/// Requires at least two sampled tuples (`α₂` divides by zero otherwise).
pub fn wr_self_join(sample: &SampleCounts, population: u64) -> Result<f64> {
    let fr = SamplingFractions::new(sample.total(), population)?;
    if sample.total() < 2 {
        return Err(Error::SampleTooSmall {
            got: sample.total(),
            need: 2,
        });
    }
    Ok(sample.sum_squares() / (fr.alpha() * fr.alpha2()) - population as f64 / fr.alpha2())
}

/// Proposition 6: unbiased size-of-join estimator over samples drawn
/// without replacement.
pub fn wor_size_of_join(
    f_sample: &SampleCounts,
    g_sample: &SampleCounts,
    f_pop: u64,
    g_pop: u64,
) -> Result<f64> {
    let fa = SamplingFractions::new(f_sample.total(), f_pop)?;
    let fb = SamplingFractions::new(g_sample.total(), g_pop)?;
    if f_sample.total() > f_pop {
        return Err(Error::SampleExceedsPopulation {
            sample: f_sample.total(),
            population: f_pop,
        });
    }
    if g_sample.total() > g_pop {
        return Err(Error::SampleExceedsPopulation {
            sample: g_sample.total(),
            population: g_pop,
        });
    }
    Ok(f_sample.dot(g_sample) / (fa.alpha() * fb.alpha()))
}

/// Unbiased self-join size estimator over a without-replacement sample
/// (Section III-E): `X = (1/αα₁)·Σf′² − ((1−α₁)/α₁)·|F|`.
///
/// # Errors
///
/// Requires at least two sampled tuples when `|F| > 1` (`α₁` divides by
/// zero otherwise), and the sample may not exceed the population.
pub fn wor_self_join(sample: &SampleCounts, population: u64) -> Result<f64> {
    let fr = SamplingFractions::new(sample.total(), population)?;
    if sample.total() > population {
        return Err(Error::SampleExceedsPopulation {
            sample: sample.total(),
            population,
        });
    }
    if population > 1 && sample.total() < 2 {
        return Err(Error::SampleTooSmall {
            got: sample.total(),
            need: 2,
        });
    }
    let a1 = fr.alpha1();
    Ok(sample.sum_squares() / (fr.alpha() * a1) - (1.0 - a1) / a1 * population as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::BernoulliSampler;
    use crate::with_replacement::sample_with_replacement;
    use crate::without_replacement::sample_without_replacement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small relation with known aggregates:
    /// keys 0..K where key i has frequency i+1.
    fn relation(k: u64) -> Vec<u64> {
        (0..k)
            .flat_map(|i| std::iter::repeat(i).take(i as usize + 1))
            .collect()
    }

    fn self_join_truth(k: u64) -> f64 {
        (1..=k).map(|f| (f * f) as f64).sum()
    }

    #[test]
    fn full_bernoulli_sample_is_exact() {
        let rel = relation(50);
        let counts = SampleCounts::from_keys(rel.iter().copied());
        assert_eq!(
            bernoulli_self_join(&counts, 1.0).unwrap(),
            self_join_truth(50)
        );
        let est = bernoulli_size_of_join(&counts, &counts, 1.0, 1.0).unwrap();
        assert_eq!(est, self_join_truth(50));
    }

    #[test]
    fn full_wor_sample_is_exact() {
        let rel = relation(50);
        let n = rel.len() as u64;
        let counts = SampleCounts::from_keys(rel.iter().copied());
        // α = α₁ = 1 ⇒ the estimator degenerates to the exact aggregate.
        let est = wor_self_join(&counts, n).unwrap();
        assert!((est - self_join_truth(50)).abs() < 1e-9);
        let sj = wor_size_of_join(&counts, &counts, n, n).unwrap();
        assert!((sj - self_join_truth(50)).abs() < 1e-9);
    }

    #[test]
    fn estimators_reject_bad_parameters() {
        let c = SampleCounts::from_keys([1u64, 2, 3]);
        assert!(bernoulli_self_join(&c, 0.0).is_err());
        assert!(bernoulli_self_join(&c, 1.5).is_err());
        assert!(bernoulli_size_of_join(&c, &c, 0.5, -0.1).is_err());
        assert!(wr_self_join(&c, 0).is_err());
        assert!(wor_self_join(&c, 2).is_err()); // sample 3 > population 2
        let single = SampleCounts::from_keys([7u64]);
        assert!(wr_self_join(&single, 100).is_err()); // needs ≥ 2 tuples
        assert!(wor_self_join(&single, 100).is_err());
    }

    /// Monte-Carlo unbiasedness of every estimator at realistic sampling
    /// rates. The averages over many repetitions must converge to truth.
    #[test]
    fn estimators_are_unbiased() {
        let rel = relation(40); // |F| = 820, F₂ = Σ f² = 22140
        let n = rel.len() as u64;
        let truth = self_join_truth(40);
        let reps = 4000;
        let mut r = StdRng::seed_from_u64(99);

        let mut acc_bern_sj = 0f64;
        let mut acc_wr = 0f64;
        let mut acc_wor = 0f64;
        let mut acc_join = 0f64;
        let m = 200u64;
        for _ in 0..reps {
            let mut s = BernoulliSampler::<StdRng>::new(0.25, &mut r).unwrap();
            let bern = SampleCounts::from_keys(rel.iter().copied().filter(|_| s.keep()));
            acc_bern_sj += bernoulli_self_join(&bern, 0.25).unwrap();

            let wr = SampleCounts::from_keys(sample_with_replacement(&rel, m, &mut r).unwrap());
            acc_wr += wr_self_join(&wr, n).unwrap();

            let wor = SampleCounts::from_keys(sample_without_replacement(&rel, m, &mut r).unwrap());
            acc_wor += wor_self_join(&wor, n).unwrap();

            let wor_g =
                SampleCounts::from_keys(sample_without_replacement(&rel, m, &mut r).unwrap());
            acc_join += wor_size_of_join(&wor, &wor_g, n, n).unwrap();
        }
        for (name, acc) in [
            ("bernoulli self-join", acc_bern_sj),
            ("wr self-join", acc_wr),
            ("wor self-join", acc_wor),
            ("wor size-of-join", acc_join),
        ] {
            let mean = acc / reps as f64;
            assert!(
                (mean - truth).abs() / truth < 0.05,
                "{name}: mean {mean} vs truth {truth}"
            );
        }
    }

    /// WOR at full sampling rate has zero variance — every draw returns the
    /// exact answer, not merely the right answer on average.
    #[test]
    fn wor_variance_vanishes_at_full_rate() {
        let rel = relation(20);
        let n = rel.len() as u64;
        let truth = self_join_truth(20);
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let s = SampleCounts::from_keys(sample_without_replacement(&rel, n, &mut r).unwrap());
            assert!((wor_self_join(&s, n).unwrap() - truth).abs() < 1e-9);
        }
    }
}
