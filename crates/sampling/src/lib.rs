//! # sss-sampling — sampling processes for streamed relations
//!
//! The three sampling schemes analyzed in *"Sketching Sampled Data Streams"*
//! (Rusu & Dobra, ICDE 2009), each with the estimation machinery of the
//! paper's Section III:
//!
//! * [`bernoulli`] — every tuple enters the sample independently with
//!   probability `p`. The sample frequencies `f′ᵢ` are independent
//!   `Binomial(fᵢ, p)` variables. This is the *load shedding* scheme: both a
//!   per-tuple coin and the O(selected)-work geometric-skip variant (Olken's
//!   interval generation) are provided.
//! * [`with_replacement`] — a fixed-size sample drawn with replacement; the
//!   `f′ᵢ` are components of a multinomial. Models i.i.d. streams from a
//!   generative model.
//! * [`without_replacement`] — a fixed-size random subset; the `f′ᵢ` are
//!   components of a multivariate hypergeometric. Models the prefix of a
//!   random-order scan, as consumed by online aggregation engines.
//!
//! [`estimators`] implements the *sampling-only* unbiased estimators of
//! Propositions 3–6 (size of join and self-join size for each scheme),
//! operating on [`counts::SampleCounts`] built from sampled keys.
//!
//! The exact second-moment analysis of these estimators (the variance
//! formulas of Eqs. 6, 7, 10, 11) lives in the `sss-moments` crate, which
//! evaluates them on *true* frequency vectors. [`variance`] provides the
//! query-time counterpart for the Bernoulli scheme: closed forms of the
//! sampling-only variance plus conservative plug-ins evaluated from the
//! estimates themselves, used by the shedders to report error bars.
//!
//! ## Example: estimating a self-join size from a 10% Bernoulli sample
//!
//! ```
//! use rand::SeedableRng;
//! use sss_sampling::bernoulli::BernoulliSampler;
//! use sss_sampling::counts::SampleCounts;
//! use sss_sampling::estimators::bernoulli_self_join;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let stream: Vec<u64> = (0..100_000u64).map(|i| i % 1000).collect();
//! let mut sampler: BernoulliSampler = BernoulliSampler::new(0.1, &mut rng).unwrap();
//! let sample = SampleCounts::from_keys(stream.iter().copied().filter(|_| sampler.keep()));
//! let est = bernoulli_self_join(&sample, 0.1).unwrap();
//! let truth = 1000.0 * 100.0 * 100.0; // 1000 keys × frequency 100²
//! assert!((est - truth).abs() / truth < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bernoulli;
pub mod coefficients;
pub mod counts;
pub mod error;
pub mod estimators;
pub mod variance;
pub mod with_replacement;
pub mod without_replacement;

pub use bernoulli::{BernoulliSampler, GeometricSkip};
pub use coefficients::SamplingFractions;
pub use counts::SampleCounts;
pub use error::{Error, Result};
pub use variance::{
    bernoulli_frequency_variance, bernoulli_frequency_variance_plugin,
    bernoulli_self_join_variance, bernoulli_self_join_variance_plugin,
    bernoulli_size_of_join_variance, bernoulli_size_of_join_variance_plugin,
    staleness_variance_plugin,
};
pub use with_replacement::{sample_with_replacement, MultinomialFrequencies};
pub use without_replacement::{
    reservoir_sample, reservoir_sample_l, sample_without_replacement, PrefixScan,
};
