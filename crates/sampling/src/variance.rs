//! Sampling-only variance of the Bernoulli estimators, evaluated at query
//! time from quantities the estimator itself knows.
//!
//! The shedders correct a sketch built over a `Bernoulli(p)` sample back to
//! an unbiased estimate for the full stream (Props. 13/14 of the paper).
//! Because every basic sketch estimator sees the *same* sample, the
//! sampling noise is perfectly correlated across lanes: the cross-lane
//! sample variance measures only the sketch noise, and the sampling term
//! must be added separately and **not** divided by the number of lanes.
//! This module provides that term.
//!
//! Two layers:
//!
//! * the *exact* closed forms ([`bernoulli_self_join_variance`],
//!   [`bernoulli_size_of_join_variance`]), which take true frequency
//!   moments — derived from the binomial factorial moments
//!   `E[(f′)_r] = (f)_r · pʳ` and matching `sss_moments::engine` (Eq. 6/7
//!   specialised to sampling without sketching);
//! * the *plug-in* forms (`*_plugin`), which bound the unknown moments by
//!   quantities observable at query time: `F₁` is the exact tuple count the
//!   shedder saw, `F₂` is the estimator's own (corrected) self-join
//!   estimate, and `F₃ ≤ F₂^{3/2}` (power-mean inequality ‖f‖₃ ≤ ‖f‖₂).
//!   The plug-ins are conservative — tight for skewed, heavy-hitter
//!   dominated frequency vectors, loose for near-uniform ones.

/// Exact sampling-only variance of the Prop.-14 self-join estimator
/// `F̂₂ = F₂(f′)/p² − (1−p)/p² · |sample|` under `Bernoulli(p)` sampling of
/// a stream with frequency moments `F₁ = Σfᵢ`, `F₂ = Σfᵢ²`, `F₃ = Σfᵢ³`.
///
/// With `q = 1 − p`:
///
/// ```text
/// Var = (4q/p)·F₃ + (2q(1 − 3p)/p²)·F₂ + (q(3p − 2)/p²)·F₁
/// ```
///
/// At `p = 1` the sample is the stream and the variance is 0.
pub fn bernoulli_self_join_variance(p: f64, f1: f64, f2: f64, f3: f64) -> f64 {
    let q = 1.0 - p;
    let p2 = p * p;
    (4.0 * q / p) * f3 + (2.0 * q * (1.0 - 3.0 * p) / p2) * f2 + (q * (3.0 * p - 2.0) / p2) * f1
}

/// Conservative plug-in for [`bernoulli_self_join_variance`] from
/// query-time observables: the exact sample-universe tuple count `seen`
/// (= F₁), and the estimator's own self-join estimate `f2_hat` (= F̂₂,
/// clamped at 0). `F₃` is bounded by `F₂^{3/2}`.
///
/// The result is clamped at 0 — the exact form can go slightly negative
/// when the plugged-in moments are inconsistent (e.g. a noisy `f2_hat`
/// below `F₁`).
pub fn bernoulli_self_join_variance_plugin(p: f64, seen: u64, f2_hat: f64) -> f64 {
    let f2 = f2_hat.max(0.0);
    let f3 = f2.powf(1.5);
    bernoulli_self_join_variance(p, seen as f64, f2, f3).max(0.0)
}

/// Exact sampling-only variance of the per-key frequency estimator
/// `f̂ = f′/p` under `Bernoulli(p)` sampling of a key with true frequency
/// `f`.
///
/// `f′ ~ Binomial(f, p)`, so `Var(f′) = f·p·(1−p)` and
///
/// ```text
/// Var(f̂) = Var(f′)/p² = f·(1−p)/p
/// ```
///
/// This is the sampling term the heavy-hitter summaries add on top of
/// their own sketch/counter error when reporting a `topk` answer over a
/// shedded stream. At `p = 1` the sample is the stream and the variance
/// is 0.
pub fn bernoulli_frequency_variance(p: f64, f: f64) -> f64 {
    f * (1.0 - p) / p
}

/// Plug-in for [`bernoulli_frequency_variance`] from the query-time
/// observable: the corrected frequency estimate `f_hat` (= f̂ = f′/p)
/// itself, which is unbiased for the unknown `f`. Clamped at 0 so a
/// negative Count-Sketch estimate cannot produce a negative variance.
pub fn bernoulli_frequency_variance_plugin(p: f64, f_hat: f64) -> f64 {
    bernoulli_frequency_variance(p, f_hat.max(0.0)).max(0.0)
}

/// Exact sampling-only variance of the Prop.-13 size-of-join estimator
/// `Σfᵢ′gᵢ′/(p_f·p_g)` for independent `Bernoulli(p_f)` / `Bernoulli(p_g)`
/// samples of streams with frequencies `f`, `g`:
///
/// ```text
/// Var = ((1−p_g)/p_g)·Σfᵢ²gᵢ + ((1−p_f)/p_f)·Σfᵢgᵢ²
///     + ((1−p_f)(1−p_g)/(p_f·p_g))·Σfᵢgᵢ
/// ```
///
/// Either rate at 1 zeroes that side's terms (an unsampled side adds no
/// sampling noise).
pub fn bernoulli_size_of_join_variance(
    pf: f64,
    pg: f64,
    sum_f2g: f64,
    sum_fg2: f64,
    sum_fg: f64,
) -> f64 {
    let qf = 1.0 - pf;
    let qg = 1.0 - pg;
    (qg / pg) * sum_f2g + (qf / pf) * sum_fg2 + (qf * qg / (pf * pg)) * sum_fg
}

/// Conservative plug-in for [`bernoulli_size_of_join_variance`] from
/// query-time observables: each side's self-join estimate (`f2_f_hat`,
/// `f2_g_hat` — the F̂₂ of the *full* streams) and the size-of-join
/// estimate itself (`fg_hat` = Σf̂ᵢgᵢ).
///
/// The mixed moments are bounded via Cauchy–Schwarz and `F₄ ≤ F₂²`:
/// `Σf²g ≤ √(F₄(f)·F₂(g)) ≤ F₂(f)·√F₂(g)` and symmetrically for `Σfg²`.
/// Clamped at 0.
pub fn bernoulli_size_of_join_variance_plugin(
    pf: f64,
    pg: f64,
    f2_f_hat: f64,
    f2_g_hat: f64,
    fg_hat: f64,
) -> f64 {
    let f2f = f2_f_hat.max(0.0);
    let f2g = f2_g_hat.max(0.0);
    let sum_f2g = f2f * f2g.sqrt();
    let sum_fg2 = f2g * f2f.sqrt();
    bernoulli_size_of_join_variance(pf, pg, sum_f2g, sum_fg2, fg_hat.max(0.0)).max(0.0)
}

/// Heuristic variance inflation for a *stale* slim read replica: the extra
/// uncertainty in an F₂-style estimate `value` that was projected when
/// `applied` tuples had been absorbed, queried after `pending` more tuples
/// have arrived but not yet been reflected in the replica.
///
/// Model: frequencies scale roughly linearly with stream length, so F₂
/// scales quadratically — by the time the pending tuples are absorbed the
/// true answer has drifted to `≈ value·(1 + pending/applied)²`. The drift
///
/// ```text
/// value · ((1 + pending/applied)² − 1)
/// ```
///
/// is treated as one standard deviation of staleness error and returned as
/// a variance (its square). This is an honest *model* term, not a
/// closed-form moment: real streams drift slower (repeated keys) or faster
/// (novel keys) than homogeneous scaling, and the replica cannot tell
/// which without the data it does not have. Zero when nothing is pending
/// or nothing was applied (an empty replica has infinite-variance
/// estimates anyway).
pub fn staleness_variance_plugin(value: f64, applied: u64, pending: u64) -> f64 {
    if pending == 0 || applied == 0 {
        return 0.0;
    }
    let growth = 1.0 + pending as f64 / applied as f64;
    let drift = value.abs() * (growth * growth - 1.0);
    drift * drift
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::SampleCounts;
    use crate::estimators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn self_join_variance_hand_case() {
        // Single key with f = 2, p = 1/2. f′ ∈ {0,1,2} with probs
        // 1/4, 1/2, 1/4; estimate = 4f′² − 2f′ takes values 0, 2, 12.
        // E = 4 (unbiased: F₂ = 4), E[X²] = 0 + 2 + 36 = 38, Var = 22.
        let v = bernoulli_self_join_variance(0.5, 2.0, 4.0, 8.0);
        assert!((v - 22.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn variances_vanish_without_sampling() {
        assert_eq!(bernoulli_self_join_variance(1.0, 10.0, 40.0, 100.0), 0.0);
        assert_eq!(
            bernoulli_size_of_join_variance(1.0, 1.0, 5.0, 6.0, 7.0),
            0.0
        );
        // Unsampled g side: only the f-side term survives.
        let v = bernoulli_size_of_join_variance(0.5, 1.0, 5.0, 6.0, 7.0);
        assert!((v - 6.0).abs() < 1e-12);
    }

    /// Monte-Carlo check of the exact self-join closed form against the
    /// empirical variance of the Prop.-14 estimator.
    #[test]
    fn self_join_variance_matches_monte_carlo() {
        let freqs: &[(u64, u64)] = &[(1, 9), (2, 5), (3, 3), (4, 1)];
        let p = 0.4;
        let f1: f64 = freqs.iter().map(|&(_, f)| f as f64).sum();
        let f2: f64 = freqs.iter().map(|&(_, f)| (f * f) as f64).sum();
        let f3: f64 = freqs.iter().map(|&(_, f)| (f * f * f) as f64).sum();
        let exact = bernoulli_self_join_variance(p, f1, f2, f3);

        let mut rng = StdRng::seed_from_u64(7);
        let reps = 8_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..reps {
            let kept = freqs.iter().flat_map(|&(k, f)| {
                (0..f)
                    .filter(|_| rng.random::<f64>() < p)
                    .map(move |_| k)
                    .collect::<Vec<_>>()
            });
            let sample = SampleCounts::from_keys(kept);
            let est = estimators::bernoulli_self_join(&sample, p).unwrap();
            s += est;
            s2 += est * est;
        }
        let mean = s / reps as f64;
        let var = s2 / reps as f64 - mean * mean;
        assert!((mean - f2).abs() / f2 < 0.02, "biased: {mean} vs {f2}");
        assert!(
            (var - exact).abs() / exact < 0.15,
            "variance {var} vs exact {exact}"
        );
    }

    /// Monte-Carlo check of the exact size-of-join closed form with
    /// independently sampled sides at different rates.
    #[test]
    fn size_of_join_variance_matches_monte_carlo() {
        let f: &[(u64, u64)] = &[(1, 6), (2, 4), (3, 2)];
        let g: &[(u64, u64)] = &[(1, 3), (2, 5), (4, 7)];
        let (pf, pg) = (0.5, 0.3);
        let moment = |a: &[(u64, u64)], b: &[(u64, u64)], ea: u32, eb: u32| -> f64 {
            a.iter()
                .map(|&(k, fa)| {
                    let fb = b.iter().find(|&&(kb, _)| kb == k).map_or(0, |&(_, v)| v);
                    (fa as f64).powi(ea as i32) * (fb as f64).powi(eb as i32)
                })
                .sum()
        };
        let exact = bernoulli_size_of_join_variance(
            pf,
            pg,
            moment(f, g, 2, 1),
            moment(f, g, 1, 2),
            moment(f, g, 1, 1),
        );
        let truth = moment(f, g, 1, 1);

        let mut rng = StdRng::seed_from_u64(11);
        let reps = 15_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..reps {
            let draw = |freqs: &[(u64, u64)], p: f64, rng: &mut StdRng| {
                SampleCounts::from_keys(freqs.iter().flat_map(|&(k, cnt)| {
                    (0..cnt)
                        .filter(|_| rng.random::<f64>() < p)
                        .map(move |_| k)
                        .collect::<Vec<_>>()
                }))
            };
            let sf = draw(f, pf, &mut rng);
            let sg = draw(g, pg, &mut rng);
            let est = estimators::bernoulli_size_of_join(&sf, &sg, pf, pg).unwrap();
            s += est;
            s2 += est * est;
        }
        let mean = s / reps as f64;
        let var = s2 / reps as f64 - mean * mean;
        assert!((mean - truth).abs() / truth < 0.03, "biased: {mean}");
        assert!(
            (var - exact).abs() / exact < 0.15,
            "variance {var} vs exact {exact}"
        );
    }

    /// Monte-Carlo check of the frequency variance: sample a key with a
    /// known frequency repeatedly; `f′/p` must be unbiased with empirical
    /// variance matching `f(1−p)/p`.
    #[test]
    fn frequency_variance_matches_monte_carlo() {
        let f = 200u64;
        let p = 0.3;
        let exact = bernoulli_frequency_variance(p, f as f64);
        let mut rng = StdRng::seed_from_u64(23);
        let reps = 20_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..reps {
            let kept = (0..f).filter(|_| rng.random::<f64>() < p).count() as f64;
            let est = kept / p;
            s += est;
            s2 += est * est;
        }
        let mean = s / reps as f64;
        let var = s2 / reps as f64 - mean * mean;
        assert!(
            (mean - f as f64).abs() / (f as f64) < 0.01,
            "biased: {mean}"
        );
        assert!(
            (var - exact).abs() / exact < 0.1,
            "variance {var} vs exact {exact}"
        );
        // No sampling, no sampling noise.
        assert_eq!(bernoulli_frequency_variance(1.0, 1e6), 0.0);
        // Plug-in clamps negative sketch estimates.
        assert_eq!(bernoulli_frequency_variance_plugin(0.5, -3.0), 0.0);
    }

    #[test]
    fn plugins_upper_bound_the_exact_forms() {
        // Skewed vector: one heavy key dominates, so F₃ ≈ F₂^{3/2}.
        let (f1, f2, f3) = (120.0, 10_000.0 + 20.0 * 20.0, 1_000_000.0 + 8_000.0);
        for &p in &[0.1, 0.3, 0.7, 0.95] {
            let exact = bernoulli_self_join_variance(p, f1, f2, f3);
            let plug = bernoulli_self_join_variance_plugin(p, f1 as u64, f2);
            assert!(
                plug >= exact - 1e-9,
                "p={p}: plug-in {plug} below exact {exact}"
            );
        }
        // Size-of-join: plug-in with the true moments' bounds dominates.
        let exact = bernoulli_size_of_join_variance(0.4, 0.6, 50.0, 70.0, 30.0);
        let plug = bernoulli_size_of_join_variance_plugin(0.4, 0.6, 100.0, 90.0, 30.0);
        assert!(plug >= exact);
    }

    #[test]
    fn staleness_plugin_scales_with_the_pending_backlog() {
        // Nothing pending (or an empty replica): no staleness term.
        assert_eq!(staleness_variance_plugin(1e6, 10_000, 0), 0.0);
        assert_eq!(staleness_variance_plugin(1e6, 0, 10_000), 0.0);
        // 10% backlog on an F₂ estimate: drift ≈ value·(1.1² − 1) = 21%.
        let v = staleness_variance_plugin(1e6, 100_000, 10_000);
        let sd = v.sqrt();
        assert!((sd - 0.21 * 1e6).abs() < 1e-6 * 1e6, "sd = {sd}");
        // Monotone in the backlog, and symmetric in sign of the value.
        assert!(
            staleness_variance_plugin(1e6, 100_000, 20_000)
                > staleness_variance_plugin(1e6, 100_000, 10_000)
        );
        assert_eq!(
            staleness_variance_plugin(-1e6, 100_000, 10_000),
            staleness_variance_plugin(1e6, 100_000, 10_000)
        );
    }

    #[test]
    fn plugin_is_clamped_nonnegative() {
        // Inconsistent inputs (tiny F̂₂ vs huge seen count) would go
        // negative in the exact form at p close to 1.
        let v = bernoulli_self_join_variance_plugin(0.9, 1_000_000, 1.0);
        assert!(v >= 0.0);
        assert!(bernoulli_size_of_join_variance_plugin(0.5, 0.5, -5.0, -5.0, -5.0) >= 0.0);
    }
}
