//! Sampling with replacement: a fixed-size i.i.d. sample from a finite
//! population.
//!
//! The sampled frequency vector `f′` is a multinomial with `m = |F′|` trials
//! and cell probabilities `fᵢ/|F|`. Besides the tuple-level sampler used by
//! the estimators, this module exposes [`MultinomialFrequencies`], which
//! draws the frequency vector *directly* (sequential conditional binomials).
//! Direct frequency draws are what make the Monte-Carlo verification of the
//! variance formulas in `sss-moments` feasible at scale: simulating a
//! 10⁶-tuple sample costs O(|domain|) instead of O(m) hash updates.

use crate::counts::SampleCounts;
use crate::error::{Error, Result};
use rand::Rng;

/// Draw `m` tuples with replacement from `population`.
///
/// # Errors
///
/// [`Error::EmptyPopulation`] if the population slice is empty and `m > 0`.
pub fn sample_with_replacement<R: Rng + ?Sized>(
    population: &[u64],
    m: u64,
    rng: &mut R,
) -> Result<Vec<u64>> {
    if population.is_empty() && m > 0 {
        return Err(Error::EmptyPopulation);
    }
    Ok((0..m)
        .map(|_| population[rng.random_range(0..population.len())])
        .collect())
}

/// Draw the sampled frequency vector of a with-replacement sample directly
/// from the multinomial law.
///
/// Given true frequencies `f` (over an implicit dense domain `0..f.len()`)
/// and a sample size `m`, each call to [`draw`] returns one realization of
/// the multinomial `(m; f₀/N, …)` where `N = Σ fᵢ`.
///
/// [`draw`]: MultinomialFrequencies::draw
#[derive(Debug, Clone)]
pub struct MultinomialFrequencies {
    freqs: Vec<u64>,
    population: u64,
    m: u64,
}

impl MultinomialFrequencies {
    /// Build the sampler for the given true frequency vector and sample
    /// size.
    pub fn new(freqs: Vec<u64>, m: u64) -> Result<Self> {
        let population: u64 = freqs.iter().sum();
        if population == 0 {
            return Err(Error::EmptyPopulation);
        }
        Ok(Self {
            freqs,
            population,
            m,
        })
    }

    /// One multinomial realization, as dense per-key counts.
    ///
    /// Uses the conditional-binomial decomposition: with `R` trials left
    /// and residual mass `M`, cell `i` receives `Binomial(R, fᵢ/M)`.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let mut out = vec![0u64; self.freqs.len()];
        let mut remaining_trials = self.m;
        let mut remaining_mass = self.population;
        for (i, &f) in self.freqs.iter().enumerate() {
            if remaining_trials == 0 {
                break;
            }
            if f == 0 {
                continue;
            }
            if f == remaining_mass {
                out[i] = remaining_trials;
                break;
            }
            let p = f as f64 / remaining_mass as f64;
            let draw = binomial(remaining_trials, p, rng);
            out[i] = draw;
            remaining_trials -= draw;
            remaining_mass -= f;
        }
        out
    }

    /// One realization, as a [`SampleCounts`] keyed by domain index.
    pub fn draw_counts<R: Rng + ?Sized>(&self, rng: &mut R) -> SampleCounts {
        let mut s = SampleCounts::new();
        for (i, c) in self.draw(rng).into_iter().enumerate() {
            s.insert_many(i as u64, c);
        }
        s
    }
}

/// Sample from `Binomial(n, p)`.
///
/// Uses direct Bernoulli summation for small `n·min(p,1−p)` and a
/// normal-approximation-with-correction inversion otherwise. The estimator
/// tests in `sss-moments` Monte-Carlo this function against exact moments,
/// so approximation error is pinned there.
pub fn binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Work with the smaller tail for numerical stability.
    if p > 0.5 {
        return n - binomial(n, 1.0 - p, rng);
    }
    let mean = n as f64 * p;
    if mean < 32.0 || n < 64 {
        // Waiting-time method: count geometric gaps until they exceed n.
        // O(np) expected work, exact distribution.
        let log_q = (1.0 - p).ln();
        let mut count = 0u64;
        let mut pos = 0f64;
        loop {
            let u: f64 = 1.0 - rng.random::<f64>();
            pos += (u.ln() / log_q).floor() + 1.0;
            if pos > n as f64 {
                return count;
            }
            count += 1;
        }
    }
    // BTPE would be exact; for the simulation workloads here the
    // squeeze-free normal inversion with a continuity correction is
    // accurate to O(1/sqrt(npq)) which the Monte-Carlo tolerances absorb.
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    loop {
        let z = normal(rng);
        let x = (mean + sd * z + 0.5).floor();
        if x >= 0.0 && x <= n as f64 {
            return x as u64;
        }
    }
}

/// A standard normal draw via Box–Muller (polar form).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn tuple_sampler_draws_exact_size() {
        let pop: Vec<u64> = (0..1000).collect();
        let s = sample_with_replacement(&pop, 2500, &mut rng(1)).unwrap();
        assert_eq!(s.len(), 2500);
        assert!(s.iter().all(|&k| k < 1000));
    }

    #[test]
    fn tuple_sampler_rejects_empty_population() {
        assert!(sample_with_replacement(&[], 1, &mut rng(2)).is_err());
        // m = 0 from an empty population is fine: the sample is empty.
        assert_eq!(
            sample_with_replacement(&[], 0, &mut rng(2)).unwrap().len(),
            0
        );
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(3);
        assert_eq!(binomial(0, 0.5, &mut r), 0);
        assert_eq!(binomial(100, 0.0, &mut r), 0);
        assert_eq!(binomial(100, 1.0, &mut r), 100);
    }

    #[test]
    fn binomial_moments_small_n() {
        let (n, p) = (40u64, 0.2);
        let reps = 100_000;
        let mut r = rng(4);
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for _ in 0..reps {
            let x = binomial(n, p, &mut r) as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sum_sq / reps as f64 - mean * mean;
        assert!((mean - 8.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 6.4).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn binomial_moments_large_n() {
        let (n, p) = (100_000u64, 0.37);
        let reps = 20_000;
        let mut r = rng(5);
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for _ in 0..reps {
            let x = binomial(n, p, &mut r) as f64;
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sum_sq / reps as f64 - mean * mean;
        let tm = n as f64 * p;
        let tv = n as f64 * p * (1.0 - p);
        assert!((mean - tm).abs() / tm < 0.001, "mean = {mean}, expect {tm}");
        assert!((var - tv).abs() / tv < 0.05, "var = {var}, expect {tv}");
    }

    #[test]
    fn multinomial_draw_sums_to_m() {
        let mf = MultinomialFrequencies::new(vec![5, 0, 10, 1, 100], 37).unwrap();
        let mut r = rng(6);
        for _ in 0..200 {
            let d = mf.draw(&mut r);
            assert_eq!(d.iter().sum::<u64>(), 37);
            assert_eq!(d[1], 0, "zero-frequency cell must stay empty");
        }
    }

    #[test]
    fn multinomial_cell_means_match() {
        let freqs = vec![10u64, 30, 60]; // N = 100
        let m = 50u64;
        let mf = MultinomialFrequencies::new(freqs.clone(), m).unwrap();
        let reps = 40_000;
        let mut r = rng(7);
        let mut sums = [0f64; 3];
        for _ in 0..reps {
            for (s, d) in sums.iter_mut().zip(mf.draw(&mut r)) {
                *s += d as f64;
            }
        }
        for (i, &f) in freqs.iter().enumerate() {
            let mean = sums[i] / reps as f64;
            let expect = m as f64 * f as f64 / 100.0;
            assert!(
                (mean - expect).abs() / expect < 0.02,
                "cell {i}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_rejects_zero_population() {
        assert!(MultinomialFrequencies::new(vec![0, 0], 5).is_err());
    }

    #[test]
    fn draw_counts_matches_draw_totals() {
        let mf = MultinomialFrequencies::new(vec![3, 7, 2], 24).unwrap();
        let c = mf.draw_counts(&mut rng(8));
        assert_eq!(c.total(), 24);
    }
}
