//! Sampling without replacement: a uniform random subset of fixed size.
//!
//! The sampled frequency vector `f′` follows the multivariate hypergeometric
//! law. Three entry points match the three ways WOR samples arise in
//! practice:
//!
//! * [`sample_without_replacement`] — partial Fisher–Yates over a
//!   materialized relation.
//! * [`reservoir_sample`] — Vitter's Algorithm R over a one-pass stream of
//!   unknown length.
//! * [`PrefixScan`] — shuffle once, then expose every prefix of the scan as
//!   a growing WOR sample. This models the online-aggregation scenario of
//!   the paper's Section VI-C, where "the fraction of the relation seen at
//!   each point during the scan represents a sample without replacement of
//!   the entire relation as long as the order of the tuples is random".

use crate::error::{Error, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Draw a uniform subset of `m` tuples from `population` (order random).
///
/// Runs a partial Fisher–Yates shuffle: O(m) swaps over one O(|population|)
/// copy.
///
/// # Errors
///
/// [`Error::SampleExceedsPopulation`] if `m > |population|`.
pub fn sample_without_replacement<R: Rng + ?Sized>(
    population: &[u64],
    m: u64,
    rng: &mut R,
) -> Result<Vec<u64>> {
    let n = population.len() as u64;
    if m > n {
        return Err(Error::SampleExceedsPopulation {
            sample: m,
            population: n,
        });
    }
    let mut pool: Vec<u64> = population.to_vec();
    let m = m as usize;
    for i in 0..m {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(m);
    Ok(pool)
}

/// One-pass reservoir sampling (Algorithm R) over a stream of unknown
/// length.
///
/// Returns `min(m, stream length)` tuples; every subset of that size is
/// equally likely.
pub fn reservoir_sample<I, R>(stream: I, m: usize, rng: &mut R) -> Vec<u64>
where
    I: IntoIterator<Item = u64>,
    R: Rng + ?Sized,
{
    let mut reservoir: Vec<u64> = Vec::with_capacity(m);
    if m == 0 {
        return reservoir;
    }
    for (seen, item) in stream.into_iter().enumerate() {
        if reservoir.len() < m {
            reservoir.push(item);
        } else {
            let j = rng.random_range(0..=seen);
            if j < m {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// One-pass reservoir sampling with geometric jumps (Li's Algorithm L).
///
/// Produces the same distribution as [`reservoir_sample`] but does O(1)
/// work per *replacement* instead of per element: after the reservoir
/// fills, the index of the next replaced element is drawn directly, so a
/// stream of `n` elements costs `O(m·(1 + log(n/m)))` RNG work. This is
/// the reservoir analogue of the geometric-skip Bernoulli sampler and the
/// right choice when the stream is cheap to advance (e.g. an in-memory
/// scan or a seekable file).
pub fn reservoir_sample_l<I, R>(stream: I, m: usize, rng: &mut R) -> Vec<u64>
where
    I: IntoIterator<Item = u64>,
    R: Rng + ?Sized,
{
    let mut it = stream.into_iter();
    let mut reservoir: Vec<u64> = Vec::with_capacity(m);
    if m == 0 {
        return reservoir;
    }
    for item in it.by_ref().take(m) {
        reservoir.push(item);
    }
    if reservoir.len() < m {
        return reservoir; // stream shorter than the reservoir
    }
    // W is the running maximum of m uniform "keys" (in expectation);
    // ln-space arithmetic avoids underflow on long streams.
    let mut w: f64 = (rng.random::<f64>().max(f64::MIN_POSITIVE).ln() / m as f64).exp();
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / (1.0 - w).ln()).floor();
        if !skip.is_finite() || skip < 0.0 {
            // w rounded to 1.0: every future key loses; sampling is done.
            return reservoir;
        }
        // Advance past `skip` elements, then replace a random slot.
        let mut remaining = skip as u64;
        loop {
            match it.next() {
                None => return reservoir,
                Some(item) => {
                    if remaining == 0 {
                        let slot = rng.random_range(0..m);
                        reservoir[slot] = item;
                        break;
                    }
                    remaining -= 1;
                }
            }
        }
        w *= (rng.random::<f64>().max(f64::MIN_POSITIVE).ln() / m as f64).exp();
    }
}

/// A randomly-ordered scan whose prefixes are without-replacement samples.
///
/// Construct once (shuffles the relation), then either iterate tuple by
/// tuple or take snapshots at chosen fractions. This is the substrate for
/// the online-aggregation experiments (Figures 7–8 of the paper).
#[derive(Debug, Clone)]
pub struct PrefixScan {
    tuples: Vec<u64>,
}

impl PrefixScan {
    /// Shuffle `relation` into a random scan order.
    pub fn new<R: Rng + ?Sized>(mut relation: Vec<u64>, rng: &mut R) -> Self {
        relation.shuffle(rng);
        Self { tuples: relation }
    }

    /// Build from a relation that is *already* in random order (e.g. the
    /// output of a previous shuffle persisted to disk).
    pub fn assume_random_order(relation: Vec<u64>) -> Self {
        Self { tuples: relation }
    }

    /// Total relation size `|F|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The scan order (full relation).
    pub fn tuples(&self) -> &[u64] {
        &self.tuples
    }

    /// The WOR sample consisting of the first `m` scanned tuples.
    ///
    /// # Errors
    ///
    /// [`Error::SampleExceedsPopulation`] if `m > |F|`.
    pub fn prefix(&self, m: usize) -> Result<&[u64]> {
        if m > self.tuples.len() {
            return Err(Error::SampleExceedsPopulation {
                sample: m as u64,
                population: self.tuples.len() as u64,
            });
        }
        Ok(&self.tuples[..m])
    }

    /// The prefix covering the given `fraction ∈ [0, 1]` of the relation
    /// (rounded to the nearest tuple).
    pub fn prefix_fraction(&self, fraction: f64) -> Result<&[u64]> {
        if !(0.0..=1.0).contains(&fraction) || fraction.is_nan() {
            return Err(Error::InvalidProbability(fraction));
        }
        let m = (fraction * self.tuples.len() as f64).round() as usize;
        self.prefix(m.min(self.tuples.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn wor_sample_has_exact_size_and_no_duplicates() {
        let pop: Vec<u64> = (0..1000).collect();
        let s = sample_without_replacement(&pop, 300, &mut rng(1)).unwrap();
        assert_eq!(s.len(), 300);
        let distinct: HashSet<u64> = s.iter().copied().collect();
        assert_eq!(distinct.len(), 300, "WOR sample must not repeat tuples");
    }

    #[test]
    fn wor_full_sample_is_a_permutation() {
        let pop: Vec<u64> = (0..64).collect();
        let mut s = sample_without_replacement(&pop, 64, &mut rng(2)).unwrap();
        s.sort_unstable();
        assert_eq!(s, pop);
    }

    #[test]
    fn wor_rejects_oversized_samples() {
        let pop: Vec<u64> = (0..10).collect();
        assert_eq!(
            sample_without_replacement(&pop, 11, &mut rng(3)),
            Err(Error::SampleExceedsPopulation {
                sample: 11,
                population: 10
            })
        );
    }

    /// Each element must be included with probability m/n.
    #[test]
    fn wor_inclusion_probability_is_uniform() {
        let pop: Vec<u64> = (0..20).collect();
        let reps = 40_000;
        let mut incl = [0u32; 20];
        let mut r = rng(4);
        for _ in 0..reps {
            for k in sample_without_replacement(&pop, 5, &mut r).unwrap() {
                incl[k as usize] += 1;
            }
        }
        for (k, &c) in incl.iter().enumerate() {
            let freq = c as f64 / reps as f64;
            assert!((freq - 0.25).abs() < 0.015, "element {k}: inclusion {freq}");
        }
    }

    #[test]
    fn reservoir_matches_stream_when_short() {
        let s = reservoir_sample(0..5u64, 10, &mut rng(5));
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        assert!(reservoir_sample(0..5u64, 0, &mut rng(5)).is_empty());
    }

    #[test]
    fn algorithm_l_matches_stream_when_short() {
        let s = reservoir_sample_l(0..5u64, 10, &mut rng(50));
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        assert!(reservoir_sample_l(0..5u64, 0, &mut rng(50)).is_empty());
    }

    /// Algorithm L must induce the same uniform inclusion law as
    /// Algorithm R.
    #[test]
    fn algorithm_l_inclusion_probability_is_uniform() {
        let reps = 40_000;
        let n = 20u64;
        let m = 5usize;
        let mut incl = vec![0u32; n as usize];
        let mut r = rng(51);
        for _ in 0..reps {
            for k in reservoir_sample_l(0..n, m, &mut r) {
                incl[k as usize] += 1;
            }
        }
        for (k, &c) in incl.iter().enumerate() {
            let freq = c as f64 / reps as f64;
            assert!((freq - 0.25).abs() < 0.015, "element {k}: inclusion {freq}");
        }
    }

    /// On long streams Algorithm L consumes far fewer RNG draws than
    /// Algorithm R performs index draws — spot-check the sample is still
    /// exact-size and in range.
    #[test]
    fn algorithm_l_long_stream() {
        let mut r = rng(52);
        let s = reservoir_sample_l(0..1_000_000u64, 64, &mut r);
        assert_eq!(s.len(), 64);
        assert!(s.iter().all(|&k| k < 1_000_000));
        let distinct: HashSet<u64> = s.iter().copied().collect();
        assert_eq!(distinct.len(), 64, "WOR sample must not repeat tuples");
    }

    #[test]
    fn reservoir_inclusion_probability_is_uniform() {
        let reps = 40_000;
        let n = 20u64;
        let m = 5usize;
        let mut incl = vec![0u32; n as usize];
        let mut r = rng(6);
        for _ in 0..reps {
            for k in reservoir_sample(0..n, m, &mut r) {
                incl[k as usize] += 1;
            }
        }
        for (k, &c) in incl.iter().enumerate() {
            let freq = c as f64 / reps as f64;
            assert!((freq - 0.25).abs() < 0.015, "element {k}: inclusion {freq}");
        }
    }

    #[test]
    fn prefix_scan_prefixes_nest_and_bound() {
        let scan = PrefixScan::new((0..100u64).collect(), &mut rng(7));
        let p10 = scan.prefix(10).unwrap().to_vec();
        let p50 = scan.prefix(50).unwrap().to_vec();
        assert_eq!(&p50[..10], &p10[..], "prefixes must nest");
        assert!(scan.prefix(101).is_err());
        assert_eq!(scan.prefix_fraction(0.25).unwrap().len(), 25);
        assert_eq!(scan.prefix_fraction(1.0).unwrap().len(), 100);
        assert_eq!(scan.prefix_fraction(0.0).unwrap().len(), 0);
        assert!(scan.prefix_fraction(1.5).is_err());
    }

    #[test]
    fn prefix_scan_shuffles() {
        let scan = PrefixScan::new((0..1000u64).collect(), &mut rng(8));
        // A shuffled scan should not be sorted.
        assert!(scan.tuples().windows(2).any(|w| w[0] > w[1]));
        let mut sorted = scan.tuples().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000u64).collect::<Vec<_>>());
    }
}
