//! The basic AGMS ("tug-of-war") sketch.
//!
//! One basic counter maintains `S = Σᵢ fᵢ·ξᵢ` for a 4-wise independent ±1
//! family `ξ`; `S²` estimates the self-join size (Proposition 8) and `S·T`
//! the size of join with a sketch `T` of the other relation built with the
//! *same* family (Proposition 7). An [`AgmsSketch`] maintains `n` such
//! counters with independent families; [`AgmsSketch::self_join`] averages
//! the basics (variance ∝ 1/n), and the median-of-means variants trade some
//! averaging for boosted confidence.
//!
//! Updating touches **every** counter — O(n) per tuple — which is the
//! bottleneck that motivates both F-AGMS and the paper's sampling-based
//! load shedding.

use crate::error::{Error, Result};
use crate::estimate::{self, Estimate};
use crate::Sketch;
use rand::Rng;
use sss_xi::{DefaultSign, SignFamily};
use std::sync::Arc;

/// The shared random seeds (one ±1 family per basic counter) plus a schema
/// identity used to reject cross-schema operations.
#[derive(Debug)]
pub struct AgmsSchema<F = DefaultSign> {
    families: Arc<[F]>,
    id: u64,
}

// Manual impl: cloning shares the seed Arc, so `F: Clone` is not required.
impl<F> Clone for AgmsSchema<F> {
    fn clone(&self) -> Self {
        Self {
            families: Arc::clone(&self.families),
            id: self.id,
        }
    }
}

// Persistence: a schema is its seed list plus identity. Serializing the
// schema (rather than re-randomizing) is what lets sketches built in
// different processes be merged/joined — the id survives the round trip.
impl<F: serde::Serialize> serde::Serialize for AgmsSchema<F> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("AgmsSchema", 2)?;
        st.serialize_field("families", self.families.as_ref())?;
        st.serialize_field("id", &self.id)?;
        st.end()
    }
}

impl<'de, F: serde::Deserialize<'de>> serde::Deserialize<'de> for AgmsSchema<F> {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr<F> {
            families: Vec<F>,
            id: u64,
        }
        let repr = Repr::<F>::deserialize(deserializer)?;
        if repr.families.is_empty() {
            return Err(serde::de::Error::invalid_length(0, &"at least one family"));
        }
        Ok(Self {
            families: repr.families.into(),
            id: repr.id,
        })
    }
}

impl<F: serde::Serialize> serde::Serialize for AgmsSketch<F> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("AgmsSketch", 2)?;
        st.serialize_field("schema", &self.schema)?;
        st.serialize_field("counters", &self.counters)?;
        st.end()
    }
}

impl<'de, F: serde::Deserialize<'de>> serde::Deserialize<'de> for AgmsSketch<F> {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        #[serde(bound = "F: serde::Deserialize<'de>")]
        struct Repr<F> {
            schema: AgmsSchema<F>,
            counters: Vec<i64>,
        }
        let repr = Repr::<F>::deserialize(deserializer)?;
        if repr.counters.len() != repr.schema.families.len() {
            return Err(serde::de::Error::invalid_length(
                repr.counters.len(),
                &"one counter per schema family",
            ));
        }
        Ok(Self {
            schema: repr.schema,
            counters: repr.counters,
        })
    }
}

impl<F: SignFamily> AgmsSchema<F> {
    /// Create a schema with `n` independently seeded families.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; use [`AgmsSchema::try_new`] for a fallible
    /// constructor.
    pub fn new<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self::try_new(n, rng).expect("AGMS schema needs at least one counter")
    }

    /// Size a schema for a target accuracy: with probability at least
    /// `1 − δ`, the averaged self-join estimate is within `±ε·F₂` when
    /// combined with [`AgmsSketch::self_join_median_of_means`] using
    /// `⌈3.6·ln(1/δ)⌉` groups.
    ///
    /// Allocates `⌈16/ε²⌉` basics per group (group-mean variance
    /// `≤ 2F₂²·ε²/16`, Chebyshev failure `≤ 1/8` per group, Chernoff over
    /// the median). Mind the cost: AGMS updates touch every counter.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε ≤ 1` and `0 < δ < 1`.
    pub fn for_accuracy<R: Rng + ?Sized>(epsilon: f64, delta: f64, rng: &mut R) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let per_group = (16.0 / (epsilon * epsilon)).ceil() as usize;
        let groups = ((3.6 * (1.0 / delta).ln()).ceil() as usize).max(1);
        Self::new(per_group * groups, rng)
    }

    /// The number of median-of-means groups [`AgmsSchema::for_accuracy`]
    /// sized the schema for.
    pub fn recommended_groups(delta: f64) -> usize {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        ((3.6 * (1.0 / delta).ln()).ceil() as usize).max(1)
    }

    /// Fallible constructor: errors on `n == 0`.
    pub fn try_new<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidDimensions);
        }
        let families: Arc<[F]> = (0..n).map(|_| F::random(rng)).collect();
        Ok(Self {
            families,
            id: rng.random::<u64>(),
        })
    }

    /// Number of basic counters.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// The schema identity: random at construction, preserved by
    /// serialization, equal only for sketches that may merge/join.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the schema is empty (never true for a constructed schema).
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// A zeroed sketch bound to this schema.
    pub fn sketch(&self) -> AgmsSketch<F> {
        AgmsSketch {
            schema: self.clone(),
            counters: vec![0; self.families.len()],
        }
    }
}

/// An AGMS sketch: `n` atomic counters, each `Σᵢ fᵢ·ξᵢ⁽ᵏ⁾`.
#[derive(Debug)]
pub struct AgmsSketch<F = DefaultSign> {
    schema: AgmsSchema<F>,
    counters: Vec<i64>,
}

// Manual impl, like the schema's: the families sit behind an `Arc`, so a
// sketch clones without requiring `F: Clone`.
impl<F> Clone for AgmsSketch<F> {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            counters: self.counters.clone(),
        }
    }
}

impl<F: SignFamily> AgmsSketch<F> {
    /// The raw counter values `S₁ … Sₙ`.
    pub fn raw_counters(&self) -> &[i64] {
        &self.counters
    }

    /// The schema this sketch was created from.
    pub fn schema(&self) -> &AgmsSchema<F> {
        &self.schema
    }

    fn check_schema(&self, other: &Self) -> Result<()> {
        if self.schema.id == other.schema.id && self.counters.len() == other.counters.len() {
            Ok(())
        } else {
            Err(Error::SchemaMismatch)
        }
    }

    /// The basic self-join estimates `Sₖ²` (unaveraged, Proposition 8).
    pub fn self_join_basics(&self) -> Vec<f64> {
        self.counters
            .iter()
            .map(|&s| (s as f64) * (s as f64))
            .collect()
    }

    /// Averaged self-join size estimate `F₂ ≈ (1/n)·ΣSₖ²`.
    pub fn self_join(&self) -> f64 {
        estimate::mean(&self.self_join_basics())
    }

    /// Median-of-means self-join estimate over `groups` groups.
    pub fn self_join_median_of_means(&self, groups: usize) -> f64 {
        estimate::median_of_means(&self.self_join_basics(), groups)
    }

    /// The basic size-of-join estimates `Sₖ·Tₖ` (Proposition 7).
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if `other` was built from another schema.
    pub fn size_of_join_basics(&self, other: &Self) -> Result<Vec<f64>> {
        self.check_schema(other)?;
        Ok(self
            .counters
            .iter()
            .zip(&other.counters)
            .map(|(&s, &t)| s as f64 * t as f64)
            .collect())
    }

    /// Averaged size-of-join estimate `|F ⋈ G| ≈ (1/n)·ΣSₖTₖ`.
    pub fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(estimate::mean(&self.size_of_join_basics(other)?))
    }

    /// Median-of-means size-of-join estimate over `groups` groups.
    pub fn size_of_join_median_of_means(&self, other: &Self, groups: usize) -> Result<f64> {
        Ok(estimate::median_of_means(
            &self.size_of_join_basics(other)?,
            groups,
        ))
    }

    /// Typed self-join estimate: the value is bit-identical to
    /// [`AgmsSketch::self_join`], the variance is the empirical sample
    /// variance across the `n` independent basics divided by `n`.
    ///
    /// With a single counter the empirical spread is undefined and the
    /// Prop.-8 analytic bound `Var ≤ 2·F₂²/n` is plugged in (dropping the
    /// `−2F₄` term, so it over-covers).
    pub fn self_join_estimate(&self) -> Estimate {
        let n = self.counters.len() as f64;
        let e = Estimate::from_mean(self.self_join_basics());
        let plugin = 2.0 * e.value * e.value / n;
        e.or_variance(plugin)
    }

    /// Typed size-of-join estimate: value bit-identical to
    /// [`AgmsSketch::size_of_join`], empirical variance across the basics.
    /// The single-counter fallback is the Prop.-7 bound
    /// `Var ≤ (F₂(f)·F₂(g) + (Σfg)²)/n` with the self-joins plugged in.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if `other` was built from another schema.
    pub fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        let n = self.counters.len() as f64;
        let e = Estimate::from_mean(self.size_of_join_basics(other)?);
        let plugin = (self.self_join() * other.self_join() + e.value * e.value) / n;
        Ok(e.or_variance(plugin))
    }
}

impl<F: sss_xi::RangeSummable> AgmsSketch<F> {
    /// Add `count` occurrences of **every** key in `[lo, hi)` in
    /// O(counters · log²(hi−lo)) time — the range-update capability that
    /// range-summable families (EH3) buy. Equivalent to, but exponentially
    /// faster than, calling [`Sketch::update`] for each key.
    pub fn update_range(&mut self, lo: u64, hi: u64, count: i64) {
        for (counter, family) in self.counters.iter_mut().zip(self.schema.families.iter()) {
            *counter += count * family.range_sum(lo, hi);
        }
    }
}

impl<F: SignFamily> Sketch for AgmsSketch<F> {
    #[inline]
    fn update(&mut self, key: u64, count: i64) {
        for (counter, family) in self.counters.iter_mut().zip(self.schema.families.iter()) {
            *counter += count * family.sign(key);
        }
    }

    // Family-major batched kernel: a whole batch contributes `Σᵢ ξ(kᵢ)` to
    // each counter, so every family makes one fused pass over the keys with
    // its seed hot and never materializes a per-key sign. The sums come
    // from the runtime-dispatched `sss_xi::kernels` sign kernels via the
    // family's `sign_sum`/`sign_dot` overrides. Bit-identical to per-key
    // updates because integer addition commutes.
    fn update_batch(&mut self, keys: &[u64]) {
        for (counter, family) in self.counters.iter_mut().zip(self.schema.families.iter()) {
            *counter += family.sign_sum(keys);
        }
    }

    fn update_batch_counts(&mut self, items: &[(u64, i64)]) {
        for (counter, family) in self.counters.iter_mut().zip(self.schema.families.iter()) {
            *counter += family.sign_dot(items);
        }
    }

    fn merge(&mut self, other: &Self) -> Result<()> {
        self.check_schema(other)?;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        Ok(())
    }

    fn subtract(&mut self, other: &Self) -> Result<()> {
        self.check_schema(other)?;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c -= o;
        }
        Ok(())
    }

    fn counters(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_counter_schema_is_rejected() {
        assert_eq!(
            AgmsSchema::<DefaultSign>::try_new(0, &mut rng(0)).unwrap_err(),
            Error::InvalidDimensions
        );
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let schema = AgmsSchema::<DefaultSign>::new(16, &mut rng(1));
        let s = schema.sketch();
        assert_eq!(s.self_join(), 0.0);
        assert_eq!(s.size_of_join(&schema.sketch()).unwrap(), 0.0);
    }

    #[test]
    fn single_key_self_join_is_exact() {
        // One key with frequency f: every basic is (f·ξ)² = f² exactly.
        let schema = AgmsSchema::<DefaultSign>::new(8, &mut rng(2));
        let mut s = schema.sketch();
        s.update(42, 7);
        assert_eq!(s.self_join(), 49.0);
        assert_eq!(s.self_join_median_of_means(4), 49.0);
    }

    #[test]
    fn update_with_negative_count_cancels() {
        let schema = AgmsSchema::<DefaultSign>::new(8, &mut rng(3));
        let mut s = schema.sketch();
        for key in 0..100u64 {
            s.update(key, 3);
        }
        for key in 0..100u64 {
            s.update(key, -3);
        }
        assert!(s.raw_counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn merge_equals_union_stream() {
        let schema = AgmsSchema::<DefaultSign>::new(32, &mut rng(4));
        let mut whole = schema.sketch();
        let mut left = schema.sketch();
        let mut right = schema.sketch();
        for key in 0..500u64 {
            whole.update(key, 1);
            if key % 2 == 0 {
                left.update(key, 1);
            } else {
                right.update(key, 1);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left.raw_counters(), whole.raw_counters());
    }

    #[test]
    fn cross_schema_operations_fail() {
        let a = AgmsSchema::<DefaultSign>::new(8, &mut rng(5));
        let b = AgmsSchema::<DefaultSign>::new(8, &mut rng(6));
        let mut sa = a.sketch();
        let sb = b.sketch();
        assert_eq!(sa.size_of_join(&sb).unwrap_err(), Error::SchemaMismatch);
        assert_eq!(sa.merge(&sb).unwrap_err(), Error::SchemaMismatch);
    }

    #[test]
    fn self_join_estimate_concentrates() {
        // Uniform relation: 1000 keys × frequency 4 -> F₂ = 16_000.
        let schema = AgmsSchema::<DefaultSign>::new(600, &mut rng(7));
        let mut s = schema.sketch();
        for key in 0..1000u64 {
            s.update(key, 4);
        }
        let est = s.self_join();
        let truth = 16_000.0;
        assert!((est - truth).abs() / truth < 0.2, "est = {est}");
    }

    #[test]
    fn size_of_join_estimate_concentrates() {
        let schema = AgmsSchema::<DefaultSign>::new(800, &mut rng(8));
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        // F: keys 0..500 freq 2; G: keys 250..750 freq 3; overlap 250 keys.
        for key in 0..500u64 {
            s.update(key, 2);
        }
        for key in 250..750u64 {
            t.update(key, 3);
        }
        let truth = 250.0 * 2.0 * 3.0;
        let est = s.size_of_join(&t).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.5,
            "est = {est}, truth = {truth}"
        );
    }

    /// Range updates (EH3 backend) must equal per-key updates exactly.
    #[test]
    fn range_update_equals_pointwise() {
        use sss_xi::Eh3;
        let schema = AgmsSchema::<Eh3>::new(16, &mut rng(40));
        let mut ranged = schema.sketch();
        let mut pointwise = schema.sketch();
        for (lo, hi, c) in [
            (0u64, 100u64, 3i64),
            (57, 1031, -2),
            (1 << 33, (1 << 33) + 500, 7),
        ] {
            ranged.update_range(lo, hi, c);
            for k in lo..hi {
                pointwise.update(k, c);
            }
        }
        assert_eq!(ranged.raw_counters(), pointwise.raw_counters());
    }

    /// A histogram-style workload through range updates: the self-join
    /// estimate still concentrates.
    #[test]
    fn range_update_self_join_estimate() {
        use sss_xi::Eh3;
        let schema = AgmsSchema::<Eh3>::new(512, &mut rng(41));
        let mut s = schema.sketch();
        // 50 buckets of width 100, bucket b has weight b+1.
        let mut truth = 0f64;
        for b in 0..50u64 {
            let w = (b + 1) as i64;
            s.update_range(b * 100, (b + 1) * 100, w);
            truth += 100.0 * (w * w) as f64;
        }
        let est = s.self_join();
        assert!(
            (est - truth).abs() / truth < 0.25,
            "est = {est}, truth = {truth}"
        );
    }

    /// The batched kernels must leave exactly the counter state of the
    /// per-key loop, across chunk boundaries and with negative counts.
    #[test]
    fn batched_updates_are_bit_identical_to_scalar() {
        let schema = AgmsSchema::<DefaultSign>::new(16, &mut rng(50));
        let keys: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let items: Vec<(u64, i64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as i64 % 7) - 3))
            .collect();
        let mut scalar = schema.sketch();
        let mut batched = schema.sketch();
        for &k in &keys {
            scalar.update(k, 1);
        }
        batched.update_batch(&keys);
        assert_eq!(scalar.raw_counters(), batched.raw_counters());
        for &(k, c) in &items {
            scalar.update(k, c);
        }
        batched.update_batch_counts(&items);
        assert_eq!(scalar.raw_counters(), batched.raw_counters());
    }

    /// Monte-Carlo unbiasedness and Prop 8 variance: over many schemas, the
    /// sample mean of `S²` matches F₂ and the sample variance matches
    /// `2(F₂² − F₄)/n`.
    #[test]
    fn self_join_moments_match_proposition_8() {
        let freqs: Vec<(u64, i64)> = (0..50u64).map(|k| (k, (k % 7 + 1) as i64)).collect();
        let f2: f64 = freqs.iter().map(|&(_, f)| (f * f) as f64).sum();
        let f4: f64 = freqs.iter().map(|&(_, f)| (f as f64).powi(4)).sum();
        let n = 16usize;
        let reps = 3000;
        let mut r = rng(9);
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for _ in 0..reps {
            let schema = AgmsSchema::<DefaultSign>::new(n, &mut r);
            let mut s = schema.sketch();
            for &(k, f) in &freqs {
                s.update(k, f);
            }
            let est = s.self_join();
            sum += est;
            sum_sq += est * est;
        }
        let mean = sum / reps as f64;
        let var = sum_sq / reps as f64 - mean * mean;
        let theory_var = 2.0 * (f2 * f2 - f4) / n as f64;
        assert!((mean - f2).abs() / f2 < 0.02, "mean = {mean}, F₂ = {f2}");
        assert!(
            (var - theory_var).abs() / theory_var < 0.15,
            "var = {var}, theory = {theory_var}"
        );
    }
}
