//! Count-Min sketch (Cormode & Muthukrishnan), the non-±1 baseline.
//!
//! Each of `depth` rows adds `count` (unsigned) to bucket `h(key)`; a point
//! query takes the **minimum** over rows, which upper-bounds the true
//! frequency (one-sided error `≤ ε‖f‖₁` with `width = e/ε`). The
//! inner-product estimate `min_r Σ_b s_b·t_b` likewise upper-bounds the true
//! size of join for insert-only streams.
//!
//! Included for the comparison benches: Count-Min's join estimate is biased
//! upward (the bias grows with `‖f‖₁‖g‖₁/width`), whereas the ±1 sketches
//! are unbiased — the trade-off the paper's choice of F-AGMS reflects.

use crate::error::{Error, Result};
use crate::estimate::{self, Estimate};
use crate::Sketch;
use rand::Rng;
use sss_xi::{BucketFamily, DefaultBucket};
use std::sync::Arc;

/// The shared bucket hashes of a Count-Min sketch.
#[derive(Debug)]
pub struct CountMinSchema<B = DefaultBucket> {
    rows: Arc<[B]>,
    width: usize,
    id: u64,
}

// Manual impl: cloning shares the seed Arc, so `B: Clone` is not required.
impl<B> Clone for CountMinSchema<B> {
    fn clone(&self) -> Self {
        Self {
            rows: Arc::clone(&self.rows),
            width: self.width,
            id: self.id,
        }
    }
}

// Persistence: seeds + width + identity; see the AGMS impls for rationale.
impl<B: serde::Serialize> serde::Serialize for CountMinSchema<B> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("CountMinSchema", 3)?;
        st.serialize_field("rows", self.rows.as_ref())?;
        st.serialize_field("width", &self.width)?;
        st.serialize_field("id", &self.id)?;
        st.end()
    }
}

impl<'de, B: serde::Deserialize<'de>> serde::Deserialize<'de> for CountMinSchema<B> {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr<B> {
            rows: Vec<B>,
            width: usize,
            id: u64,
        }
        let repr = Repr::<B>::deserialize(deserializer)?;
        if repr.rows.is_empty() || repr.width == 0 {
            return Err(serde::de::Error::custom(
                "Count-Min dimensions must be non-zero",
            ));
        }
        Ok(Self {
            rows: repr.rows.into(),
            width: repr.width,
            id: repr.id,
        })
    }
}

impl<B: serde::Serialize> serde::Serialize for CountMinSketch<B> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("CountMinSketch", 2)?;
        st.serialize_field("schema", &self.schema)?;
        st.serialize_field("counters", &self.counters)?;
        st.end()
    }
}

impl<'de, B: serde::Deserialize<'de>> serde::Deserialize<'de> for CountMinSketch<B> {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        #[serde(bound = "B: serde::Deserialize<'de>")]
        struct Repr<B> {
            schema: CountMinSchema<B>,
            counters: Vec<i64>,
        }
        let repr = Repr::<B>::deserialize(deserializer)?;
        if repr.counters.len() != repr.schema.rows.len() * repr.schema.width {
            return Err(serde::de::Error::invalid_length(
                repr.counters.len(),
                &"depth × width counters",
            ));
        }
        Ok(Self {
            schema: repr.schema,
            counters: repr.counters,
        })
    }
}

impl<B: BucketFamily> CountMinSchema<B> {
    /// Create a schema with the given depth and width.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; see [`CountMinSchema::try_new`].
    pub fn new<R: Rng + ?Sized>(depth: usize, width: usize, rng: &mut R) -> Self {
        Self::try_new(depth, width, rng).expect("Count-Min dimensions must be non-zero")
    }

    /// Fallible constructor: errors when `depth == 0 || width == 0`.
    pub fn try_new<R: Rng + ?Sized>(depth: usize, width: usize, rng: &mut R) -> Result<Self> {
        if depth == 0 || width == 0 {
            return Err(Error::InvalidDimensions);
        }
        let rows: Arc<[B]> = (0..depth).map(|_| B::random(rng)).collect();
        Ok(Self {
            rows,
            width,
            id: rng.random::<u64>(),
        })
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The schema identity: random at construction, preserved by
    /// serialization, equal only for sketches that may merge/join.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A zeroed sketch bound to this schema.
    pub fn sketch(&self) -> CountMinSketch<B> {
        CountMinSketch {
            schema: self.clone(),
            counters: vec![0; self.rows.len() * self.width],
        }
    }
}

/// A Count-Min sketch: `depth × width` non-negative counters.
#[derive(Debug)]
pub struct CountMinSketch<B = DefaultBucket> {
    schema: CountMinSchema<B>,
    counters: Vec<i64>,
}

// Manual impl, like the schema's: the bucket families sit behind an
// `Arc`, so a sketch clones without requiring `B: Clone`.
impl<B> Clone for CountMinSketch<B> {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            counters: self.counters.clone(),
        }
    }
}

impl<B: BucketFamily> CountMinSketch<B> {
    /// The schema this sketch was created from.
    pub fn schema(&self) -> &CountMinSchema<B> {
        &self.schema
    }

    /// The raw counters of row `row`.
    pub fn row(&self, row: usize) -> &[i64] {
        let w = self.schema.width;
        &self.counters[row * w..(row + 1) * w]
    }

    fn check_schema(&self, other: &Self) -> Result<()> {
        if self.schema.id == other.schema.id && self.counters.len() == other.counters.len() {
            Ok(())
        } else {
            Err(Error::SchemaMismatch)
        }
    }

    /// Conservative-update insert (Estan & Varghese): raise only the
    /// counters that would otherwise fall below the new lower bound
    /// `point_query(key) + count`. Point queries remain upper bounds for
    /// insert-only streams, but the collision inflation shrinks — often
    /// dramatically on skewed data (see the `conservative_update_dominates`
    /// test).
    ///
    /// **Insert-only**: conservative update is incompatible with deletions
    /// (counters no longer decompose linearly), so `count` must be
    /// positive.
    ///
    /// # Panics
    ///
    /// Panics if `count <= 0`.
    pub fn update_conservative(&mut self, key: u64, count: i64) {
        assert!(count > 0, "conservative update is insert-only");
        let w = self.schema.width;
        let floor = self.point_query(key) + count;
        for (r, row) in self.schema.rows.iter().enumerate() {
            let slot = &mut self.counters[r * w + row.bucket(key, w)];
            if *slot < floor {
                *slot = floor;
            }
        }
    }

    /// Point frequency estimate: `min_r c[h_r(key)]`. For insert-only
    /// streams this never underestimates.
    pub fn point_query(&self, key: u64) -> i64 {
        let w = self.schema.width;
        self.schema
            .rows
            .iter()
            .enumerate()
            .map(|(r, row)| self.counters[r * w + row.bucket(key, w)])
            .min()
            .unwrap_or(0)
    }

    /// Size-of-join estimate: `min_r Σ_b s_b·t_b`. Upper-bounds the true
    /// value for insert-only streams.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if `other` was built from another schema.
    pub fn size_of_join(&self, other: &Self) -> Result<f64> {
        self.check_schema(other)?;
        let est = (0..self.schema.depth())
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(other.row(r))
                    .map(|(&s, &t)| s as f64 * t as f64)
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        Ok(est)
    }

    /// Self-join size estimate: the inner product with itself.
    pub fn self_join(&self) -> f64 {
        self.size_of_join(self)
            .expect("self always shares its own schema")
    }

    /// Typed size-of-join estimate. Count-Min's minimum is a *biased*
    /// (upper-bound) estimator, so no unbiased variance exists; the
    /// reported variance is the sample variance of the per-row inner
    /// products — a dispersion heuristic that indicates how much collision
    /// inflation the rows disagree on, not a calibrated error bar. A
    /// depth-1 sketch reports infinite variance. The value is bit-identical
    /// to [`CountMinSketch::size_of_join`].
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if `other` was built from another schema.
    pub fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        self.check_schema(other)?;
        let rows: Vec<f64> = (0..self.schema.depth())
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(other.row(r))
                    .map(|(&s, &t)| s as f64 * t as f64)
                    .sum::<f64>()
            })
            .collect();
        let value = rows.iter().copied().fold(f64::INFINITY, f64::min);
        let variance = estimate::sample_variance(&rows);
        Ok(Estimate {
            value,
            variance,
            basics: rows,
        })
    }

    /// Typed self-join estimate — see [`CountMinSketch::size_of_join_estimate`]
    /// for the bias and variance caveats.
    pub fn self_join_estimate(&self) -> Estimate {
        self.size_of_join_estimate(self)
            .expect("self always shares its own schema")
    }
}

impl<B: BucketFamily> Sketch for CountMinSketch<B> {
    #[inline]
    fn update(&mut self, key: u64, count: i64) {
        let w = self.schema.width;
        for (r, row) in self.schema.rows.iter().enumerate() {
            self.counters[r * w + row.bucket(key, w)] += count;
        }
    }

    // Row-major batched kernel. Each row's polynomial-vs-generic dispatch
    // lives in `crate::rowkernel`: polynomial bucket hashes (the default)
    // go through the fused `bucket_scatter` kernel — lane-parallel hashing,
    // a magic-number remainder instead of a hardware divide, an immediate
    // scatter — and other families take the generic buffered path.
    // Bit-identical to per-key updates because integer counter increments
    // commute.
    fn update_batch(&mut self, keys: &[u64]) {
        let w = self.schema.width;
        for (r, row) in self.schema.rows.iter().enumerate() {
            crate::rowkernel::bucket_row_keys(row, w, keys, &mut self.counters[r * w..(r + 1) * w]);
        }
    }

    fn update_batch_counts(&mut self, items: &[(u64, i64)]) {
        let w = self.schema.width;
        for (r, row) in self.schema.rows.iter().enumerate() {
            crate::rowkernel::bucket_row_items(
                row,
                w,
                items,
                &mut self.counters[r * w..(r + 1) * w],
            );
        }
    }

    fn merge(&mut self, other: &Self) -> Result<()> {
        self.check_schema(other)?;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        Ok(())
    }

    fn subtract(&mut self, other: &Self) -> Result<()> {
        self.check_schema(other)?;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c -= o;
        }
        Ok(())
    }

    fn counters(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    type Schema = CountMinSchema<DefaultBucket>;

    #[test]
    fn dimensions_validated() {
        assert!(Schema::try_new(0, 5, &mut rng(0)).is_err());
        assert!(Schema::try_new(5, 0, &mut rng(0)).is_err());
    }

    #[test]
    fn point_query_never_underestimates() {
        let schema = Schema::new(4, 64, &mut rng(1));
        let mut s = schema.sketch();
        for k in 0..500u64 {
            s.update(k, (k % 9 + 1) as i64);
        }
        for k in 0..500u64 {
            let truth = (k % 9 + 1) as i64;
            assert!(s.point_query(k) >= truth, "key {k}");
        }
    }

    #[test]
    fn point_query_is_exact_without_collisions() {
        let schema = Schema::new(4, 4096, &mut rng(2));
        let mut s = schema.sketch();
        s.update(7, 123);
        assert_eq!(s.point_query(7), 123);
        assert_eq!(s.point_query(8), 0);
    }

    #[test]
    fn join_estimate_upper_bounds_truth() {
        let schema = Schema::new(4, 4096, &mut rng(3));
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        let mut truth = 0f64;
        for k in 0..1000u64 {
            let f = (k % 3 + 1) as i64;
            let g = (k % 5 + 1) as i64;
            s.update(k, f);
            t.update(k, g);
            truth += (f * g) as f64;
        }
        let est = s.size_of_join(&t).unwrap();
        assert!(est >= truth, "CM join estimate must not underestimate");
        // The expected additive bias is ≈ ‖f‖₁‖g‖₁/width ≈ 1.5k on a truth
        // of ≈ 6k, so a 2× envelope is comfortable at this width.
        assert!(est < truth * 2.0, "est = {est}, truth = {truth}");
    }

    /// Conservative update still upper-bounds, and its total overestimate
    /// is no worse — and on skewed streams clearly better — than the
    /// regular update's.
    #[test]
    fn conservative_update_dominates() {
        let mut rng = rng(7);
        let schema = Schema::new(4, 64, &mut rng);
        let mut regular = schema.sketch();
        let mut conservative = schema.sketch();
        // Skewed insert-only stream over 1000 keys, arriving one tuple at
        // a time (conservative update's gains accumulate across repeated
        // arrivals of the same key).
        let mut truth = std::collections::HashMap::new();
        for rep in 0..200u64 {
            for k in 0..1000u64 {
                if rep % (k + 1) == 0 {
                    regular.update(k, 1);
                    conservative.update_conservative(k, 1);
                    *truth.entry(k).or_insert(0i64) += 1;
                }
            }
        }
        let mut over_regular = 0i64;
        let mut over_conservative = 0i64;
        for (&k, &t) in &truth {
            let qr = regular.point_query(k);
            let qc = conservative.point_query(k);
            assert!(qc >= t, "conservative must not underestimate key {k}");
            assert!(qc <= qr, "conservative must not exceed regular for key {k}");
            over_regular += qr - t;
            over_conservative += qc - t;
        }
        assert!(
            over_conservative * 10 < over_regular * 7,
            "conservative {over_conservative} vs regular {over_regular}"
        );
    }

    #[test]
    #[should_panic(expected = "insert-only")]
    fn conservative_rejects_deletions() {
        let mut rng = rng(8);
        let schema = Schema::new(2, 16, &mut rng);
        let mut s = schema.sketch();
        s.update_conservative(1, -1);
    }

    /// The batched kernels must leave exactly the counter state of the
    /// per-key loop, across chunk boundaries and with negative counts.
    #[test]
    fn batched_updates_are_bit_identical_to_scalar() {
        let schema = Schema::new(4, 150, &mut rng(50));
        let keys: Vec<u64> = (0..777u64).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let items: Vec<(u64, i64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as i64 % 9) - 4))
            .collect();
        let mut scalar = schema.sketch();
        let mut batched = schema.sketch();
        for &k in &keys {
            scalar.update(k, 1);
        }
        batched.update_batch(&keys);
        assert_eq!(scalar.counters, batched.counters);
        for &(k, c) in &items {
            scalar.update(k, c);
        }
        batched.update_batch_counts(&items);
        assert_eq!(scalar.counters, batched.counters);
    }

    #[test]
    fn merge_matches_union() {
        let schema = Schema::new(3, 64, &mut rng(4));
        let mut whole = schema.sketch();
        let mut a = schema.sketch();
        let mut b = schema.sketch();
        for k in 0..200u64 {
            whole.update(k, 1);
            if k % 2 == 0 {
                a.update(k, 1)
            } else {
                b.update(k, 1)
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.counters, whole.counters);
    }

    #[test]
    fn cross_schema_rejected() {
        let a = Schema::new(2, 16, &mut rng(5)).sketch();
        let mut b = Schema::new(2, 16, &mut rng(6)).sketch();
        assert!(b.merge(&a).is_err());
        assert!(b.size_of_join(&a).is_err());
    }
}
