//! Error type for sketch construction and cross-sketch operations.

use std::fmt;

/// Errors produced by sketch operations.
// No `Eq`: `InvalidConfidence` carries the offending `f64` level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Error {
    /// Two sketches from different schemas (different random seeds) were
    /// combined; their counters are not comparable.
    SchemaMismatch,
    /// A sketch dimension (counter count, depth, or width) was zero.
    InvalidDimensions,
    /// A confidence level outside the open interval `(0, 1)` (or NaN) was
    /// passed to an interval query.
    InvalidConfidence(f64),
    /// A normalized rank outside `[0, 1]` (or NaN) was passed to a
    /// quantile query.
    InvalidQuantile(f64),
    /// A value query (quantile, …) was asked of a summary that has
    /// observed no data — there is no value to report.
    EmptySummary,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SchemaMismatch => {
                write!(f, "sketches were built from different schemas (seed sets)")
            }
            Error::InvalidDimensions => write!(f, "sketch dimensions must be non-zero"),
            Error::InvalidConfidence(level) => {
                write!(f, "confidence level {level} is outside (0, 1)")
            }
            Error::InvalidQuantile(q) => {
                write!(f, "quantile rank {q} is outside [0, 1]")
            }
            Error::EmptySummary => {
                write!(
                    f,
                    "summary has observed no data, value queries are undefined"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
