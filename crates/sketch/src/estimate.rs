//! Combining basic estimators: means, medians, medians of means — and the
//! typed [`Estimate`] those combinations produce.
//!
//! A single AGMS counter gives an unbiased but high-variance basic
//! estimator. Averaging `n` independent basics divides the variance by `n`
//! (Section IV of the paper); taking the median of several independent
//! averages then converts the Chebyshev bound into an exponentially small
//! failure probability (the classic AMS boosting). F-AGMS rows are *not*
//! averaged — each row is already an implicit average over its buckets, and
//! rows are combined by median because a row estimate is not guaranteed to
//! concentrate symmetrically.
//!
//! [`Estimate`] carries the combined value together with the per-lane basic
//! estimates it was combined from and an empirical variance of the combined
//! value, so every query path can report Chebyshev and CLT error bars at
//! query time without knowing the true frequency vectors.

use sss_moments::bounds::{self, ConfidenceInterval};
use sss_moments::Moments;

/// Arithmetic mean of the basic estimates. Empty input returns 0.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median of the basic estimates (average of the two middles for even
/// lengths). Empty input returns 0.
pub fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    median_in_place(&mut v)
}

/// Allocation-free variant of [`median`]: reorders `values` in place. Hot
/// query paths (per-tuple point queries) use this on a stack buffer, so
/// the common small depths take comparison networks instead of a sort;
/// the returned value (the multiset middle) is identical either way.
pub(crate) fn median_in_place(values: &mut [f64]) -> f64 {
    #[inline]
    fn order(v: &mut [f64], i: usize, j: usize) {
        if v[i] > v[j] {
            v.swap(i, j);
        }
    }
    match values.len() {
        0 => 0.0,
        1 => values[0],
        3 => {
            order(values, 0, 1);
            order(values, 1, 2);
            order(values, 0, 1);
            values[1]
        }
        5 => {
            // Sort the first four, then slot the fifth into the middle:
            // the median of five is max(v1, min(v2, v4)).
            order(values, 0, 1);
            order(values, 2, 3);
            order(values, 0, 2);
            order(values, 1, 3);
            order(values, 1, 2);
            let low = values[1];
            let high = values[2];
            let e = values[4];
            if e <= low {
                low
            } else if e >= high {
                high
            } else {
                e
            }
        }
        len => {
            // Total order on f64: estimates are finite by construction.
            values.sort_by(|a, b| a.partial_cmp(b).expect("sketch estimates must not be NaN"));
            let mid = len / 2;
            if len % 2 == 1 {
                values[mid]
            } else {
                (values[mid - 1] + values[mid]) / 2.0
            }
        }
    }
}

/// Median of means: partition `values` into `groups` contiguous groups,
/// average within each, then take the median across groups.
///
/// `groups` is clamped to `1..=values.len()`. When the length is not a
/// multiple of `groups` the remainder is distributed one extra element per
/// group from the front, so group sizes differ by at most one and no group
/// mean is systematically heavier than the others.
pub fn median_of_means(values: &[f64], groups: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let groups = groups.clamp(1, values.len());
    let per = values.len() / groups;
    let rem = values.len() % groups;
    let mut means = Vec::with_capacity(groups);
    let mut start = 0;
    for g in 0..groups {
        let size = per + usize::from(g < rem);
        means.push(mean(&values[start..start + size]));
        start += size;
    }
    debug_assert_eq!(start, values.len());
    median(&means)
}

/// Unbiased sample variance (the `n − 1` denominator) of the basic
/// estimates. Fewer than two values carry no spread information, so the
/// variance is reported as `f64::INFINITY` — callers substitute an analytic
/// plug-in bound in that case.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::INFINITY;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Variance of the median of `n` iid estimators relative to one
/// estimator's variance σ².
///
/// For `n ≥ 3` this is the asymptotic normal-median factor `π / (2n)`,
/// which over-estimates the exact normal order-statistic variance at every
/// finite `n` (e.g. exact ≈ 0.449σ² vs π/6 ≈ 0.524σ² at n = 3) — the error
/// bars err on the conservative side. The median of two is their mean, so
/// `n = 2` gets the exact factor 1/2. A single estimator has undefined
/// empirical spread; the factor is 1 and the caller's `sample_variance`
/// (infinite for one value) drives the fallback.
fn median_variance_factor(n: usize) -> f64 {
    match n {
        0 | 1 => 1.0,
        2 => 0.5,
        n => std::f64::consts::PI / (2.0 * n as f64),
    }
}

/// Which tail bound converts an [`Estimate`]'s variance into an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Distribution-free Chebyshev bound: valid for any estimator with the
    /// reported variance, at the cost of wide intervals
    /// (`k = 1/√(1 − confidence)` standard errors).
    Chebyshev,
    /// Central-limit-theorem normal bound: tight (`z ≈ 1.96` at 95%) but
    /// relies on the combined estimator being approximately Gaussian,
    /// which holds when many independent basics are averaged/medianed.
    Clt,
}

/// A query answer with error state: the combined point estimate, the
/// per-lane basic estimates it was combined from, and an empirical variance
/// of the combined value.
///
/// `value` is always produced by the exact legacy combining path
/// ([`mean`]/[`median`]/backend-specific), never re-derived from `basics`
/// through a different expression — the scalar query methods and the
/// `*_estimate` methods return bit-identical values.
///
/// The variance is *empirical*: the spread across a sketch's independent
/// lanes, plus (for sampled streams) an analytic plug-in for the sampling
/// noise that is shared by all lanes and therefore invisible to the
/// cross-lane spread (the paper's Prop. 13/14 covariance caveat). For exact
/// a-priori error analysis from known frequency vectors use
/// `sss_moments::engine` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The point estimate — bit-identical to the corresponding scalar query.
    pub value: f64,
    /// Empirical variance of `value`. `f64::INFINITY` when the estimator
    /// carries no spread information (single lane, no analytic fallback).
    pub variance: f64,
    /// The independent per-lane basic estimates `value` was combined from
    /// (one per AGMS counter or F-AGMS row). Empty for point estimates
    /// without lane structure (e.g. Count-Min minimum, trait default).
    pub basics: Vec<f64>,
}

impl Estimate {
    /// An estimate with no error state: infinite variance, no basics.
    /// This is what the `JoinEstimator` trait defaults in `sss-core`
    /// report for external estimator implementations that predate
    /// [`Estimate`].
    pub fn point(value: f64) -> Self {
        Estimate {
            value,
            variance: f64::INFINITY,
            basics: Vec::new(),
        }
    }

    /// Combine independent basics by arithmetic mean (AGMS semantics).
    ///
    /// `value = mean(basics)` and the variance of the mean is the sample
    /// variance divided by the number of lanes.
    pub fn from_mean(basics: Vec<f64>) -> Self {
        let value = mean(&basics);
        let variance = if basics.is_empty() {
            f64::INFINITY
        } else {
            sample_variance(&basics) / basics.len() as f64
        };
        Estimate {
            value,
            variance,
            basics,
        }
    }

    /// Combine independent basics by median (F-AGMS row semantics).
    ///
    /// `value = median(basics)`; the variance applies the (conservative)
    /// normal-median factor to the lanes' sample variance — `π/(2n)` for
    /// `n ≥ 3` rows, exactly 1/2 for two rows (their median is their mean).
    pub fn from_median(basics: Vec<f64>) -> Self {
        let value = median(&basics);
        let variance = sample_variance(&basics) * median_variance_factor(basics.len());
        Estimate {
            value,
            variance,
            basics,
        }
    }

    /// Override the point estimate, keeping variance and basics.
    ///
    /// Used where the legacy scalar path computes the combined value
    /// through a different (mathematically equal but not bit-identical)
    /// floating-point expression than combining `basics` would.
    #[must_use]
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = value;
        self
    }

    /// Override the variance, keeping value and basics.
    #[must_use]
    pub fn with_variance(mut self, variance: f64) -> Self {
        self.variance = variance;
        self
    }

    /// Add an independent variance contribution (e.g. sampling noise shared
    /// across lanes, which the cross-lane spread cannot see).
    #[must_use]
    pub fn plus_variance(mut self, extra: f64) -> Self {
        self.variance += extra;
        self
    }

    /// Replace a non-finite empirical variance with an analytic plug-in
    /// bound. Leaves finite variances untouched.
    #[must_use]
    pub fn or_variance(mut self, fallback: f64) -> Self {
        if !self.variance.is_finite() {
            self.variance = fallback;
        }
        self
    }

    /// Standard error: √variance (0 clamps negative rounding noise).
    pub fn std_error(&self) -> f64 {
        self.moments().std()
    }

    /// View as `sss_moments::Moments` for interoperability with the exact
    /// error-analysis machinery.
    pub fn moments(&self) -> Moments {
        Moments {
            mean: self.value,
            variance: self.variance,
        }
    }

    /// Confidence interval around `value` at the given confidence level in
    /// `(0, 1)`, using the requested tail bound.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfidence`](crate::Error::InvalidConfidence) if
    /// `confidence` is outside the open interval `(0, 1)` or NaN — this is
    /// the public query path, so out-of-range levels are a typed error,
    /// not a panic.
    pub fn interval(&self, confidence: f64, bound: Bound) -> crate::Result<ConfidenceInterval> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(crate::Error::InvalidConfidence(confidence));
        }
        let m = self.moments();
        Ok(match bound {
            Bound::Chebyshev => bounds::chebyshev(self.value, &m, confidence),
            Bound::Clt => bounds::normal(self.value, &m, confidence),
        })
    }

    /// Shorthand for [`Estimate::interval`] with [`Bound::Chebyshev`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Estimate::interval`].
    pub fn chebyshev(&self, confidence: f64) -> crate::Result<ConfidenceInterval> {
        self.interval(confidence, Bound::Chebyshev)
    }

    /// Shorthand for [`Estimate::interval`] with [`Bound::Clt`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Estimate::interval`].
    pub fn clt(&self, confidence: f64) -> crate::Result<ConfidenceInterval> {
        self.interval(confidence, Bound::Clt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let v = [1.0, 1.0, 1.0, 1.0, 1e12];
        assert_eq!(median(&v), 1.0);
        assert!(mean(&v) > 1e11);
    }

    #[test]
    fn median_of_means_degenerate_groupings() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // One group = plain mean.
        assert_eq!(median_of_means(&v, 1), 3.5);
        // As many groups as values = plain median.
        assert_eq!(median_of_means(&v, 6), median(&v));
        // Requesting more groups than values clamps.
        assert_eq!(median_of_means(&v, 100), median(&v));
        assert_eq!(median_of_means(&[], 4), 0.0);
    }

    #[test]
    fn median_of_means_balances_uneven_splits() {
        // 7 values, 3 groups -> sizes 3, 2, 2 (remainder spread from the
        // front), never 2, 2, 3 with a double-weight last group.
        let v = [0.0, 2.0, 4.0, 6.0, 7.0, 8.0, 9.0];
        let expect = median(&[2.0, 6.5, 8.5]);
        assert_eq!(median_of_means(&v, 3), expect);
    }

    #[test]
    fn median_of_means_group_sizes_differ_by_at_most_one() {
        // 10 values, 4 groups -> sizes 3, 3, 2, 2.
        let v: Vec<f64> = (0..10).map(f64::from).collect();
        let expect = median(&[1.0, 4.0, 6.5, 8.5]);
        assert_eq!(median_of_means(&v, 4), expect);
        // 5 values, 3 groups -> sizes 2, 2, 1.
        let v = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(median_of_means(&v, 3), median(&[2.0, 6.0, 9.0]));
    }

    #[test]
    fn sample_variance_matches_hand_computation() {
        assert!(sample_variance(&[]).is_infinite());
        assert!(sample_variance(&[4.0]).is_infinite());
        assert_eq!(sample_variance(&[1.0, 3.0]), 2.0);
        // mean 5, squared deviations 9+1+1+9 = 20, / 3.
        let v = [2.0, 4.0, 6.0, 8.0];
        assert!((sample_variance(&v) - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_from_mean_matches_scalar_combiners() {
        let basics = vec![2.0, 4.0, 6.0, 8.0];
        let e = Estimate::from_mean(basics.clone());
        assert_eq!(e.value.to_bits(), mean(&basics).to_bits());
        assert!((e.variance - (20.0 / 3.0) / 4.0).abs() < 1e-12);
        assert_eq!(e.basics, basics);
    }

    #[test]
    fn estimate_from_median_matches_scalar_combiners() {
        let basics = vec![1.0, 9.0, 5.0];
        let e = Estimate::from_median(basics.clone());
        assert_eq!(e.value.to_bits(), median(&basics).to_bits());
        let expect = sample_variance(&basics) * std::f64::consts::PI / 6.0;
        assert!((e.variance - expect).abs() < 1e-12);
        // Median of two is their mean: exact factor 1/2.
        let pair = Estimate::from_median(vec![2.0, 6.0]);
        assert_eq!(pair.value, 4.0);
        assert_eq!(pair.variance, sample_variance(&[2.0, 6.0]) / 2.0);
    }

    #[test]
    fn single_lane_estimates_fall_back_to_plugin_variance() {
        let e = Estimate::from_mean(vec![7.0]);
        assert_eq!(e.value, 7.0);
        assert!(e.variance.is_infinite());
        let e = e.or_variance(12.5);
        assert_eq!(e.variance, 12.5);
        // A finite empirical variance is not overridden.
        let kept = Estimate::from_mean(vec![1.0, 2.0]).or_variance(99.0);
        assert!(kept.variance < 99.0);
    }

    #[test]
    fn intervals_center_on_value_and_chebyshev_is_wider() {
        let e = Estimate {
            value: 100.0,
            variance: 25.0,
            basics: vec![],
        };
        assert_eq!(e.std_error(), 5.0);
        let clt = e.clt(0.95).unwrap();
        let cheb = e.chebyshev(0.95).unwrap();
        assert!(clt.contains(100.0) && cheb.contains(100.0));
        // z(95%) ≈ 1.96 vs k = 1/√0.05 ≈ 4.47 standard errors.
        assert!((clt.half_width() - 1.96 * 5.0).abs() < 0.05);
        assert!((cheb.half_width() - 4.4721 * 5.0).abs() < 0.01);
        assert!(cheb.half_width() > clt.half_width());
    }

    #[test]
    fn point_estimates_have_infinite_error_bars() {
        let e = Estimate::point(42.0);
        assert_eq!(e.value, 42.0);
        assert!(e.variance.is_infinite());
        assert!(e.basics.is_empty());
        assert!(e.chebyshev(0.95).unwrap().half_width().is_infinite());
    }

    #[test]
    fn out_of_range_levels_are_typed_errors_not_panics() {
        let e = Estimate {
            value: 1.0,
            variance: 1.0,
            basics: vec![],
        };
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            let err = e.interval(bad, Bound::Chebyshev).unwrap_err();
            assert!(matches!(err, crate::Error::InvalidConfidence(_)), "{bad}");
            assert!(e.clt(bad).is_err(), "{bad}");
        }
        assert!(e.interval(0.5, Bound::Clt).is_ok());
    }

    #[test]
    fn plus_variance_accumulates_independent_noise_terms() {
        let e = Estimate::from_mean(vec![1.0, 3.0]).plus_variance(10.0);
        // sample variance 2 / n 2 = 1, plus 10.
        assert!((e.variance - 11.0).abs() < 1e-12);
        let e = e.with_value(2.5).with_variance(4.0);
        assert_eq!((e.value, e.variance), (2.5, 4.0));
    }
}
