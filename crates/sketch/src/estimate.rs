//! Combining basic estimators: means, medians, and medians of means.
//!
//! A single AGMS counter gives an unbiased but high-variance basic
//! estimator. Averaging `n` independent basics divides the variance by `n`
//! (Section IV of the paper); taking the median of several independent
//! averages then converts the Chebyshev bound into an exponentially small
//! failure probability (the classic AMS boosting). F-AGMS rows are *not*
//! averaged — each row is already an implicit average over its buckets, and
//! rows are combined by median because a row estimate is not guaranteed to
//! concentrate symmetrically.

/// Arithmetic mean of the basic estimates. Empty input returns 0.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median of the basic estimates (average of the two middles for even
/// lengths). Empty input returns 0.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    // Total order on f64: estimates are finite by construction.
    v.sort_by(|a, b| a.partial_cmp(b).expect("sketch estimates must not be NaN"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Median of means: partition `values` into `groups` contiguous groups,
/// average within each, then take the median across groups.
///
/// `groups` is clamped to `1..=values.len()`; trailing values that do not
/// fill a complete group are folded into the last group.
pub fn median_of_means(values: &[f64], groups: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let groups = groups.clamp(1, values.len());
    let per = values.len() / groups;
    let mut means = Vec::with_capacity(groups);
    for g in 0..groups {
        let start = g * per;
        let end = if g + 1 == groups {
            values.len()
        } else {
            start + per
        };
        means.push(mean(&values[start..end]));
    }
    median(&means)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let v = [1.0, 1.0, 1.0, 1.0, 1e12];
        assert_eq!(median(&v), 1.0);
        assert!(mean(&v) > 1e11);
    }

    #[test]
    fn median_of_means_degenerate_groupings() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // One group = plain mean.
        assert_eq!(median_of_means(&v, 1), 3.5);
        // As many groups as values = plain median.
        assert_eq!(median_of_means(&v, 6), median(&v));
        // Requesting more groups than values clamps.
        assert_eq!(median_of_means(&v, 100), median(&v));
        assert_eq!(median_of_means(&[], 4), 0.0);
    }

    #[test]
    fn median_of_means_folds_remainder_into_last_group() {
        // 7 values, 3 groups -> sizes 2, 2, 3.
        let v = [0.0, 2.0, 4.0, 6.0, 7.0, 8.0, 9.0];
        let expect = median(&[1.0, 5.0, 8.0]);
        assert_eq!(median_of_means(&v, 3), expect);
    }
}
