//! F-AGMS (Fast-AGMS / Count-Sketch).
//!
//! Each of `depth` rows owns a pairwise-independent bucket hash `h` and a
//! 4-wise independent sign family `ξ`; an update adds `count·ξ(key)` to
//! bucket `h(key)` of every row — O(depth) work regardless of `width`.
//!
//! A row's self-join estimate is `Σ_b c_b²` and its size-of-join estimate
//! `Σ_b s_b·t_b`; both behave like an *average of `width` basic AGMS
//! estimators* in terms of variance, at a fraction of the update cost. Rows
//! are combined by **median**, never by mean: a row estimate concentrates
//! but is not symmetric, and the median converts row-level confidence into
//! exponentially small failure probability.
//!
//! This is the sketch used in all experiments of the paper, and its
//! hash-bucket *contention* is what produces the paper's Section VII-D
//! observation that sketching **more** data can *increase* F-AGMS error —
//! an effect reproduced by the `fig7` harness.

use crate::error::{Error, Result};
use crate::estimate::{self, Estimate};
use crate::Sketch;
use rand::Rng;
use sss_xi::{BucketFamily, DefaultBucket, DefaultSign, SignFamily};
use std::sync::Arc;

/// Per-row seeds: a bucket hash and a sign family.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Row<S, B> {
    sign: S,
    bucket: B,
}

/// The shared seeds of an F-AGMS sketch: `depth` rows over `width` buckets.
#[derive(Debug)]
pub struct FagmsSchema<S = DefaultSign, B = DefaultBucket> {
    rows: Arc<[Row<S, B>]>,
    width: usize,
    id: u64,
}

// Manual impl: cloning shares the seed Arc, so `S: Clone`/`B: Clone` are not
// required.
impl<S, B> Clone for FagmsSchema<S, B> {
    fn clone(&self) -> Self {
        Self {
            rows: Arc::clone(&self.rows),
            width: self.width,
            id: self.id,
        }
    }
}

// Persistence: seeds + width + identity; see the AGMS impls for rationale.
impl<S: serde::Serialize, B: serde::Serialize> serde::Serialize for FagmsSchema<S, B> {
    fn serialize<Z: serde::Serializer>(
        &self,
        serializer: Z,
    ) -> std::result::Result<Z::Ok, Z::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("FagmsSchema", 3)?;
        st.serialize_field("rows", self.rows.as_ref())?;
        st.serialize_field("width", &self.width)?;
        st.serialize_field("id", &self.id)?;
        st.end()
    }
}

impl<'de, S, B> serde::Deserialize<'de> for FagmsSchema<S, B>
where
    S: serde::Deserialize<'de>,
    B: serde::Deserialize<'de>,
{
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        #[serde(bound = "S: serde::Deserialize<'de>, B: serde::Deserialize<'de>")]
        struct Repr<S, B> {
            rows: Vec<Row<S, B>>,
            width: usize,
            id: u64,
        }
        let repr = Repr::<S, B>::deserialize(deserializer)?;
        if repr.rows.is_empty() || repr.width == 0 {
            return Err(serde::de::Error::custom(
                "F-AGMS dimensions must be non-zero",
            ));
        }
        Ok(Self {
            rows: repr.rows.into(),
            width: repr.width,
            id: repr.id,
        })
    }
}

impl<S: serde::Serialize, B: serde::Serialize> serde::Serialize for FagmsSketch<S, B> {
    fn serialize<Z: serde::Serializer>(
        &self,
        serializer: Z,
    ) -> std::result::Result<Z::Ok, Z::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("FagmsSketch", 2)?;
        st.serialize_field("schema", &self.schema)?;
        st.serialize_field("counters", &self.counters)?;
        st.end()
    }
}

impl<'de, S, B> serde::Deserialize<'de> for FagmsSketch<S, B>
where
    S: serde::Deserialize<'de>,
    B: serde::Deserialize<'de>,
{
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        #[serde(bound = "S: serde::Deserialize<'de>, B: serde::Deserialize<'de>")]
        struct Repr<S, B> {
            schema: FagmsSchema<S, B>,
            counters: Vec<i64>,
        }
        let repr = Repr::<S, B>::deserialize(deserializer)?;
        if repr.counters.len() != repr.schema.rows.len() * repr.schema.width {
            return Err(serde::de::Error::invalid_length(
                repr.counters.len(),
                &"depth × width counters",
            ));
        }
        Ok(Self {
            schema: repr.schema,
            counters: repr.counters,
        })
    }
}

impl<S: SignFamily, B: BucketFamily> FagmsSchema<S, B> {
    /// Create a schema with the given depth (number of rows, combined by
    /// median) and width (buckets per row, the implicit averaging factor).
    ///
    /// The paper's experiments use `width` = 5000 or 10000 with a single
    /// row; depths of 3–7 are typical when confidence boosting matters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; see [`FagmsSchema::try_new`].
    pub fn new<R: Rng + ?Sized>(depth: usize, width: usize, rng: &mut R) -> Self {
        Self::try_new(depth, width, rng).expect("F-AGMS dimensions must be non-zero")
    }

    /// Size a schema for a target accuracy: with probability at least
    /// `1 − δ`, the self-join estimate is within `±ε·F₂` (and the
    /// size-of-join estimate within `±ε·√(F₂(f)·F₂(g))`).
    ///
    /// A row of `width = ⌈16/ε²⌉` buckets has variance `≤ 2F₂²/width`, so
    /// by Chebyshev it misses the `ε`-window with probability `≤ 1/8`; the
    /// median over `depth = ⌈3.6·ln(1/δ)⌉` rows then fails with
    /// probability `≤ δ` by the Chernoff bound `exp(−2·depth·(3/8)²)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε ≤ 1` and `0 < δ < 1`.
    pub fn for_accuracy<R: Rng + ?Sized>(epsilon: f64, delta: f64, rng: &mut R) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let width = (16.0 / (epsilon * epsilon)).ceil() as usize;
        let depth = ((3.6 * (1.0 / delta).ln()).ceil() as usize).max(1);
        Self::new(depth, width, rng)
    }

    /// Fallible constructor: errors when `depth == 0 || width == 0`.
    pub fn try_new<R: Rng + ?Sized>(depth: usize, width: usize, rng: &mut R) -> Result<Self> {
        if depth == 0 || width == 0 {
            return Err(Error::InvalidDimensions);
        }
        let rows: Arc<[Row<S, B>]> = (0..depth)
            .map(|_| Row {
                sign: S::random(rng),
                bucket: B::random(rng),
            })
            .collect();
        Ok(Self {
            rows,
            width,
            id: rng.random::<u64>(),
        })
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The schema identity: random at construction, preserved by
    /// serialization, equal only for sketches that may merge/join.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A zeroed sketch bound to this schema.
    pub fn sketch(&self) -> FagmsSketch<S, B> {
        FagmsSketch {
            schema: self.clone(),
            counters: vec![0; self.rows.len() * self.width],
        }
    }
}

/// An F-AGMS sketch: `depth × width` counters.
#[derive(Debug)]
pub struct FagmsSketch<S = DefaultSign, B = DefaultBucket> {
    schema: FagmsSchema<S, B>,
    counters: Vec<i64>,
}

// Manual impl, like the schema's: the families sit behind `Arc`s, so a
// sketch clones without requiring `S: Clone` or `B: Clone`.
impl<S, B> Clone for FagmsSketch<S, B> {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            counters: self.counters.clone(),
        }
    }
}

impl<S: SignFamily, B: BucketFamily> FagmsSketch<S, B> {
    /// The schema this sketch was created from.
    pub fn schema(&self) -> &FagmsSchema<S, B> {
        &self.schema
    }

    /// The raw counters of row `row`.
    pub fn row(&self, row: usize) -> &[i64] {
        let w = self.schema.width;
        &self.counters[row * w..(row + 1) * w]
    }

    fn check_schema(&self, other: &Self) -> Result<()> {
        if self.schema.id == other.schema.id && self.counters.len() == other.counters.len() {
            Ok(())
        } else {
            Err(Error::SchemaMismatch)
        }
    }

    /// Per-row self-join estimates `Σ_b c_b²`.
    pub fn self_join_rows(&self) -> Vec<f64> {
        (0..self.schema.depth())
            .map(|r| self.row(r).iter().map(|&c| c as f64 * c as f64).sum())
            .collect()
    }

    /// Self-join size estimate: median across rows.
    pub fn self_join(&self) -> f64 {
        estimate::median(&self.self_join_rows())
    }

    /// Per-row size-of-join estimates `Σ_b s_b·t_b`.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if `other` was built from another schema.
    pub fn size_of_join_rows(&self, other: &Self) -> Result<Vec<f64>> {
        self.check_schema(other)?;
        Ok((0..self.schema.depth())
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(other.row(r))
                    .map(|(&s, &t)| s as f64 * t as f64)
                    .sum()
            })
            .collect())
    }

    /// Size-of-join estimate: median across rows.
    pub fn size_of_join(&self, other: &Self) -> Result<f64> {
        Ok(estimate::median(&self.size_of_join_rows(other)?))
    }

    /// Typed self-join estimate: value bit-identical to
    /// [`FagmsSketch::self_join`]; the variance applies the conservative
    /// normal-median factor to the rows' sample variance (each row is an
    /// implicit average over `width` buckets, so rows of a wide sketch are
    /// near-Gaussian). A depth-1 sketch has no cross-row spread and falls
    /// back to the analytic per-row bound `2·F₂²/width`.
    pub fn self_join_estimate(&self) -> Estimate {
        let width = self.schema.width() as f64;
        let e = Estimate::from_median(self.self_join_rows());
        let plugin = 2.0 * e.value * e.value / width;
        e.or_variance(plugin)
    }

    /// Typed size-of-join estimate: value bit-identical to
    /// [`FagmsSketch::size_of_join`]; cross-row empirical variance with the
    /// depth-1 fallback `(F₂(f)·F₂(g) + (Σfg)²)/width`.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if `other` was built from another schema.
    pub fn size_of_join_estimate(&self, other: &Self) -> Result<Estimate> {
        let width = self.schema.width() as f64;
        let e = Estimate::from_median(self.size_of_join_rows(other)?);
        let plugin = (self.self_join() * other.self_join() + e.value * e.value) / width;
        Ok(e.or_variance(plugin))
    }

    /// The estimated `k` most frequent keys among `candidates`, sorted by
    /// estimated frequency (descending; ties broken by key).
    ///
    /// Count-Sketch point queries have additive error `≈ √(F₂/width)` per
    /// row (median-boosted across rows), so keys whose frequency clears
    /// that bar are recovered reliably — the classic heavy-hitter use of
    /// this structure. The candidate set is supplied by the caller (e.g.
    /// the distinct keys of a dictionary, or keys observed by a parallel
    /// space-saving pass); the sketch alone cannot enumerate keys.
    pub fn top_k<I: IntoIterator<Item = u64>>(&self, candidates: I, k: usize) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = candidates
            .into_iter()
            .map(|key| (key, self.point_query(key)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("point queries are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Point estimate of the frequency of `key` (the Count-Sketch query):
    /// median over rows of `ξ(key)·c[h(key)]`.
    pub fn point_query(&self, key: u64) -> f64 {
        let w = self.schema.width;
        let per_row: Vec<f64> = self
            .schema
            .rows
            .iter()
            .enumerate()
            .map(|(r, row)| {
                (row.sign.sign(key) * self.counters[r * w + row.bucket.bucket(key, w)]) as f64
            })
            .collect();
        estimate::median(&per_row)
    }

    /// Fused [`update`](Sketch::update) + [`point_query`](Self::point_query):
    /// applies the update and returns the *post-update* point estimate,
    /// computing each row's bucket and sign hashes once instead of twice.
    /// Counter state and returned value are bit-identical to calling the
    /// two operations in sequence; the per-tuple heavy-hitter path
    /// ([`CountSketchTopK`](crate::CountSketchTopK)) lives on this.
    pub fn update_and_query(&mut self, key: u64, count: i64) -> f64 {
        const STACK_ROWS: usize = 16;
        let w = self.schema.width;
        let depth = self.schema.rows.len();
        let mut stack = [0.0f64; STACK_ROWS];
        let mut heap = Vec::new();
        let per_row: &mut [f64] = if depth <= STACK_ROWS {
            &mut stack[..depth]
        } else {
            heap.resize(depth, 0.0);
            &mut heap
        };
        for (r, row) in self.schema.rows.iter().enumerate() {
            let sign = row.sign.sign(key);
            let counter = &mut self.counters[r * w + row.bucket.bucket(key, w)];
            *counter += count * sign;
            per_row[r] = (sign * *counter) as f64;
        }
        estimate::median_in_place(per_row)
    }
}

impl<S: SignFamily, B: BucketFamily> Sketch for FagmsSketch<S, B> {
    #[inline]
    fn update(&mut self, key: u64, count: i64) {
        let w = self.schema.width;
        for (r, row) in self.schema.rows.iter().enumerate() {
            let b = row.bucket.bucket(key, w);
            self.counters[r * w + b] += count * row.sign.sign(key);
        }
    }

    // Row-major batched kernel. Each row's polynomial-vs-generic dispatch
    // lives in `crate::rowkernel`: CW rows (the default configuration) take
    // the fused `signed_scatter` kernel — shared lane evaluation, runtime
    // CPU dispatch, immediate scatter — and other families take the generic
    // buffered path. Both are bit-identical to per-key updates because
    // integer counter increments commute.
    fn update_batch(&mut self, keys: &[u64]) {
        let w = self.schema.width;
        for (r, row) in self.schema.rows.iter().enumerate() {
            crate::rowkernel::signed_row_keys(
                &row.sign,
                &row.bucket,
                w,
                keys,
                &mut self.counters[r * w..(r + 1) * w],
            );
        }
    }

    fn update_batch_counts(&mut self, items: &[(u64, i64)]) {
        let w = self.schema.width;
        for (r, row) in self.schema.rows.iter().enumerate() {
            crate::rowkernel::signed_row_items(
                &row.sign,
                &row.bucket,
                w,
                items,
                &mut self.counters[r * w..(r + 1) * w],
            );
        }
    }

    fn merge(&mut self, other: &Self) -> Result<()> {
        self.check_schema(other)?;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        Ok(())
    }

    fn subtract(&mut self, other: &Self) -> Result<()> {
        self.check_schema(other)?;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c -= o;
        }
        Ok(())
    }

    fn counters(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    type Schema = FagmsSchema<DefaultSign, DefaultBucket>;

    #[test]
    fn dimensions_are_validated() {
        assert!(Schema::try_new(0, 10, &mut rng(0)).is_err());
        assert!(Schema::try_new(3, 0, &mut rng(0)).is_err());
        let s = Schema::new(3, 100, &mut rng(0));
        assert_eq!(s.depth(), 3);
        assert_eq!(s.width(), 100);
        assert_eq!(s.sketch().counters(), 300);
    }

    #[test]
    fn single_key_self_join_is_exact() {
        let schema = Schema::new(5, 64, &mut rng(1));
        let mut s = schema.sketch();
        s.update(1234, 9);
        // Only one bucket per row is non-zero: (9·ξ)² = 81 in every row.
        assert_eq!(s.self_join(), 81.0);
        assert_eq!(s.point_query(1234), 9.0);
    }

    #[test]
    fn deletions_cancel() {
        let schema = Schema::new(3, 32, &mut rng(2));
        let mut s = schema.sketch();
        for k in 0..100u64 {
            s.update(k, 2);
        }
        for k in 0..100u64 {
            s.update(k, -2);
        }
        assert_eq!(s.self_join(), 0.0);
    }

    #[test]
    fn merge_equals_union_stream() {
        let schema = Schema::new(4, 128, &mut rng(3));
        let mut whole = schema.sketch();
        let mut a = schema.sketch();
        let mut b = schema.sketch();
        for k in 0..400u64 {
            whole.update(k, 1);
            if k < 200 {
                a.update(k, 1)
            } else {
                b.update(k, 1)
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.counters, whole.counters);
    }

    #[test]
    fn cross_schema_rejected() {
        let a = Schema::new(2, 16, &mut rng(4)).sketch();
        let mut b = Schema::new(2, 16, &mut rng(5)).sketch();
        assert_eq!(b.merge(&a).unwrap_err(), Error::SchemaMismatch);
        assert_eq!(b.size_of_join(&a).unwrap_err(), Error::SchemaMismatch);
    }

    #[test]
    fn estimates_concentrate_on_zipfish_data() {
        let schema = Schema::new(5, 2000, &mut rng(6));
        let mut s = schema.sketch();
        let mut t = schema.sketch();
        let mut truth_join = 0f64;
        let mut truth_f2 = 0f64;
        for k in 0..2000u64 {
            let f = (2000 / (k + 1)).min(200) as i64;
            let g = ((k % 10) + 1) as i64;
            s.update(k, f);
            t.update(k, g);
            truth_join += (f * g) as f64;
            truth_f2 += (f * f) as f64;
        }
        let sj = s.self_join();
        let join = s.size_of_join(&t).unwrap();
        assert!(
            (sj - truth_f2).abs() / truth_f2 < 0.1,
            "self-join {sj} vs {truth_f2}"
        );
        assert!(
            (join - truth_join).abs() / truth_join < 0.25,
            "join {join} vs {truth_join}"
        );
    }

    /// A single F-AGMS row with `width` buckets has (for self-join) the
    /// variance profile of averaging `width` AGMS basics: check the
    /// concentration improves with width.
    #[test]
    fn wider_rows_estimate_better() {
        let mut errors = Vec::new();
        for width in [8usize, 512] {
            let mut r = rng(7);
            let reps = 60;
            let mut err_acc = 0f64;
            let truth: f64 = (0..500u64)
                .map(|k| ((k % 5 + 1) * (k % 5 + 1)) as f64)
                .sum();
            for _ in 0..reps {
                let schema = Schema::new(1, width, &mut r);
                let mut s = schema.sketch();
                for k in 0..500u64 {
                    s.update(k, (k % 5 + 1) as i64);
                }
                err_acc += ((s.self_join() - truth) / truth).abs();
            }
            errors.push(err_acc / reps as f64);
        }
        assert!(
            errors[1] < errors[0] / 2.0,
            "width 512 should be far more accurate: {errors:?}"
        );
    }

    /// The batched kernels must leave exactly the counter state of the
    /// per-key loop, across chunk boundaries and with negative counts.
    #[test]
    fn batched_updates_are_bit_identical_to_scalar() {
        let schema = Schema::new(5, 300, &mut rng(50));
        let keys: Vec<u64> = (0..777u64).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let items: Vec<(u64, i64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, (i as i64 % 5) - 2))
            .collect();
        let mut scalar = schema.sketch();
        let mut batched = schema.sketch();
        for &k in &keys {
            scalar.update(k, 1);
        }
        batched.update_batch(&keys);
        assert_eq!(scalar.counters, batched.counters);
        for &(k, c) in &items {
            scalar.update(k, c);
        }
        batched.update_batch_counts(&items);
        assert_eq!(scalar.counters, batched.counters);
    }

    #[test]
    fn point_query_recovers_heavy_hitter() {
        let schema = Schema::new(7, 512, &mut rng(8));
        let mut s = schema.sketch();
        s.update(77, 10_000);
        for k in 0..1000u64 {
            s.update(k, 1);
        }
        let q = s.point_query(77);
        assert!((q - 10_001.0).abs() < 100.0, "q = {q}");
    }
}
