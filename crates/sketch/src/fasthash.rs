//! A minimal multiply–xor hasher for `u64` keys in hot per-tuple maps.
//!
//! The heavy-hitter summaries probe a `HashMap<u64, _>` once per offered
//! tuple; SipHash (std's default, keyed for HashDoS resistance) costs more
//! than the sketch update itself on that path. Summary keys are not
//! attacker-controlled hash-flooding vectors — they are already being fed
//! to the sketches — so a fixed Fibonacci-multiply hash with an xor-shift
//! finisher is enough: the multiply avalanches into the high bits and the
//! shift folds them back down where the table's bucket index is taken.
//!
//! Only the map's *speed* changes. Every observable answer of the summaries
//! using this (top-k order, merge results, counters) is defined with
//! explicit value/key tie-breaks, never by map iteration order.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by `u64` summary keys with the fast fixed hasher.
pub(crate) type KeyHashMap<V> = HashMap<u64, V, BuildHasherDefault<KeyHasher>>;

/// Fibonacci-multiply hasher for integer keys; see the module docs.
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    /// Byte-stream fallback (FNV-1a) — integer keys never take this path,
    /// but `Hasher` requires totality.
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u64(&mut self, key: u64) {
        let h = (self.0 ^ key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_spread_and_lookups_round_trip() {
        let mut map: KeyHashMap<u64> = KeyHashMap::default();
        for k in 0..10_000u64 {
            map.insert(k, k * 3);
        }
        assert_eq!(map.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(map.get(&k), Some(&(k * 3)));
        }
        assert_eq!(map.get(&10_001), None);
    }

    #[test]
    fn hash_is_a_pure_function_of_the_key() {
        let hash = |k: u64| {
            let mut h = KeyHasher::default();
            h.write_u64(k);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43), "adjacent keys must not collide");
    }
}
