//! HyperLogLog distinct-count (F₀) summary.
//!
//! Implemented from first principles after Flajolet, Fusy, Gandouet &
//! Meunier, *"HyperLogLog: the analysis of a near-optimal cardinality
//! estimation algorithm"* (AofA 2007): hash every key to 64 bits, use the
//! top `precision` bits to pick one of `m = 2^precision` registers, and
//! keep in each register the maximum "rank" (position of the leftmost
//! 1-bit) seen among the remaining bits. The harmonic mean of `2^register`
//! across registers estimates the cardinality with relative standard error
//! `≈ 1.04/√m`, independent of how many duplicates the stream carries.
//!
//! Like the join sketches, a summary carries the seed of its hash function:
//! two HyperLogLogs [`merge`](HyperLogLog::merge) (register-wise max —
//! exactly the summary of the union, so the merge is commutative,
//! associative, and idempotent bit-for-bit) only when precision and seed
//! agree, otherwise [`Error::SchemaMismatch`].
//!
//! Registers saturate monotonically, so there is **no retraction**: the
//! summary of "stream minus a fragment" is not recoverable. Callers that
//! need delta rebuilds must fall back to a full re-merge — the streaming
//! layer's `supports_retract()` contract reports this honestly.

use crate::error::{Error, Result};

/// Smallest accepted precision (m = 16 registers).
pub const MIN_PRECISION: u8 = 4;
/// Largest accepted precision (m = 262144 registers, 256 KiB of state).
pub const MAX_PRECISION: u8 = 18;

/// A HyperLogLog register array with a seeded 64-bit hash.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HyperLogLog {
    registers: Vec<u8>,
    precision: u8,
    seed: u64,
}

/// SplitMix64 finalizer — a full-avalanche 64-bit mixer, the same one the
/// sharded runtime uses for key partitioning.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl HyperLogLog {
    /// An empty summary with `2^precision` registers and a hash seed drawn
    /// from `seed_rng`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDimensions`] unless
    /// `precision ∈ [`[`MIN_PRECISION`]`, `[`MAX_PRECISION`]`]`.
    pub fn new<R: rand::Rng>(precision: u8, seed_rng: &mut R) -> Result<Self> {
        Self::with_seed(precision, seed_rng.random())
    }

    /// An empty summary with an explicit hash seed — two summaries are
    /// mergeable iff they share `precision` and `seed`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDimensions`] unless
    /// `precision ∈ [`[`MIN_PRECISION`]`, `[`MAX_PRECISION`]`]`.
    pub fn with_seed(precision: u8, seed: u64) -> Result<Self> {
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&precision) {
            return Err(Error::InvalidDimensions);
        }
        Ok(Self {
            registers: vec![0u8; 1 << precision],
            precision,
            seed,
        })
    }

    /// The number of registers `m = 2^precision`.
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// The configured precision.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// The hash seed (schema identity together with the precision).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Observe one key occurrence. Duplicates are free: the estimate
    /// depends only on the *set* of keys inserted.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let h = splitmix64(key ^ self.seed);
        let idx = (h >> (64 - self.precision)) as usize;
        // Rank of the remaining 64 − precision bits: position of the
        // leftmost 1-bit, counting from 1; all-zero tail gets the maximum.
        let tail = h << self.precision;
        let rank = if tail == 0 {
            64 - self.precision + 1
        } else {
            tail.leading_zeros() as u8 + 1
        };
        if self.registers[idx] < rank {
            self.registers[idx] = rank;
        }
    }

    /// Observe every key in the batch (order-insensitive: registers only
    /// ever grow, so any interleaving gives bit-identical state).
    pub fn insert_batch(&mut self, keys: &[u64]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Register-wise max merge: afterwards `self` summarizes the union of
    /// both key sets, bit-identically to having inserted both streams into
    /// one summary in any order.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] unless precision and seed agree.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.precision != other.precision || self.seed != other.seed {
            return Err(Error::SchemaMismatch);
        }
        for (r, &o) in self.registers.iter_mut().zip(&other.registers) {
            if *r < o {
                *r = o;
            }
        }
        Ok(())
    }

    /// The raw cardinality estimate of the inserted key set, with the
    /// standard small-range (linear counting) correction.
    ///
    /// Bias-corrected harmonic mean `α_m · m² / Σⱼ 2^(−M[j])`; when the
    /// estimate is small (≤ 2.5·m) and empty registers remain, the linear
    /// counting estimate `m · ln(m/V)` (V = empty registers) is more
    /// accurate and is used instead. No large-range correction is needed
    /// with a 64-bit hash.
    pub fn raw_distinct(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mut inverse_sum = 0.0f64;
        let mut zeros = 0u64;
        for &r in &self.registers {
            inverse_sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            len => 0.7213 / (1.0 + 1.079 / len as f64),
        };
        let raw = alpha * m * m / inverse_sum;
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// The analytic relative standard error `≈ 1.04/√m` of
    /// [`raw_distinct`](HyperLogLog::raw_distinct).
    pub fn relative_std_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// Whether no key has ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hll(precision: u8, seed: u64) -> HyperLogLog {
        HyperLogLog::with_seed(precision, seed).unwrap()
    }

    #[test]
    fn rejects_out_of_range_precision() {
        assert!(HyperLogLog::with_seed(3, 1).is_err());
        assert!(HyperLogLog::with_seed(19, 1).is_err());
        assert!(HyperLogLog::with_seed(4, 1).is_ok());
        assert!(HyperLogLog::with_seed(18, 1).is_ok());
    }

    #[test]
    fn duplicates_do_not_move_the_estimate() {
        let mut h = hll(10, 7);
        for _ in 0..5 {
            for k in 0..100u64 {
                h.insert(k);
            }
        }
        let once = {
            let mut h2 = hll(10, 7);
            h2.insert_batch(&(0..100u64).collect::<Vec<_>>());
            h2.raw_distinct()
        };
        assert_eq!(h.raw_distinct().to_bits(), once.to_bits());
    }

    #[test]
    fn estimates_within_analytic_error() {
        let mut rng = StdRng::seed_from_u64(11);
        for &truth in &[100u64, 10_000, 1_000_000] {
            let mut h = HyperLogLog::new(12, &mut rng).unwrap();
            for k in 0..truth {
                // Spread keys over the full 64-bit space.
                h.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            }
            let est = h.raw_distinct();
            let rel = (est - truth as f64).abs() / truth as f64;
            // 5σ of the analytic 1.04/√m ≈ 1.6% at m = 4096.
            assert!(
                rel < 5.0 * h.relative_std_error(),
                "truth {truth}: est {est}, rel {rel}"
            );
        }
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let mut h = hll(12, 3);
        for k in 0..50u64 {
            h.insert(k);
        }
        let est = h.raw_distinct();
        assert!((est - 50.0).abs() < 5.0, "est {est}");
    }

    #[test]
    fn merge_is_union_and_commutative() {
        let mut a = hll(10, 42);
        let mut b = hll(10, 42);
        a.insert_batch(&(0..500u64).collect::<Vec<_>>());
        b.insert_batch(&(250..750u64).collect::<Vec<_>>());
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab.raw_distinct().to_bits(), ba.raw_distinct().to_bits());
        let mut union = hll(10, 42);
        union.insert_batch(&(0..750u64).collect::<Vec<_>>());
        assert_eq!(ab.raw_distinct().to_bits(), union.raw_distinct().to_bits());
    }

    #[test]
    fn mismatched_schemas_refuse_to_merge() {
        let mut a = hll(10, 1);
        let b = hll(10, 2);
        let c = hll(11, 1);
        assert_eq!(a.merge(&b), Err(Error::SchemaMismatch));
        assert_eq!(a.merge(&c), Err(Error::SchemaMismatch));
    }

    #[test]
    fn serde_round_trip() {
        let mut h = hll(8, 5);
        h.insert_batch(&[1, 2, 3, 4, 5]);
        let json = serde_json::to_string(&h).unwrap();
        let back: HyperLogLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.raw_distinct().to_bits(), h.raw_distinct().to_bits());
        let mut m = back;
        m.merge(&h).unwrap();
    }
}
