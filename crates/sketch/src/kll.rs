//! KLL streaming quantile summary.
//!
//! Implemented from first principles after Karnin, Lang & Liberty,
//! *"Optimal quantile approximation in streams"* (FOCS 2016): a stack of
//! *compactors*, where level `h` holds items of weight `2^h`. New items
//! enter level 0; when the structure exceeds its capacity the lowest
//! overfull level is sorted and every second item (random even/odd offset)
//! is promoted one level up at double weight, which preserves total weight
//! exactly and perturbs any fixed rank by at most half the compacted
//! level's weight. Capacities decay geometrically (ratio 2/3) from `k` at
//! the top level, giving the paper's `O(k)` space and a normalized rank
//! error that shrinks as `~1/k`.
//!
//! Design choices made for this codebase:
//!
//! * **Deterministic coin.** The even/odd compaction offsets come from a
//!   seeded SplitMix64 state carried by the summary, so runs are exactly
//!   reproducible — the property-test pinning used everywhere else in the
//!   repo applies to quantile queries too.
//! * **Commutative merge.** [`merge`](KllSketch::merge) concatenates
//!   levels, XOR-combines the two coin states, and re-compacts with
//!   levels *sorted before every compaction* — so `a.merge(b)` and
//!   `b.merge(a)` answer every quantile query bit-identically.
//! * **No retraction.** Compaction discards items irreversibly; like
//!   HyperLogLog this summary honestly opts out of exact retraction and
//!   delta rebuilds fall back to full re-merges.
//!
//! Total stored weight is conserved exactly (each compacted pair of
//! weight-`w` items becomes one weight-`2w` survivor; odd leftovers stay
//! put), so rank arithmetic never drifts from the true count `n`.

use crate::error::{Error, Result};

/// Smallest accepted `k` — below this the rank guarantee is vacuous.
pub const MIN_K: usize = 8;

/// Capacity decay ratio between adjacent compactor levels.
const DECAY: f64 = 2.0 / 3.0;

/// A KLL quantile summary over `u64` values with seeded, reproducible
/// compaction randomness.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct KllSketch {
    /// `compactors[h]` holds items of weight `2^h`, unsorted between
    /// compactions.
    compactors: Vec<Vec<u64>>,
    k: usize,
    /// Total weight inserted (= total stored weight, conserved exactly).
    n: u64,
    /// SplitMix64 state driving the even/odd compaction offsets.
    coin: u64,
    /// Cached item count across all levels (= `Σ compactors[h].len()`),
    /// maintained incrementally so the per-insert overflow check is O(1)
    /// instead of an O(levels) walk.
    stored: usize,
    /// Cached `Σ capacity(h)`; changes only when the level count does
    /// (capacities are keyed off the distance from the *top* level).
    cap_total: usize,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl KllSketch {
    /// An empty summary with accuracy parameter `k` and a coin seed drawn
    /// from `seed_rng`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDimensions`] if `k <` [`MIN_K`].
    pub fn new<R: rand::Rng>(k: usize, seed_rng: &mut R) -> Result<Self> {
        Self::with_seed(k, seed_rng.random())
    }

    /// An empty summary with an explicit coin seed (exact reproducibility).
    /// Unlike the hashed sketches, two KLL summaries with *different*
    /// seeds may still merge — the coin is private randomness, not shared
    /// schema.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDimensions`] if `k <` [`MIN_K`].
    pub fn with_seed(k: usize, seed: u64) -> Result<Self> {
        if k < MIN_K {
            return Err(Error::InvalidDimensions);
        }
        let mut s = Self {
            compactors: vec![Vec::new()],
            k,
            n: 0,
            coin: seed,
            stored: 0,
            cap_total: 0,
        };
        s.cap_total = s.total_capacity();
        Ok(s)
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total weight (stream length) summarized so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Items currently stored across all levels (the memory footprint).
    pub fn stored(&self) -> usize {
        debug_assert_eq!(self.stored, self.compactors.iter().map(Vec::len).sum());
        self.stored
    }

    /// Capacity of level `h` when `levels` levels exist: `k` at the top,
    /// decaying by 2/3 per level downward, floored at 2.
    fn capacity(&self, h: usize, levels: usize) -> usize {
        let depth = (levels - 1 - h) as i32;
        ((self.k as f64 * DECAY.powi(depth)).ceil() as usize).max(2)
    }

    fn total_capacity(&self) -> usize {
        let levels = self.compactors.len();
        (0..levels).map(|h| self.capacity(h, levels)).sum()
    }

    /// Observe one value.
    #[inline]
    pub fn insert(&mut self, value: u64) {
        self.compactors[0].push(value);
        self.n += 1;
        self.stored += 1;
        if self.stored > self.cap_total {
            self.compress();
        }
    }

    /// Observe every value in the batch.
    pub fn insert_batch(&mut self, values: &[u64]) {
        for &v in values {
            self.insert(v);
        }
    }

    /// Advance the coin state and return the next even/odd offset.
    fn next_offset(&mut self) -> usize {
        self.coin = splitmix64(self.coin);
        (self.coin & 1) as usize
    }

    /// Compact the lowest overfull level until the structure fits. Levels
    /// are sorted before compaction, so the surviving *set* depends only on
    /// the level's multiset content and the coin state — the property that
    /// makes [`merge`](KllSketch::merge) commutative.
    fn compress(&mut self) {
        while self.stored > self.cap_total {
            let levels = self.compactors.len();
            let Some(h) =
                (0..levels).find(|&h| self.compactors[h].len() > self.capacity(h, levels))
            else {
                break;
            };
            if h + 1 == self.compactors.len() {
                self.compactors.push(Vec::new());
                // Every level's capacity is keyed off its distance from
                // the top, so a new top level reprices all of them.
                self.cap_total = self.total_capacity();
            }
            let mut level = std::mem::take(&mut self.compactors[h]);
            level.sort_unstable();
            // Odd leftover keeps its weight by staying at this level.
            let even = level.len() & !1;
            if even < level.len() {
                self.compactors[h].push(level[even]);
            }
            let offset = self.next_offset();
            let promoted = level[..even].iter().skip(offset).step_by(2);
            for &v in promoted {
                self.compactors[h + 1].push(v);
            }
            // `even` items compacted into `even / 2` survivors.
            self.stored -= even / 2;
        }
    }

    /// Merge another summary built with the same `k`: afterwards `self`
    /// summarizes the concatenation of both streams. Commutative: the two
    /// merge orders answer every quantile query bit-identically.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if the accuracy parameters differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.k != other.k {
            return Err(Error::SchemaMismatch);
        }
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (h, level) in other.compactors.iter().enumerate() {
            self.compactors[h].extend_from_slice(level);
        }
        self.n += other.n;
        self.stored += other.stored;
        self.coin ^= other.coin;
        self.cap_total = self.total_capacity();
        self.compress();
        Ok(())
    }

    /// All stored (value, weight) pairs, sorted by value.
    fn weighted(&self) -> Vec<(u64, u64)> {
        let mut items: Vec<(u64, u64)> = Vec::with_capacity(self.stored());
        for (h, level) in self.compactors.iter().enumerate() {
            let w = 1u64 << h;
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items.sort_unstable();
        items
    }

    /// The value at normalized rank `q ∈ [0, 1]`: the smallest stored
    /// value whose cumulative weight reaches `⌈q·n⌉` (clamped to at least
    /// 1), so `q = 0` is the minimum and `q = 1` the maximum.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidQuantile`] if `q ∉ [0, 1]` or NaN;
    /// [`Error::EmptySummary`] before any insert.
    pub fn raw_quantile(&self, q: f64) -> Result<u64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(Error::InvalidQuantile(q));
        }
        if self.n == 0 {
            return Err(Error::EmptySummary);
        }
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let items = self.weighted();
        let mut cumulative = 0u64;
        for &(v, w) in &items {
            cumulative += w;
            if cumulative >= target {
                return Ok(v);
            }
        }
        // Stored weight is conserved, so the loop always reaches `target`;
        // this is unreachable but cheap to keep honest.
        Ok(items.last().map(|&(v, _)| v).unwrap_or(0))
    }

    /// The normalized rank of `value`: the fraction of summarized weight
    /// strictly below it, in `[0, 1]`. Returns 0 on an empty summary.
    pub fn raw_rank(&self, value: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let below: u64 = self
            .compactors
            .iter()
            .enumerate()
            .map(|(h, level)| (1u64 << h) * level.iter().filter(|&&v| v < value).count() as u64)
            .sum();
        below as f64 / self.n as f64
    }

    /// The summary's normalized rank-error bound ε: any reported quantile's
    /// true normalized rank lies within `±ε` of the requested one with high
    /// probability. Uses the empirical fit `ε ≈ 2.296 / k^0.9433` (99%
    /// two-sided) established for KLL with geometric capacities — e.g.
    /// `k = 200` gives ε ≈ 1.6%.
    pub fn rank_error(&self) -> f64 {
        2.296 / (self.k as f64).powf(0.9433)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kll(k: usize, seed: u64) -> KllSketch {
        KllSketch::with_seed(k, seed).unwrap()
    }

    #[test]
    fn rejects_tiny_k() {
        assert!(KllSketch::with_seed(7, 1).is_err());
        assert!(KllSketch::with_seed(8, 1).is_ok());
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = kll(64, 9);
        for v in (0..50u64).rev() {
            s.insert(v);
        }
        // Nothing compacted yet: every quantile is exact.
        assert_eq!(s.raw_quantile(0.0).unwrap(), 0);
        assert_eq!(s.raw_quantile(0.5).unwrap(), 24);
        assert_eq!(s.raw_quantile(1.0).unwrap(), 49);
        assert!((s.raw_rank(25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_invalid_queries_error() {
        let s = kll(16, 1);
        assert_eq!(s.raw_quantile(0.5), Err(Error::EmptySummary));
        let mut s = s;
        s.insert(7);
        assert_eq!(s.raw_quantile(-0.1), Err(Error::InvalidQuantile(-0.1)));
        assert_eq!(s.raw_quantile(1.5), Err(Error::InvalidQuantile(1.5)));
        assert!(s.raw_quantile(f64::NAN).is_err());
    }

    #[test]
    fn rank_error_holds_on_a_large_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = KllSketch::new(200, &mut rng).unwrap();
        let n = 200_000u64;
        // Insert 0..n in a scrambled order; true rank of value v is v/n.
        let mut v = 1u64;
        for _ in 0..n {
            v = v.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
            s.insert(v % n);
        }
        assert!(s.stored() < 1200, "stored {}", s.stored());
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let est = s.raw_quantile(q).unwrap();
            let true_rank = est as f64 / n as f64;
            assert!(
                (true_rank - q).abs() <= s.rank_error(),
                "q={q}: value {est} has true rank {true_rank}, ε={}",
                s.rank_error()
            );
        }
    }

    #[test]
    fn weight_is_conserved_through_compaction() {
        let mut s = kll(8, 77);
        for v in 0..10_000u64 {
            s.insert(v);
        }
        let stored_weight: u64 = s
            .compactors
            .iter()
            .enumerate()
            .map(|(h, level)| (1u64 << h) * level.len() as u64)
            .sum();
        assert_eq!(stored_weight, s.len());
    }

    #[test]
    fn merge_is_commutative_on_queries() {
        let mut a = kll(32, 101);
        let mut b = kll(32, 202);
        for v in 0..5_000u64 {
            a.insert(v * 3 % 4096);
        }
        for v in 0..7_000u64 {
            b.insert(v * 7 % 8192);
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab.len(), ba.len());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(ab.raw_quantile(q).unwrap(), ba.raw_quantile(q).unwrap());
        }
    }

    #[test]
    fn merge_rank_error_still_holds() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60_000u64;
        let mut parts: Vec<KllSketch> = (0..4)
            .map(|_| KllSketch::new(200, &mut rng).unwrap())
            .collect();
        let mut v = 9u64;
        for i in 0..n {
            v = v.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
            parts[(i % 4) as usize].insert(v % n);
        }
        let mut merged = parts.pop().unwrap();
        for p in &parts {
            merged.merge(p).unwrap();
        }
        assert_eq!(merged.len(), n);
        for q in [0.05, 0.5, 0.95] {
            let est = merged.raw_quantile(q).unwrap();
            let true_rank = est as f64 / n as f64;
            // Merging multiplies the constant slightly; allow 2ε.
            assert!(
                (true_rank - q).abs() <= 2.0 * merged.rank_error(),
                "q={q}: rank {true_rank}"
            );
        }
    }

    #[test]
    fn mismatched_k_refuses_to_merge() {
        let mut a = kll(16, 1);
        let b = kll(32, 1);
        assert_eq!(a.merge(&b), Err(Error::SchemaMismatch));
    }

    #[test]
    fn serde_round_trip() {
        let mut s = kll(16, 4);
        s.insert_batch(&(0..1000u64).collect::<Vec<_>>());
        let json = serde_json::to_string(&s).unwrap();
        let back: KllSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.raw_quantile(0.5).unwrap(),
            s.raw_quantile(0.5).unwrap()
        );
    }
}
