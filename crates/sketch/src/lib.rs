//! # sss-sketch — sketches for join-size estimation over data streams
//!
//! Implementations of the sketching techniques referenced by *"Sketching
//! Sampled Data Streams"* (Rusu & Dobra, ICDE 2009):
//!
//! * [`agms`] — the basic **AGMS** ("tug-of-war") sketch of Alon, Matias &
//!   Szegedy: `S = Σᵢ fᵢξᵢ` with a 4-wise independent ±1 family `ξ`. A
//!   sketch is a vector of `n` such counters with independent families;
//!   estimates are means (or medians of means) of per-counter basics.
//!   Update cost is O(n) — every counter is touched by every tuple.
//! * [`fagms`] — **F-AGMS** (Fast-AGMS / Count-Sketch) of Cormode &
//!   Garofalakis: each row hashes the key to one of `width` buckets and
//!   adds `ξ(key)` there. A row behaves like averaging `width` basic AGMS
//!   estimators but costs O(1) per update; rows are combined by median.
//!   This is the sketch used in all the paper's experiments.
//! * [`countmin`] — **Count-Min** of Cormode & Muthukrishnan, included as
//!   the standard non-±1 baseline for the comparison benches.
//!
//! ## Seed sharing
//!
//! Size-of-join estimation requires the two sketches to be built with the
//! *same* random families (`S = Σfᵢξᵢ`, `T = Σgᵢξᵢ`). Each sketch type
//! therefore has a *schema* object holding the seeds; sketches are created
//! from a schema and remember its identity, and cross-sketch operations
//! return [`Error::SchemaMismatch`] when given sketches from different
//! schemas.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use sss_sketch::agms::AgmsSchema;
//! use sss_sketch::Sketch;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let schema: AgmsSchema = AgmsSchema::new(800, &mut rng);
//! let mut s = schema.sketch();
//! let mut t = schema.sketch();
//! for key in 0..1000u64 {
//!     s.update(key, 1);       // relation F: each key once
//!     t.update(key % 100, 1); // relation G: 10 copies of keys 0..100
//! }
//! let est = s.size_of_join(&t).unwrap();
//! let truth = 100.0 * 10.0;   // keys 0..100 match, g-frequency 10
//! assert!((est - truth).abs() / truth < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agms;
pub mod countmin;
pub mod error;
pub mod estimate;
pub mod fagms;
mod fasthash;
pub mod hll;
pub mod kll;
pub mod multiway;
pub(crate) mod rowkernel;
pub mod topk;

/// Keys per stack-buffered chunk of the batched update kernels: large
/// enough to amortize the per-row ξ setup, small enough that the sign and
/// bucket scratch buffers stay on the stack.
pub(crate) const BATCH_CHUNK: usize = 256;

pub use agms::{AgmsSchema, AgmsSketch};
pub use countmin::{CountMinSchema, CountMinSketch};
pub use error::{Error, Result};
pub use estimate::{Bound, Estimate};
pub use fagms::{FagmsSchema, FagmsSketch};
pub use hll::HyperLogLog;
pub use kll::KllSketch;
pub use multiway::{chain_join, BinarySketch, MultiwaySchema, UnarySketch};
pub use topk::{CountSketchTopK, HeavyHitters, MisraGries};

/// Common behaviour of all linear sketches in this crate.
///
/// Linearity is the property that makes sketches streamable: the sketch of
/// a union (or of a weighted difference) of streams is the entry-wise
/// combination of the individual sketches.
pub trait Sketch {
    /// Add `count` occurrences of `key` (negative counts model deletions —
    /// all sketches here are turnstile-capable).
    fn update(&mut self, key: u64, count: i64);

    /// Add one occurrence of every key in the batch.
    ///
    /// Semantically `for &k in keys { self.update(k, 1) }`, and every
    /// implementation must leave **bit-identical** counter state to that
    /// loop (exact by linearity: integer counter updates commute). The
    /// sketches in this crate override the default with row-major kernels
    /// that walk the batch once per row/family, keeping the family seeds
    /// hot and evaluating the ξ polynomials several keys at a time.
    fn update_batch(&mut self, keys: &[u64]) {
        for &key in keys {
            self.update(key, 1);
        }
    }

    /// Add `count` occurrences of `key` for every `(key, count)` pair
    /// (negative counts model deletions).
    ///
    /// Same bit-identity contract as [`Sketch::update_batch`], relative to
    /// `for &(k, c) in items { self.update(k, c) }`.
    fn update_batch_counts(&mut self, items: &[(u64, i64)]) {
        for &(key, count) in items {
            self.update(key, count);
        }
    }

    /// Entry-wise merge of a sketch built over another stream fragment with
    /// the same schema.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if the sketches were not created by the
    /// same schema.
    fn merge(&mut self, other: &Self) -> Result<()>;

    /// Entry-wise subtraction: afterwards `self` summarizes the frequency
    /// *difference* `f − g` of the two streams. For the ±1 sketches the
    /// self-join estimate of the result is the squared L2 distance
    /// `Σᵢ(fᵢ−gᵢ)²` — the classic sketch-based change detector.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if the sketches were not created by the
    /// same schema.
    fn subtract(&mut self, other: &Self) -> Result<()>;

    /// Number of counters the sketch maintains (its memory footprint in
    /// units of one counter).
    fn counters(&self) -> usize;
}
