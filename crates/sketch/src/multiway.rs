//! AGMS sketches for three-way **chain joins** —
//! `|F(a) ⋈ G(a, b) ⋈ H(b)| = Σ_{a,b} f_a·g_{ab}·h_b`.
//!
//! The classic multi-join extension of AGMS (Dobra, Garofalakis, Gehrke &
//! Rastogi, SIGMOD'02): give each join *attribute* its own independent
//! ±1 family — `ξ` for `a`, `η` for `b` — and sketch
//!
//! ```text
//! S_F = Σ_a f_a·ξ_a      S_G = Σ_{a,b} g_{ab}·ξ_a·η_b      S_H = Σ_b h_b·η_b
//! ```
//!
//! Then `E[S_F·S_G·S_H] = Σ_{a,b} f_a·g_{ab}·h_b` exactly (all cross terms
//! carry an unmatched `ξ` or `η` of zero expectation), and averaging `n`
//! independent `(ξ, η)` pairs controls the variance as usual. The binary
//! sketch is still linear and O(n)-updatable per tuple, so everything in
//! this workspace — sampling before sketching included — composes with it.

use crate::error::{Error, Result};
use crate::estimate;
use rand::Rng;
use sss_xi::{DefaultSign, SignFamily};
use std::sync::Arc;

/// Which join attribute a unary relation binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Side {
    /// The left attribute `a` (shared by `F` and `G`).
    Left,
    /// The right attribute `b` (shared by `G` and `H`).
    Right,
}

/// Seeds for a three-way chain join: `n` independent `(ξ, η)` pairs.
#[derive(Debug)]
pub struct MultiwaySchema<F = DefaultSign> {
    xi: Arc<[F]>,
    eta: Arc<[F]>,
    id: u64,
}

impl<F> Clone for MultiwaySchema<F> {
    fn clone(&self) -> Self {
        Self {
            xi: Arc::clone(&self.xi),
            eta: Arc::clone(&self.eta),
            id: self.id,
        }
    }
}

// Persistence: both family lists plus the identity (see the AGMS impls).
impl<F: serde::Serialize> serde::Serialize for MultiwaySchema<F> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("MultiwaySchema", 3)?;
        st.serialize_field("xi", self.xi.as_ref())?;
        st.serialize_field("eta", self.eta.as_ref())?;
        st.serialize_field("id", &self.id)?;
        st.end()
    }
}

impl<'de, F: serde::Deserialize<'de>> serde::Deserialize<'de> for MultiwaySchema<F> {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr<F> {
            xi: Vec<F>,
            eta: Vec<F>,
            id: u64,
        }
        let repr = Repr::<F>::deserialize(deserializer)?;
        if repr.xi.is_empty() || repr.xi.len() != repr.eta.len() {
            return Err(serde::de::Error::custom(
                "multiway schema needs equal, non-empty ξ and η family lists",
            ));
        }
        Ok(Self {
            xi: repr.xi.into(),
            eta: repr.eta.into(),
            id: repr.id,
        })
    }
}

impl<F: SignFamily> MultiwaySchema<F> {
    /// Create a schema with `n` basic estimators.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "multiway schema needs at least one estimator");
        Self {
            xi: (0..n).map(|_| F::random(rng)).collect(),
            eta: (0..n).map(|_| F::random(rng)).collect(),
            id: rng.random::<u64>(),
        }
    }

    /// Number of basic estimators.
    pub fn len(&self) -> usize {
        self.xi.len()
    }

    /// Whether the schema is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.xi.is_empty()
    }

    /// A zeroed sketch for a unary endpoint relation (`F` or `H`).
    pub fn unary(&self, side: Side) -> UnarySketch<F> {
        UnarySketch {
            schema: self.clone(),
            side,
            counters: vec![0; self.len()],
        }
    }

    /// A zeroed sketch for the middle binary relation `G(a, b)`.
    pub fn binary(&self) -> BinarySketch<F> {
        BinarySketch {
            schema: self.clone(),
            counters: vec![0; self.len()],
        }
    }
}

/// Sketch of a unary relation on one join attribute.
#[derive(Debug, Clone)]
pub struct UnarySketch<F = DefaultSign> {
    schema: MultiwaySchema<F>,
    side: Side,
    counters: Vec<i64>,
}

impl<F: SignFamily> UnarySketch<F> {
    /// Add `count` occurrences of the attribute value `key`.
    #[inline]
    pub fn update(&mut self, key: u64, count: i64) {
        let families = match self.side {
            Side::Left => &self.schema.xi,
            Side::Right => &self.schema.eta,
        };
        for (c, fam) in self.counters.iter_mut().zip(families.iter()) {
            *c += count * fam.sign(key);
        }
    }

    /// The side this sketch binds to.
    pub fn side(&self) -> Side {
        self.side
    }
}

/// Sketch of the middle relation `G(a, b)`.
#[derive(Debug, Clone)]
pub struct BinarySketch<F = DefaultSign> {
    schema: MultiwaySchema<F>,
    counters: Vec<i64>,
}

impl<F: SignFamily> BinarySketch<F> {
    /// Add `count` occurrences of the attribute pair `(a, b)`.
    #[inline]
    pub fn update(&mut self, a: u64, b: u64, count: i64) {
        for ((c, xi), eta) in self
            .counters
            .iter_mut()
            .zip(self.schema.xi.iter())
            .zip(self.schema.eta.iter())
        {
            *c += count * xi.sign(a) * eta.sign(b);
        }
    }

    /// Merge another binary sketch of the same schema.
    pub fn merge(&mut self, other: &BinarySketch<F>) -> Result<()> {
        if self.schema.id != other.schema.id {
            return Err(Error::SchemaMismatch);
        }
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        Ok(())
    }
}

/// The averaged three-way chain-join estimate `(1/n)·Σₖ S_F⁽ᵏ⁾S_G⁽ᵏ⁾S_H⁽ᵏ⁾`.
///
/// # Errors
///
/// [`Error::SchemaMismatch`] unless all three sketches share one schema and
/// `f`/`h` bind to the left/right attribute respectively.
pub fn chain_join<F: SignFamily>(
    f: &UnarySketch<F>,
    g: &BinarySketch<F>,
    h: &UnarySketch<F>,
) -> Result<f64> {
    if f.schema.id != g.schema.id
        || h.schema.id != g.schema.id
        || f.side != Side::Left
        || h.side != Side::Right
    {
        return Err(Error::SchemaMismatch);
    }
    let basics: Vec<f64> = f
        .counters
        .iter()
        .zip(&g.counters)
        .zip(&h.counters)
        .map(|((&a, &b), &c)| a as f64 * b as f64 * c as f64)
        .collect();
    Ok(estimate::mean(&basics))
}

/// Median-of-means variant of [`chain_join`] over `groups` groups.
pub fn chain_join_median_of_means<F: SignFamily>(
    f: &UnarySketch<F>,
    g: &BinarySketch<F>,
    h: &UnarySketch<F>,
    groups: usize,
) -> Result<f64> {
    if f.schema.id != g.schema.id
        || h.schema.id != g.schema.id
        || f.side != Side::Left
        || h.side != Side::Right
    {
        return Err(Error::SchemaMismatch);
    }
    let basics: Vec<f64> = f
        .counters
        .iter()
        .zip(&g.counters)
        .zip(&h.counters)
        .map(|((&a, &b), &c)| a as f64 * b as f64 * c as f64)
        .collect();
    Ok(estimate::median_of_means(&basics, groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    type Schema = MultiwaySchema<DefaultSign>;

    #[test]
    fn single_path_join_is_exact_in_expectation() {
        // F = {a₀}, G = {(a₀, b₀)}, H = {b₀}: the join has exactly 1 row,
        // and every basic is ξ²η² = 1 exactly.
        let schema = Schema::new(16, &mut rng(1));
        let mut f = schema.unary(Side::Left);
        let mut g = schema.binary();
        let mut h = schema.unary(Side::Right);
        f.update(5, 1);
        g.update(5, 9, 1);
        h.update(9, 1);
        assert_eq!(chain_join(&f, &g, &h).unwrap(), 1.0);
    }

    #[test]
    fn disjoint_relations_estimate_zero_join() {
        let schema = Schema::new(256, &mut rng(2));
        let mut f = schema.unary(Side::Left);
        let mut g = schema.binary();
        let mut h = schema.unary(Side::Right);
        f.update(1, 10);
        g.update(2, 3, 10); // a = 2 never appears in F
        h.update(3, 10);
        let est = chain_join(&f, &g, &h).unwrap();
        assert!(est.abs() < 400.0, "zero join estimated as {est}");
    }

    /// Monte-Carlo unbiasedness on a dense small join with a known answer.
    #[test]
    fn chain_join_is_unbiased() {
        // F: a ∈ 0..4 with f_a = a+1; H: b ∈ 0..3 with h_b = b+1;
        // G: all (a, b) pairs once  ⇒  |J| = Σf_a · Σh_b = 10 · 6 = 60.
        let truth = 60.0;
        let reps = 3000;
        let mut r = rng(3);
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = Schema::new(16, &mut r);
            let mut f = schema.unary(Side::Left);
            let mut g = schema.binary();
            let mut h = schema.unary(Side::Right);
            for a in 0..4u64 {
                f.update(a, a as i64 + 1);
            }
            for b in 0..3u64 {
                h.update(b, b as i64 + 1);
            }
            for a in 0..4u64 {
                for b in 0..3u64 {
                    g.update(a, b, 1);
                }
            }
            acc += chain_join(&f, &g, &h).unwrap();
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }

    #[test]
    fn averaging_tightens_the_estimate() {
        let mut errs = Vec::new();
        for n in [8usize, 512] {
            let mut r = rng(4);
            let reps = 60;
            let mut err = 0.0;
            for _ in 0..reps {
                let schema = Schema::new(n, &mut r);
                let mut f = schema.unary(Side::Left);
                let mut g = schema.binary();
                let mut h = schema.unary(Side::Right);
                for a in 0..50u64 {
                    f.update(a, 2);
                    for b in 0..4u64 {
                        g.update(a, b, 1);
                    }
                }
                for b in 0..4u64 {
                    h.update(b, 3);
                }
                let truth = 50.0 * 2.0 * 4.0 * 3.0;
                err += ((chain_join(&f, &g, &h).unwrap() - truth) / truth).abs();
            }
            errs.push(err / reps as f64);
        }
        assert!(
            errs[1] < errs[0] / 2.0,
            "n=512 should beat n=8 clearly: {errs:?}"
        );
    }

    #[test]
    fn schema_and_side_mismatches_are_rejected() {
        let s1 = Schema::new(8, &mut rng(5));
        let s2 = Schema::new(8, &mut rng(6));
        let f = s1.unary(Side::Left);
        let g = s1.binary();
        let h = s1.unary(Side::Right);
        // Wrong schema.
        assert!(chain_join(&s2.unary(Side::Left), &g, &h).is_err());
        // Wrong sides.
        assert!(chain_join(&h, &g, &f).is_err());
        assert!(chain_join(&f, &g, &f).is_err());
        // Median-of-means path validates identically.
        assert!(chain_join_median_of_means(&h, &g, &f, 4).is_err());
        assert!(chain_join_median_of_means(&f, &g, &h, 4).is_ok());
        // Binary merge requires the shared schema too.
        let mut g2 = s2.binary();
        assert!(g2.merge(&g).is_err());
    }

    #[test]
    fn schema_roundtrips_through_serde() {
        let schema = Schema::new(8, &mut rng(9));
        let json = serde_json::to_string(&schema).unwrap();
        let restored: Schema = serde_json::from_str(&json).unwrap();
        // Same seeds: sketches built from either are cross-compatible and
        // produce identical counters.
        let mut f1 = schema.unary(Side::Left);
        let mut f2 = restored.unary(Side::Left);
        let mut g = restored.binary();
        let mut h = schema.unary(Side::Right);
        f1.update(3, 2);
        f2.update(3, 2);
        g.update(3, 4, 1);
        h.update(4, 1);
        assert_eq!(f1.counters, f2.counters);
        assert!(chain_join(&f1, &g, &h).is_ok());
        // Mismatched family lists are rejected.
        let bad = r#"{"xi":[],"eta":[],"id":1}"#;
        assert!(serde_json::from_str::<Schema>(bad).is_err());
    }

    #[test]
    fn binary_sketch_is_linear() {
        let schema = Schema::new(8, &mut rng(7));
        let mut whole = schema.binary();
        let mut p1 = schema.binary();
        let mut p2 = schema.binary();
        for a in 0..20u64 {
            for b in 0..20u64 {
                whole.update(a, b, 1);
                if (a + b) % 2 == 0 {
                    p1.update(a, b, 1);
                } else {
                    p2.update(a, b, 1);
                }
            }
        }
        p1.merge(&p2).unwrap();
        assert_eq!(p1.counters, whole.counters);
    }

    /// Sampling composes with multiway sketching exactly as with binary
    /// joins: shed the middle relation with Bernoulli(p), scale by 1/p.
    #[test]
    fn shedded_middle_relation_stays_unbiased() {
        let truth = 60.0; // same join as chain_join_is_unbiased
        let p = 0.5;
        let reps = 4000;
        let mut r = rng(8);
        let mut acc = 0.0;
        for _ in 0..reps {
            let schema = Schema::new(16, &mut r);
            let mut f = schema.unary(Side::Left);
            let mut g = schema.binary();
            let mut h = schema.unary(Side::Right);
            for a in 0..4u64 {
                f.update(a, a as i64 + 1);
            }
            for b in 0..3u64 {
                h.update(b, b as i64 + 1);
            }
            for a in 0..4u64 {
                for b in 0..3u64 {
                    if rand::Rng::random::<f64>(&mut r) < p {
                        g.update(a, b, 1);
                    }
                }
            }
            acc += chain_join(&f, &g, &h).unwrap() / p;
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean = {mean}, truth = {truth}"
        );
    }
}
