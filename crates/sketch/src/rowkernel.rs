//! Shared per-row batch dispatch for the sketch update kernels.
//!
//! Every bucketed sketch's `update_batch{,_counts}` faces the same decision
//! once per row: when the row's families are Carter–Wegman polynomials
//! (`poly_coeffs()` exposes the seeds), hand the whole batch to the fused
//! scatter kernels in `sss_xi` — one pass, shared lane evaluation, runtime
//! CPU dispatch — and otherwise fall back to a stack-buffered
//! `sign_batch`/`bucket_batch` loop that works for any family. This
//! dispatch used to be copy-pasted across `fagms.rs` and `countmin.rs`
//! (and mirrored in `agms.rs` through the family sum kernels); it lives
//! here exactly once now.
//!
//! All four helpers inherit the kernels' bit-identity contract: the
//! counter row ends up byte-identical to the per-key
//! `counters[bucket] += sign·count` loop.

use crate::BATCH_CHUNK;
use sss_xi::{BucketFamily, SignFamily};

/// F-AGMS row, unit counts: `row[bucket(k)] += sign(k)` for every key.
pub(crate) fn signed_row_keys<S: SignFamily, B: BucketFamily>(
    sign: &S,
    bucket: &B,
    width: usize,
    keys: &[u64],
    row_counters: &mut [i64],
) {
    if let (Some(sc), Some(bc)) = (sign.poly_coeffs(), bucket.poly_coeffs()) {
        sss_xi::signed_scatter(sc, bc, width, keys, row_counters);
        return;
    }
    let mut signs = [0i64; BATCH_CHUNK];
    let mut buckets = [0usize; BATCH_CHUNK];
    for chunk in keys.chunks(BATCH_CHUNK) {
        let signs = &mut signs[..chunk.len()];
        let buckets = &mut buckets[..chunk.len()];
        sign.sign_batch(chunk, signs);
        bucket.bucket_batch(chunk, width, buckets);
        for (&b, &s) in buckets.iter().zip(signs.iter()) {
            row_counters[b] += s;
        }
    }
}

/// F-AGMS row, carried counts: `row[bucket(k)] += c·sign(k)` per pair.
pub(crate) fn signed_row_items<S: SignFamily, B: BucketFamily>(
    sign: &S,
    bucket: &B,
    width: usize,
    items: &[(u64, i64)],
    row_counters: &mut [i64],
) {
    if let (Some(sc), Some(bc)) = (sign.poly_coeffs(), bucket.poly_coeffs()) {
        sss_xi::signed_scatter_counts(sc, bc, width, items, row_counters);
        return;
    }
    let mut keys = [0u64; BATCH_CHUNK];
    let mut signs = [0i64; BATCH_CHUNK];
    let mut buckets = [0usize; BATCH_CHUNK];
    for chunk in items.chunks(BATCH_CHUNK) {
        let keys = &mut keys[..chunk.len()];
        for (k, &(key, _)) in keys.iter_mut().zip(chunk) {
            *k = key;
        }
        let signs = &mut signs[..chunk.len()];
        let buckets = &mut buckets[..chunk.len()];
        sign.sign_batch(keys, signs);
        bucket.bucket_batch(keys, width, buckets);
        for ((&b, &s), &(_, c)) in buckets.iter().zip(signs.iter()).zip(chunk.iter()) {
            row_counters[b] += s * c;
        }
    }
}

/// Count-Min row, unit counts: `row[bucket(k)] += 1` for every key.
pub(crate) fn bucket_row_keys<B: BucketFamily>(
    bucket: &B,
    width: usize,
    keys: &[u64],
    row_counters: &mut [i64],
) {
    if let Some(bc) = bucket.poly_coeffs() {
        sss_xi::bucket_scatter(bc, width, keys, row_counters);
        return;
    }
    let mut buckets = [0usize; BATCH_CHUNK];
    for chunk in keys.chunks(BATCH_CHUNK) {
        let buckets = &mut buckets[..chunk.len()];
        bucket.bucket_batch(chunk, width, buckets);
        for &b in buckets.iter() {
            row_counters[b] += 1;
        }
    }
}

/// Count-Min row, carried counts: `row[bucket(k)] += c` per pair.
pub(crate) fn bucket_row_items<B: BucketFamily>(
    bucket: &B,
    width: usize,
    items: &[(u64, i64)],
    row_counters: &mut [i64],
) {
    if let Some(bc) = bucket.poly_coeffs() {
        sss_xi::bucket_scatter_counts(bc, width, items, row_counters);
        return;
    }
    let mut keys = [0u64; BATCH_CHUNK];
    let mut buckets = [0usize; BATCH_CHUNK];
    for chunk in items.chunks(BATCH_CHUNK) {
        let keys = &mut keys[..chunk.len()];
        for (k, &(key, _)) in keys.iter_mut().zip(chunk) {
            *k = key;
        }
        let buckets = &mut buckets[..chunk.len()];
        bucket.bucket_batch(keys, width, buckets);
        for (&b, &(_, c)) in buckets.iter().zip(chunk.iter()) {
            row_counters[b] += c;
        }
    }
}
