//! Mergeable heavy-hitter (top-k) summaries.
//!
//! Two classic structures behind one [`HeavyHitters`] trait:
//!
//! * [`MisraGries`] — the deterministic counter summary of Misra & Gries
//!   (the SpaceSaving family). With `capacity` counters over a stream of
//!   `n` tuples, every reported count undershoots the true frequency by at
//!   most `n/(capacity+1)`; keys above that bar are guaranteed present.
//!   Summaries are mergeable in the sense of Agarwal et al. (*Mergeable
//!   Summaries*, PODS 2012): add counters pointwise, subtract the
//!   `(capacity+1)`-th largest, drop the non-positive remainder — the
//!   merged error bounds add.
//! * [`CountSketchTopK`] — Charikar–Chen–Farach-Colton top-k over an
//!   [`FagmsSketch`] (Count-Sketch): the sketch answers
//!   [`point_query`](FagmsSketch::point_query) for *any* key with additive
//!   error `≈ √(F₂/width)`, and a bounded candidate set tracks the keys
//!   whose running estimates are largest. Memory is `O(capacity + depth ×
//!   width)` — no per-domain state, unlike the dictionary pass the sketch
//!   alone would need to enumerate keys.
//!
//! Both summaries report **raw** (sample-universe) estimates; the
//! `1/p`-unbiasing for Bernoulli-sampled streams lives one layer up in
//! `sss-core::SampledTopK`, next to the paper's Prop. 13/14 corrections
//! for the join estimators.
//!
//! Top-k answers are a *pure function* of the summary state and its
//! candidate set: [`HeavyHitters::raw_top_k`] re-scores every candidate at
//! query time and sorts with the same descending-estimate /
//! ascending-key tie-break as [`FagmsSketch::top_k`]. That is what makes
//! shard-merged answers reproducible — whenever the merged candidate sets
//! and counters match the sequential ones (always, when `capacity` covers
//! the distinct keys), the merged top-k is bit-identical to the
//! sequential top-k.

use crate::error::{Error, Result};
use crate::fagms::{FagmsSchema, FagmsSketch};
use crate::fasthash::KeyHashMap;
use crate::Sketch;
use sss_xi::{BucketFamily, DefaultBucket, DefaultSign, SignFamily};

/// A mergeable summary answering approximate frequent-item queries over
/// the stream it has seen (its *sample universe* — corrections for
/// sampled streams are applied by the caller).
pub trait HeavyHitters: Clone {
    /// Record `count` occurrences of `key`. Non-positive counts are
    /// ignored by insert-only summaries (see the implementors' docs).
    fn offer(&mut self, key: u64, count: i64);

    /// Record one occurrence of every key in the batch — semantically
    /// `for &k in keys { self.offer(k, 1) }`, and implementations must
    /// leave state identical to that loop.
    fn offer_batch(&mut self, keys: &[u64]) {
        for &key in keys {
            self.offer(key, 1);
        }
    }

    /// Fold in a summary of another stream fragment.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] if the summaries are not structurally
    /// compatible (different capacities, or sketch schemas).
    fn merge(&mut self, other: &Self) -> Result<()>;

    /// Estimated frequency of `key` in the offered stream.
    fn raw_estimate(&self, key: u64) -> f64;

    /// Scale of the per-key estimation error: a deterministic undercount
    /// bound for counter summaries, one standard error for sketch-backed
    /// ones.
    fn raw_error_bound(&self) -> f64;

    /// Variance proxy for a single [`raw_estimate`](Self::raw_estimate),
    /// feeding the typed `Estimate` path. The default treats
    /// [`raw_error_bound`](Self::raw_error_bound) as two standard errors;
    /// sketch-backed summaries override it with their analytic plug-in.
    fn raw_estimate_variance(&self) -> f64 {
        let half = self.raw_error_bound() / 2.0;
        half * half
    }

    /// The keys currently tracked — the candidate set a top-k query is
    /// answered from. At most `capacity` keys.
    fn candidates(&self) -> Vec<u64>;

    /// The estimated `k` most frequent keys: every candidate re-scored
    /// via [`raw_estimate`](Self::raw_estimate), sorted by estimate
    /// descending with ties broken by ascending key (the
    /// [`FagmsSketch::top_k`] convention), truncated to `k`.
    fn raw_top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = self
            .candidates()
            .into_iter()
            .map(|key| (key, self.raw_estimate(key)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("estimates are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Total weight offered so far (the `n` of the `n/(capacity+1)`
    /// guarantee).
    fn items_offered(&self) -> u64;

    /// Memory footprint in counters (sketch cells + candidate slots).
    fn counters(&self) -> usize;
}

/// The Misra–Gries deterministic heavy-hitter summary.
///
/// Keeps at most `capacity` `(key, count)` pairs. Offering a key already
/// tracked (or while a slot is free) increments its counter; otherwise the
/// summary *compacts*: the smallest counter value is subtracted from every
/// counter and the zeros are dropped. The cumulative subtracted amount —
/// [`error_bound`](Self::error_bound) — bounds every key's undercount and
/// never exceeds `n/(capacity+1)`.
///
/// This summary is insert-only: non-positive offer counts are ignored
/// (deletions would break the deterministic guarantee).
#[derive(Debug, Clone)]
pub struct MisraGries {
    counters: KeyHashMap<u64>,
    capacity: usize,
    /// Cumulative amount subtracted by compactions and merges — the
    /// deterministic per-key undercount bound.
    offset: u64,
    offered: u64,
}

// Persistence: capacity + error offset + offered weight + the tracked
// counters as parallel key/count columns in ascending key order, so the
// encoding of a given summary state is deterministic regardless of hash-map
// iteration order (snapshot proptests pin byte-for-byte stability on this).
impl serde::Serialize for MisraGries {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut entries: Vec<(u64, u64)> = self.counters.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        let counts: Vec<u64> = entries.iter().map(|&(_, v)| v).collect();
        let mut st = serializer.serialize_struct("MisraGries", 5)?;
        st.serialize_field("capacity", &self.capacity)?;
        st.serialize_field("offset", &self.offset)?;
        st.serialize_field("offered", &self.offered)?;
        st.serialize_field("keys", &keys)?;
        st.serialize_field("counts", &counts)?;
        st.end()
    }
}

impl<'de> serde::Deserialize<'de> for MisraGries {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Repr {
            capacity: usize,
            offset: u64,
            offered: u64,
            keys: Vec<u64>,
            counts: Vec<u64>,
        }
        let repr = Repr::deserialize(deserializer)?;
        if repr.capacity == 0 {
            return Err(serde::de::Error::custom(
                "Misra-Gries capacity must be non-zero",
            ));
        }
        if repr.keys.len() != repr.counts.len() || repr.keys.len() > repr.capacity {
            return Err(serde::de::Error::invalid_length(
                repr.keys.len(),
                &"matching key/count columns within capacity",
            ));
        }
        let mut counters =
            KeyHashMap::with_capacity_and_hasher(repr.capacity + 1, Default::default());
        counters.extend(repr.keys.into_iter().zip(repr.counts));
        Ok(Self {
            counters,
            capacity: repr.capacity,
            offset: repr.offset,
            offered: repr.offered,
        })
    }
}

impl MisraGries {
    /// Create a summary with `capacity` counters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDimensions`] if `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(Error::InvalidDimensions);
        }
        Ok(Self {
            counters: KeyHashMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            capacity,
            offset: 0,
            offered: 0,
        })
    }

    /// The configured counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deterministic undercount bound: for every key,
    /// `true frequency − raw_estimate ∈ [0, error_bound]`. Bounded by
    /// `items_offered / (capacity + 1)`.
    pub fn error_bound(&self) -> u64 {
        self.offset
    }

    /// Subtract the `(capacity+1)`-th largest counter value from every
    /// counter and drop the non-positive ones. Leaves at most `capacity`
    /// counters (everything at or below the cut dies).
    fn compact(&mut self) {
        if self.counters.len() <= self.capacity {
            return;
        }
        let mut values: Vec<u64> = self.counters.values().copied().collect();
        values.sort_unstable_by(|a, b| b.cmp(a));
        let cut = values[self.capacity];
        self.counters.retain(|_, v| {
            if *v > cut {
                *v -= cut;
                true
            } else {
                false
            }
        });
        self.offset += cut;
    }
}

impl HeavyHitters for MisraGries {
    fn offer(&mut self, key: u64, count: i64) {
        if count <= 0 {
            return;
        }
        let count = count as u64;
        self.offered += count;
        *self.counters.entry(key).or_insert(0) += count;
        self.compact();
    }

    /// Pointwise counter addition followed by one compaction — the
    /// Agarwal et al. merge; the undercount bounds (`offset`s) add.
    fn merge(&mut self, other: &Self) -> Result<()> {
        if self.capacity != other.capacity {
            return Err(Error::SchemaMismatch);
        }
        for (&key, &count) in &other.counters {
            *self.counters.entry(key).or_insert(0) += count;
        }
        self.offered += other.offered;
        self.offset += other.offset;
        self.compact();
        Ok(())
    }

    fn raw_estimate(&self, key: u64) -> f64 {
        self.counters.get(&key).copied().unwrap_or(0) as f64
    }

    fn raw_error_bound(&self) -> f64 {
        self.offset as f64
    }

    fn candidates(&self) -> Vec<u64> {
        self.counters.keys().copied().collect()
    }

    fn items_offered(&self) -> u64 {
        self.offered
    }

    fn counters(&self) -> usize {
        self.capacity
    }
}

/// Count-Sketch-backed top-k: an [`FagmsSketch`] plus a bounded candidate
/// set (Charikar et al.'s heavy-hitter algorithm).
///
/// Every offer updates the sketch; the candidate set admits a new key when
/// its [`point_query`](FagmsSketch::point_query) estimate beats the
/// current weakest candidate, which is then evicted. Candidate membership
/// is a stream-order heuristic, but the *answer* is not: `raw_top_k`
/// re-scores all candidates from the sketch at query time, so the result
/// is a pure function of (sketch state, candidate set).
///
/// Unlike [`MisraGries`] this summary is turnstile-capable in its
/// estimates (the sketch handles negative counts), but eviction decisions
/// only happen on positive offers.
#[derive(Debug)]
pub struct CountSketchTopK<S = DefaultSign, B = DefaultBucket> {
    sketch: FagmsSketch<S, B>,
    /// Candidate → running estimate (cheap bump on re-offer; refreshed
    /// from the sketch on admission and at query time).
    candidates: KeyHashMap<f64>,
    capacity: usize,
    /// Cached weakest candidate, rebuilt lazily when stale.
    min_key: u64,
    min_est: f64,
    min_dirty: bool,
    offered: u64,
}

// Manual impl, like the sketch's: the families sit behind the schema's
// `Arc`, so `S: Clone`/`B: Clone` are not required.
impl<S, B> Clone for CountSketchTopK<S, B> {
    fn clone(&self) -> Self {
        Self {
            sketch: self.sketch.clone(),
            candidates: self.candidates.clone(),
            capacity: self.capacity,
            min_key: self.min_key,
            min_est: self.min_est,
            min_dirty: self.min_dirty,
            offered: self.offered,
        }
    }
}

// Persistence: the backing sketch plus the candidate set as parallel
// key/estimate columns in ascending key order (estimates carried as IEEE-754
// bit patterns — the vendored JSON writer rejects non-finite floats, and bits
// round-trip exactly). The lazy min-cache is deliberately *not* serialized:
// decode marks it dirty and the next admission test rebuilds it, so a decoded
// summary behaves identically to the in-memory original.
impl<S: serde::Serialize, B: serde::Serialize> serde::Serialize for CountSketchTopK<S, B> {
    fn serialize<Z: serde::Serializer>(
        &self,
        serializer: Z,
    ) -> std::result::Result<Z::Ok, Z::Error> {
        use serde::ser::SerializeStruct;
        let mut entries: Vec<(u64, u64)> = self
            .candidates
            .iter()
            .map(|(&k, &est)| (k, est.to_bits()))
            .collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        let keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        let est_bits: Vec<u64> = entries.iter().map(|&(_, b)| b).collect();
        let mut st = serializer.serialize_struct("CountSketchTopK", 5)?;
        st.serialize_field("sketch", &self.sketch)?;
        st.serialize_field("capacity", &self.capacity)?;
        st.serialize_field("offered", &self.offered)?;
        st.serialize_field("keys", &keys)?;
        st.serialize_field("est_bits", &est_bits)?;
        st.end()
    }
}

impl<'de, S, B> serde::Deserialize<'de> for CountSketchTopK<S, B>
where
    S: serde::Deserialize<'de>,
    B: serde::Deserialize<'de>,
{
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        #[serde(bound = "S: serde::Deserialize<'de>, B: serde::Deserialize<'de>")]
        struct Repr<S, B> {
            sketch: FagmsSketch<S, B>,
            capacity: usize,
            offered: u64,
            keys: Vec<u64>,
            est_bits: Vec<u64>,
        }
        let repr = Repr::<S, B>::deserialize(deserializer)?;
        if repr.capacity == 0 {
            return Err(serde::de::Error::custom("top-k capacity must be non-zero"));
        }
        if repr.keys.len() != repr.est_bits.len() || repr.keys.len() > repr.capacity {
            return Err(serde::de::Error::invalid_length(
                repr.keys.len(),
                &"matching key/estimate columns within capacity",
            ));
        }
        let mut candidates =
            KeyHashMap::with_capacity_and_hasher(repr.capacity, Default::default());
        candidates.extend(
            repr.keys
                .into_iter()
                .zip(repr.est_bits.into_iter().map(f64::from_bits)),
        );
        Ok(Self {
            sketch: repr.sketch,
            candidates,
            capacity: repr.capacity,
            min_key: 0,
            min_est: f64::INFINITY,
            min_dirty: true,
            offered: repr.offered,
        })
    }
}

impl<S: SignFamily, B: BucketFamily> CountSketchTopK<S, B> {
    /// Create a top-k summary over `schema` tracking at most `capacity`
    /// candidate keys.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDimensions`] if `capacity` is zero.
    pub fn new(schema: &FagmsSchema<S, B>, capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(Error::InvalidDimensions);
        }
        Ok(Self {
            sketch: schema.sketch(),
            candidates: KeyHashMap::with_capacity_and_hasher(capacity, Default::default()),
            capacity,
            min_key: 0,
            min_est: f64::INFINITY,
            min_dirty: true,
            offered: 0,
        })
    }

    /// The configured candidate budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying Count-Sketch (point queries for arbitrary keys).
    pub fn sketch(&self) -> &FagmsSketch<S, B> {
        &self.sketch
    }

    /// Recompute the weakest candidate: smallest estimate, ties broken
    /// toward the *larger* key (so the smaller key survives eviction,
    /// matching the top-k tie-break).
    fn recompute_min(&mut self) {
        self.min_est = f64::INFINITY;
        self.min_key = 0;
        for (&key, &est) in &self.candidates {
            if est < self.min_est || (est == self.min_est && key > self.min_key) {
                self.min_est = est;
                self.min_key = key;
            }
        }
        self.min_dirty = false;
    }
}

impl<S: SignFamily, B: BucketFamily> HeavyHitters for CountSketchTopK<S, B> {
    fn offer(&mut self, key: u64, count: i64) {
        if count <= 0 {
            // The sketch absorbs the deletion; candidates are re-scored
            // at query time, so no bookkeeping is needed here.
            self.sketch.update(key, count);
            return;
        }
        self.offered += count as u64;
        if let Some(est) = self.candidates.get_mut(&key) {
            *est += count as f64;
            self.sketch.update(key, count);
            if key == self.min_key {
                // The cached min grew; another candidate may now be
                // weakest. Rebuild lazily on the next admission test.
                self.min_dirty = true;
            }
            return;
        }
        // Non-candidate: the admission test needs the post-update point
        // estimate anyway, so the fused sketch op computes each row's
        // hashes once (state identical to update-then-query).
        let est = self.sketch.update_and_query(key, count);
        if self.candidates.len() < self.capacity {
            self.candidates.insert(key, est);
            self.min_dirty = true;
            return;
        }
        if self.min_dirty {
            self.recompute_min();
        }
        if est > self.min_est {
            self.candidates.remove(&self.min_key);
            self.candidates.insert(key, est);
            self.recompute_min();
        }
    }

    /// Sketch counters add entry-wise (linearity); candidate sets union,
    /// are re-scored against the *merged* sketch, and the strongest
    /// `capacity` survive. When `capacity` covers the union the merged
    /// summary answers bit-identically to the sequential one.
    fn merge(&mut self, other: &Self) -> Result<()> {
        if self.capacity != other.capacity {
            return Err(Error::SchemaMismatch);
        }
        self.sketch.merge(&other.sketch)?;
        let mut union: Vec<u64> = self
            .candidates
            .keys()
            .chain(other.candidates.keys())
            .copied()
            .collect();
        union.sort_unstable();
        union.dedup();
        let mut scored: Vec<(u64, f64)> = union
            .into_iter()
            .map(|key| (key, self.sketch.point_query(key)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("point queries are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.truncate(self.capacity);
        self.candidates = scored.into_iter().collect();
        self.offered += other.offered;
        self.min_dirty = true;
        Ok(())
    }

    fn raw_estimate(&self, key: u64) -> f64 {
        self.sketch.point_query(key)
    }

    /// One standard error of a point query: `√(F₂/width)` with `F₂` read
    /// from the sketch itself (clamped at 0 — the F₂ estimate is noisy).
    fn raw_error_bound(&self) -> f64 {
        self.raw_estimate_variance().sqrt()
    }

    /// Analytic plug-in for the point-query variance: a single row's
    /// bucket collides with frequency mass of variance `F₂/width`; the
    /// median over rows only concentrates further, so this is
    /// conservative.
    fn raw_estimate_variance(&self) -> f64 {
        self.sketch.self_join().max(0.0) / self.sketch.schema().width() as f64
    }

    fn candidates(&self) -> Vec<u64> {
        self.candidates.keys().copied().collect()
    }

    fn items_offered(&self) -> u64 {
        self.offered
    }

    fn counters(&self) -> usize {
        self.sketch.counters() + self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small skewed stream: key k appears 2^(9-k) times, k = 0..10.
    fn skewed_stream() -> Vec<u64> {
        let mut s = Vec::new();
        for k in 0..10u64 {
            for _ in 0..(1u64 << (9 - k)) {
                s.push(k);
            }
        }
        // Deterministic shuffle so arrival order interleaves keys.
        let mut state = 42u64;
        for i in (1..s.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.swap(i, (state >> 33) as usize % (i + 1));
        }
        s
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert_eq!(MisraGries::new(0).unwrap_err(), Error::InvalidDimensions);
        let mut rng = StdRng::seed_from_u64(1);
        let schema: FagmsSchema = FagmsSchema::new(3, 64, &mut rng);
        assert!(CountSketchTopK::new(&schema, 0).is_err());
    }

    #[test]
    fn misra_gries_is_exact_at_full_capacity() {
        let stream = skewed_stream();
        let mut mg = MisraGries::new(16).unwrap();
        mg.offer_batch(&stream);
        assert_eq!(mg.error_bound(), 0, "no compaction at capacity ≥ distinct");
        for k in 0..10u64 {
            assert_eq!(mg.raw_estimate(k), (1u64 << (9 - k)) as f64);
        }
        let top = mg.raw_top_k(3);
        assert_eq!(
            top,
            vec![(0, 512.0), (1, 256.0), (2, 128.0)],
            "exact counts in rank order"
        );
    }

    #[test]
    fn misra_gries_undercount_respects_the_deterministic_bound() {
        let stream = skewed_stream();
        let n = stream.len() as u64;
        let mut mg = MisraGries::new(3).unwrap();
        mg.offer_batch(&stream);
        assert_eq!(mg.items_offered(), n);
        assert!(mg.error_bound() > 0, "capacity 3 over 10 keys must compact");
        assert!(
            mg.error_bound() <= n / 4,
            "offset {} exceeds n/(c+1) = {}",
            mg.error_bound(),
            n / 4
        );
        // Every estimate is an undercount within the bound.
        for k in 0..10u64 {
            let truth = (1u64 << (9 - k)) as f64;
            let est = mg.raw_estimate(k);
            assert!(est <= truth, "key {k}: over-estimate {est} > {truth}");
            assert!(
                truth - est <= mg.error_bound() as f64,
                "key {k}: undercount {} > bound {}",
                truth - est,
                mg.error_bound()
            );
        }
        // The head (frequency 512 ≫ bound) is guaranteed present.
        assert!(mg.candidates().contains(&0));
    }

    #[test]
    fn misra_gries_merge_matches_sequential_at_full_capacity() {
        let stream = skewed_stream();
        let (a, b) = stream.split_at(stream.len() / 3);
        let mut left = MisraGries::new(32).unwrap();
        left.offer_batch(a);
        let mut right = MisraGries::new(32).unwrap();
        right.offer_batch(b);
        left.merge(&right).unwrap();

        let mut seq = MisraGries::new(32).unwrap();
        seq.offer_batch(&stream);
        assert_eq!(left.raw_top_k(10), seq.raw_top_k(10));
        assert_eq!(left.items_offered(), seq.items_offered());
        assert_eq!(left.error_bound(), 0);
    }

    #[test]
    fn misra_gries_merge_requires_equal_capacities() {
        let mut a = MisraGries::new(4).unwrap();
        let b = MisraGries::new(8).unwrap();
        assert_eq!(a.merge(&b).unwrap_err(), Error::SchemaMismatch);
    }

    #[test]
    fn count_sketch_topk_recovers_the_skewed_head() {
        let mut rng = StdRng::seed_from_u64(7);
        let schema: FagmsSchema = FagmsSchema::new(5, 512, &mut rng);
        let mut tk = CountSketchTopK::new(&schema, 8).unwrap();
        tk.offer_batch(&skewed_stream());
        let top = tk.raw_top_k(3);
        assert_eq!(
            top.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "head keys in rank order: {top:?}"
        );
        // Estimates are close to the truth at this width (error scale
        // √(F₂/width) ≈ 25 ≪ the head frequencies).
        for (rank, &(_, est)) in top.iter().enumerate() {
            let truth = (1u64 << (9 - rank)) as f64;
            assert!(
                (est - truth).abs() <= 4.0 * tk.raw_error_bound(),
                "rank {rank}: {est} vs {truth} (bound {})",
                tk.raw_error_bound()
            );
        }
        assert!(tk.raw_estimate_variance() > 0.0);
    }

    #[test]
    fn count_sketch_topk_merge_matches_sequential_at_full_capacity() {
        let mut rng = StdRng::seed_from_u64(9);
        let schema: FagmsSchema = FagmsSchema::new(5, 256, &mut rng);
        let stream = skewed_stream();
        let (a, b) = stream.split_at(stream.len() / 2);

        let mut left = CountSketchTopK::new(&schema, 16).unwrap();
        left.offer_batch(a);
        let mut right = CountSketchTopK::new(&schema, 16).unwrap();
        right.offer_batch(b);
        left.merge(&right).unwrap();

        let mut seq = CountSketchTopK::new(&schema, 16).unwrap();
        seq.offer_batch(&stream);

        let merged_top = left.raw_top_k(10);
        let seq_top = seq.raw_top_k(10);
        assert_eq!(merged_top.len(), seq_top.len());
        for (m, s) in merged_top.iter().zip(&seq_top) {
            assert_eq!(m.0, s.0);
            assert_eq!(m.1.to_bits(), s.1.to_bits(), "key {}", m.0);
        }
    }

    #[test]
    fn count_sketch_topk_merge_rejects_mismatched_schemas() {
        let mut rng = StdRng::seed_from_u64(11);
        let s1: FagmsSchema = FagmsSchema::new(3, 64, &mut rng);
        let s2: FagmsSchema = FagmsSchema::new(3, 64, &mut rng);
        let mut a = CountSketchTopK::new(&s1, 4).unwrap();
        let b = CountSketchTopK::new(&s2, 4).unwrap();
        assert_eq!(a.merge(&b).unwrap_err(), Error::SchemaMismatch);
        // Capacity mismatch is structural too.
        let c = CountSketchTopK::new(&s1, 8).unwrap();
        assert_eq!(a.merge(&c).unwrap_err(), Error::SchemaMismatch);
    }

    #[test]
    fn candidate_set_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let schema: FagmsSchema = FagmsSchema::new(4, 128, &mut rng);
        let mut tk = CountSketchTopK::new(&schema, 8).unwrap();
        // 1000 distinct keys, one occurrence each.
        let keys: Vec<u64> = (0..1000u64).collect();
        tk.offer_batch(&keys);
        assert!(tk.candidates().len() <= 8);
        assert_eq!(tk.counters(), 4 * 128 + 8);
        let mut mg = MisraGries::new(8).unwrap();
        mg.offer_batch(&keys);
        assert!(mg.candidates().len() <= 8);
    }
}
