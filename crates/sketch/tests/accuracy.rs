//! Acceptance tests for the (ε, δ) sizing helpers and the heavy-hitter
//! query: the promised guarantees must hold empirically with margin.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_sketch::{AgmsSchema, FagmsSchema, Sketch};

/// A mixed workload: a few heavy keys over a long uniform tail.
fn load(sketch: &mut impl Sketch) -> f64 {
    let mut f2 = 0.0;
    for k in 0..2000u64 {
        let f = if k < 5 { 500 } else { 2 };
        sketch.update(k, f);
        f2 += (f * f) as f64;
    }
    f2
}

#[test]
fn fagms_for_accuracy_meets_its_promise() {
    let (eps, delta) = (0.1, 0.05);
    let mut rng = StdRng::seed_from_u64(1);
    let runs = 60;
    let mut misses = 0;
    for _ in 0..runs {
        let schema: FagmsSchema = FagmsSchema::for_accuracy(eps, delta, &mut rng);
        let mut s = schema.sketch();
        let f2 = load(&mut s);
        if (s.self_join() - f2).abs() > eps * f2 {
            misses += 1;
        }
    }
    // δ = 5%: over 60 runs, expected ≤ 3 misses; allow generous slack but
    // catch gross sizing errors.
    assert!(misses <= 8, "{misses}/{runs} runs missed the ε-window");
}

#[test]
fn agms_for_accuracy_with_median_of_means() {
    let (eps, delta) = (0.2, 0.1);
    let mut rng = StdRng::seed_from_u64(2);
    let groups = AgmsSchema::<sss_xi::Cw4>::recommended_groups(delta);
    let runs = 40;
    let mut misses = 0;
    for _ in 0..runs {
        let schema: AgmsSchema = AgmsSchema::for_accuracy(eps, delta, &mut rng);
        let mut s = schema.sketch();
        let f2 = load(&mut s);
        if (s.self_join_median_of_means(groups) - f2).abs() > eps * f2 {
            misses += 1;
        }
    }
    assert!(misses <= 10, "{misses}/{runs} runs missed the ε-window");
}

#[test]
fn sizing_panics_on_nonsense_parameters() {
    let mut rng = StdRng::seed_from_u64(3);
    for (eps, delta) in [(0.0, 0.1), (1.5, 0.1), (0.1, 0.0), (0.1, 1.0)] {
        let eps_bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: FagmsSchema = FagmsSchema::for_accuracy(eps, delta, &mut rng);
        }));
        assert!(eps_bad.is_err(), "(ε={eps}, δ={delta}) must panic");
    }
}

#[test]
fn top_k_recovers_the_heavy_hitters() {
    let mut rng = StdRng::seed_from_u64(4);
    let schema: FagmsSchema = FagmsSchema::new(5, 2048, &mut rng);
    let mut s = schema.sketch();
    // Heavy: keys 100..105 with frequency 10_000·(5−i); tail: 10k keys ×3.
    for (rank, key) in (100u64..105).enumerate() {
        s.update(key, 10_000 * (5 - rank as i64));
    }
    for k in 1000..11_000u64 {
        s.update(k, 3);
    }
    let top = s.top_k((0..11_000u64).collect::<Vec<_>>(), 5);
    let keys: Vec<u64> = top.iter().map(|&(k, _)| k).collect();
    assert_eq!(
        keys,
        vec![100, 101, 102, 103, 104],
        "heavy hitters in rank order"
    );
    // Estimated frequencies are close to the truth.
    for (i, &(_, est)) in top.iter().enumerate() {
        let truth = 10_000.0 * (5 - i) as f64;
        assert!(
            (est - truth).abs() / truth < 0.1,
            "rank {i}: {est} vs {truth}"
        );
    }
}

#[test]
fn top_k_handles_small_candidate_sets() {
    let mut rng = StdRng::seed_from_u64(5);
    let schema: FagmsSchema = FagmsSchema::new(3, 64, &mut rng);
    let mut s = schema.sketch();
    s.update(7, 10);
    let top = s.top_k([7u64, 8], 5);
    assert_eq!(top.len(), 2, "k larger than candidates returns all");
    assert_eq!(top[0].0, 7);
    assert!(s.top_k(std::iter::empty(), 3).is_empty());
}
