//! L2-difference (change detection) tests: `subtract` turns two stream
//! sketches into a sketch of the frequency delta, whose self-join estimate
//! is the squared L2 distance between the streams.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_sketch::{AgmsSchema, FagmsSchema, Sketch};

#[test]
fn identical_streams_have_zero_distance() {
    let mut rng = StdRng::seed_from_u64(1);
    let schema: FagmsSchema = FagmsSchema::new(3, 256, &mut rng);
    let mut a = schema.sketch();
    let mut b = schema.sketch();
    for k in 0..5000u64 {
        a.update(k % 100, 1);
        b.update(k % 100, 1);
    }
    a.subtract(&b).unwrap();
    assert_eq!(
        a.self_join(),
        0.0,
        "identical streams differ by exactly nothing"
    );
}

#[test]
fn l2_distance_is_estimated_accurately() {
    let mut rng = StdRng::seed_from_u64(2);
    let schema: FagmsSchema = FagmsSchema::new(3, 4096, &mut rng);
    let mut yesterday = schema.sketch();
    let mut today = schema.sketch();
    // Base traffic: 1000 keys × 50 each day.
    for k in 0..1000u64 {
        yesterday.update(k, 50);
        today.update(k, 50);
    }
    // Today's anomaly: 20 keys spike by +200, 10 keys drop by −30.
    for k in 0..20u64 {
        today.update(k, 200);
    }
    for k in 500..510u64 {
        today.update(k, -30);
    }
    let truth = 20.0 * 200.0 * 200.0 + 10.0 * 30.0 * 30.0;
    today.subtract(&yesterday).unwrap();
    let est = today.self_join();
    assert!(
        (est - truth).abs() / truth < 0.1,
        "est = {est}, truth = {truth}"
    );
    // The spiked keys dominate the difference point queries.
    let spike = today.point_query(3);
    assert!(
        (spike - 200.0).abs() < 40.0,
        "difference point query {spike}"
    );
}

#[test]
fn agms_subtract_matches_direct_difference_stream() {
    let mut rng = StdRng::seed_from_u64(3);
    let schema: AgmsSchema = AgmsSchema::new(32, &mut rng);
    let mut a = schema.sketch();
    let mut b = schema.sketch();
    let mut direct = schema.sketch();
    for k in 0..500u64 {
        a.update(k, (k % 7) as i64);
        b.update(k, (k % 3) as i64);
        direct.update(k, (k % 7) as i64 - (k % 3) as i64);
    }
    a.subtract(&b).unwrap();
    assert_eq!(
        a.raw_counters(),
        direct.raw_counters(),
        "subtract is exact linearity"
    );
}

#[test]
fn subtract_requires_shared_schema() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut a = FagmsSchema::<sss_xi::Cw4, sss_xi::Cw2Bucket>::new(2, 16, &mut rng).sketch();
    let b = FagmsSchema::<sss_xi::Cw4, sss_xi::Cw2Bucket>::new(2, 16, &mut rng).sketch();
    assert!(a.subtract(&b).is_err());
}
