//! Persistence round-trips: the distributed-aggregation workflow.
//!
//! A schema is created once, shipped (as JSON here; any serde format works)
//! to several workers, each worker sketches its stream partition, the
//! serialized sketches come back, and the coordinator merges and estimates.
//! This only works if (a) the seeds survive exactly and (b) the schema
//! identity survives, so deserialized sketches still recognize each other.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_sketch::{
    AgmsSchema, AgmsSketch, CountMinSchema, CountMinSketch, FagmsSchema, FagmsSketch, Sketch,
};

#[test]
fn agms_distributed_roundtrip() {
    let mut rng = StdRng::seed_from_u64(1);
    let schema: AgmsSchema = AgmsSchema::new(64, &mut rng);
    let schema_json = serde_json::to_string(&schema).unwrap();

    // Two "workers" each restore the schema and sketch a partition.
    let mut parts = Vec::new();
    for w in 0..2u64 {
        let worker_schema: AgmsSchema = serde_json::from_str(&schema_json).unwrap();
        let mut sk = worker_schema.sketch();
        for k in (w * 500)..(w * 500 + 500) {
            sk.update(k % 100, 1);
        }
        parts.push(serde_json::to_string(&sk).unwrap());
    }

    // The coordinator merges the returned sketches.
    let mut merged: AgmsSketch = serde_json::from_str(&parts[0]).unwrap();
    let second: AgmsSketch = serde_json::from_str(&parts[1]).unwrap();
    merged.merge(&second).unwrap();

    // Reference: one sketch over the whole stream.
    let mut whole = schema.sketch();
    for k in 0..1000u64 {
        whole.update(k % 100, 1);
    }
    assert_eq!(merged.raw_counters(), whole.raw_counters());
}

#[test]
fn fagms_roundtrip_preserves_estimates_and_identity() {
    let mut rng = StdRng::seed_from_u64(2);
    let schema: FagmsSchema = FagmsSchema::new(3, 256, &mut rng);
    let mut s = schema.sketch();
    let mut t = schema.sketch();
    for k in 0..5000u64 {
        s.update(k % 300, 1);
        t.update(k % 150, 1);
    }
    let s2: FagmsSketch = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
    let t2: FagmsSketch = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(s.self_join(), s2.self_join());
    // Identity survives: a restored sketch can be joined with a live one.
    assert_eq!(s.size_of_join(&t).unwrap(), s2.size_of_join(&t2).unwrap());
    assert_eq!(s.size_of_join(&t2).unwrap(), s2.size_of_join(&t).unwrap());
}

#[test]
fn countmin_roundtrip() {
    let mut rng = StdRng::seed_from_u64(3);
    let schema: CountMinSchema = CountMinSchema::new(4, 128, &mut rng);
    let mut s = schema.sketch();
    for k in 0..2000u64 {
        s.update(k % 50, 1);
    }
    let s2: CountMinSketch = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
    for k in 0..60u64 {
        assert_eq!(s.point_query(k), s2.point_query(k));
    }
}

#[test]
fn corrupted_payloads_are_rejected() {
    let mut rng = StdRng::seed_from_u64(4);
    let schema: AgmsSchema = AgmsSchema::new(8, &mut rng);
    let sk = schema.sketch();
    let json = serde_json::to_string(&sk).unwrap();
    // Counter count no longer matches the schema.
    let tampered = json.replace("\"counters\":[0,0,0,0,0,0,0,0]", "\"counters\":[0,0,0]");
    assert_ne!(
        json, tampered,
        "test setup: the payload must actually change"
    );
    let res: Result<AgmsSketch, _> = serde_json::from_str(&tampered);
    assert!(
        res.is_err(),
        "mismatched counter counts must not deserialize"
    );

    // Empty schema.
    let empty = r#"{"families":[],"id":7}"#;
    let res: Result<AgmsSchema, _> = serde_json::from_str(empty);
    assert!(res.is_err(), "empty schemas must not deserialize");
}
