//! Adaptive load shedding: choosing `p` on line.
//!
//! The paper's §VI-A scenario assumes the operator knows how aggressively
//! to shed. In a running system the right `p` follows from two live
//! quantities:
//!
//! * the **capacity** `C` — tuples/second the sketch path can ingest
//!   (measured once at startup, or supplied), and
//! * the **arrival rate** `λ` — estimated online with exponential
//!   smoothing over batch timestamps.
//!
//! The controller sets `p = min(1, C/λ)`, **snapped onto a logarithmic
//! rate grid** ([`RateGrid`], default 40 steps per decade). Quantization
//! is what makes long-running adaptive shedding bounded: the epoch shedder
//! compacts same-rate epochs, so the number of epochs — and the memory and
//! query cost of the combined estimate — can never exceed the grid size,
//! no matter how long the stream runs or how often the rate drifts.
//! Hysteresis operates on grid steps: the controller only moves when the
//! quantized target is more than the dead-band away from the current grid
//! point, so `p` cannot thrash between adjacent points under load wobble.
//!
//! The controller can also report, through the exact analysis of
//! `sss-moments`, what the chosen `p` costs in accuracy for a *planned*
//! workload profile. This closes the loop the paper's introduction
//! sketches: "the formulas resulting from such an analysis could be used
//! to determine how aggressive the load shedding can be without a
//! significant loss in the accuracy".

use crate::throughput::Throughput;
use sss_core::sketch::JoinSchema;
use sss_core::{RateGrid, Result};

/// Configuration of the [`RateController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Sustainable ingest rate of the sketch path, tuples/second.
    pub capacity_tps: f64,
    /// Smoothing factor for the arrival-rate estimate (0 = frozen,
    /// 1 = last batch only). Typical: 0.2–0.5.
    pub smoothing: f64,
    /// Relative change of the target `p` required before the controller
    /// actually moves, applied as a symmetric geometric dead-band in grid
    /// steps (hysteresis against thrash). Typical: 0.1–0.3.
    pub hysteresis: f64,
    /// Lower bound on `p` (never shed below this rate). Always exactly
    /// representable by the quantizer.
    pub min_p: f64,
    /// The logarithmic grid the emitted probabilities snap to. Bounds the
    /// number of distinct rates — and, through epoch compaction, the
    /// shedder's memory — by [`RateGrid::size`]`(min_p)`.
    pub grid: RateGrid,
}

impl ControllerConfig {
    /// The default configuration at a given sustainable ingest rate — the
    /// one knob almost every caller sets.
    pub fn with_capacity(capacity_tps: f64) -> Self {
        Self {
            capacity_tps,
            ..Self::default()
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            capacity_tps: 1e7,
            smoothing: 0.3,
            hysteresis: 0.2,
            min_p: 1e-4,
            grid: RateGrid::default(),
        }
    }
}

/// Tracks the arrival rate and recommends a shedding probability from the
/// configured rate grid.
#[derive(Debug, Clone)]
pub struct RateController {
    config: ControllerConfig,
    /// Smoothed arrival rate, tuples/second (None until the first batch).
    rate: Option<f64>,
    /// The probability currently in force — always a grid point (or the
    /// `min_p` floor).
    current_p: f64,
    /// Grid step of `current_p`, for the step-space hysteresis test.
    current_step: i64,
    /// How many times the controller actually changed `p`.
    adjustments: u64,
}

impl RateController {
    /// Create a controller; `p` starts at 1 (no shedding) until the
    /// observed rate justifies dropping tuples.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity, smoothing outside `(0, 1]`,
    /// negative hysteresis, or `min_p` outside `(0, 1]`.
    pub fn new(config: ControllerConfig) -> Self {
        assert!(config.capacity_tps > 0.0, "capacity must be positive");
        assert!(
            config.smoothing > 0.0 && config.smoothing <= 1.0,
            "smoothing must be in (0, 1]"
        );
        assert!(config.hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(
            config.min_p > 0.0 && config.min_p <= 1.0,
            "min_p must be in (0, 1]"
        );
        Self {
            config,
            rate: None,
            current_p: 1.0,
            current_step: 0,
            adjustments: 0,
        }
    }

    /// Measure the capacity of a schema empirically: time a calibration
    /// burst through a throwaway sketch and build a controller from it
    /// (derated by `headroom ∈ (0, 1]`, e.g. 0.8 to keep 20% slack).
    pub fn calibrated(schema: &JoinSchema, headroom: f64, config: ControllerConfig) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1]"
        );
        let mut sketch = schema.sketch();
        let burst: u64 = 200_000;
        let t = Throughput::measure(burst, || {
            for key in 0..burst {
                sketch.update(key, 1);
            }
        });
        Self::new(ControllerConfig {
            capacity_tps: t.tuples_per_sec() * headroom,
            ..config
        })
    }

    /// The dead-band in grid steps implied by the relative `hysteresis`:
    /// move only when the quantized target is strictly more than
    /// `(1 + hysteresis)×` away (in either direction) from the rate in
    /// force, i.e. at least this many grid steps.
    fn hysteresis_steps(&self) -> i64 {
        let steps = self.config.grid.steps_per_decade() as f64;
        (steps * (1.0 + self.config.hysteresis).log10()).floor() as i64 + 1
    }

    /// Report one observed batch: `tuples` arrived over `seconds`.
    /// Returns the probability now in force.
    ///
    /// Degenerate durations (`seconds ≤ 0`, NaN, or infinite) cannot
    /// update a rate estimate; the batch is ignored and the current `p` is
    /// returned unchanged, so a zero-duration timestamp on the hot ingest
    /// path can never panic the pipeline.
    pub fn observe_batch(&mut self, tuples: u64, seconds: f64) -> f64 {
        if !(seconds > 0.0 && seconds.is_finite()) {
            return self.current_p;
        }
        let batch_rate = tuples as f64 / seconds;
        let s = self.config.smoothing;
        let rate = match self.rate {
            None => batch_rate,
            Some(r) => (1.0 - s) * r + s * batch_rate,
        };
        self.rate = Some(rate);
        let raw_target = (self.config.capacity_tps / rate)
            .min(1.0)
            .max(self.config.min_p);
        let target = self.config.grid.snap(raw_target, self.config.min_p);
        let target_step = self.config.grid.step_of(target);
        // Hysteresis in grid steps: only move when the change is material.
        if (target_step - self.current_step).abs() >= self.hysteresis_steps() {
            self.current_p = target;
            self.current_step = target_step;
            self.adjustments += 1;
        }
        self.current_p
    }

    /// The probability currently in force.
    pub fn probability(&self) -> f64 {
        self.current_p
    }

    /// The smoothed arrival-rate estimate, if any batch has been seen.
    pub fn estimated_rate(&self) -> Option<f64> {
        self.rate
    }

    /// Number of times the controller changed `p`.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Upper bound on the number of distinct probabilities this controller
    /// can ever emit — and therefore on the epochs a compacting
    /// [`sss_core::EpochShedder`] driven by it can hold.
    pub fn distinct_rate_bound(&self) -> usize {
        self.config.grid.size(self.config.min_p)
    }

    /// The expected relative standard error of a self-join estimate at the
    /// probability currently in force, for a planned workload profile
    /// (true frequency vector) and sketch schema — the accuracy price of
    /// the current shedding level, computed exactly.
    pub fn expected_self_join_error(
        &self,
        profile: &sss_moments::FrequencyVector,
        schema: &JoinSchema,
    ) -> Result<f64> {
        let m = sss_core::analysis::shedding_self_join(profile, self.current_p, schema)?;
        Ok(m.relative_error(profile.self_join()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sss_moments::FrequencyVector;

    fn controller(capacity: f64) -> RateController {
        RateController::new(ControllerConfig {
            capacity_tps: capacity,
            smoothing: 0.5,
            hysteresis: 0.1,
            min_p: 1e-4,
            grid: RateGrid::default(),
        })
    }

    #[test]
    fn underload_keeps_p_at_one() {
        let mut c = controller(1e6);
        for _ in 0..10 {
            assert_eq!(c.observe_batch(100_000, 1.0), 1.0); // 10× headroom
        }
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn overload_drops_p_toward_capacity_ratio() {
        let mut c = controller(1e6);
        for _ in 0..20 {
            c.observe_batch(10_000_000, 1.0); // 10× overload
        }
        let p = c.probability();
        assert!((p - 0.1).abs() < 0.02, "p = {p}, expected ≈ 0.1");
        // Overload clears: p recovers to 1.
        for _ in 0..20 {
            c.observe_batch(100_000, 1.0);
        }
        assert_eq!(c.probability(), 1.0);
    }

    /// Every probability the controller emits is a fixed point of the
    /// quantizer, so a downstream compacting shedder sees a bounded set.
    #[test]
    fn emitted_probabilities_lie_on_the_grid() {
        let mut c = controller(1e6);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..1_000u64 {
            // Rate sweeps over two decades and back.
            let rate = 1e5 * (1.0 + (i % 200) as f64);
            let p = c.observe_batch(rate as u64, 1.0);
            assert_eq!(
                c.config.grid.snap(p, c.config.min_p),
                p,
                "emitted p must be snapped"
            );
            distinct.insert(p.to_bits());
        }
        assert!(
            distinct.len() <= c.distinct_rate_bound(),
            "{} distinct rates exceed the grid bound {}",
            distinct.len(),
            c.distinct_rate_bound()
        );
    }

    #[test]
    fn hysteresis_suppresses_thrash() {
        let mut c = RateController::new(ControllerConfig {
            capacity_tps: 1e6,
            smoothing: 1.0, // no smoothing: isolate the hysteresis
            hysteresis: 0.3,
            min_p: 1e-4,
            grid: RateGrid::default(),
        });
        c.observe_batch(2_000_000, 1.0); // 2× overload → p ≈ 0.5
        let adjustments_before = c.adjustments();
        // ±10% load wobble must not move p (relative p change < 30%).
        for i in 0..50 {
            let tuples = if i % 2 == 0 { 2_200_000 } else { 1_800_000 };
            c.observe_batch(tuples, 1.0);
        }
        assert_eq!(
            c.adjustments(),
            adjustments_before,
            "p thrashed under wobble"
        );
    }

    #[test]
    fn min_p_is_a_floor() {
        let mut c = RateController::new(ControllerConfig {
            capacity_tps: 1.0,
            smoothing: 1.0,
            hysteresis: 0.0,
            min_p: 0.01,
            grid: RateGrid::default(),
        });
        c.observe_batch(u32::MAX as u64, 1.0);
        assert_eq!(c.probability(), 0.01);
    }

    #[test]
    fn smoothing_damps_single_spikes() {
        let mut c = RateController::new(ControllerConfig {
            capacity_tps: 1e6,
            smoothing: 0.1,
            hysteresis: 0.0,
            min_p: 1e-4,
            grid: RateGrid::default(),
        });
        for _ in 0..10 {
            c.observe_batch(1_000_000, 1.0); // exactly at capacity
        }
        // One 100× spike barely moves the smoothed rate.
        c.observe_batch(100_000_000, 1.0);
        assert!(
            c.probability() > 0.08,
            "p = {} after a single spike",
            c.probability()
        );
    }

    /// Regression: a zero-duration (or negative, or non-finite) batch
    /// timestamp must not panic the hot ingest path; the controller keeps
    /// its rate estimate and probability unchanged.
    #[test]
    fn degenerate_durations_are_ignored() {
        let mut c = controller(1e6);
        for _ in 0..5 {
            c.observe_batch(10_000_000, 1.0);
        }
        let p = c.probability();
        let rate = c.estimated_rate();
        assert!(p < 1.0, "controller is shedding");
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(c.observe_batch(1_000_000, bad), p, "seconds = {bad}");
        }
        assert_eq!(c.estimated_rate(), rate, "degenerate batches ignored");
        // And the controller still works afterwards.
        for _ in 0..20 {
            c.observe_batch(100, 1.0);
        }
        assert_eq!(c.probability(), 1.0);
    }

    #[test]
    fn calibration_produces_a_positive_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let schema = JoinSchema::fagms(1, 1024, &mut rng);
        let c = RateController::calibrated(&schema, 0.8, ControllerConfig::default());
        assert!(c.config.capacity_tps > 0.0);
    }

    #[test]
    fn reports_the_accuracy_price() {
        let mut rng = StdRng::seed_from_u64(2);
        let schema = JoinSchema::fagms(1, 5000, &mut rng);
        let profile = FrequencyVector::from_counts(vec![100u32; 1000]);
        let mut c = controller(1e6);
        for _ in 0..20 {
            c.observe_batch(10_000_000, 1.0);
        }
        let err_shedded = c.expected_self_join_error(&profile, &schema).unwrap();
        let mut idle = controller(1e12);
        idle.observe_batch(10, 1.0);
        let err_full = idle.expected_self_join_error(&profile, &schema).unwrap();
        assert!(err_shedded > err_full, "shedding must cost accuracy");
        assert!(err_shedded < 1.0, "but not absurdly much at p ≈ 0.1");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_config_panics() {
        let _ = RateController::new(ControllerConfig {
            capacity_tps: 0.0,
            ..ControllerConfig::default()
        });
    }
}
